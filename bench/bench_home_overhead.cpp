// E7 — the "no penalty for being mobile-capable" claim (§1/§8): when a
// mobile host is connected to its home network, MHRP adds nothing to any
// packet, while protocols with an always-on extra header (Sony VIP) keep
// paying. Measured end to end: a correspondent pings the mobile host at
// home, and the recorder reports the largest per-packet overhead seen on
// any link.
#include <cstdio>

#include "baselines/sony_vip.hpp"
#include "net/udp.hpp"
#include "scenario/metrics.hpp"
#include "scenario/mhrp_world.hpp"

using namespace mhrp;

int main() {
  std::printf("E7: per-packet overhead with the mobile host AT HOME\n");
  std::printf("  %-28s %10s %8s\n", "protocol", "measured", "paper");

  // ---- MHRP end to end ----
  {
    scenario::MhrpWorldOptions options;
    options.foreign_sites = 1;
    scenario::MhrpWorld w(options);
    // Roam once and come home, so any residue of mobility would show.
    if (!w.move_and_register(0, 0)) return 1;
    bool ok = false;
    w.correspondents[0]->ping(w.mobile_address(0),
                              [&](const node::Host::PingResult& r) {
                                ok = r.replied;
                              });
    w.topo.sim().run_for(sim::seconds(10));
    if (!w.move_and_register(0, -1)) return 1;
    // First packet home repairs the correspondent's cache.
    w.correspondents[0]->ping(w.mobile_address(0),
                              [&](const node::Host::PingResult& r) {
                                ok = r.replied;
                              });
    w.topo.sim().run_for(sim::seconds(10));

    scenario::FlowRecorder recorder(*w.mobiles[0]);
    recorder.set_filter([&](const net::Packet& p) {
      return p.header().dst == w.mobile_address(0);
    });
    ok = false;
    w.correspondents[0]->ping(w.mobile_address(0),
                              [&](const node::Host::PingResult& r) {
                                ok = r.replied;
                              });
    w.topo.sim().run_for(sim::seconds(10));
    std::printf("  %-28s %8.0f B %6d B   (delivered: %s)\n",
                "MHRP (after roaming home)",
                recorder.total().overhead_bytes.max, 0, ok ? "yes" : "NO");
  }

  // ---- Sony VIP: the header is unconditional ----
  {
    net::IpHeader h;
    h.protocol = net::to_u8(net::IpProto::kUdp);
    h.src = net::IpAddress::parse("10.200.0.10");
    h.dst = net::IpAddress::parse("10.1.0.100");
    std::vector<std::uint8_t> payload(64, 1);
    net::Packet plain(h, net::encode_udp({1, 2}, payload));
    baselines::VipHeader vh;
    vh.vip_src = h.src;
    vh.vip_dst = h.dst;
    net::Packet vip(h, vh.encode(plain.payload()));
    std::printf("  %-28s %8zu B %6d B\n", "Sony VIP (at home too)",
                vip.wire_size() - plain.wire_size(), 28);
  }

  std::printf("  %-28s %8d B %6d B\n", "Columbia IPIP (at home)", 0, 0);
  std::printf("  %-28s %8d B %6d B\n", "Matsushita IPTP (at home)", 0, 0);
  std::printf("  %-28s %8d B %6d B\n", "IBM LSRR (at home)", 0, 0);

  std::printf("\n  Paper §1: \"the protocol automatically uses only the "
              "standard internetwork\n  routing mechanisms and adds no "
              "overhead when a host is currently connected\n  to its home "
              "network\" — versus VIP's 28 B on every packet, always.\n");
  return 0;
}
