// E-store — durability cost and crash consistency of the home-agent
// database (§2: the location database is "recorded on disk to survive
// any crashes and subsequent reboots"). Three measurements:
//
//   * raw WAL throughput — appends/sec against the SimDisk under each
//     sync policy (per-record sync, group commit of 4, no sync), plus
//     recovery time for a log of the same size;
//   * the registration hot path — a seeded ScaleWorld run per policy
//     (disabled / kSync / kInterval / kAsync), reporting registrations,
//     handoff-latency percentiles, and events/sec, so the ack-latency
//     cost of group commit and the wall cost of per-record sync are
//     visible side by side;
//   * crash-point fuzzing — the CrashConsistencyChecker samples seeded
//     (persist step, torn?, tear offset) crashes under every policy and
//     the run FAILS (exit 1) on any prefix or durable-ack violation.
//     kAsync's acked-then-lost count is the experiment's headline: the
//     quantified price of acking ahead of the disk.
//
// Usage: bench_store [--small] [--fuzz N] [--out PATH]
//   --small    CI smoke: tiny worlds, short fuzz
//   --fuzz N   crash-point budget per policy (default 1000)
//   --out PATH where to write the JSON report (default BENCH_store.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/crash_checker.hpp"
#include "scenario/metrics.hpp"
#include "scenario/scale_world.hpp"
#include "store/sim_disk.hpp"
#include "store/wal_store.hpp"

using namespace mhrp;

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

store::StoreOptions bench_store_options(store::SyncPolicy policy) {
  store::StoreOptions o;
  o.enabled = true;
  o.sync_policy = policy;
  o.sector_size = 512;
  o.disk_sectors = 4096;
  o.snapshot_region_sectors = 256;
  o.snapshot_every = 1024;
  return o;
}

// ---- Raw WAL throughput ----

struct WalPoint {
  std::string policy;
  std::uint64_t records = 0;
  double append_wall_s = 0;
  double appends_per_s = 0;
  std::uint64_t syncs = 0;
  std::uint64_t snapshots = 0;
  double recover_wall_s = 0;
  std::uint64_t records_replayed = 0;
};

WalPoint run_wal_point(store::SyncPolicy policy, std::uint64_t records) {
  store::StoreOptions o = bench_store_options(policy);
  store::SimDisk disk(o.sector_size, o.disk_sectors);
  store::WalStore wal(disk, o);
  wal.format();

  const std::uint32_t group = 4;  // kInterval's modeled commit size
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < records; ++i) {
    store::WalRecord r;
    r.kind = store::WalRecord::Kind::kBinding;
    r.mobile_host = net::IpAddress(0x0A010064u + std::uint32_t(i % 64));
    r.foreign_agent = net::IpAddress(0x0A020001u + std::uint32_t(i % 7));
    r.sequence = std::uint32_t(i);
    (void)wal.append(r);
    const bool commit =
        policy == store::SyncPolicy::kSync ||
        (policy == store::SyncPolicy::kInterval && (i + 1) % group == 0);
    if (commit && !wal.sync()) {
      std::fprintf(stderr, "unexpected wal crash during bench\n");
      std::exit(1);
    }
  }
  if (!wal.sync()) std::exit(1);
  const double wall = wall_seconds_since(start);

  WalPoint p;
  p.policy = store::to_string(policy);
  p.records = records;
  p.append_wall_s = wall;
  p.appends_per_s = double(records) / wall;
  p.syncs = wal.stats().syncs;
  p.snapshots = wal.stats().snapshots;

  store::WalStore reopened(disk, o);
  const auto rstart = std::chrono::steady_clock::now();
  const store::RecoveryStats rs = reopened.recover();
  p.recover_wall_s = wall_seconds_since(rstart);
  p.records_replayed = rs.records_replayed;
  return p;
}

// ---- Registration hot path ----

struct RegPoint {
  std::string policy;  // "disabled" or a sync policy
  double sim_seconds = 0;
  double wall_seconds = 0;
  double events_per_s = 0;
  std::uint64_t registrations = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t disk_syncs = 0;
  std::uint64_t acks_deferred = 0;
  scenario::PercentileSummary handoff{};
};

RegPoint run_reg_point(bool enabled, store::SyncPolicy policy,
                       double sim_secs, int routers, int mobiles) {
  scenario::ScaleWorldOptions opt;
  opt.routers = routers;
  opt.mobile_hosts = mobiles;
  opt.foreign_agents = 4;
  opt.correspondents = 2;
  opt.mean_dwell = sim::seconds(2);
  opt.protocol.seed = 1;
  if (enabled) {
    opt.protocol.store = bench_store_options(policy);
  }
  scenario::ScaleWorld world(opt);
  world.start();
  world.run_for(sim::seconds(2));  // warm-up

  const auto start = std::chrono::steady_clock::now();
  const scenario::ScaleRunStats stats =
      world.run_for(sim::from_seconds(sim_secs));
  const double wall = wall_seconds_since(start);

  RegPoint p;
  p.policy = enabled ? store::to_string(policy) : "disabled";
  p.sim_seconds = sim_secs;
  p.wall_seconds = wall;
  p.events_per_s = double(stats.events_executed) / wall;
  p.registrations = stats.registrations;
  p.handoff = scenario::summarize(world.handoff_latencies());
  if (world.ha_store != nullptr) {
    p.wal_appends = world.ha_store->wal().stats().appends;
    p.disk_syncs = world.ha_store->disk().stats().syncs;
    p.acks_deferred = world.ha->stats().acks_deferred;
  }
  return p;
}

// ---- Crash-point fuzzing ----

struct FuzzPoint {
  std::string policy;
  analysis::CrashCheckerResult result{};
};

FuzzPoint run_fuzz_point(store::SyncPolicy policy, std::uint64_t budget,
                         bool& violations_seen) {
  analysis::CrashCheckerOptions o;
  o.store = bench_store_options(policy);
  o.store.disk_sectors = 512;
  o.store.snapshot_region_sectors = 32;
  o.store.snapshot_every = 64;
  o.workload_records = 160;
  o.mobiles = 6;
  o.sync_every = 4;
  o.seed = 0xD15C;  // fixed: CI compares runs across commits
  analysis::CrashConsistencyChecker checker(o);
  analysis::AuditReport report;

  FuzzPoint p;
  p.policy = store::to_string(policy);
  p.result = checker.fuzz(budget, report);
  if (!p.result.clean()) {
    violations_seen = true;
    std::fprintf(stderr, "VIOLATIONS under %s:\n%s%s\n", p.policy.c_str(),
                 p.result.summary().c_str(), report.to_string().c_str());
  }
  return p;
}

// ---- Reporting ----

void write_json(const std::string& path, bool small,
                const std::vector<WalPoint>& wal,
                const std::vector<RegPoint>& reg,
                const std::vector<FuzzPoint>& fuzz) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_store\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", small ? "small" : "full");
  std::fprintf(f, "  \"wal\": [\n");
  for (std::size_t i = 0; i < wal.size(); ++i) {
    const WalPoint& p = wal[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"records\": %llu, "
                 "\"appends_per_sec\": %.0f, \"syncs\": %llu, "
                 "\"snapshots\": %llu, \"recover_wall_s\": %.6f, "
                 "\"records_replayed\": %llu}%s\n",
                 p.policy.c_str(),
                 static_cast<unsigned long long>(p.records), p.appends_per_s,
                 static_cast<unsigned long long>(p.syncs),
                 static_cast<unsigned long long>(p.snapshots),
                 p.recover_wall_s,
                 static_cast<unsigned long long>(p.records_replayed),
                 i + 1 < wal.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"registration_path\": [\n");
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const RegPoint& p = reg[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"sim_seconds\": %.1f, "
                 "\"wall_seconds\": %.4f, \"events_per_sec\": %.0f, "
                 "\"registrations\": %llu, \"wal_appends\": %llu, "
                 "\"disk_syncs\": %llu, \"acks_deferred\": %llu, "
                 "\"handoff_s\": {\"count\": %llu, \"p50\": %.4f, "
                 "\"p90\": %.4f, \"p99\": %.4f, \"max\": %.4f}}%s\n",
                 p.policy.c_str(), p.sim_seconds, p.wall_seconds,
                 p.events_per_s,
                 static_cast<unsigned long long>(p.registrations),
                 static_cast<unsigned long long>(p.wal_appends),
                 static_cast<unsigned long long>(p.disk_syncs),
                 static_cast<unsigned long long>(p.acks_deferred),
                 static_cast<unsigned long long>(p.handoff.count),
                 p.handoff.p50, p.handoff.p90, p.handoff.p99, p.handoff.max,
                 i + 1 < reg.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"crash_fuzz\": [\n");
  for (std::size_t i = 0; i < fuzz.size(); ++i) {
    const analysis::CrashCheckerResult& r = fuzz[i].result;
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"runs\": %llu, "
                 "\"crash_points\": %llu, \"torn_runs\": %llu, "
                 "\"acked_before_crash\": %llu, \"acked_lost\": %llu, "
                 "\"prefix_violations\": %llu, \"ack_violations\": %llu, "
                 "\"determinism_violations\": %llu}%s\n",
                 fuzz[i].policy.c_str(),
                 static_cast<unsigned long long>(r.runs),
                 static_cast<unsigned long long>(r.crash_points),
                 static_cast<unsigned long long>(r.torn_runs),
                 static_cast<unsigned long long>(r.acked_before_crash),
                 static_cast<unsigned long long>(r.acked_lost),
                 static_cast<unsigned long long>(r.prefix_violations),
                 static_cast<unsigned long long>(r.ack_violations),
                 static_cast<unsigned long long>(r.determinism_violations),
                 i + 1 < fuzz.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  std::uint64_t fuzz_budget = 1000;
  bool fuzz_given = false;
  std::string out = "BENCH_store.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--fuzz") == 0 && i + 1 < argc) {
      fuzz_budget = std::strtoull(argv[++i], nullptr, 10);
      fuzz_given = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--fuzz N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("E-store: durability cost and crash consistency (§2)\n");

  const std::uint64_t wal_records = small ? 20000 : 200000;
  std::vector<WalPoint> wal;
  std::printf("\n  raw WAL (%llu records):\n",
              static_cast<unsigned long long>(wal_records));
  for (auto policy : {store::SyncPolicy::kSync, store::SyncPolicy::kInterval,
                      store::SyncPolicy::kAsync}) {
    WalPoint p = run_wal_point(policy, wal_records);
    std::printf("    %-8s | %9.0f appends/s | %6llu syncs | "
                "recover %llu records in %.4fs\n",
                p.policy.c_str(), p.appends_per_s,
                static_cast<unsigned long long>(p.syncs),
                static_cast<unsigned long long>(p.records_replayed),
                p.recover_wall_s);
    wal.push_back(p);
  }

  const double sim_secs = small ? 10 : 40;
  const int routers = small ? 9 : 36;
  const int mobiles = small ? 8 : 48;
  std::vector<RegPoint> reg;
  std::printf("\n  registration path (N=%d M=%d, %.0fs sim):\n", routers,
              mobiles, sim_secs);
  reg.push_back(run_reg_point(false, store::SyncPolicy::kSync, sim_secs,
                              routers, mobiles));
  for (auto policy : {store::SyncPolicy::kSync, store::SyncPolicy::kInterval,
                      store::SyncPolicy::kAsync}) {
    reg.push_back(run_reg_point(true, policy, sim_secs, routers, mobiles));
  }
  for (const RegPoint& p : reg) {
    std::printf("    %-8s | %7.0f events/s | %5llu regs | "
                "handoff p50=%.3fs p99=%.3fs | %llu syncs\n",
                p.policy.c_str(), p.events_per_s,
                static_cast<unsigned long long>(p.registrations),
                p.handoff.p50, p.handoff.p99,
                static_cast<unsigned long long>(p.disk_syncs));
  }

  const std::uint64_t budget = small && !fuzz_given ? 200 : fuzz_budget;
  bool violations = false;
  std::vector<FuzzPoint> fuzz;
  std::printf("\n  crash fuzz (%llu points/policy, seed 0xD15C):\n",
              static_cast<unsigned long long>(budget));
  for (auto policy : {store::SyncPolicy::kSync, store::SyncPolicy::kInterval,
                      store::SyncPolicy::kAsync}) {
    FuzzPoint p = run_fuzz_point(policy, budget, violations);
    std::printf("    %-8s | %s\n", p.policy.c_str(),
                p.result.summary().c_str());
    fuzz.push_back(p);
  }

  write_json(out, small, wal, reg, fuzz);
  if (violations) {
    std::fprintf(stderr, "\nCRASH-CONSISTENCY VIOLATIONS — failing\n");
    return 1;
  }
  return 0;
}
