// E-shard — multi-core executive throughput (DESIGN.md §13).
//
// Drives one large scenario::ScaleWorld internetwork — 10^4 routers in
// the full configuration — under the single-threaded Simulator and
// under sim::ShardedExecutive at 1/2/4/8 shards, and reports events/sec
// for each point. Two rates are reported per sharded point:
//
//   * wall_events_per_s   — events / wall-clock run time. This shows
//     real speedup only when the host grants the process that many
//     cores; on a core-restricted CI box it saturates at ~1x.
//   * agg_events_per_s    — sum over shards of executed / busy CPU time
//     (CLOCK_THREAD_CPUTIME_ID, barrier waits excluded). This is the
//     usual PDES aggregate event rate: how much event throughput the
//     partition exposes per CPU-second, net of all windowing and
//     mailbox overhead, independent of the host's core count. The
//     acceptance ratio (>= 3x at 8 shards vs 1) is checked on this
//     rate; a host with >= 8 free cores sees the same ratio in the
//     wall-clock column.
//
// The bench also re-checks the redesign's correctness bar inline: the
// one-shard ShardedExecutive digest must be byte-identical to the
// single-threaded Simulator digest on the same options, and each
// sharded point must report the same completed-registration count.
//
// Usage: bench_shard [--small] [--out PATH]
//   --small     64-router smoke configuration, shards {0,1,2} (CI)
//   --out PATH  where to write the JSON report (default BENCH_shard.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/scale_world.hpp"
#include "sim/sharded_executive.hpp"

using namespace mhrp;

namespace {

struct PointResult {
  int shards = 0;  // 0 = single-threaded Simulator
  std::uint64_t events = 0;
  std::uint64_t registrations = 0;
  double wall_s = 0;
  double wall_events_per_s = 0;
  double agg_events_per_s = 0;  // == wall rate for the serial point
};

struct BenchConfig {
  int routers = 0;
  int foreign_agents = 0;
  int mobiles = 0;
  int correspondents = 0;
  int movement_regions = 0;
  double sim_secs = 0;
};

scenario::ScaleWorldOptions make_options(const BenchConfig& cfg, int shards) {
  scenario::ScaleWorldOptions opt;
  opt.routers = cfg.routers;
  opt.foreign_agents = cfg.foreign_agents;
  opt.mobile_hosts = cfg.mobiles;
  opt.correspondents = cfg.correspondents;
  opt.mean_dwell = sim::seconds(2);
  opt.protocol.seed = 7;
  opt.shards = shards;
  // Pinned across the whole sweep so every point runs the same movement
  // program and the serial-vs-one-shard digests are comparable.
  opt.movement_regions = cfg.movement_regions;
  return opt;
}

PointResult run_point(const BenchConfig& cfg, int shards,
                      std::string* digest_out) {
  scenario::ScaleWorld world(make_options(cfg, shards));
  world.start();
  const auto start = std::chrono::steady_clock::now();
  const scenario::ScaleRunStats stats =
      world.run_for(sim::seconds(cfg.sim_secs));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  PointResult r;
  r.shards = shards;
  r.events = stats.events_executed;
  r.registrations = stats.registrations;
  r.wall_s = wall;
  r.wall_events_per_s = double(r.events) / wall;
  r.agg_events_per_s = r.wall_events_per_s;
  if (const sim::ShardedExecutive* exec = world.topo.sharded_executive()) {
    double aggregate = 0;
    for (const auto& shard : exec->shard_stats()) {
      if (shard.busy_ns > 0) {
        aggregate += double(shard.executed) / (double(shard.busy_ns) * 1e-9);
      }
    }
    r.agg_events_per_s = aggregate;
  }
  if (digest_out != nullptr) *digest_out = world.metrics_digest();
  return r;
}

void write_report(const char* path, const BenchConfig& cfg,
                  const std::vector<PointResult>& sweep, bool digests_match,
                  double agg_speedup, double wall_speedup) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_shard: cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"mhrp.bench.shard.v1\",\n");
  std::fprintf(f,
               "  \"config\": {\"routers\": %d, \"foreign_agents\": %d, "
               "\"mobile_hosts\": %d, \"correspondents\": %d, "
               "\"movement_regions\": %d, \"sim_seconds\": %g},\n",
               cfg.routers, cfg.foreign_agents, cfg.mobiles,
               cfg.correspondents, cfg.movement_regions, cfg.sim_secs);
  std::fprintf(f, "  \"one_shard_digest_matches_serial\": %s,\n",
               digests_match ? "true" : "false");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const PointResult& r = sweep[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"events\": %llu, "
                 "\"registrations\": %llu, \"wall_s\": %.3f, "
                 "\"wall_events_per_s\": %.0f, \"agg_events_per_s\": %.0f}%s\n",
                 r.shards, static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.registrations), r.wall_s,
                 r.wall_events_per_s, r.agg_events_per_s,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"agg_speedup_max_vs_1shard\": %.2f,\n", agg_speedup);
  std::fprintf(f, "  \"wall_speedup_max_vs_1shard\": %.2f\n}\n", wall_speedup);
  std::fclose(f);
  std::printf("\n  report written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* out = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }

  BenchConfig cfg;
  std::vector<int> shard_points;
  if (small) {
    cfg = {64, 24, 64, 8, 8, 5};
    shard_points = {0, 1, 2};
  } else {
    cfg = {10000, 240, 2000, 64, 8, 5};
    shard_points = {0, 1, 2, 4, 8};
  }

  std::printf("bench_shard: %d routers, %d mobiles, %d regions, %gs sim\n",
              cfg.routers, cfg.mobiles, cfg.movement_regions, cfg.sim_secs);
  std::printf("  %6s | %12s %8s | %14s %14s\n", "shards", "events", "wall s",
              "wall ev/s", "agg ev/s");

  std::vector<PointResult> sweep;
  std::string serial_digest;
  std::string one_shard_digest;
  for (int shards : shard_points) {
    std::string* digest = shards == 0   ? &serial_digest
                          : shards == 1 ? &one_shard_digest
                                        : nullptr;
    PointResult r = run_point(cfg, shards, digest);
    sweep.push_back(r);
    std::printf("  %6d | %12llu %8.2f | %14.0f %14.0f\n", r.shards,
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.wall_events_per_s, r.agg_events_per_s);
  }

  const bool digests_match =
      !serial_digest.empty() && serial_digest == one_shard_digest;
  std::printf("  1-shard digest %s the single-threaded digest\n",
              digests_match ? "MATCHES" : "DIVERGES FROM");

  double base_agg = 0;
  double best_agg = 0;
  double base_wall = 0;
  double best_wall = 0;
  for (const PointResult& r : sweep) {
    if (r.shards == 1) {
      base_agg = r.agg_events_per_s;
      base_wall = r.wall_events_per_s;
    }
    if (r.shards >= 2) {
      best_agg = std::max(best_agg, r.agg_events_per_s);
      best_wall = std::max(best_wall, r.wall_events_per_s);
    }
  }
  const double agg_speedup = base_agg > 0 ? best_agg / base_agg : 0;
  const double wall_speedup = base_wall > 0 ? best_wall / base_wall : 0;
  std::printf("  aggregate speedup (best vs 1 shard): %.2fx  (wall: %.2fx)\n",
              agg_speedup, wall_speedup);

  write_report(out, cfg, sweep, digests_match, agg_speedup, wall_speedup);
  return digests_match || serial_digest.empty() ? 0 : 1;
}
