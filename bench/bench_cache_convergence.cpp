// E4 — cache consistency maintenance (§5.1, §6.3). After a mobile host
// moves, every correspondent's cache entry is stale. MHRP repairs each
// one lazily with point-to-point location updates drawn by the first
// stale packet; Sony VIP floods invalidations to every router whether or
// not anyone cared. This bench sweeps the correspondent population and
// reports packets-to-repair and control-message counts for MHRP, next to
// the flood cost the VIP model incurs on the same topology.
#include <cstdio>

#include "baselines/sony_vip.hpp"
#include "scenario/mhrp_world.hpp"

using namespace mhrp;

namespace {

struct Result {
  int correspondents = 0;
  int stale_packets = 0;     // packets sent under a stale cache
  std::uint64_t updates = 0;  // MHRP location updates for the move
  bool all_repaired = false;
  std::uint64_t routers = 0;  // node count, for the flood comparison
};

Result run(int correspondents) {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 2;
  options.correspondents = correspondents;
  scenario::MhrpWorld w(options);
  Result r;
  r.correspondents = correspondents;
  r.routers = 2 + w.fa_routers.size();  // home + corr + FAs

  if (!w.move_and_register(0, 0)) return r;
  auto ping = [&](node::Host& from) {
    bool ok = false;
    from.ping(w.mobile_address(0),
              [&](const node::Host::PingResult& pr) { ok = pr.replied; });
    w.topo.sim().run_for(sim::seconds(8));
    return ok;
  };
  for (auto* corr : w.correspondents) {
    if (!ping(*corr)) return r;
  }

  const std::uint64_t updates_before = w.total_updates_sent();
  if (!w.move_and_register(0, 1)) return r;

  // Each correspondent sends until its own cache points at the new FA.
  r.all_repaired = true;
  for (std::size_t c = 0; c < w.correspondents.size(); ++c) {
    int attempts = 0;
    while (attempts < 5) {
      auto entry = w.corr_agents[c]->cache().peek(w.mobile_address(0));
      if (entry.has_value() && *entry == w.fa_address(1)) break;
      ++attempts;
      ++r.stale_packets;
      (void)ping(*w.correspondents[c]);
    }
    auto entry = w.corr_agents[c]->cache().peek(w.mobile_address(0));
    if (!entry.has_value() || *entry != w.fa_address(1)) {
      r.all_repaired = false;
    }
  }
  r.updates = w.total_updates_sent() - updates_before;
  return r;
}

}  // namespace

int main() {
  std::printf("E4: cache repair after a move — lazy updates vs flooding\n\n");
  std::printf("  %6s | %14s %13s %9s | %s\n", "corrs", "stale packets",
              "MHRP updates", "repaired", "VIP flood msgs (same topo)");
  for (int correspondents : {1, 2, 4, 8, 16}) {
    Result r = run(correspondents);
    // VIP floods once per move over the router graph: every router
    // forwards the invalidation to each neighbor once. On a hub topology
    // of R routers that is ~R*(R-1) control messages per move, regardless
    // of how many correspondents exist or care.
    const std::uint64_t flood = r.routers * (r.routers - 1);
    std::printf("  %6d | %14d %13llu %9s | %llu\n", r.correspondents,
                r.stale_packets, (unsigned long long)r.updates,
                r.all_repaired ? "all" : "NOT ALL",
                (unsigned long long)flood);
  }
  std::printf(
      "\n  MHRP control traffic scales with the number of *interested*\n"
      "  correspondents (one stale packet each, a handful of updates);\n"
      "  the VIP flood scales with the router population and still\n"
      "  leaves sender caches stale (paper §7).\n");
  return 0;
}
