// The pre-slab event queue, preserved verbatim (renamed into
// `mhrp::bench::legacy`) as the baseline the event-queue benchmarks
// compare against. Every schedule() allocated a shared_ptr<bool> control
// block and every handle held a weak_ptr to it; the slab queue in
// src/sim/event_queue.hpp replaced that with {slot, generation} handles
// into recycled storage. bench_micro and bench_scalability report the
// throughput ratio between the two.
//
// Benchmark-only code: nothing under src/ may include this header.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mhrp::bench::legacy {

/// Opaque handle identifying a scheduled event so it can be cancelled.
/// Default-constructed handles refer to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True when the handle refers to an event that has neither fired nor
  /// been cancelled.
  [[nodiscard]] bool pending() const {
    auto s = state_.lock();
    return s && !*s;
  }

  [[nodiscard]] bool valid() const { return !state_.expired(); }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::weak_ptr<bool> state_;  // *state == true means cancelled
};

/// Min-heap of (time, sequence) ordered events. Cancellation is O(1):
/// the entry is flagged and skipped at pop time.
class EventQueue {
 public:
  using Action = std::function<void()>;

  EventHandle schedule(sim::Time when, Action action) {
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, std::move(action), cancelled});
    ++live_;
    return EventHandle(std::move(cancelled));
  }

  bool cancel(const EventHandle& handle) {
    auto s = handle.state_.lock();
    if (!s || *s) return false;
    *s = true;
    --live_;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  [[nodiscard]] sim::Time next_time() {
    drop_cancelled();
    return heap_.top().when;
  }

  std::pair<sim::Time, Action> pop() {
    drop_cancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    *top.cancelled = true;  // mark fired so handles report non-pending
    return {top.when, std::move(top.action)};
  }

 private:
  struct Entry {
    sim::Time when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> cancelled;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace mhrp::bench::legacy
