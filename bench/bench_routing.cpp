// E-routing — DV reconvergence vs internetwork size (§1, §5.2). The
// paper assumes "the standard IP routing algorithms will deliver the
// packet to M's home network" and that they keep doing so across link
// failures; this bench measures what that assumption costs when the
// routing fabric is the dynamic routing::dv plane instead of a
// precomputed static oracle.
//
// For each size N the bench builds two identically-seeded ScaleWorld
// grids — one on DV, one on static routes — warms them up, then scripts
// the same backbone fault on both: the R0-R1 circuit (the link carrying
// the home agent's tunnels toward FA0) fails for a fixed outage and
// heals. Reported per point:
//
//   * time-to-reconverge for the fail and the heal epoch (seconds from
//     the fault-plane event to the last DV route change before the next
//     epoch) — the triggered-update path, not the periodic timer;
//   * CBR datagrams delivered during the outage, DV vs static twin: the
//     rerouting dividend (the static world blackholes FA0's cell);
//   * DV protocol overhead in steady state: update messages sent per
//     router-second and total route changes (wall_seconds sits next to
//     BENCH_scale.json's points for the cost of a process per router).
//
// Usage: bench_routing [--small] [--out PATH]
//   --small    one tiny sweep point (CI smoke)
//   --out PATH where to write the JSON report (default BENCH_routing.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "faults/fault_schedule.hpp"
#include "scenario/scale_world.hpp"

using namespace mhrp;

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RoutingResult {
  int routers = 0;
  int foreign_agents = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  std::uint64_t dv_updates_sent = 0;
  std::uint64_t dv_updates_received = 0;
  std::uint64_t dv_route_changes = 0;
  std::uint64_t dv_routes_withdrawn = 0;
  double updates_per_router_s = 0;
  std::vector<double> convergence_s;  // one per fault epoch
  std::uint64_t dv_delivered_during_outage = 0;
  std::uint64_t static_delivered_during_outage = 0;
};

scenario::ScaleWorldOptions world_options(int routers, bool dv) {
  scenario::ScaleWorldOptions opt;
  opt.routers = routers;
  opt.foreign_agents = 12;
  opt.mobile_hosts = 2 * routers > 256 ? 256 : 2 * routers;
  opt.correspondents = 4;
  opt.mean_dwell = sim::seconds(3);
  opt.protocol.seed = 1;
  if (dv) opt.protocol.routing = routing::dv::Mode::kDv;
  opt.chaos.enabled = true;  // zero rates: armed plane, scripted events
  opt.chaos.fault_seed = 0xc4a05;
  return opt;
}

/// Warm up, fail bb0 (R0-R1) for `outage`, heal, settle. Returns the
/// CBR datagrams delivered while the link was down.
std::uint64_t drive_scripted_outage(scenario::ScaleWorld& world,
                                    sim::Time warmup, sim::Time outage) {
  world.start();
  (void)world.run_for(warmup);
  faults::FaultEvent fail;
  fail.at = world.topo.sim().now();
  fail.kind = faults::FaultKind::kLinkFail;
  fail.target = world.cells.size();  // cells register first, then bb0
  fail.duration = outage;
  world.fault_plane()->apply(fail);
  const scenario::ScaleRunStats during = world.run_for(outage);
  (void)world.run_for(sim::seconds(2));  // close the heal epoch
  return during.packets_delivered;
}

RoutingResult run_point(int routers, double steady_secs) {
  const sim::Time warmup = sim::from_seconds(steady_secs);
  const sim::Time outage = sim::seconds(8);

  scenario::ScaleWorld dv(world_options(routers, true));
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t dv_delivered =
      drive_scripted_outage(dv, warmup, outage);
  const double wall = wall_seconds_since(start);

  scenario::ScaleWorld st(world_options(routers, false));
  const std::uint64_t st_delivered =
      drive_scripted_outage(st, warmup, outage);

  RoutingResult r;
  r.routers = routers;
  r.foreign_agents = static_cast<int>(dv.fa_routers.size());
  r.sim_seconds = sim::to_seconds(dv.topo.sim().now());
  r.wall_seconds = wall;
  for (const auto& process : dv.dv_processes) {
    r.dv_updates_sent += process->stats().updates_sent;
    r.dv_updates_received += process->stats().updates_received;
    r.dv_route_changes += process->stats().route_changes;
    r.dv_routes_withdrawn += process->stats().routes_withdrawn;
  }
  r.updates_per_router_s = double(r.dv_updates_sent) /
                           double(routers) / r.sim_seconds;
  r.convergence_s = dv.convergence_times();
  r.dv_delivered_during_outage = dv_delivered;
  r.static_delivered_during_outage = st_delivered;
  return r;
}

void write_json(const std::string& path, bool small,
                const std::vector<RoutingResult>& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_routing\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", small ? "small" : "full");
  std::fprintf(f, "  \"outage_seconds\": 8.0,\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RoutingResult& r = sweep[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"routers\": %d,\n", r.routers);
    std::fprintf(f, "      \"foreign_agents\": %d,\n", r.foreign_agents);
    std::fprintf(f, "      \"sim_seconds\": %.1f,\n", r.sim_seconds);
    std::fprintf(f, "      \"wall_seconds\": %.4f,\n", r.wall_seconds);
    std::fprintf(f, "      \"dv_updates_sent\": %llu,\n",
                 static_cast<unsigned long long>(r.dv_updates_sent));
    std::fprintf(f, "      \"dv_updates_received\": %llu,\n",
                 static_cast<unsigned long long>(r.dv_updates_received));
    std::fprintf(f, "      \"dv_route_changes\": %llu,\n",
                 static_cast<unsigned long long>(r.dv_route_changes));
    std::fprintf(f, "      \"dv_routes_withdrawn\": %llu,\n",
                 static_cast<unsigned long long>(r.dv_routes_withdrawn));
    std::fprintf(f, "      \"updates_per_router_sec\": %.3f,\n",
                 r.updates_per_router_s);
    std::fprintf(f, "      \"convergence_s\": [");
    for (std::size_t k = 0; k < r.convergence_s.size(); ++k) {
      std::fprintf(f, "%s%.4f", k > 0 ? ", " : "", r.convergence_s[k]);
    }
    std::fprintf(f, "],\n");
    std::fprintf(
        f, "      \"delivered_during_outage\": {\"dv\": %llu, "
        "\"static\": %llu}\n",
        static_cast<unsigned long long>(r.dv_delivered_during_outage),
        static_cast<unsigned long long>(r.static_delivered_during_outage));
    std::fprintf(f, "    }%s\n", i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  std::string out = "BENCH_routing.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  std::printf("E-routing: DV reconvergence vs size (§1, §5.2)\n");
  std::printf("  scripted fault: bb0 (R0-R1, the HA->FA0 circuit), 8s\n");

  const std::vector<int> sizes =
      small ? std::vector<int>{16} : std::vector<int>{16, 64, 144, 256};
  const double steady = small ? 6.0 : 12.0;

  std::vector<RoutingResult> results;
  for (int n : sizes) {
    RoutingResult r = run_point(n, steady);
    results.push_back(r);
    std::printf(
        "\n  N=%-4d | %.2f updates/router/s | %llu route changes | "
        "delivered during outage dv=%llu static=%llu\n",
        r.routers, r.updates_per_router_s,
        static_cast<unsigned long long>(r.dv_route_changes),
        static_cast<unsigned long long>(r.dv_delivered_during_outage),
        static_cast<unsigned long long>(r.static_delivered_during_outage));
    std::printf("    reconverge:");
    for (double c : r.convergence_s) std::printf(" %.3fs", c);
    std::printf("\n");
    if (r.convergence_s.empty()) {
      std::fprintf(stderr, "  ERROR: no convergence epochs recorded\n");
      return 1;
    }
    if (r.dv_delivered_during_outage <= r.static_delivered_during_outage) {
      std::fprintf(stderr,
                   "  ERROR: DV failed to out-deliver static during the "
                   "outage\n");
      return 1;
    }
  }

  std::printf(
      "\n  §1/§5.2: reconvergence is a local triggered-update ripple —\n"
      "  it does not grow with N — and the outage dividend (packets the\n"
      "  DV world delivers that the static twin drops) is the mobility\n"
      "  protocol's routing substrate working as the paper assumes.\n");

  write_json(out, small, results);
  return 0;
}
