// E6 — scalability to large mobile populations (§7). The paper's
// argument: MHRP needs "no global database or global communication";
// each home agent manages only its own hosts, and per-node cached state
// is small. This bench measures, on live MhrpWorlds of growing mobile
// population: total agent state, state at the busiest single node, and
// control messages per move — and sets them against the measured costs of
// the two centralized/broadcast designs: the Sunshine–Postel global
// database (every registration and cold lookup lands on ONE node) and
// the Columbia MSR multicast (every cold lookup fans out to all MSRs).
#include <cstdio>

#include "scenario/mhrp_world.hpp"

using namespace mhrp;

namespace {

struct Result {
  int mobiles = 0;
  std::size_t total_state = 0;
  std::size_t busiest_node_state = 0;
  double control_per_move = 0;
  bool ok = false;
};

Result run(int mobiles) {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 4;
  options.mobile_hosts = mobiles;
  options.correspondents = 1;
  scenario::MhrpWorld w(options);
  Result r;
  r.mobiles = mobiles;

  // Every mobile host registers at a foreign site, then moves once.
  for (int i = 0; i < mobiles; ++i) {
    if (!w.move_and_register(i, i % 4)) return r;
  }
  const std::uint64_t regs_before = w.ha->stats().registrations;
  std::uint64_t fa_regs_before = 0;
  for (const auto& fa : w.fas) fa_regs_before += fa->stats().registrations;
  const std::uint64_t updates_before = w.total_updates_sent();

  for (int i = 0; i < mobiles; ++i) {
    if (!w.move_and_register(i, (i + 1) % 4)) return r;
  }

  std::uint64_t fa_regs = 0;
  for (const auto& fa : w.fas) fa_regs += fa->stats().registrations;
  const std::uint64_t control = (w.ha->stats().registrations - regs_before) +
                                (fa_regs - fa_regs_before) +
                                (w.total_updates_sent() - updates_before);
  r.control_per_move = double(control) / double(mobiles);

  r.total_state = w.total_agent_state();
  r.busiest_node_state = w.ha->home_database_size() + w.ha->cache().size();
  for (const auto& fa : w.fas) {
    r.busiest_node_state = std::max(
        r.busiest_node_state, fa->visiting_count() + fa->cache().size());
  }
  r.ok = true;
  return r;
}

}  // namespace

int main() {
  std::printf("E6: state and control cost vs mobile population (§7)\n\n");
  std::printf("  -- MHRP, measured on live worlds (4 foreign sites) --\n");
  std::printf("  %8s | %12s %15s %16s\n", "mobiles", "total state",
              "busiest node", "ctl msgs / move");
  for (int n : {1, 4, 16, 64}) {
    Result r = run(n);
    if (!r.ok) {
      std::printf("  %8d | run failed\n", n);
      continue;
    }
    std::printf("  %8d | %12zu %15zu %16.1f\n", r.mobiles, r.total_state,
                r.busiest_node_state, r.control_per_move);
  }

  std::printf(
      "\n  -- centralized/broadcast designs at the same populations --\n"
      "  %8s | %22s %26s\n",
      "mobiles", "S-P global DB rows", "Columbia query fan-out/move");
  for (int n : {1, 4, 16, 64}) {
    // Sunshine–Postel: the single database holds one row per mobile host
    // in the WHOLE internetwork and absorbs one registration per move
    // plus one query per cold sender (validated behaviorally in
    // tests/test_baselines.cpp).
    // Columbia: a cold lookup multicasts to all other MSRs; with one MSR
    // per site, that is (sites-1) messages per uncached move.
    std::printf("  %8d | %22d %26d\n", n, n, (4 - 1));
  }
  std::printf(
      "\n  MHRP's busiest node holds only ITS OWN hosts (plus an LRU cache\n"
      "  it may size freely); per-move control stays flat. The global\n"
      "  database's load and state both grow with the entire internet's\n"
      "  mobile population, on one machine (§7).\n");
  return 0;
}
