// E10 — infrastructure micro-benchmarks: the per-packet primitive costs
// underlying every experiment. MHRP header encode/decode, §4.1/§4.4
// transforms, location-cache operations, the Internet checksum, IP
// packet (de)serialization, and the event queue.
#include <benchmark/benchmark.h>

#include "core/encapsulation.hpp"
#include "core/location_cache.hpp"
#include "legacy_event_queue.hpp"
#include "net/packet.hpp"
#include "net/udp.hpp"
#include "sim/event_queue.hpp"
#include "util/checksum.hpp"

using namespace mhrp;

namespace {

net::Packet sample_packet() {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = net::IpAddress::parse("10.1.0.10");
  h.dst = net::IpAddress::parse("10.2.0.77");
  std::vector<std::uint8_t> payload(64, 0x42);
  return net::Packet(h, net::encode_udp({1, 2}, payload));
}

void BM_ChecksumIpHeader(benchmark::State& state) {
  std::vector<std::uint8_t> header(20, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::internet_checksum(header));
  }
}
BENCHMARK(BM_ChecksumIpHeader);

void BM_ChecksumMtuPayload(benchmark::State& state) {
  std::vector<std::uint8_t> payload(1500, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::internet_checksum(payload));
  }
}
BENCHMARK(BM_ChecksumMtuPayload);

void BM_MhrpHeaderEncode(benchmark::State& state) {
  core::MhrpHeader h;
  h.orig_protocol = 17;
  h.mobile_host = net::IpAddress::parse("10.2.0.77");
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    h.previous_sources.emplace_back(std::uint32_t(0x0A000001 + i));
  }
  for (auto _ : state) {
    util::ByteWriter w(h.encoded_size());
    h.encode(w);
    benchmark::DoNotOptimize(w.take());
  }
}
BENCHMARK(BM_MhrpHeaderEncode)->Arg(0)->Arg(2)->Arg(8);

void BM_MhrpHeaderDecode(benchmark::State& state) {
  core::MhrpHeader h;
  h.orig_protocol = 17;
  h.mobile_host = net::IpAddress::parse("10.2.0.77");
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    h.previous_sources.emplace_back(std::uint32_t(0x0A000001 + i));
  }
  util::ByteWriter w;
  h.encode(w);
  auto bytes = w.take();
  for (auto _ : state) {
    util::ByteReader r(bytes);
    benchmark::DoNotOptimize(core::MhrpHeader::decode(r));
  }
}
BENCHMARK(BM_MhrpHeaderDecode)->Arg(0)->Arg(2)->Arg(8);

void BM_EncapsulateDecapsulate(benchmark::State& state) {
  const net::Packet original = sample_packet();
  const net::IpAddress fa = net::IpAddress::parse("10.4.0.1");
  const net::IpAddress ha = net::IpAddress::parse("10.2.0.1");
  for (auto _ : state) {
    net::Packet p = original;
    core::encapsulate(p, fa, ha);
    benchmark::DoNotOptimize(core::decapsulate(p));
  }
}
BENCHMARK(BM_EncapsulateDecapsulate);

void BM_Retunnel(benchmark::State& state) {
  net::Packet tunneled = sample_packet();
  core::encapsulate(tunneled, net::IpAddress::parse("10.4.0.1"),
                    net::IpAddress::parse("10.2.0.1"));
  for (auto _ : state) {
    net::Packet p = tunneled;
    benchmark::DoNotOptimize(
        core::retunnel(p, net::IpAddress::parse("10.4.0.1"),
                       net::IpAddress::parse("10.5.0.1"), 8));
  }
}
BENCHMARK(BM_Retunnel);

void BM_PacketSerializeRoundTrip(benchmark::State& state) {
  const net::Packet p = sample_packet();
  for (auto _ : state) {
    auto wire = p.serialize();
    benchmark::DoNotOptimize(net::Packet::deserialize(wire));
  }
}
BENCHMARK(BM_PacketSerializeRoundTrip);

void BM_LocationCacheHit(benchmark::State& state) {
  core::LocationCache cache(1024);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    cache.update(net::IpAddress(0x0A000000 + i),
                 net::IpAddress(0x0B000000 + i));
  }
  std::uint32_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(net::IpAddress(0x0A000000 + (cursor++ % 1000))));
  }
}
BENCHMARK(BM_LocationCacheHit);

void BM_LocationCacheUpdateWithEviction(benchmark::State& state) {
  core::LocationCache cache(256);
  std::uint32_t cursor = 0;
  for (auto _ : state) {
    cache.update(net::IpAddress(0x0A000000 + cursor++),
                 net::IpAddress::parse("10.4.0.1"));
  }
  state.counters["evictions"] = double(cache.stats().evictions);
}
BENCHMARK(BM_LocationCacheUpdateWithEviction);

// The slab queue (src/sim) vs the shared_ptr-handle queue it replaced
// (bench/legacy_event_queue.hpp), over the two hot patterns: schedule
// then pop (pure throughput) and schedule then cancel (the timer-churn
// pattern — every retransmit timer that is armed and then disarmed).

template <typename Queue>
void schedule_pop_loop(benchmark::State& state) {
  Queue q;
  sim::Time t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      (void)q.schedule(t + (i * 7919) % 100, [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop());
    }
    t += 100;
  }
}

template <typename Queue>
void schedule_cancel_loop(benchmark::State& state) {
  Queue q;
  sim::Time t = 0;
  for (auto _ : state) {
    // One survivor past every cancelled event, so the single pop below
    // drains the round's tombstones from the heap.
    auto keep = q.schedule(t + 1000, [] {});
    for (int i = 0; i < 16; ++i) {
      auto h = q.schedule(t + (i * 7919) % 100, [] {});
      benchmark::DoNotOptimize(q.cancel(h));
    }
    (void)keep;
    benchmark::DoNotOptimize(q.pop());
    t += 10000;
  }
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  schedule_pop_loop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_LegacyEventQueueScheduleAndPop(benchmark::State& state) {
  schedule_pop_loop<bench::legacy::EventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleAndPop);

void BM_EventQueueScheduleAndCancel(benchmark::State& state) {
  schedule_cancel_loop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleAndCancel);

void BM_LegacyEventQueueScheduleAndCancel(benchmark::State& state) {
  schedule_cancel_loop<bench::legacy::EventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleAndCancel);

}  // namespace
