// Per-record cost of the telemetry layer (src/telemetry), in the style of
// bench_audit_overhead: the numbers DESIGN.md §11 quotes and the budget
// the zero-cost-when-disabled claim rests on. Reports:
//  * counter / histogram record cost (the O(1) instruments the registry
//    is built from) and histogram quantile extraction (O(buckets), never
//    O(samples)),
//  * the disabled instrumentation site — a null-pointer check, the only
//    thing the hot path pays when tracing is off,
//  * trace instants/spans when enabled, and the sampled-out fast path,
//  * the simulator event loop with no profiler (shipped default), with
//    the profiler installed, and the raw queue drain floor.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "sim/event_category.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metric_registry.hpp"
#include "telemetry/trace.hpp"

namespace {

using mhrp::telemetry::TraceCategory;
using mhrp::telemetry::TraceCollector;

void BM_CounterIncrement(benchmark::State& state) {
  mhrp::telemetry::Counter counter;
  for (auto _ : state) {
    counter.increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  mhrp::telemetry::Histogram hist;
  // Rotate across five decades so every iteration exercises the frexp
  // bucketing, not one hot bucket.
  const double values[8] = {3e-4, 7e-3, 0.042, 0.9, 4.0, 17.0, 230.0, 8e3};
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(values[i++ & 7]);
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  mhrp::telemetry::Histogram hist;
  for (int i = 1; i <= 100000; ++i) hist.record(double(i) * 1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_TraceSiteDisabled(benchmark::State& state) {
  // What every instrumentation site costs with tracing off: load the
  // collector pointer, find it null, skip. DoNotOptimize keeps the
  // compiler from deleting the check outright.
  TraceCollector* trace = nullptr;
  std::uint64_t taken = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace);
    if (trace != nullptr) {
      trace->instant(TraceCategory::kPacket, "hop", 0);
      ++taken;
    }
  }
  benchmark::DoNotOptimize(taken);
}
BENCHMARK(BM_TraceSiteDisabled);

/// Drain-and-refill wrapper: clears the collector's buffer outside the
/// timed region whenever it nears the cap, so every timed record is a
/// real push_back, never the cheaper over-cap drop.
template <typename Record>
void run_trace_bench(benchmark::State& state, TraceCollector& trace,
                     Record record) {
  constexpr std::size_t kDrainAt = (1u << 20) - 64;
  for (auto _ : state) {
    record(trace);
    if (trace.recorded() >= kDrainAt) {
      state.PauseTiming();
      trace.clear();
      state.ResumeTiming();
    }
  }
}

void BM_TraceInstantEnabled(benchmark::State& state) {
  TraceCollector trace;
  std::int64_t ts = 0;
  run_trace_bench(state, trace, [&ts](TraceCollector& t) {
    t.instant(TraceCategory::kPacket, "hop", ts++, "node", 7.0);
  });
}
BENCHMARK(BM_TraceInstantEnabled);

void BM_TraceInstantSampledOut(benchmark::State& state) {
  TraceCollector trace(TraceCollector::Options{.sample_every = 1024});
  std::int64_t ts = 0;
  run_trace_bench(state, trace, [&ts](TraceCollector& t) {
    t.instant(TraceCategory::kPacket, "hop", ts++, "node", 7.0);
  });
}
BENCHMARK(BM_TraceInstantSampledOut);

void BM_TraceSpanEnabled(benchmark::State& state) {
  TraceCollector trace;
  std::int64_t ts = 0;
  run_trace_bench(state, trace, [&ts](TraceCollector& t) {
    t.span(TraceCategory::kProtocol, "registration", ts, ts + 40, "mh", 3.0);
    ts += 50;
  });
}
BENCHMARK(BM_TraceSpanEnabled);

/// One batch of no-op events through the full simulator executive.
/// `profiled` toggles an installed EventLoopProfiler.
void run_event_loop_bench(benchmark::State& state, bool profiled) {
  mhrp::sim::Simulator sim;
  mhrp::sim::EventLoopProfiler profiler;
  if (profiled) sim.set_profiler(&profiler);
  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      (void)sim.after(i, [] {}, mhrp::sim::EventCategory::kLinkDelivery);
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_EventLoop_NoProfiler(benchmark::State& state) {
  run_event_loop_bench(state, /*profiled=*/false);
}
BENCHMARK(BM_EventLoop_NoProfiler);

void BM_EventLoop_Profiled(benchmark::State& state) {
  run_event_loop_bench(state, /*profiled=*/true);
}
BENCHMARK(BM_EventLoop_Profiled);

void BM_EventLoop_RawQueueDrain(benchmark::State& state) {
  // The floor: schedule + pop straight off the queue, no executive at
  // all. The gap between this and BM_EventLoop_NoProfiler is the whole
  // run loop (clock advance, deadline peek) — the disabled loop contains
  // no telemetry instructions; profiler dispatch is per-run, not
  // per-event.
  mhrp::sim::EventQueue q;
  mhrp::sim::Time t = 0;
  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      (void)q.schedule(t + i, [] {}, mhrp::sim::EventCategory::kLinkDelivery);
    }
    while (!q.empty()) {
      auto fired = q.pop();
      fired.action();
    }
    t += kBatch;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventLoop_RawQueueDrain);

}  // namespace
