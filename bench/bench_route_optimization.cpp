// E2 — route optimization (§2, §6.2). The first packet to a roaming
// mobile host triangles through its home network; once the sender caches
// the location it tunnels directly to the foreign agent. This bench
// builds a linear internetwork
//
//   corr — R0 — R1 — ... — R(n-1) — [cell: FA + M]
//                 |
//              home LAN (HA) at position h
//
// with the home network hanging off a spur of swept depth d from the
// middle of the chain:
//
//                         S1 — ... — Sd — [home LAN: HA]
//                         |
//   corr — R0 — ... — R(mid) — ... — R(n-1) — [cell: FA + M]
//
// Reported: measured hop counts of the cold (via home agent) and warm
// (sender tunnels direct) paths and the resulting path stretch. Protocols
// without route optimization (Columbia off-campus, Matsushita forwarding
// mode) ride the "cold" row forever — the paper's §7 point.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "scenario/metrics.hpp"
#include "scenario/topology.hpp"

using namespace mhrp;

namespace {

struct Measurement {
  double cold_hops = 0;
  double warm_hops = 0;
  bool ok = false;
};

Measurement run(int chain, int spur_depth) {
  scenario::Topology topo;
  std::vector<node::Router*> routers;
  for (int i = 0; i < chain; ++i) {
    routers.push_back(&topo.add_router("R" + std::to_string(i)));
  }
  // Point-to-point chain links 192.168.<i>.0/30.
  for (int i = 0; i + 1 < chain; ++i) {
    auto& link = topo.add_link("p2p" + std::to_string(i), sim::millis(1));
    topo.connect(*routers[std::size_t(i)], link,
                 net::IpAddress::of(192, 168, std::uint8_t(i), 1), 30);
    topo.connect(*routers[std::size_t(i + 1)], link,
                 net::IpAddress::of(192, 168, std::uint8_t(i), 2), 30);
  }
  auto& corr_lan = topo.add_link("corrLan", sim::millis(1));
  topo.connect(*routers[0], corr_lan, net::IpAddress::of(10, 200, 0, 1), 24);
  auto& corr = topo.add_host("corr");
  topo.connect(corr, corr_lan, net::IpAddress::of(10, 200, 0, 10), 24);

  // Spur off the middle of the chain; the home network sits at its end.
  node::Router* spur_tail = routers[std::size_t(chain / 2)];
  for (int s = 0; s < spur_depth; ++s) {
    auto& spur_router = topo.add_router("S" + std::to_string(s));
    auto& link = topo.add_link("spur" + std::to_string(s), sim::millis(1));
    topo.connect(*spur_tail, link,
                 net::IpAddress::of(192, 168, std::uint8_t(100 + s), 1), 30);
    topo.connect(spur_router, link,
                 net::IpAddress::of(192, 168, std::uint8_t(100 + s), 2), 30);
    spur_tail = &spur_router;
  }
  auto& home_lan = topo.add_link("homeLan", sim::millis(1));
  net::Interface& ha_iface = topo.connect(
      *spur_tail, home_lan, net::IpAddress::of(10, 1, 0, 1), 24);

  auto& cell = topo.add_link("cell", sim::millis(1));
  net::Interface& fa_iface = topo.connect(
      *routers[std::size_t(chain - 1)], cell,
      net::IpAddress::of(10, 9, 0, 1), 24);

  core::MobileHostConfig m_config;
  m_config.home_agent = net::IpAddress::of(10, 1, 0, 1);
  core::MobileHost& m = topo.add_mobile_host(
      "M", net::IpAddress::of(10, 1, 0, 100), 24, m_config);

  topo.install_static_routes();

  core::AgentConfig ha_config;
  ha_config.home_agent = true;
  ha_config.advertisement_period = sim::millis(500);
  core::MhrpAgent ha(*spur_tail, ha_config);
  ha.serve_on(ha_iface);
  ha.provision_mobile_host(m.home_address());
  ha.start_advertising();

  core::AgentConfig fa_config;
  fa_config.foreign_agent = true;
  fa_config.advertisement_period = sim::millis(500);
  core::MhrpAgent fa(*routers[std::size_t(chain - 1)], fa_config);
  fa.serve_on(fa_iface);
  fa.start_advertising();

  core::AgentConfig ca_config;
  ca_config.cache_agent = true;
  core::MhrpAgent sender_agent(corr, ca_config);

  bool registered = false;
  m.on_registered = [&registered] { registered = true; };
  m.attach_to(cell);
  for (int spin = 0; spin < 300 && !registered; ++spin) {
    topo.sim().run_for(sim::millis(100));
  }
  if (!registered) return {};

  scenario::FlowRecorder recorder(m);
  recorder.set_filter([&](const net::Packet& p) {
    return p.header().dst == m.home_address() && p.hop_count() > 1;
  });

  Measurement result;
  bool ok = false;
  corr.ping(m.home_address(),
            [&](const node::Host::PingResult& r) { ok = r.replied; });
  topo.sim().run_for(sim::seconds(10));
  if (!ok) return {};
  result.cold_hops = recorder.total().hops.max;

  ok = false;
  corr.ping(m.home_address(),
            [&](const node::Host::PingResult& r) { ok = r.replied; });
  topo.sim().run_for(sim::seconds(10));
  if (!ok) return {};
  result.warm_hops = recorder.total().hops.min;
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  std::printf("E2: triangle-route cost vs cache-agent direct tunneling\n");
  std::printf("  chain of %d routers; correspondent at R0, foreign agent at "
              "the far end;\n  home network on a spur of swept depth off the "
              "middle.\n\n",
              8);
  std::printf("  %10s | %11s %11s | %s\n", "spur depth", "via-HA hops",
              "direct hops", "stretch (triangle/direct)");
  const int chain = 8;
  for (int depth = 0; depth <= 6; depth += 2) {
    Measurement m = run(chain, depth);
    if (!m.ok) {
      std::printf("  %10d | run failed\n", depth);
      continue;
    }
    std::printf("  %10d | %11.0f %11.0f | %.2f\n", depth, m.cold_hops,
                m.warm_hops, m.cold_hops / m.warm_hops);
  }
  std::printf("\n  The direct row is flat; the triangle detour grows as the "
              "home network\n  moves away from the sender–host line. "
              "Columbia (off-campus) and\n  Matsushita (forwarding mode) pay "
              "the via-HA row on every packet (§7).\n");
  return 0;
}
