// E5 — foreign agent state recovery (§5.2). The serving FA crashes and
// forgets its visiting list. Three recovery configurations are compared:
//
//   optimistic   — the FA re-adds the visitor on the home agent's
//                  location update, "believing the home agent";
//   ARP-verified — the FA first elicits an ARP reply from the mobile
//                  host ("a query message onto its local network");
//   broadcast    — after reboot the FA broadcasts a re-register query so
//                  visitors reconnect before any data packet suffers.
//
// Reported per configuration: packets lost before service resumes and
// the time from crash to restored delivery, under a steady 50 ms ping
// stream.
#include <cstdio>

#include "scenario/figure1.hpp"

using namespace mhrp;

namespace {

struct Result {
  int lost = 0;
  double recovery_s = -1;
  std::uint64_t readds = 0;
  std::uint64_t discards = 0;
  bool ok = false;
};

Result run(bool verify_arp, bool broadcast) {
  scenario::Figure1Options options;
  options.fa_verify_recovery_with_arp = verify_arp;
  options.fa_reregister_broadcast_on_reboot = broadcast;
  scenario::Figure1 w(options);
  Result result;
  if (!w.register_at_d()) return result;

  // Warm the sender's cache.
  bool ok = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  if (!ok) return result;

  const sim::Time crash_at = w.topo.sim().now();
  w.fa_r4->reboot();

  // Steady ping stream until delivery resumes.
  for (int attempt = 0; attempt < 100; ++attempt) {
    bool replied = false;
    w.s->ping(w.m_address(),
              [&](const node::Host::PingResult& r) { replied = r.replied; },
              32, sim::millis(900));
    w.topo.sim().run_for(sim::seconds(1));
    if (replied) {
      result.recovery_s = sim::to_seconds(w.topo.sim().now() - crash_at);
      result.ok = true;
      break;
    }
    ++result.lost;
  }
  result.readds = w.fa_r4->stats().recovery_readds;
  result.discards = w.ha->stats().discarded_for_recovery;
  return result;
}

}  // namespace

int main() {
  std::printf("E5: foreign agent reboot recovery (§5.2), 1 ping per second\n\n");
  std::printf("  %-24s | %6s %12s %8s %10s\n", "configuration", "lost",
              "recovery", "re-adds", "HA discards");
  struct Config {
    const char* name;
    bool verify;
    bool broadcast;
  };
  for (const Config& config : {Config{"optimistic re-add", false, false},
                               Config{"ARP-verified re-add", true, false},
                               Config{"re-register broadcast", false, true}}) {
    Result r = run(config.verify, config.broadcast);
    if (!r.ok) {
      std::printf("  %-24s | did not recover\n", config.name);
      continue;
    }
    std::printf("  %-24s | %6d %10.2f s %8llu %10llu\n", config.name, r.lost,
                r.recovery_s, (unsigned long long)r.readds,
                (unsigned long long)r.discards);
  }
  std::printf(
      "\n  Paper: the update-driven repair loses (only) the packets that\n"
      "  arrive before the first one completes the HA round trip; the\n"
      "  broadcast option shortcuts even that by having visitors\n"
      "  re-register before data arrives.\n");
  return 0;
}
