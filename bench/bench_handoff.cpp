// E8 — handoff behavior (§3). A correspondent streams 20 ms CBR to the
// mobile host, which hops between two cells. Packets in flight during the
// move are lost until discovery + registration + cache repair complete.
// Swept: the agent advertisement period (the knob §3 exposes), with and
// without solicitation on attach, and with and without the old FA's
// forwarding pointer (§2).
#include <cstdio>

#include "scenario/mhrp_world.hpp"
#include "scenario/workload.hpp"

using namespace mhrp;

namespace {

struct Result {
  double loss_per_handoff = 0;
  double delivery_pct = 0;
  bool ok = false;
};

Result run(sim::Time adv_period, bool solicit, bool pointers) {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 2;
  options.protocol.advertisement_period = adv_period;
  options.protocol.forwarding_pointers = pointers;
  options.solicit_on_attach = solicit;
  scenario::MhrpWorld w(options);
  Result result;
  if (!w.move_and_register(0, 0)) return result;

  std::uint64_t received = 0;
  w.mobiles[0]->bind_udp(9000, [&](const net::UdpDatagram&,
                                   const net::IpHeader&, net::Interface&) {
    ++received;
  });
  scenario::CbrFlow flow(*w.correspondents[0], w.mobile_address(0), 9000, 64,
                         sim::millis(20));
  flow.start();
  w.topo.sim().run_for(sim::seconds(2));

  constexpr int kHandoffs = 6;
  for (int h = 0; h < kHandoffs; ++h) {
    if (!w.move_and_register(0, (h + 1) % 2)) return result;
    w.topo.sim().run_for(sim::seconds(2));
  }
  flow.stop();
  w.topo.sim().run_for(sim::seconds(2));

  const std::uint64_t sent = flow.sent();
  result.loss_per_handoff = double(sent - received) / kHandoffs;
  result.delivery_pct = 100.0 * double(received) / double(sent);
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  std::printf("E8: handoff loss vs advertisement period (50 pkt/s CBR, "
              "6 handoffs)\n\n");
  std::printf("  %10s %9s %9s | %16s %10s\n", "adv period", "solicit",
              "fwd ptrs", "lost/handoff", "delivered");
  for (sim::Time period : {sim::millis(250), sim::millis(500),
                           sim::seconds(1), sim::seconds(2)}) {
    for (bool solicit : {true, false}) {
      for (bool pointers : {true, false}) {
        Result r = run(period, solicit, pointers);
        if (!r.ok) {
          std::printf("  %8.2fs %9s %9s | run failed\n",
                      sim::to_seconds(period), solicit ? "yes" : "no",
                      pointers ? "on" : "off");
          continue;
        }
        std::printf("  %8.2fs %9s %9s | %16.1f %9.1f%%\n",
                    sim::to_seconds(period), solicit ? "yes" : "no",
                    pointers ? "on" : "off", r.loss_per_handoff,
                    r.delivery_pct);
      }
    }
  }
  std::printf(
      "\n  With solicitation, discovery is immediate and loss is just the\n"
      "  in-flight packet at detach. Waiting for the periodic advertisement\n"
      "  couples the loss window directly to the advertisement period —\n"
      "  the paper's reason for offering solicitation (§3).\n");
  return 0;
}
