// E9 — the §7 fast-path argument against LSRR-based mobility: "any IP
// packet containing an IP option requires extra processing at each router
// that forwards the packet and cannot use the 'fast path'". Measured two
// ways:
//   * codec level — decoding a datagram with and without an LSRR option
//     (the per-router parse cost the paper describes);
//   * stack level — a router forwarding a datagram end to end through
//     the simulated pipeline, with and without the option.
#include <benchmark/benchmark.h>

#include "net/packet.hpp"
#include "net/udp.hpp"
#include "scenario/topology.hpp"

using namespace mhrp;

namespace {

std::vector<std::uint8_t> wire_packet(bool with_lsrr) {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = net::IpAddress::parse("10.1.0.10");
  h.dst = net::IpAddress::parse("10.2.0.10");
  if (with_lsrr) {
    h.options.push_back(
        net::make_lsrr_option({net::IpAddress::parse("10.3.0.1")}, 0));
  }
  std::vector<std::uint8_t> payload(64, 0x42);
  return net::Packet(h, net::encode_udp({1, 2}, payload)).serialize();
}

void BM_DecodeNoOptions(benchmark::State& state) {
  auto wire = wire_packet(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Packet::deserialize(wire));
  }
}
BENCHMARK(BM_DecodeNoOptions);

void BM_DecodeWithLsrr(benchmark::State& state) {
  auto wire = wire_packet(true);
  for (auto _ : state) {
    auto p = net::Packet::deserialize(wire);
    // The router must examine the option to know whether it affects
    // forwarding — parse it, as a real slow path does.
    benchmark::DoNotOptimize(net::parse_lsrr_option(
        *p.header().find_option(net::IpOptionKind::kLooseSourceRoute)));
  }
}
BENCHMARK(BM_DecodeWithLsrr);

// Full forwarding pipeline through a simulated router.
struct ForwardWorld {
  scenario::Topology topo;
  node::Router* router;
  node::Host* a;
  node::Host* b;

  ForwardWorld() {
    auto& lan1 = topo.add_link("lan1", sim::micros(1));
    auto& lan2 = topo.add_link("lan2", sim::micros(1));
    router = &topo.add_router("R");
    a = &topo.add_host("A");
    b = &topo.add_host("B");
    topo.connect(*router, lan1, net::IpAddress::parse("10.1.0.1"), 24);
    topo.connect(*router, lan2, net::IpAddress::parse("10.2.0.1"), 24);
    topo.connect(*a, lan1, net::IpAddress::parse("10.1.0.10"), 24);
    topo.connect(*b, lan2, net::IpAddress::parse("10.2.0.10"), 24);
    topo.install_static_routes();
    b->bind_udp(2, [](const net::UdpDatagram&, const net::IpHeader&,
                      net::Interface&) {});
    // Warm ARP caches so the measurement is pure forwarding.
    std::vector<std::uint8_t> probe{1};
    a->send_udp(net::IpAddress::parse("10.2.0.10"), 1, 2, probe);
    topo.sim().run();
  }

  void send(bool with_lsrr) {
    net::IpHeader h;
    h.protocol = net::to_u8(net::IpProto::kUdp);
    h.dst = net::IpAddress::parse("10.2.0.10");
    if (with_lsrr) {
      // A waypoint already passed: pointer beyond the route, so the
      // packet forwards normally but carries the option bytes.
      h.options.push_back(net::make_lsrr_option(
          {net::IpAddress::parse("10.1.0.1")}, 1));
    }
    std::vector<std::uint8_t> payload(64, 0x42);
    net::Packet p(h, net::encode_udp({1, 2}, payload));
    a->send_ip(std::move(p));
    topo.sim().run();
  }
};

void BM_ForwardNoOptions(benchmark::State& state) {
  ForwardWorld world;
  for (auto _ : state) {
    world.send(false);
  }
  state.counters["slow_path_hits"] = double(
      world.router->counters().options_slow_path);
}
BENCHMARK(BM_ForwardNoOptions);

void BM_ForwardWithLsrr(benchmark::State& state) {
  ForwardWorld world;
  for (auto _ : state) {
    world.send(true);
  }
  state.counters["slow_path_hits"] = double(
      world.router->counters().options_slow_path);
}
BENCHMARK(BM_ForwardWithLsrr);

}  // namespace
