// E3 — §5.3 loop contraction. A forwarding loop of L cache agents with
// previous-source lists capped at K entries "will contract during each
// cycle by a factor of the maximum list size"; a loop small enough to be
// recorded is detected within one pass, and a packet that dies of TTL
// hands the contraction to the next packet.
//
// For each (L, K) this bench injects probes until the loop dissolves and
// reports probes used and total re-tunnels, next to the prediction that
// detection needs on the order of ceil(log_K(L)) contraction passes.
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "core/agent.hpp"
#include "core/encapsulation.hpp"
#include "net/udp.hpp"
#include "scenario/topology.hpp"

using namespace mhrp;

namespace {

struct Outcome {
  int probes = 0;
  std::uint64_t retunnels = 0;
  std::uint64_t loops_detected = 0;
  std::uint64_t overflows = 0;
  bool dissolved = false;
};

Outcome run(int loop_size, std::size_t max_list) {
  scenario::Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  const net::IpAddress mh = net::IpAddress::parse("10.99.0.77");
  std::vector<node::Router*> routers;
  std::vector<std::unique_ptr<core::MhrpAgent>> agents;
  for (int i = 0; i < loop_size; ++i) {
    auto& r = topo.add_router("C" + std::to_string(i));
    topo.connect(r, lan, net::IpAddress::of(10, 9, std::uint8_t(i / 250),
                                            std::uint8_t(i % 250 + 1)),
                 16);
    routers.push_back(&r);
    core::AgentConfig config;
    config.cache_agent = true;
    config.max_list_length = max_list;
    config.update_min_interval = sim::millis(1);
    agents.push_back(std::make_unique<core::MhrpAgent>(r, config));
  }
  auto& injector = topo.add_host("inj");
  topo.connect(injector, lan, net::IpAddress::parse("10.9.250.250"), 16);
  topo.install_static_routes();
  for (int i = 0; i < loop_size; ++i) {
    agents[std::size_t(i)]->cache().update(
        mh, routers[std::size_t((i + 1) % loop_size)]->primary_address());
  }

  auto has_cycle = [&] {
    for (std::size_t start = 0; start < agents.size(); ++start) {
      std::set<std::uint32_t> path{
          routers[start]->primary_address().raw()};
      auto cursor = agents[start]->cache().peek(mh);
      while (cursor.has_value()) {
        if (!path.insert(cursor->raw()).second) return true;
        // Find the agent owning this address.
        core::MhrpAgent* next = nullptr;
        for (std::size_t i = 0; i < routers.size(); ++i) {
          if (routers[i]->primary_address() == *cursor) next = agents[i].get();
        }
        if (next == nullptr) break;
        cursor = next->cache().peek(mh);
      }
    }
    return false;
  };

  Outcome out;
  while (out.probes < 200 && has_cycle()) {
    ++out.probes;
    core::MhrpHeader h;
    h.orig_protocol = net::to_u8(net::IpProto::kUdp);
    h.mobile_host = mh;
    util::ByteWriter w;
    h.encode(w);
    std::vector<std::uint8_t> data(12, 0xEE);
    auto udp = net::encode_udp({1, 2}, data);
    w.bytes(udp);
    net::IpHeader iph;
    iph.protocol = net::to_u8(net::IpProto::kMhrp);
    iph.src = injector.primary_address();
    iph.dst = routers[0]->primary_address();
    iph.ttl = 255;
    injector.send_ip(net::Packet(iph, w.take()));
    topo.sim().run_for(sim::seconds(30));
  }
  out.dissolved = !has_cycle();
  for (const auto& a : agents) {
    out.retunnels += a->stats().retunnels;
    out.loops_detected += a->stats().loops_detected;
    out.overflows += a->stats().list_overflows;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("E3: loop contraction under truncated previous-source lists "
              "(§5.3)\n");
  std::printf("  %4s %4s | %7s %9s %9s %9s | %s\n", "L", "K", "probes",
              "retunnel", "overflow", "detected", "~log_K(L) passes");
  const int loop_sizes[] = {4, 8, 16, 32, 64};
  const std::size_t caps[] = {2, 4, 8, 0 /*unbounded*/};
  for (int L : loop_sizes) {
    for (std::size_t K : caps) {
      Outcome o = run(L, K);
      const double predicted =
          K == 0 ? 1.0
                 : std::max(1.0, std::ceil(std::log(double(L)) /
                                           std::log(double(K))));
      std::printf("  %4d %4s | %7d %9llu %9llu %9llu | %.0f%s\n", L,
                  K == 0 ? "inf" : std::to_string(K).c_str(), o.probes,
                  (unsigned long long)o.retunnels,
                  (unsigned long long)o.overflows,
                  (unsigned long long)o.loops_detected, predicted,
                  o.dissolved ? "" : "  [NOT DISSOLVED]");
    }
  }
  std::printf("\n  Paper: an unbounded (or large-enough) list detects the "
              "loop within one\n  pass; with a cap of K the loop shrinks "
              "each cycle until it fits, TTL\n  expiry only deferring work "
              "to the next packet.\n");
  return 0;
}
