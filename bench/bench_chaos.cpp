// E-chaos — fault recovery at scale (§5.2, §2). The paper's robustness
// claim is not just that MHRP survives individual failures but that
// recovery stays cheap as the internetwork grows: a mobile host behind a
// crashed foreign agent or a partitioned cell re-registers on its own
// timers, the home agent repairs its binding, and no global state needs
// rebuilding.
//
// This bench drives seeded scenario::ScaleWorld internetworks with the
// deterministic fault plane enabled, sweeping (fault rate x size), and
// reports for each point:
//
//   * recovery time percentiles — seconds from an FA crash or cell
//     partition to the affected mobile's next completed registration,
//   * packets lost per outage (expected CBR minus delivered while the
//     outage was open) and binding staleness at the home agent,
//   * fault-plane counters (outages injected/healed, crashes/reboots,
//     impairment bursts) so a run is auditable against its schedule.
//
// A no-fault baseline point runs first with the same topology and
// workload as the BENCH_scale.json sweep's matching size; its events/sec
// bounds the cost of merely linking the fault plane (must stay within
// 2% — the plane is pure scheduled events, there is no per-packet hook
// on the no-fault path).
//
// Usage: bench_chaos [--small] [--out PATH]
//   --small    one tiny sweep point (CI smoke)
//   --out PATH where to write the JSON report (default BENCH_chaos.json)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/metrics.hpp"
#include "scenario/scale_world.hpp"

using namespace mhrp;

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ChaosPoint {
  int routers;
  int mobiles;
  double fault_rate;  // cell outages/sec; other rates derived from it
  bool dv = false;    // dynamic DV routing plane instead of static routes
};

struct ChaosResult {
  ChaosPoint point{};
  int foreign_agents = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  double events_per_s = 0;
  std::uint64_t events = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t registrations = 0;
  faults::FaultPlaneStats faults{};
  scenario::PercentileSummary recovery{};
  scenario::PercentileSummary outage_loss{};
  scenario::PercentileSummary staleness{};
  scenario::PercentileSummary handoff{};
  scenario::PercentileSummary convergence{};  // DV points only
};

ChaosResult run_point(ChaosPoint point, double sim_secs) {
  scenario::ScaleWorldOptions opt;
  opt.routers = point.routers;
  opt.mobile_hosts = point.mobiles;
  opt.foreign_agents = std::max(
      2, static_cast<int>(std::lround(std::sqrt(double(point.routers)))));
  opt.correspondents = 4;
  opt.mean_dwell = sim::seconds(3);
  opt.protocol.seed = 1;
  if (point.dv) opt.protocol.routing = routing::dv::Mode::kDv;
  if (point.fault_rate > 0) {
    opt.chaos.enabled = true;
    opt.chaos.fault_seed = 0xc4a05;
    opt.chaos.horizon = sim::from_seconds(sim_secs);
    opt.chaos.cell_outages_per_sec = point.fault_rate;
    opt.chaos.backbone_outages_per_sec = point.fault_rate / 2;
    opt.chaos.fa_crashes_per_sec = point.fault_rate / 2;
    opt.chaos.loss_bursts_per_sec = point.fault_rate;
    opt.chaos.mean_outage = sim::seconds(2);
    opt.chaos.mean_downtime = sim::seconds(2);
  }
  scenario::ScaleWorld world(opt);
  world.start();
  world.run_for(sim::seconds(2));  // warm-up: discovery + first bindings

  const auto start = std::chrono::steady_clock::now();
  const scenario::ScaleRunStats stats =
      world.run_for(sim::from_seconds(sim_secs));
  const double wall = wall_seconds_since(start);

  ChaosResult r;
  r.point = point;
  r.foreign_agents = opt.foreign_agents;
  r.sim_seconds = sim_secs;
  r.wall_seconds = wall;
  r.events = stats.events_executed;
  r.packets_delivered = stats.packets_delivered;
  r.registrations = stats.registrations;
  r.events_per_s = double(stats.events_executed) / wall;
  if (world.fault_plane() != nullptr) {
    r.faults = world.fault_plane()->stats();
  }
  r.recovery = scenario::summarize(world.recovery_times());
  r.outage_loss = scenario::summarize(world.outage_losses());
  r.staleness = scenario::summarize(world.binding_staleness());
  r.handoff = scenario::summarize(world.handoff_latencies());
  r.convergence = scenario::summarize(world.convergence_times());
  return r;
}

void print_summary_row(const char* tag,
                       const scenario::PercentileSummary& s) {
  std::printf("    %-12s | n=%-5llu p50=%-8.3f p90=%-8.3f p99=%-8.3f "
              "max=%.3f\n",
              tag, static_cast<unsigned long long>(s.count), s.p50, s.p90,
              s.p99, s.max);
}

void write_summary(std::FILE* f, const char* key,
                   const scenario::PercentileSummary& s, const char* tail) {
  std::fprintf(f,
               "      \"%s\": {\"count\": %llu, \"p50\": %.4f, "
               "\"p90\": %.4f, \"p99\": %.4f, \"max\": %.4f}%s\n",
               key, static_cast<unsigned long long>(s.count), s.p50, s.p90,
               s.p99, s.max, tail);
}

void write_json(const std::string& path, bool small,
                const std::vector<ChaosResult>& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_chaos\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", small ? "small" : "full");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ChaosResult& r = sweep[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"routers\": %d,\n", r.point.routers);
    std::fprintf(f, "      \"foreign_agents\": %d,\n", r.foreign_agents);
    std::fprintf(f, "      \"mobiles\": %d,\n", r.point.mobiles);
    std::fprintf(f, "      \"fault_rate_per_sec\": %.3f,\n",
                 r.point.fault_rate);
    std::fprintf(f, "      \"routing\": \"%s\",\n",
                 r.point.dv ? "dv" : "static");
    std::fprintf(f, "      \"sim_seconds\": %.1f,\n", r.sim_seconds);
    std::fprintf(f, "      \"wall_seconds\": %.4f,\n", r.wall_seconds);
    std::fprintf(f, "      \"events\": %llu,\n",
                 static_cast<unsigned long long>(r.events));
    std::fprintf(f, "      \"events_per_sec\": %.0f,\n", r.events_per_s);
    std::fprintf(f, "      \"packets_delivered\": %llu,\n",
                 static_cast<unsigned long long>(r.packets_delivered));
    std::fprintf(f, "      \"registrations\": %llu,\n",
                 static_cast<unsigned long long>(r.registrations));
    std::fprintf(
        f,
        "      \"faults\": {\"link_failures\": %llu, "
        "\"link_recoveries\": %llu, \"node_crashes\": %llu, "
        "\"node_reboots\": %llu, \"impairment_bursts\": %llu},\n",
        static_cast<unsigned long long>(r.faults.link_failures),
        static_cast<unsigned long long>(r.faults.link_recoveries),
        static_cast<unsigned long long>(r.faults.node_crashes),
        static_cast<unsigned long long>(r.faults.node_reboots),
        static_cast<unsigned long long>(r.faults.impairment_bursts));
    write_summary(f, "recovery_s", r.recovery, ",");
    write_summary(f, "outage_loss_pkts", r.outage_loss, ",");
    write_summary(f, "binding_staleness_s", r.staleness, ",");
    write_summary(f, "handoff_s", r.handoff, ",");
    write_summary(f, "convergence_s", r.convergence, "");
    std::fprintf(f, "    }%s\n", i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  std::string out = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  std::printf("E-chaos: fault recovery at scale (§5.2, §2)\n");

  std::vector<ChaosPoint> points;
  double sim_secs = 0;
  if (small) {
    points = {{16, 8, 0.0}, {16, 8, 0.2}, {16, 8, 0.2, true}};
    sim_secs = 10;
  } else {
    // A no-fault baseline (events/sec comparable against the matching
    // BENCH_scale.json point), then fault rate x size on static routes,
    // then the same faulted points on the DV plane — the convergence_s
    // series measures time-to-reconverge per link-fault epoch, and the
    // staleness/handoff columns show whether route churn leaks into the
    // mobility protocol's latencies.
    points = {{64, 64, 0.0},        {64, 64, 0.1},
              {64, 64, 0.3},        {144, 128, 0.1},
              {256, 256, 0.1},      {64, 64, 0.1, true},
              {64, 64, 0.3, true},  {144, 128, 0.1, true}};
    sim_secs = 60;
  }

  std::vector<ChaosResult> results;
  for (ChaosPoint p : points) {
    ChaosResult r = run_point(p, sim_secs);
    results.push_back(r);
    std::printf(
        "\n  N=%d M=%d fault_rate=%.2f/s routing=%s | %.0f events/s | "
        "faults %llu/%llu links, %llu/%llu nodes\n",
        r.point.routers, r.point.mobiles, r.point.fault_rate,
        r.point.dv ? "dv" : "static", r.events_per_s,
        static_cast<unsigned long long>(r.faults.link_failures),
        static_cast<unsigned long long>(r.faults.link_recoveries),
        static_cast<unsigned long long>(r.faults.node_crashes),
        static_cast<unsigned long long>(r.faults.node_reboots));
    if (r.point.fault_rate > 0) {
      print_summary_row("recovery s", r.recovery);
      print_summary_row("loss pkts", r.outage_loss);
      print_summary_row("staleness s", r.staleness);
      print_summary_row("handoff s", r.handoff);
      if (r.point.dv) print_summary_row("converge s", r.convergence);
    }
  }

  std::printf(
      "\n  §5.2: recovery is driven by the mobile host's own registration\n"
      "  timers and stays flat as the internetwork grows; outage loss is\n"
      "  bounded by the outage itself, not by any global repair.\n");

  write_json(out, small, results);
  return 0;
}
