// E1 — the paper's §7 overhead comparison (its de-facto table).
//
// Per-packet bytes added by each mobility protocol, measured from
// byte-exact serialized datagrams. The MHRP rows are measured end to end
// on a live world (home-agent-built first packet, sender-built steady
// state, +4 per re-tunnel); the baseline rows serialize one standard
// 64-byte datagram through each protocol's encapsulation.
//
// Paper claims: MHRP 8 (sender-built) / 12 (agent-built); Columbia 24;
// Sony 28; Matsushita 40; IBM 8 in each direction.
#include <cstdio>

#include "baselines/columbia_ipip.hpp"
#include "baselines/matsushita_iptp.hpp"
#include "baselines/sony_vip.hpp"
#include "net/udp.hpp"
#include "scenario/metrics.hpp"
#include "scenario/mhrp_world.hpp"

using namespace mhrp;

namespace {

net::Packet standard_datagram() {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = net::IpAddress::parse("10.200.0.10");
  h.dst = net::IpAddress::parse("10.1.0.100");
  std::vector<std::uint8_t> payload(64, 0x42);
  return net::Packet(h, net::encode_udp({40000, 9000}, payload));
}

void row(const char* variant, double measured, int paper) {
  std::printf("  %-44s %8.0f B %8d B  %s\n", variant, measured, paper,
              measured == paper ? "match" : "MISMATCH");
}

}  // namespace

int main() {
  std::printf("E1: per-packet overhead, measured vs paper (§7)\n");
  std::printf("  %-44s %10s %10s\n", "variant", "measured", "paper");

  // ---- MHRP, end-to-end ----
  {
    scenario::MhrpWorldOptions options;
    options.foreign_sites = 2;
    scenario::MhrpWorld w(options);
    if (!w.move_and_register(0, 0)) return 1;
    w.mobiles[0]->bind_udp(9000, [](const net::UdpDatagram&,
                                    const net::IpHeader&, net::Interface&) {});
    scenario::FlowRecorder recorder(*w.mobiles[0]);
    recorder.set_filter([&](const net::Packet& p) {
      return p.header().dst == w.mobile_address(0) && p.hop_count() > 1 &&
             p.flow_id() == 1000;
    });

    auto send = [&] {
      auto p = standard_datagram();
      p.set_base_payload_size(p.payload().size());
      p.set_flow_id(1000);
      p.header().src = w.correspondents[0]->primary_address();
      w.correspondents[0]->send_ip(std::move(p));
      w.topo.sim().run_for(sim::seconds(5));
    };

    send();  // first: intercepted and tunneled by the home agent
    const double first = recorder.total().overhead_bytes.max;
    send();  // steady: the sender (a cache agent) builds the header
    const double steady = recorder.total().overhead_bytes.min;

    // Move without repairing the sender: the next packet is re-tunneled
    // once by the old foreign agent (+4 B on the tunneled leg).
    if (!w.move_and_register(0, 1)) return 1;
    const double before_move_max = recorder.total().overhead_bytes.max;
    (void)before_move_max;
    send();
    const double retunneled = recorder.total().overhead_bytes.max;

    row("MHRP, home-agent-built header", first, 12);
    row("MHRP, sender-built header (steady state)", steady, 8);
    row("MHRP, +1 re-tunnel by old foreign agent", retunneled, 12);
  }

  // ---- Baselines, byte-exact encapsulation of the same datagram ----
  const net::Packet inner = standard_datagram();
  {
    auto outer = baselines::ipip_encapsulate(
        inner, net::IpAddress::parse("10.1.0.1"),
        net::IpAddress::parse("10.2.0.1"));
    row("Columbia IPIP (outer IP + shim)",
        double(outer.wire_size() - inner.wire_size()), 24);
  }
  {
    baselines::VipHeader vh;
    vh.vip_src = inner.header().src;
    vh.vip_dst = inner.header().dst;
    net::Packet p(inner.header(), vh.encode(inner.payload()));
    row("Sony VIP header (every packet, both ways)",
        double(p.wire_size() - inner.wire_size()), 28);
  }
  {
    auto outer = baselines::iptp_encapsulate(
        inner, net::IpAddress::parse("10.1.0.1"),
        net::IpAddress::parse("10.3.0.200"), inner.header().dst, false);
    row("Matsushita IPTP (outer IP + IPTP header)",
        double(outer.wire_size() - inner.wire_size()), 40);
  }
  {
    net::IpHeader with_lsrr = inner.header();
    with_lsrr.options.push_back(
        net::make_lsrr_option({net::IpAddress::parse("10.2.0.1")}, 0));
    net::Packet p(with_lsrr, inner.payload());
    row("IBM LSRR option (to mobile host)",
        double(p.wire_size() - inner.wire_size()), 8);
    row("IBM LSRR option (from mobile host)",
        double(p.wire_size() - inner.wire_size()), 8);
  }

  std::printf("\n  MHRP re-tunnel growth law (8 + 4 per list entry):\n");
  {
    auto p = standard_datagram();
    const std::size_t base = p.wire_size();
    core::encapsulate(p, net::IpAddress::parse("10.2.0.1"),
                      p.header().src);  // sender-built
    std::printf("    entries=0  overhead=%zu B\n", p.wire_size() - base);
    for (int k = 1; k <= 6; ++k) {
      (void)core::retunnel(p, net::IpAddress::of(10, 0, 0, std::uint8_t(k)),
                           net::IpAddress::of(10, 0, 0, std::uint8_t(k + 1)),
                           0);
      std::printf("    entries=%d  overhead=%zu B\n", k,
                  p.wire_size() - base);
    }
  }
  return 0;
}
