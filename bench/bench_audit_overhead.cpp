// Per-packet cost of the audit layer, so future PRs can keep audit-build
// overhead bounded (<10% of the forwarding path is the budget ISSUE 1
// sets). Reports:
//  * the serialize-only baseline (the floor any wire-level check pays),
//  * audit_packet() on plain UDP and on MHRP tunnels of growing list
//    length,
//  * a two-host link simulation with and without the auditor attached —
//    the end-to-end number that matters for audit-build test runs.
#include <benchmark/benchmark.h>

#include "analysis/packet_auditor.hpp"
#include "core/encapsulation.hpp"
#include "scenario/topology.hpp"

namespace {

using mhrp::analysis::PacketAuditor;

mhrp::net::Packet make_udp_packet(std::size_t payload_size) {
  mhrp::net::IpHeader h;
  h.protocol = mhrp::net::to_u8(mhrp::net::IpProto::kUdp);
  h.src = mhrp::net::IpAddress::of(10, 1, 0, 10);
  h.dst = mhrp::net::IpAddress::of(10, 2, 0, 77);
  return mhrp::net::Packet(h, std::vector<std::uint8_t>(payload_size, 0xAB));
}

mhrp::net::Packet make_mhrp_packet(std::size_t list_length) {
  mhrp::net::Packet p = make_udp_packet(64);
  mhrp::core::encapsulate(p, mhrp::net::IpAddress::of(10, 4, 0, 1),
                          mhrp::net::IpAddress::of(10, 2, 0, 1));
  mhrp::core::MhrpHeader h = mhrp::core::read_mhrp_header(p);
  while (h.previous_sources.size() < list_length) {
    h.previous_sources.push_back(mhrp::net::IpAddress::of(
        10, 3, 0, static_cast<std::uint8_t>(h.previous_sources.size())));
  }
  mhrp::core::write_mhrp_header(p, h);
  return p;
}

void BM_SerializeBaseline(benchmark::State& state) {
  const mhrp::net::Packet p = make_udp_packet(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.serialize());
  }
}
BENCHMARK(BM_SerializeBaseline);

void BM_AuditPlainUdp(benchmark::State& state) {
  PacketAuditor auditor;
  const mhrp::net::Packet p = make_udp_packet(64);
  for (auto _ : state) {
    auditor.audit_packet(p);
  }
  if (!auditor.report().clean()) state.SkipWithError("audit flagged clean traffic");
}
BENCHMARK(BM_AuditPlainUdp);

void BM_AuditMhrpTunnel(benchmark::State& state) {
  PacketAuditor auditor;
  const mhrp::net::Packet p =
      make_mhrp_packet(static_cast<std::size_t>(state.range(0)));
  // Suppress the first-observation size check: long lists are legitimate
  // mid-path states, and this bench times steady-state re-auditing.
  auditor.registry().set_enabled(
      mhrp::analysis::InvariantId::kMhrpHeaderSize, false);
  for (auto _ : state) {
    auditor.audit_packet(p);
  }
  if (!auditor.report().clean()) state.SkipWithError("audit flagged clean traffic");
}
BENCHMARK(BM_AuditMhrpTunnel)->Arg(1)->Arg(4)->Arg(8);

/// One UDP datagram host→host across a single link, full stack (ARP is
/// warmed up first). `audited` toggles the attached PacketAuditor.
void run_link_bench(benchmark::State& state, bool audited) {
  mhrp::scenario::Topology topo;
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  auto& lan = topo.add_link("lan", mhrp::sim::micros(1));
  topo.connect(a, lan, mhrp::net::IpAddress::of(10, 1, 0, 1), 24);
  topo.connect(b, lan, mhrp::net::IpAddress::of(10, 1, 0, 2), 24);
  topo.install_static_routes();

  PacketAuditor auditor;
  if (audited) auditor.attach_link(lan);

  const std::vector<std::uint8_t> payload(64, 0xCD);
  const mhrp::net::IpAddress dst = mhrp::net::IpAddress::of(10, 1, 0, 2);
  a.send_udp(dst, 1000, 2000, payload);  // warm the ARP cache
  topo.sim().run();

  for (auto _ : state) {
    a.send_udp(dst, 1000, 2000, payload);
    topo.sim().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (audited && !auditor.report().clean()) {
    state.SkipWithError("audit flagged clean traffic");
  }
}

void BM_LinkDelivery_NoAudit(benchmark::State& state) {
  run_link_bench(state, /*audited=*/false);
}
BENCHMARK(BM_LinkDelivery_NoAudit);

void BM_LinkDelivery_Audited(benchmark::State& state) {
  run_link_bench(state, /*audited=*/true);
}
BENCHMARK(BM_LinkDelivery_Audited);

}  // namespace
