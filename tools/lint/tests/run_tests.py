#!/usr/bin/env python3
"""End-to-end tests for mhrp-lint, run as a ctest target.

Each fixture under fixtures/ marks its expected findings with
`// EXPECT-LINT: <rule>` on the offending line. The test runs the linter
over the corpus and requires the finding set to match the expectation set
exactly — so every rule is exercised with at least one firing, one
suppressed case, and (where applicable) one allowlisted/exempted case.

Also covers the baseline ratchet: a baseline matching a finding passes,
a stale baseline entry fails, and --write-baseline round-trips.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "..", "mhrp_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
EXPECT_RE = re.compile(r"//\s*EXPECT-LINT:\s*([a-z\-]+)")

FAILURES: list[str] = []


def check(cond: bool, what: str) -> None:
    print(("PASS " if cond else "FAIL ") + what)
    if not cond:
        FAILURES.append(what)


def run_lint(*args: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def expected_findings() -> set[tuple[str, str, int]]:
    expected: set[tuple[str, str, int]] = set()
    for name in sorted(os.listdir(FIXTURES)):
        path = os.path.join(FIXTURES, name)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                m = EXPECT_RE.search(line)
                if m:
                    expected.add((m.group(1), name, lineno))
    return expected


FINDING_RE = re.compile(r"^.*?([\w.]+\.(?:cpp|hpp|h)):(\d+): \[([a-z\-]+)\]")


def actual_findings(output: str) -> set[tuple[str, str, int]]:
    actual: set[tuple[str, str, int]] = set()
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if m:
            actual.add((m.group(3), os.path.basename(m.group(1)),
                        int(m.group(2))))
    return actual


def test_fixture_corpus() -> None:
    code, out = run_lint(
        FIXTURES,
        "--wallclock-allow",
        "tools/lint/tests/fixtures/wallclock_allowed.cpp")
    expected = expected_findings()
    actual = actual_findings(out)
    check(code == 1, "fixture corpus exits 1 (findings present)")
    missing = expected - actual
    unexpected = actual - expected
    for rule, fname, line in sorted(missing):
        print(f"  missing expected finding: {fname}:{line} [{rule}]")
    for rule, fname, line in sorted(unexpected):
        print(f"  unexpected finding: {fname}:{line} [{rule}]")
    check(not missing, "every EXPECT-LINT annotation fires")
    check(not unexpected, "no findings beyond the EXPECT-LINT annotations")
    rules_covered = {rule for rule, _, _ in actual}
    check(rules_covered == {"wallclock", "unseeded-rng", "unordered-iter",
                            "pointer-keyed", "hotpath-alloc", "shard-serial",
                            "nodiscard"},
          "all seven rules have at least one firing fixture")


def test_suppressions_listed() -> None:
    _code, out = run_lint(
        FIXTURES, "--list-suppressed",
        "--wallclock-allow",
        "tools/lint/tests/fixtures/wallclock_allowed.cpp")
    check("[suppressed]" in out, "suppressed findings listed on demand")


def test_baseline_ratchet() -> None:
    fixture = os.path.join(FIXTURES, "nodiscard.hpp")
    with tempfile.TemporaryDirectory() as tmp:
        baseline = os.path.join(tmp, "baseline.json")

        # A baseline covering one real finding: run passes only when the
        # remaining findings are also covered -> cover all three.
        entries = [
            {"rule": "nodiscard", "file": "tools/lint/tests/fixtures/"
             "nodiscard.hpp", "symbol": sym,
             "justification": "fixture baseline entry"}
            for sym in ("schedule_bad", "log_bad", "append_bad")
        ]
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump({"schema": "mhrp-lint-baseline.v1",
                       "entries": entries}, f)
        code, out = run_lint(fixture, "--baseline", baseline)
        check(code == 0, "fully baselined file passes")
        check(out.count("[baselined]") == 3, "baselined findings are marked")

        # Add a stale entry: the ratchet must fail the run.
        entries.append({"rule": "nodiscard",
                        "file": "tools/lint/tests/fixtures/nodiscard.hpp",
                        "symbol": "no_such_function",
                        "justification": "stale"})
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump({"schema": "mhrp-lint-baseline.v1",
                       "entries": entries}, f)
        code, out = run_lint(fixture, "--baseline", baseline)
        check(code == 1, "stale baseline entry fails the run")
        check("STALE" in out, "stale entry is reported")

        # A justification is mandatory.
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump({"schema": "mhrp-lint-baseline.v1", "entries": [
                {"rule": "nodiscard", "file": "x", "symbol": "y",
                 "justification": "  "}]}, f)
        code, _out = run_lint(fixture, "--baseline", baseline)
        check(code == 2, "baseline entry without justification is rejected")

        # --write-baseline captures current findings; rerunning against
        # it passes and a subsequent fix would turn the entry stale.
        code, _out = run_lint(fixture, "--write-baseline", baseline)
        check(code == 0, "--write-baseline succeeds")
        with open(baseline, encoding="utf-8") as f:
            written = json.load(f)["entries"]
        check({e["symbol"] for e in written} ==
              {"schedule_bad", "log_bad", "append_bad"},
              "--write-baseline captures exactly the unsuppressed findings")
        code, _out = run_lint(fixture, "--baseline", baseline)
        check(code == 0, "written baseline round-trips clean")


def test_determinism_rules_scoped() -> None:
    # The exempted function in wallclock.cpp must not fire even though it
    # reads system_clock; delete the marker and it must fire.
    path = os.path.join(FIXTURES, "wallclock.cpp")
    with open(path, encoding="utf-8") as f:
        text = f.read()
    assert "MHRP_DETERMINISM_EXEMPT" in text
    with tempfile.TemporaryDirectory() as tmp:
        mutated = os.path.join(tmp, "wallclock_mutated.cpp")
        with open(mutated, "w", encoding="utf-8") as f:
            f.write(text.replace(
                'MHRP_DETERMINISM_EXEMPT("bench harness timing; output is '
                'not replayed");', ""))
        code, out = run_lint(mutated)
        check("exempt_function" in out,
              "removing MHRP_DETERMINISM_EXEMPT re-arms the rule")
        check(code == 1, "mutated fixture exits 1")


def main() -> int:
    test_fixture_corpus()
    test_suppressions_listed()
    test_baseline_ratchet()
    test_determinism_rules_scoped()
    print(f"\n{len(FAILURES)} failure(s)")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
