// Fixture: unseeded-rng rule. Ambient randomness fires; scenario-seeded
// engines and suppressed declarations do not.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_rand() {
  return rand();  // EXPECT-LINT: unseeded-rng
}

unsigned bad_random_device() {
  std::random_device rd;  // EXPECT-LINT: unseeded-rng
  return rd();
}

std::uint64_t bad_default_engine() {
  std::mt19937_64 engine;  // EXPECT-LINT: unseeded-rng
  return engine();
}

std::uint64_t good_seeded_engine(std::uint64_t seed) {
  std::mt19937_64 engine(seed);  // explicit seed: clean
  return engine();
}

std::uint64_t suppressed_engine() {
  // mhrp-lint: allow(unseeded-rng) fixture demonstrating suppression
  std::mt19937_64 engine;
  return engine();
}

}  // namespace fixture
