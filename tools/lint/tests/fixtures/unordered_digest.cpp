// Fixture: unordered-iter rule. Iterating an unordered container inside
// an observable-output function (digest/to_string/report/...) fires; the
// same loop in a plain function, or a suppressed collect-then-sort, does
// not count against the run.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

class Table {
 public:
  std::string digest() const {
    std::ostringstream out;
    for (const auto& [k, v] : rows_) {  // EXPECT-LINT: unordered-iter
      out << k << '=' << v << '\n';
    }
    return out.str();
  }

  std::string digest_sorted() const {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sorted;
    sorted.reserve(rows_.size());
    // mhrp-lint: allow(unordered-iter) collected then sorted below
    for (const auto& [k, v] : rows_) sorted.emplace_back(k, v);
    std::sort(sorted.begin(), sorted.end());
    std::ostringstream out;
    for (const auto& [k, v] : sorted) out << k << '=' << v << '\n';
    return out.str();
  }

  std::uint64_t sum() const {  // not observable-output: clean
    std::uint64_t total = 0;
    for (const auto& [k, v] : rows_) total += v;
    return total;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> rows_;
};

}  // namespace fixture
