// Fixture: shard-serial rule. Functions annotated
// MHRP_REQUIRES(<shard>.serial) run inside one shard's serial domain and
// may touch only that shard's queue. Touching another object's queue or
// indexing the global shard table fires; the same accesses in unannotated
// functions (or against the annotated shard itself) are clean.
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

struct MiniQueue {
  void push(std::uint64_t v) { items.push_back(v); }
  std::vector<std::uint64_t> items;
};

struct MiniShard {
  util::ExecutiveSerial serial;
  MiniQueue queue;
  std::uint64_t now = 0;
};

class Exec {
 public:
  void run_window(MiniShard& shard) MHRP_REQUIRES(shard.serial) {
    shard.queue.push(shard.now);  // own queue: clean
  }

  void leak_to_peer(MiniShard& shard, MiniShard& other)
      MHRP_REQUIRES(shard.serial) {
    other.queue.push(shard.now);       // EXPECT-LINT: shard-serial
    shards_[0].queue.push(shard.now);  // EXPECT-LINT: shard-serial
  }

  void drain_legacy(MiniShard& shard) MHRP_REQUIRES(shard.serial) {
    // mhrp-lint: allow(shard-serial) quiesced-only path; workers parked
    shards_[1].queue.push(shard.now);
  }

  void coordinator_rebalance() {  // unannotated: free to touch any shard
    shards_[0].queue.push(0);
    shards_[1].queue.push(0);
  }

 private:
  std::vector<MiniShard> shards_;
};

}  // namespace fixture
