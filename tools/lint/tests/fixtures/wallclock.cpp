// Fixture: wallclock rule. One firing per forbidden source, one inline
// suppression, one MHRP_DETERMINISM_EXEMPT'd function.
#include <chrono>
#include <ctime>

#include "util/annotations.hpp"

namespace fixture {

double bad_steady_read() {
  auto t0 = std::chrono::steady_clock::now();  // EXPECT-LINT: wallclock
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

long bad_time_call() {
  return time(nullptr);  // EXPECT-LINT: wallclock
}

long bad_clock_gettime() {
  timespec ts{};
  clock_gettime(0, &ts);  // EXPECT-LINT: wallclock
  return ts.tv_sec;
}

double suppressed_read() {
  // mhrp-lint: allow(wallclock) bench-only wall timing, never digested
  auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

double exempt_function() {
  MHRP_DETERMINISM_EXEMPT("bench harness timing; output is not replayed");
  auto t0 = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

}  // namespace fixture
