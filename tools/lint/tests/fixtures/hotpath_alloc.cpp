// Fixture: hotpath-alloc rule. Allocation inside MHRP_HOT_PATH functions
// fires; identical code in unmarked functions is clean; the amortized
// slab-growth idiom carries an inline suppression.
#include <cstdint>
#include <memory>
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

struct Item {
  std::uint64_t v = 0;
};

class Queue {
 public:
  MHRP_HOT_PATH void push_hot(Item item) {
    items_.push_back(item);       // EXPECT-LINT: hotpath-alloc
    auto* leak = new Item(item);  // EXPECT-LINT: hotpath-alloc
    (void)leak;
    auto shared = std::make_shared<Item>(item);  // EXPECT-LINT: hotpath-alloc
    (void)shared;
  }

  MHRP_HOT_PATH void push_slab(Item item) {
    // mhrp-lint: allow(hotpath-alloc) amortized slab growth (DESIGN.md §8)
    items_.push_back(item);
  }

  void push_cold(Item item) {  // unmarked: allocation is fine here
    items_.push_back(item);
    items_.reserve(items_.size() * 2);
  }

 private:
  std::vector<Item> items_;
};

}  // namespace fixture
