// Fixture: nodiscard rule. Status/handle-returning declarations without
// [[nodiscard]] fire; annotated and suppressed ones are clean.
#pragma once

#include <cstdint>

namespace fixture {

class EventHandle {
 public:
  EventHandle() = default;  // constructors never fire the rule
};

using Lsn = std::uint64_t;

struct Ticket {
  Lsn lsn = 0;
};

class Api {
 public:
  EventHandle schedule_bad();  // EXPECT-LINT: nodiscard
  [[nodiscard]] EventHandle schedule_good();
  Ticket log_bad();  // EXPECT-LINT: nodiscard
  [[nodiscard]] Ticket log_good();
  Lsn append_bad();  // EXPECT-LINT: nodiscard
  [[nodiscard]] Lsn append_good();
  // mhrp-lint: allow(nodiscard) fixture demonstrating suppression
  EventHandle schedule_suppressed();
};

}  // namespace fixture
