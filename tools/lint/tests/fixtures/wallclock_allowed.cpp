// Fixture: wallclock allowlist. This file is passed via --wallclock-allow
// (the profiler's real-world configuration), so nothing here fires.
#include <chrono>

namespace fixture {

double allowed_profiler_read() {
  auto t0 = std::chrono::steady_clock::now();  // allowlisted file: clean
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

}  // namespace fixture
