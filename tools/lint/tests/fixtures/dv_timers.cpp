// Fixture: the determinism rules a DV routing process is most tempted
// to break. Timer jitter must come from the scenario-seeded stream and
// simulated time, never from the host: wall-clock periodic scheduling
// and ambient-entropy jitter seeds both destroy byte-identical replay
// (two runs would draw different triggered-update delays, reordering
// every advertisement downstream). Mirrors src/routing/dv/, which arms
// its timers from util::Rng(seed) and sim::Executive::now() only.
#include <chrono>
#include <random>

namespace fixture {

long long bad_periodic_deadline() {
  // Scheduling the next periodic update off the host clock: two runs
  // of the same world disagree on every advertisement instant.
  auto now = std::chrono::steady_clock::now();  // EXPECT-LINT: wallclock
  return now.time_since_epoch().count() + 10'000'000;
}

std::uint64_t bad_triggered_jitter() {
  // RFC 2453 wants triggered updates delayed by random jitter, but
  // drawing it from ambient entropy unseats the replay contract.
  std::random_device entropy;  // EXPECT-LINT: unseeded-rng
  return 10'000 + entropy() % 90'000;
}

std::uint64_t good_triggered_jitter(std::uint64_t seed, std::uint64_t lo,
                                    std::uint64_t hi) {
  // The per-process seeded engine: deterministic, replayable jitter.
  std::mt19937_64 jitter(seed);
  return lo + jitter() % (hi - lo + 1);
}

long long good_periodic_deadline(long long sim_now_us) {
  // Simulated time in, simulated time out.
  return sim_now_us + 10'000'000;
}

}  // namespace fixture
