// Fixture: pointer-keyed rule. Associative containers keyed by raw
// pointers fire at the declaration; value-keyed containers and suppressed
// lookup-only registries do not count against the run.
#include <map>
#include <set>
#include <unordered_map>

namespace fixture {

struct Node {};

struct Bad {
  std::map<Node*, int> by_node;        // EXPECT-LINT: pointer-keyed
  std::set<const Node*> members;       // EXPECT-LINT: pointer-keyed
  std::unordered_map<Node*, int> idx;  // EXPECT-LINT: pointer-keyed
};

struct Good {
  std::map<int, Node*> by_id;  // pointer VALUES are fine; keys are not
  // mhrp-lint: allow(pointer-keyed) lookup-only registry, never iterated
  std::map<Node*, int> registry;
};

}  // namespace fixture
