#!/usr/bin/env python3
"""mhrp-lint: repo-specific static analysis for the MHRP simulator.

The repo's strongest correctness asset is byte-identical replay: every
seeded run must produce the same digests with telemetry on or off, across
chaos and crash fuzzing. Nothing in the compiler enforces that, so this
tool does. It checks four rule families over src/ (see DESIGN.md §12):

Determinism rules
  wallclock       No wall-clock reads (std::chrono clocks, time(), ...)
                  outside the explicit allowlist (the event-loop profiler
                  is wall-time by design and documented as such).
  unseeded-rng    No ambient randomness: rand()/srand(), std::random_device,
                  default-seeded engines. All randomness flows through
                  util::Rng seeded by the scenario.
  unordered-iter  No iteration over std::unordered_{map,set} inside
                  observable-output functions (digest/serialize/report/
                  metrics/audit/to_string/to_json/...): hash-table
                  iteration order is libstdc++-version- and address-
                  dependent, so it must never feed replay digests.
  pointer-keyed   No associative containers keyed by raw pointers:
                  iteration order (ordered) or hashing (unordered) of
                  pointer values is allocation-order-dependent.

Hot-path rules
  hotpath-alloc   No new/make_shared/make_unique or allocating container
                  growth in functions marked MHRP_HOT_PATH
                  (src/util/annotations.hpp).

Sharding rules
  shard-serial    A function annotated MHRP_REQUIRES(<shard>.serial) runs
                  inside exactly one shard's serial domain (DESIGN.md §13).
                  It may touch only that shard's event queue: accessing
                  another object's `.queue`/`->queue`, or indexing the
                  global `shards_` table, is a cross-shard data race that
                  TSan would only catch when the interleaving happens to
                  bite. Resolve the target shard and route through its
                  mailbox before entering the serial domain.

API rules
  nodiscard       Functions returning status/handle types (EventHandle,
                  store tickets/LSNs, recovery results) must be
                  [[nodiscard]] — silently dropping them loses a
                  cancellation capability or a durability acknowledgment.

Engines
  The default engine is a C++-aware tokenizer: it strips comments and
  string literals, tracks brace depth and function boundaries, and applies
  the rules lexically. When the libclang Python bindings are importable
  and a compile database is given, `--engine clang` runs the same rules
  over the AST instead (more precise scoping; same finding format). The
  tokenizer is the reference engine — CI pins it so results do not depend
  on the host's libclang.

Suppressions
  // mhrp-lint: allow(rule[,rule...]) <reason>     on the offending line,
  or alone on the line directly above it. A reason is required.
  MHRP_DETERMINISM_EXEMPT("reason") anywhere in a function's signature or
  body exempts that whole function from the determinism rules.

Baseline ratchet
  tools/lint/baseline.json holds grandfathered findings keyed by
  (rule, file, symbol) with a written justification. With --baseline,
  findings matching an entry are reported as baselined (not failures);
  a baseline entry matching nothing is STALE and fails the run, so the
  baseline can only shrink. --write-baseline regenerates the file,
  preserving justifications for surviving entries.

Exit codes: 0 clean, 1 findings or stale baseline, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

RULES = (
    "wallclock",
    "unseeded-rng",
    "unordered-iter",
    "pointer-keyed",
    "hotpath-alloc",
    "shard-serial",
    "nodiscard",
)
DETERMINISM_RULES = {"wallclock", "unseeded-rng", "unordered-iter",
                     "pointer-keyed"}

# Files allowed to read wall clocks: the event-loop profiler measures
# wall time by design (DESIGN.md §11 documents that it must never feed a
# replay digest), and telemetry trace timestamps are simulated-time only
# but the bench harness around them is not linted anyway.
DEFAULT_WALLCLOCK_ALLOW = ("src/sim/profiler.hpp",)

# Functions whose output is observable in replay digests, reports, or
# exports. unordered-iter applies inside these (by name match).
OBSERVABLE_FN_RE = re.compile(
    r"(digest|serialize|to_string|to_text|to_json|to_csv|write_json|"
    r"report|metrics|snapshot|audit|check|dump|advertise)",
    re.IGNORECASE,
)

# Return types that must be [[nodiscard]] wherever they appear as a
# function's return type. Matched on the final name component, so
# `sim::EventHandle` and `EventHandle` both hit.
NODISCARD_TYPES = (
    "EventHandle",
    "Ticket",
    "Lsn",
    "RecoveryStats",
    "Intercept",
)

SUPPRESS_RE = re.compile(r"mhrp-lint:\s*allow\(([a-z\-,\s]+)\)\s*(.*)")

# MHRP_REQUIRES(<base>.serial) marks a function as serial to one specific
# shard. The member-capability form MHRP_REQUIRES(serial_) (EventQueue's
# own lock) has no <base> and is out of scope for shard-serial.
SERIAL_REQ_RE = re.compile(
    r"MHRP_REQUIRES\s*\(\s*([A-Za-z_]\w*)\s*\.\s*serial\b")

KEYWORDS_NOT_FUNCTIONS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "static_assert", "decltype", "noexcept", "defined", "assert",
}


@dataclass
class Finding:
    rule: str
    path: str            # repo-relative
    line: int            # 1-based
    symbol: str          # enclosing function or declared symbol
    message: str
    baselined: bool = False
    suppressed: bool = False

    @property
    def key(self) -> str:
        return f"{self.rule}|{self.path}|{self.symbol}"

    def render(self) -> str:
        tag = " [baselined]" if self.baselined else ""
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}"
                f" (in '{self.symbol}'){tag}")


@dataclass
class FunctionSpan:
    name: str
    sig_start: int       # line where the signature begins (0-based)
    body_start: int      # line of the opening brace (0-based)
    body_end: int        # line of the closing brace (0-based, inclusive)
    hot: bool = False
    exempt: bool = False
    serial_of: str | None = None  # base of MHRP_REQUIRES(<base>.serial)


@dataclass
class FileModel:
    path: str                 # repo-relative, forward slashes
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)  # comments/strings blanked
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    functions: list[FunctionSpan] = field(default_factory=list)
    unordered_vars: set[str] = field(default_factory=set)
    includes: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# Source preprocessing
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blank comments, string and char literals, preserving newlines and
    column positions so findings report real locations."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == '"':
            if out and text[i - 1] == "R":  # raw string R"delim( ... )delim"
                m = re.match(r'R"([^(]*)\(', text[i - 1:i + 32])
                if m:
                    closer = ")" + m.group(1) + '"'
                    j = text.find(closer, i)
                    j = n - len(closer) if j == -1 else j
                    seg = text[i:j + len(closer)]
                    out.append('"')
                    out.append("".join(
                        ch if ch == "\n" else " " for ch in seg[1:]))
                    i = j + len(closer)
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append('"' + " " * (j - i - 1) + '"')
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append("'" + " " * (j - i - 1) + "'")
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_suppressions(raw_lines: list[str]) -> dict[int, set[str]]:
    """Map 0-based line -> set of allowed rules. A suppression comment on
    its own line also covers the next line."""
    supp: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        supp.setdefault(idx, set()).update(rules)
        if line.lstrip().startswith("//"):
            supp.setdefault(idx + 1, set()).update(rules)
    return supp


# --------------------------------------------------------------------------
# Function-boundary tracking (tokenizer engine)
# --------------------------------------------------------------------------

FN_NAME_RE = re.compile(r"([A-Za-z_~][A-Za-z0-9_]*)\s*$")


def find_functions(code_lines: list[str], raw_lines: list[str]) -> list[FunctionSpan]:
    """Heuristic function-definition finder: a '{' whose preceding
    non-space character closes a parameter list (possibly through
    const/noexcept/override/attributes/ctor-initializers) opens a function
    body. Good enough for this codebase's clang-format'd style; lambdas
    are attributed to their enclosing function."""
    text = "\n".join(code_lines)
    functions: list[FunctionSpan] = []
    # Statement start offsets: after ; { } or file start.
    stmt_start = 0
    depth = 0
    fn_stack: list[tuple[FunctionSpan, int]] = []  # (span, depth at body)
    i, n = 0, len(text)
    line_of = _LineIndex(text)

    while i < n:
        c = text[i]
        if c in ";}":
            if c == "}":
                depth -= 1
                while fn_stack and depth < fn_stack[-1][1]:
                    span, _ = fn_stack.pop()
                    span.body_end = line_of(i)
                    functions.append(span)
            stmt_start = i + 1
            i += 1
            continue
        if c == "{":
            seg = text[stmt_start:i]
            name = _function_name_of(seg)
            depth += 1
            if name:
                span = FunctionSpan(
                    name=name,
                    sig_start=line_of(stmt_start + _leading_ws(seg)),
                    body_start=line_of(i),
                    body_end=line_of(i),
                )
                sig_raw = "\n".join(
                    raw_lines[span.sig_start:span.body_start + 1])
                span.hot = "MHRP_HOT_PATH" in sig_raw
                span.exempt = "MHRP_DETERMINISM_EXEMPT" in sig_raw
                sm = SERIAL_REQ_RE.search(sig_raw)
                if sm:
                    span.serial_of = sm.group(1)
                fn_stack.append((span, depth))
            stmt_start = i + 1
            i += 1
            continue
        i += 1
    while fn_stack:  # unterminated (truncated file)
        span, _ = fn_stack.pop()
        span.body_end = len(code_lines) - 1
        functions.append(span)
    for span in functions:
        body_raw = "\n".join(raw_lines[span.body_start:span.body_end + 1])
        if "MHRP_DETERMINISM_EXEMPT" in body_raw:
            span.exempt = True
    return functions


def _leading_ws(seg: str) -> int:
    return len(seg) - len(seg.lstrip())


class _LineIndex:
    def __init__(self, text: str):
        self.starts = [0]
        for m in re.finditer("\n", text):
            self.starts.append(m.end())

    def __call__(self, offset: int) -> int:
        import bisect
        return bisect.bisect_right(self.starts, offset) - 1


def _function_name_of(segment: str) -> str | None:
    """Given the statement text before a '{', return the function name if
    the segment looks like a function definition header."""
    seg = segment.strip()
    if not seg or seg.endswith(("=", ",", "(")):
        return None
    # Cut a ctor-initializer list / trailing specifiers back to the ')'.
    close = seg.rfind(")")
    if close == -1:
        return None
    tail = seg[close + 1:]
    # After ')': only const/noexcept/override/final/attributes/-> type/
    # ctor-init allowed for a function definition.
    if not re.fullmatch(
            r"(\s|const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+|"
            r"\[\[[^\]]*\]\]|:\s*[^{}]*)*", tail):
        return None
    # Find the '(' matching that last ')' ... walk backwards.
    bal = 0
    open_idx = -1
    for idx in range(close, -1, -1):
        if seg[idx] == ")":
            bal += 1
        elif seg[idx] == "(":
            bal -= 1
            if bal == 0:
                open_idx = idx
                break
    if open_idx <= 0:
        return None
    m = FN_NAME_RE.search(seg[:open_idx].rstrip())
    if not m:
        return None
    name = m.group(1)
    if name in KEYWORDS_NOT_FUNCTIONS:
        return None
    # `= delete`, `= default` never reach here (no '{'). Reject control
    # flow disguised as calls and struct initialization `Foo foo{...}`.
    before = seg[:open_idx].rstrip()
    if before.endswith(("operator", "&", "*")):
        return name  # conversion/operator edge cases: keep the identifier
    return name


def enclosing_function(functions: list[FunctionSpan], line: int) -> FunctionSpan | None:
    best: FunctionSpan | None = None
    for span in functions:
        if span.sig_start <= line <= span.body_end:
            if best is None or span.body_start >= best.body_start:
                best = span
    return best


# --------------------------------------------------------------------------
# Tokenizer-engine rules
# --------------------------------------------------------------------------

WALLCLOCK_PATTERNS = (
    (re.compile(r"\b(steady_clock|system_clock|high_resolution_clock)\b"),
     "std::chrono clock read"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"), "clock()"),
)

RNG_PATTERNS = (
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:.>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\b(?:std::)?(mt19937(?:_64)?|default_random_engine|"
                r"minstd_rand0?|ranlux\d+(?:_base)?)\s+\w+\s*(;|\{\s*\})"),
     "default-seeded random engine"),
)

UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
POINTER_KEY_RE = re.compile(
    r"std\s*::\s*(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*?):\s*([^)]+)\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(?:c?begin|c?end)\s*\(")
ALLOC_PATTERNS = (
    (re.compile(r"(?<![\w.])new\b(?!\s*\()"), "operator new"),
    (re.compile(r"(?<![\w.])new\s*\("), "operator new"),
    (re.compile(r"\bmake_shared\s*<"), "std::make_shared"),
    (re.compile(r"\bmake_unique\s*<"), "std::make_unique"),
    (re.compile(r"\.\s*(push_back|emplace_back|push_front|emplace_front|"
                r"emplace|insert|try_emplace|resize|reserve|append)\s*\("),
     "allocating container growth"),
)
FOREIGN_QUEUE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*queue\b")
SHARD_TABLE_RE = re.compile(r"\bshards_\s*\[")
NODISCARD_FN_RE = re.compile(
    r"(?:^|[;{}]\s*|\n\s*)((?:virtual\s+|static\s+|constexpr\s+|inline\s+)*"
    r"(?:[\w:]+::)?(" + "|".join(NODISCARD_TYPES) + r"))\s+"
    r"([A-Za-z_]\w*)\s*\(")


def build_file_model(abspath: str, relpath: str) -> FileModel:
    with open(abspath, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    code = strip_comments_and_strings(text)
    code_lines = code.split("\n")
    model = FileModel(path=relpath, raw_lines=raw_lines,
                      code_lines=code_lines,
                      suppressions=collect_suppressions(raw_lines))
    model.functions = find_functions(code_lines, raw_lines)
    # Names declared with an unordered container type in this file
    # (members and locals; used for cross-file member resolution too).
    for m in re.finditer(
            r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*"
            r"([A-Za-z_]\w*)\s*(?:;|=|\{)", code):
        model.unordered_vars.add(m.group(1))
    # Includes come from the RAW text: string literals are blanked in the
    # stripped code, which would erase the include path itself.
    for m in re.finditer(r'#include\s+"([^"]+)"', text):
        model.includes.append(m.group(1))
    return model


class TokenEngine:
    def __init__(self, models: list[FileModel]):
        self.models = models
        # Unordered-declared names resolve against the file itself plus
        # its transitive repo-local #include closure (so a .cpp iterating
        # `cache.map_` sees the header that declared map_ as unordered,
        # while an unrelated file with a same-named std::map member does
        # not collide).
        self.by_include_path: dict[str, FileModel] = {}
        for m in models:
            self.by_include_path[m.path] = m
            # Headers are included as "net/arp.hpp" relative to src/.
            if m.path.startswith("src/"):
                self.by_include_path[m.path[len("src/"):]] = m
        self._closure_cache: dict[str, set[str]] = {}

    def unordered_names_for(self, fm: FileModel) -> set[str]:
        if fm.path in self._closure_cache:
            return self._closure_cache[fm.path]
        names: set[str] = set()
        seen: set[str] = set()
        stack = [fm.path]
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            m = self.by_include_path.get(p)
            if m is None:
                continue
            names |= m.unordered_vars
            stack += m.includes
        self._closure_cache[fm.path] = names
        return names

    def run(self, wallclock_allow: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        for model in self.models:
            findings += self._scan(model, wallclock_allow)
        return findings

    def _scan(self, fm: FileModel, wallclock_allow: set[str]) -> list[Finding]:
        out: list[Finding] = []

        def fn_at(idx: int) -> FunctionSpan | None:
            return enclosing_function(fm.functions, idx)

        def emit(rule: str, idx: int, msg: str, symbol: str | None = None):
            span = fn_at(idx)
            if rule in DETERMINISM_RULES and span is not None and span.exempt:
                return
            sym = symbol or (span.name if span else "<file-scope>")
            f = Finding(rule, fm.path, idx + 1, sym, msg)
            if rule in fm.suppressions.get(idx, set()):
                f.suppressed = True
            out.append(f)

        in_allow = fm.path in wallclock_allow
        unordered_names = self.unordered_names_for(fm)
        for idx, line in enumerate(fm.code_lines):
            if not line.strip():
                continue
            if not in_allow:
                for pat, what in WALLCLOCK_PATTERNS:
                    if pat.search(line):
                        emit("wallclock", idx,
                             f"{what}: wall time must not reach simulation "
                             "or digest state (allowlist: profiler)")
            for pat, what in RNG_PATTERNS:
                if pat.search(line):
                    emit("unseeded-rng", idx,
                         f"{what}: all randomness must flow through a "
                         "scenario-seeded util::Rng")
            if POINTER_KEY_RE.search(line):
                emit("pointer-keyed", idx,
                     "associative container keyed by a raw pointer: "
                     "iteration/hash order depends on allocation addresses")
            span = fn_at(idx)
            if span and OBSERVABLE_FN_RE.search(span.name) \
                    and span.body_start <= idx <= span.body_end:
                # Range-fors often wrap: match against a two-line window,
                # keeping only matches that start on this line.
                window = line
                if idx + 1 < len(fm.code_lines):
                    window = line + " " + fm.code_lines[idx + 1]
                for m in RANGE_FOR_RE.finditer(window):
                    if m.start() >= len(line):
                        continue
                    base = self._base_name(m.group(2))
                    if base in unordered_names:
                        emit("unordered-iter", idx,
                             f"iterates unordered container '{base}' inside "
                             "observable-output function: emit in sorted "
                             "key order instead")
                for m in BEGIN_CALL_RE.finditer(line):
                    if m.group(1) in unordered_names:
                        emit("unordered-iter", idx,
                             f"unordered container '{m.group(1)}' traversed "
                             "inside observable-output function")
            if span and span.hot and span.body_start <= idx <= span.body_end:
                for pat, what in ALLOC_PATTERNS:
                    if pat.search(line):
                        emit("hotpath-alloc", idx,
                             f"{what} in MHRP_HOT_PATH function")
            if span and span.serial_of \
                    and span.body_start <= idx <= span.body_end:
                for m in FOREIGN_QUEUE_RE.finditer(line):
                    if m.group(1) != span.serial_of:
                        emit("shard-serial", idx,
                             f"touches '{m.group(1)}' queue inside "
                             f"MHRP_REQUIRES({span.serial_of}.serial): a "
                             "serial-domain function may touch only its own "
                             "shard's queue (route via the mailbox)")
                if SHARD_TABLE_RE.search(line):
                    emit("shard-serial", idx,
                         "indexes the shard table inside a shard-serial "
                         "function: resolve the target shard before "
                         "entering the serial domain")
        out += self._scan_nodiscard(fm)
        return out

    def _scan_nodiscard(self, fm: FileModel) -> list[Finding]:
        out: list[Finding] = []
        text = "\n".join(fm.code_lines)
        line_of = _LineIndex(text)
        for m in NODISCARD_FN_RE.finditer(text):
            ret, fn_name = m.group(2), m.group(3)
            idx = line_of(m.start(1))
            if fn_name in KEYWORDS_NOT_FUNCTIONS or fn_name == ret:
                continue
            # The attribute must be attached to THIS declaration: look
            # back only to the start of the statement (the previous
            # ';', '{' or '}'), not into neighboring declarations.
            stmt_start = max(text.rfind(d, 0, m.start(1)) for d in ";{}")
            stmt_prefix = text[stmt_start + 1:m.start(1)]
            if "[[nodiscard]]" in stmt_prefix or "MHRP_NODISCARD" in stmt_prefix:
                continue
            # Skip variable declarations with initializers: `Lsn x(...)`
            # is rare; require the paren group to look like parameters
            # (empty, or containing a type-ish token) — heuristic: skip
            # when the open paren is immediately followed by a digit or a
            # lone identifier that is a known local... keep simple: allow
            # suppression for false positives.
            f = Finding("nodiscard", fm.path, idx + 1, fn_name,
                        f"'{fn_name}' returns {ret} without [[nodiscard]]: "
                        "dropping it loses a handle/status")
            if "nodiscard" in fm.suppressions.get(idx, set()):
                f.suppressed = True
            out.append(f)
        return out

    @staticmethod
    def _base_name(expr: str) -> str:
        # Final component of the leading identifier path: `cache.map_` ->
        # map_, `by_length_[i]` -> by_length_, `this->map_` -> map_.
        # Anything past the path (subscripts, call parens) is ignored.
        m = re.match(
            r"\s*[*&(]*\s*((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*[A-Za-z_]\w*)",
            expr)
        if not m:
            return ""
        return re.split(r"\.|->|::", m.group(1))[-1].strip()


# --------------------------------------------------------------------------
# libclang engine (optional; same findings, AST-precise scoping)
# --------------------------------------------------------------------------

class ClangEngine:
    """AST engine over the CMake compile database. Requires the libclang
    Python bindings; construction raises ImportError when unavailable and
    the driver falls back to the tokenizer."""

    def __init__(self, compile_db_dir: str, repo_root: str):
        import clang.cindex as ci  # noqa: F401 (ImportError -> fallback)
        self.ci = ci
        self.repo_root = repo_root
        self.db = ci.CompilationDatabase.fromDirectory(compile_db_dir)
        self.index = ci.Index.create()

    def run(self, files: list[tuple[str, str]],
            wallclock_allow: set[str]) -> list[Finding]:
        ci = self.ci
        findings: list[Finding] = []
        parsed: set[str] = set()
        for abspath, relpath in files:
            if not abspath.endswith(".cpp") or abspath in parsed:
                continue
            cmds = self.db.getCompileCommands(abspath)
            if not cmds:
                continue
            args = [a for a in list(cmds[0].arguments)[1:-1]
                    if a not in ("-c", "-o", abspath)]
            try:
                tu = self.index.parse(abspath, args=args)
            except ci.TranslationUnitLoadError:
                continue
            parsed.add(abspath)
            findings += self._walk(tu.cursor, wallclock_allow)
        return findings

    def _rel(self, location) -> str | None:
        if not location.file:
            return None
        p = os.path.relpath(str(location.file), self.repo_root)
        return p.replace(os.sep, "/") if not p.startswith("..") else None

    def _walk(self, cursor, wallclock_allow: set[str]) -> list[Finding]:
        ci = self.ci
        out: list[Finding] = []

        def visit(node, fn_name: str, hot: bool):
            rel = self._rel(node.location)
            if node.kind in (ci.CursorKind.FUNCTION_DECL,
                             ci.CursorKind.CXX_METHOD,
                             ci.CursorKind.CONSTRUCTOR):
                fn_name = node.spelling
                hot = any("hot" in (t.spelling or "")
                          for t in node.get_tokens()
                          if t.kind == ci.TokenKind.IDENTIFIER) and \
                    "MHRP_HOT_PATH" in _token_text(node)
            if rel is not None and rel.startswith("src/"):
                text = _token_text(node) if node.kind in (
                    ci.CursorKind.CALL_EXPR, ci.CursorKind.DECL_REF_EXPR,
                    ci.CursorKind.CXX_NEW_EXPR,
                    ci.CursorKind.CXX_FOR_RANGE_STMT) else ""
                if node.kind == ci.CursorKind.CXX_NEW_EXPR and hot:
                    out.append(Finding("hotpath-alloc", rel,
                                       node.location.line, fn_name,
                                       "operator new in MHRP_HOT_PATH "
                                       "function"))
                if text and rel not in wallclock_allow:
                    for pat, what in WALLCLOCK_PATTERNS:
                        if pat.search(text):
                            out.append(Finding("wallclock", rel,
                                               node.location.line, fn_name,
                                               f"{what} (AST)"))
                            break
            for child in node.get_children():
                visit(child, fn_name, hot)

        def _token_text(node) -> str:
            try:
                return " ".join(t.spelling for t in node.get_tokens())
            except Exception:  # noqa: BLE001 — tokens can fail on odd TUs
                return ""

        visit(cursor, "<file-scope>", False)
        return out


# --------------------------------------------------------------------------
# Baseline ratchet
# --------------------------------------------------------------------------

def load_baseline(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    entries = data["entries"] if isinstance(data, dict) else data
    for e in entries:
        for k in ("rule", "file", "symbol", "justification"):
            if k not in e:
                raise ValueError(f"baseline entry missing '{k}': {e}")
        if not e["justification"].strip():
            raise ValueError(f"baseline entry lacks a justification: {e}")
    return entries


def apply_baseline(findings: list[Finding],
                   entries: list[dict]) -> tuple[list[Finding], list[dict]]:
    """Mark findings covered by the baseline; return (findings, stale)."""
    index = {f"{e['rule']}|{e['file']}|{e['symbol']}": e for e in entries}
    used: set[str] = set()
    for f in findings:
        if f.suppressed:
            continue
        if f.key in index:
            f.baselined = True
            used.add(f.key)
    stale = [e for k, e in index.items() if k not in used]
    return findings, stale


def write_baseline(path: str, findings: list[Finding],
                   old_entries: list[dict]) -> None:
    old = {f"{e['rule']}|{e['file']}|{e['symbol']}": e for e in old_entries}
    entries, seen = [], set()
    for f in findings:
        if f.suppressed or f.key in seen:
            continue
        seen.add(f.key)
        entries.append({
            "rule": f.rule,
            "file": f.path,
            "symbol": f.symbol,
            "justification": old.get(f.key, {}).get(
                "justification", "TODO: justify or fix"),
        })
    entries.sort(key=lambda e: (e["rule"], e["file"], e["symbol"]))
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"schema": "mhrp-lint-baseline.v1", "entries": entries},
                  f, indent=2)
        f.write("\n")


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

CXX_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")


def gather_files(paths: list[str], compile_db: str | None,
                 repo_root: str) -> list[tuple[str, str]]:
    files: list[str] = []
    if compile_db:
        with open(compile_db, encoding="utf-8") as f:
            for entry in json.load(f):
                p = os.path.normpath(
                    os.path.join(entry["directory"], entry["file"]))
                if os.path.commonpath(
                        [repo_root, p]) == repo_root and "/src/" in p:
                    files.append(p)
    for path in paths:
        if os.path.isdir(path):
            for base, _dirs, names in os.walk(path):
                files += [os.path.join(base, n) for n in sorted(names)
                          if n.endswith(CXX_EXTS)]
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise FileNotFoundError(path)
    uniq: list[tuple[str, str]] = []
    seen: set[str] = set()
    for p in files:
        ab = os.path.abspath(p)
        if ab in seen:
            continue
        seen.add(ab)
        rel = os.path.relpath(ab, repo_root).replace(os.sep, "/")
        uniq.append((ab, rel))
    uniq.sort(key=lambda t: t[1])
    return uniq


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="mhrp-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories to lint "
                    "(default: <repo>/src)")
    ap.add_argument("--compile-db", help="compile_commands.json; adds its "
                    "src/ TUs to the file list and enables --engine clang")
    ap.add_argument("--engine", choices=("auto", "tokens", "clang"),
                    default="auto",
                    help="auto prefers libclang when importable and a "
                    "compile DB is given, else the tokenizer (default)")
    ap.add_argument("--baseline", help="baseline.json ratchet: matching "
                    "findings pass, stale entries fail")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write current findings as the new baseline")
    ap.add_argument("--rule", action="append", choices=RULES,
                    help="restrict to these rules (repeatable)")
    ap.add_argument("--wallclock-allow", action="append", default=[],
                    metavar="RELPATH",
                    help="extra repo-relative files allowed to read wall "
                    "clocks (default allowlist: %s)" %
                    ", ".join(DEFAULT_WALLCLOCK_ALLOW))
    ap.add_argument("--list-suppressed", action="store_true",
                    help="also print inline-suppressed findings")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    paths = args.paths or [os.path.join(repo_root, "src")]
    try:
        files = gather_files(paths, args.compile_db, repo_root)
    except FileNotFoundError as e:
        print(f"mhrp-lint: no such path: {e}", file=sys.stderr)
        return 2
    if not files:
        print("mhrp-lint: no input files", file=sys.stderr)
        return 2

    wallclock_allow = set(DEFAULT_WALLCLOCK_ALLOW) | set(args.wallclock_allow)

    models = [build_file_model(ab, rel) for ab, rel in files]
    engine_used = "tokens"
    findings = TokenEngine(models).run(wallclock_allow)
    if args.engine in ("auto", "clang") and args.compile_db:
        try:
            clang_engine = ClangEngine(
                os.path.dirname(os.path.abspath(args.compile_db)), repo_root)
            ast_findings = clang_engine.run(files, wallclock_allow)
            known = {f.key for f in findings}
            findings += [f for f in ast_findings if f.key not in known]
            engine_used = "tokens+clang"
        except ImportError:
            if args.engine == "clang":
                print("mhrp-lint: --engine clang requested but the libclang "
                      "python bindings are not importable", file=sys.stderr)
                return 2
    elif args.engine == "clang":
        print("mhrp-lint: --engine clang requires --compile-db",
              file=sys.stderr)
        return 2

    if args.rule:
        findings = [f for f in findings if f.rule in set(args.rule)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    baseline_entries: list[dict] = []
    stale: list[dict] = []
    if args.baseline:
        try:
            baseline_entries = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as e:
            print(f"mhrp-lint: bad baseline: {e}", file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, baseline_entries)

    if args.write_baseline:
        write_baseline(args.write_baseline,
                       [f for f in findings if not f.suppressed],
                       baseline_entries)
        print(f"mhrp-lint: wrote baseline to {args.write_baseline}")
        return 0

    active = [f for f in findings if not f.suppressed and not f.baselined]
    suppressed = [f for f in findings if f.suppressed]
    baselined = [f for f in findings if f.baselined]

    if not args.quiet:
        for f in active:
            print(f.render())
        for f in baselined:
            print(f.render())
        if args.list_suppressed:
            for f in suppressed:
                print(f"{f.render()} [suppressed]")
        for e in stale:
            print(f"STALE baseline entry (fixed? remove it): "
                  f"[{e['rule']}] {e['file']} '{e['symbol']}'")
        print(f"mhrp-lint: {len(files)} files, engine={engine_used}: "
              f"{len(active)} finding(s), {len(baselined)} baselined, "
              f"{len(suppressed)} suppressed, {len(stale)} stale baseline "
              f"entr{'y' if len(stale) == 1 else 'ies'}")
    return 1 if active or stale else 0


if __name__ == "__main__":
    sys.exit(main())
