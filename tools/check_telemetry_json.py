#!/usr/bin/env python3
"""Strict validator for the telemetry exports CI uploads.

Usage: check_telemetry_json.py METRICS_JSON TRACE_JSON

Fails (exit 1) if either file is not strict JSON (any NaN/Infinity
literal is rejected outright), if schema keys are missing, or if the
trace is not loadable Chrome-tracing JSON (chrome://tracing, Perfetto's
legacy importer): a traceEvents list of named events with numeric
timestamps, complete spans carrying non-negative durations, and the
per-category thread_name metadata the track layout relies on.
"""
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_strict(path):
    def reject(literal):
        fail(f"{path}: non-finite literal {literal!r} in JSON")

    with open(path, "r", encoding="utf-8") as f:
        try:
            return json.load(f, parse_constant=reject)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")


def check_metrics(path):
    doc = load_strict(path)
    for key in ("schema", "params", "now_us", "events_executed", "metrics"):
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    if doc["schema"] != "mhrp.scaleworld.metrics.v1":
        fail(f"{path}: unexpected schema {doc['schema']!r}")
    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        fail(f"{path}: 'metrics' must be a non-empty object")
    for name, entry in metrics.items():
        if "kind" not in entry:
            fail(f"{path}: metric {name!r} has no 'kind'")
        if entry["kind"] == "histogram":
            for field in ("count", "sum", "min", "max", "mean", "p50",
                          "p90", "p99"):
                if field not in entry:
                    fail(f"{path}: histogram {name!r} missing {field!r}")
        elif "value" not in entry:
            fail(f"{path}: metric {name!r} has no 'value'")
    for expected in ("ha.registrations", "mobiles.moves",
                     "handoff.latency_s"):
        if expected not in metrics:
            fail(f"{path}: expected instrument {expected!r} not exported")
    print(f"ok: {path} ({len(metrics)} instruments)")


def check_trace(path):
    doc = load_strict(path)
    if "displayTimeUnit" not in doc:
        fail(f"{path}: missing key 'displayTimeUnit'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty list")
    phases = set()
    thread_names = 0
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {i} missing {key!r}")
        ph = e["ph"]
        phases.add(ph)
        if ph == "M":
            thread_names += 1
            continue
        if ph not in ("X", "i"):
            fail(f"{path}: event {i} has unexpected phase {ph!r}")
        if not isinstance(e.get("ts"), (int, float)):
            fail(f"{path}: event {i} has no numeric 'ts'")
        if ph == "X" and e.get("dur", -1) < 0:
            fail(f"{path}: span {i} ({e['name']!r}) has negative duration")
    if thread_names == 0:
        fail(f"{path}: no thread_name metadata (category tracks missing)")
    if "X" not in phases:
        fail(f"{path}: no complete spans recorded")
    print(f"ok: {path} ({len(events)} events, phases {sorted(phases)})")


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    check_metrics(sys.argv[1])
    check_trace(sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
