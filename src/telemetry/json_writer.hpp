// Minimal streaming JSON writer for telemetry exports (metric snapshots,
// Chrome-tracing files). Deliberately strict: every number written goes
// through check_finite(), and a NaN or infinity throws instead of leaking
// "inf"/"nan" tokens into the output — which is how the old string-built
// digests produced invalid JSON from empty Distributions. Doubles are
// rendered with %.17g (round-trippable and deterministic for identical
// bit patterns), integers as integers, so identically-seeded runs export
// byte-identical documents.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mhrp::telemetry {

/// Thrown when a non-finite value reaches the JSON layer. JSON has no
/// representation for inf/NaN; silently emitting them would produce a
/// document strict parsers reject.
class NonFiniteJsonError : public std::invalid_argument {
 public:
  explicit NonFiniteJsonError(const std::string& what)
      : std::invalid_argument(what) {}
};

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit `"name":` inside an object; the next value call completes the
  /// member.
  void key(std::string_view name);

  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void null();

  /// Render a double exactly as value(double) would (shared with the CSV
  /// exporter so both formats agree). Throws NonFiniteJsonError on
  /// non-finite input.
  [[nodiscard]] static std::string format_number(double v);

 private:
  void separate();  // comma between siblings
  void write_escaped(std::string_view s);

  struct Frame {
    bool array = false;
    bool first = true;
    bool key_pending = false;
  };

  std::ostream& out_;
  std::vector<Frame> stack_;
};

}  // namespace mhrp::telemetry
