// TraceCollector: buffers per-packet path records and protocol-phase spans
// and writes them as Chrome-tracing JSON (chrome://tracing, Perfetto's
// legacy JSON importer). Timestamps are simulated microseconds — sim::Time
// is already microseconds, so event `ts` fields are sim times verbatim and
// a trace of a deterministic run is itself deterministic.
//
// Cost model: recording is an enabled check, a sampling decrement, and a
// push_back of a POD event (names and arg keys must be string literals —
// nothing is copied or allocated per event beyond vector growth). When the
// collector is absent, instrumentation sites are a single null-pointer
// check. A hard event cap bounds memory on full-rate ScaleWorld runs;
// events past the cap are counted in dropped() instead of recorded.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mhrp::telemetry {

/// One synthetic "thread" per category in the exported trace, so Perfetto
/// lays out packet, protocol, store, and fault activity on separate tracks.
enum class TraceCategory : std::uint8_t {
  kPacket = 0,
  kProtocol,
  kStore,
  kFault,
  kCount,
};

class TraceCollector {
 public:
  struct Options {
    /// Record every Nth packet-level event (1 = record all). Protocol,
    /// store, and fault events are never sampled out — they are rare and
    /// are what the phase-timing analysis needs.
    std::uint64_t sample_every = 1;
    /// Hard cap on buffered events; further events are dropped (counted).
    std::size_t max_events = 1u << 20;
  };

  TraceCollector() = default;
  explicit TraceCollector(Options options) : options_(options) {
    if (options_.sample_every == 0) options_.sample_every = 1;
  }

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Instant event ("i" phase). `name` and arg keys MUST be string
  /// literals (or otherwise outlive the collector). Packet-category
  /// instants are subject to sampling.
  void instant(TraceCategory cat, const char* name, std::int64_t ts_us) {
    if (!should_record(cat)) return;
    push(Event{name, nullptr, nullptr, 0.0, 0.0, ts_us, -1, cat, 'i'});
  }

  void instant(TraceCategory cat, const char* name, std::int64_t ts_us,
               const char* key0, double arg0) {
    if (!should_record(cat)) return;
    push(Event{name, key0, nullptr, arg0, 0.0, ts_us, -1, cat, 'i'});
  }

  void instant(TraceCategory cat, const char* name, std::int64_t ts_us,
               const char* key0, double arg0, const char* key1, double arg1) {
    if (!should_record(cat)) return;
    push(Event{name, key0, key1, arg0, arg1, ts_us, -1, cat, 'i'});
  }

  /// Complete span ("X" phase) from start_us to end_us. Never sampled.
  void span(TraceCategory cat, const char* name, std::int64_t start_us,
            std::int64_t end_us) {
    if (!enabled_) return;
    push(Event{name, nullptr, nullptr, 0.0, 0.0, start_us,
               end_us - start_us, cat, 'X'});
  }

  void span(TraceCategory cat, const char* name, std::int64_t start_us,
            std::int64_t end_us, const char* key0, double arg0) {
    if (!enabled_) return;
    push(Event{name, key0, nullptr, arg0, 0.0, start_us, end_us - start_us,
               cat, 'X'});
  }

  void span(TraceCategory cat, const char* name, std::int64_t start_us,
            std::int64_t end_us, const char* key0, double arg0,
            const char* key1, double arg1) {
    if (!enabled_) return;
    push(Event{name, key0, key1, arg0, arg1, start_us, end_us - start_us,
               cat, 'X'});
  }

  [[nodiscard]] std::size_t recorded() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t sampled_out() const { return sampled_out_; }

  void clear() {
    events_.clear();
    dropped_ = 0;
    sampled_out_ = 0;
    sample_tick_ = 0;
  }

  /// Write the buffered events as a Chrome-tracing JSON document.
  void write_chrome_json(std::ostream& out) const;
  [[nodiscard]] std::string chrome_json() const;

 private:
  struct Event {
    const char* name;
    const char* key0;  // nullptr = no args
    const char* key1;  // nullptr = single arg
    double arg0;
    double arg1;
    std::int64_t ts_us;
    std::int64_t dur_us;  // <0 for instants
    TraceCategory cat;
    char phase;
  };

  [[nodiscard]] bool should_record(TraceCategory cat) {
    if (!enabled_) return false;
    if (cat == TraceCategory::kPacket && options_.sample_every > 1) {
      if (++sample_tick_ % options_.sample_every != 0) {
        ++sampled_out_;
        return false;
      }
    }
    return true;
  }

  void push(const Event& e) {
    if (events_.size() >= options_.max_events) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  Options options_{};
  bool enabled_ = true;
  std::uint64_t sample_tick_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
};

}  // namespace mhrp::telemetry
