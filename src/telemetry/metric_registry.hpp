// MetricRegistry: a named, sorted catalogue of Counters, Gauges, Histograms
// and read-on-snapshot probes. Components register instruments once at
// wiring time and hold raw pointers — the registry owns the storage
// (std::map gives pointer stability) and never invalidates them.
//
// Probes wrap the stats structs that already exist across the codebase
// (AgentStats, MobileHostStats, HomeStoreStats, FaultPlaneStats, Node
// counters): instead of double-counting on the hot path, a probe reads the
// authoritative field at snapshot time. This is what makes the registry
// safe for deterministic replay — every exported value is derived from
// protocol-observable state that exists whether or not telemetry is
// enabled.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "telemetry/metric.hpp"

namespace mhrp::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram, kProbe };

/// Point-in-time copy of every registered instrument, sorted by name.
/// All exporters (text digest, JSON, CSV) render from the same snapshot so
/// the three formats can never disagree.
struct MetricsSnapshot {
  struct HistogramStats {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::variant<std::uint64_t, double, HistogramStats> value;
  };

  std::vector<Entry> entries;  // sorted by name

  /// Deterministic line-per-metric rendering, suitable for replay digests.
  [[nodiscard]] std::string to_text() const;
  /// Strict JSON object keyed by metric name. Throws NonFiniteJsonError if
  /// any value is non-finite.
  [[nodiscard]] std::string to_json() const;
  /// "name,kind,field,value" rows with a header, one row per scalar.
  [[nodiscard]] std::string to_csv() const;

  /// Write just the metrics object ({"name": {...}, ...}) into an
  /// in-progress document — for exporters that wrap the snapshot in a
  /// larger schema (ScaleWorld::metrics_json).
  void write_json(class JsonWriter& json) const;
};

class MetricRegistry {
 public:
  using Probe = std::function<double()>;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Each getter creates the instrument on first use and returns the same
  /// object for the same name thereafter. Registering a name as two
  /// different kinds is a programming error and throws.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Register (or replace) a probe evaluated at snapshot time.
  void probe(std::string_view name, Probe fn);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Instrument {
    MetricKind kind;
    // Stable-address storage for the instrument itself.
    std::variant<Counter, Gauge, Histogram, Probe> storage;
  };

  std::map<std::string, Instrument, std::less<>> entries_;
};

}  // namespace mhrp::telemetry
