#include "telemetry/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace mhrp::telemetry {

void JsonWriter::separate() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.key_pending) {
    top.key_pending = false;
    return;  // the key already emitted the separator
  }
  if (!top.first) out_ << ',';
  top.first = false;
}

void JsonWriter::begin_object() {
  separate();
  out_ << '{';
  stack_.push_back(Frame{});
}

void JsonWriter::end_object() {
  stack_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ << '[';
  stack_.push_back(Frame{/*array=*/true});
}

void JsonWriter::end_array() {
  stack_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  Frame& top = stack_.back();
  if (!top.first) out_ << ',';
  top.first = false;
  out_ << '"';
  write_escaped(name);
  out_ << "\":";
  top.key_pending = true;
}

std::string JsonWriter::format_number(double v) {
  if (!std::isfinite(v)) {
    throw NonFiniteJsonError("telemetry JSON export rejects non-finite value");
  }
  char buf[40];
  // Integral values (the common case: counters read through probes) are
  // written without an exponent so they parse as JSON integers.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

void JsonWriter::value(double v) {
  const std::string text = format_number(v);  // throws before any output
  separate();
  out_ << text;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ << v;
}

void JsonWriter::value(bool v) {
  separate();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value(std::string_view v) {
  separate();
  out_ << '"';
  write_escaped(v);
  out_ << '"';
}

void JsonWriter::null() {
  separate();
  out_ << "null";
}

void JsonWriter::write_escaped(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\t':
        out_ << "\\t";
        break;
      case '\r':
        out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
}

}  // namespace mhrp::telemetry
