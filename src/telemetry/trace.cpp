#include "telemetry/trace.hpp"

#include <sstream>

#include "telemetry/json_writer.hpp"

namespace mhrp::telemetry {

namespace {

const char* category_name(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kPacket:
      return "packet";
    case TraceCategory::kProtocol:
      return "protocol";
    case TraceCategory::kStore:
      return "store";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kCount:
      break;
  }
  return "other";
}

const char* track_name(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kPacket:
      return "packet path";
    case TraceCategory::kProtocol:
      return "protocol phases";
    case TraceCategory::kStore:
      return "home-agent store";
    case TraceCategory::kFault:
      return "fault plane";
    case TraceCategory::kCount:
      break;
  }
  return "other";
}

}  // namespace

void TraceCollector::write_chrome_json(std::ostream& out) const {
  JsonWriter json(out);
  json.begin_object();
  json.key("displayTimeUnit");
  json.value("ms");
  json.key("traceEvents");
  json.begin_array();
  // Thread-name metadata events so each category renders as a named track.
  for (std::uint8_t c = 0;
       c < static_cast<std::uint8_t>(TraceCategory::kCount); ++c) {
    json.begin_object();
    json.key("name");
    json.value("thread_name");
    json.key("ph");
    json.value("M");
    json.key("pid");
    json.value(1);
    json.key("tid");
    json.value(static_cast<std::int64_t>(c) + 1);
    json.key("args");
    json.begin_object();
    json.key("name");
    json.value(track_name(static_cast<TraceCategory>(c)));
    json.end_object();
    json.end_object();
  }
  for (const Event& e : events_) {
    json.begin_object();
    json.key("name");
    json.value(e.name);
    json.key("cat");
    json.value(category_name(e.cat));
    json.key("ph");
    json.value(std::string_view(&e.phase, 1));
    json.key("ts");
    json.value(e.ts_us);
    if (e.phase == 'X') {
      json.key("dur");
      json.value(e.dur_us < 0 ? std::int64_t{0} : e.dur_us);
    } else {
      json.key("s");
      json.value("t");  // thread-scoped instant
    }
    json.key("pid");
    json.value(1);
    json.key("tid");
    json.value(static_cast<std::int64_t>(e.cat) + 1);
    if (e.key0 != nullptr) {
      json.key("args");
      json.begin_object();
      json.key(e.key0);
      json.value(e.arg0);
      if (e.key1 != nullptr) {
        json.key(e.key1);
        json.value(e.arg1);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string TraceCollector::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

}  // namespace mhrp::telemetry
