#include "telemetry/metric_registry.hpp"

#include <sstream>
#include <stdexcept>

#include "telemetry/json_writer.hpp"

namespace mhrp::telemetry {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kProbe:
      return "probe";
  }
  return "unknown";
}

}  // namespace

Counter& MetricRegistry::counter(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_
             .emplace(std::string(name),
                      Instrument{MetricKind::kCounter, Counter{}})
             .first;
  } else if (it->second.kind != MetricKind::kCounter) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  return std::get<Counter>(it->second.storage);
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_
             .emplace(std::string(name), Instrument{MetricKind::kGauge, Gauge{}})
             .first;
  } else if (it->second.kind != MetricKind::kGauge) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  return std::get<Gauge>(it->second.storage);
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_
             .emplace(std::string(name),
                      Instrument{MetricKind::kHistogram, Histogram{}})
             .first;
  } else if (it->second.kind != MetricKind::kHistogram) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  return std::get<Histogram>(it->second.storage);
}

void MetricRegistry::probe(std::string_view name, Probe fn) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(std::string(name),
                     Instrument{MetricKind::kProbe, std::move(fn)});
    return;
  }
  if (it->second.kind != MetricKind::kProbe) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  it->second.storage = std::move(fn);
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(entries_.size());
  for (const auto& [name, instrument] : entries_) {
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.kind = instrument.kind;
    switch (instrument.kind) {
      case MetricKind::kCounter:
        entry.value = std::get<Counter>(instrument.storage).value();
        break;
      case MetricKind::kGauge:
        entry.value = std::get<Gauge>(instrument.storage).value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = std::get<Histogram>(instrument.storage);
        MetricsSnapshot::HistogramStats stats;
        stats.count = h.count();
        stats.sum = h.sum();
        stats.min = h.min();
        stats.max = h.max();
        stats.mean = h.mean();
        stats.p50 = h.quantile(0.50);
        stats.p90 = h.quantile(0.90);
        stats.p99 = h.quantile(0.99);
        entry.value = stats;
        break;
      }
      case MetricKind::kProbe:
        entry.value = std::get<Probe>(instrument.storage)();
        break;
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;  // std::map iteration order is already name-sorted
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  for (const Entry& e : entries) {
    out << e.name << ' ' << kind_name(e.kind) << ' ';
    switch (e.kind) {
      case MetricKind::kCounter:
        out << std::get<std::uint64_t>(e.value);
        break;
      case MetricKind::kGauge:
      case MetricKind::kProbe:
        out << JsonWriter::format_number(std::get<double>(e.value));
        break;
      case MetricKind::kHistogram: {
        const auto& h = std::get<HistogramStats>(e.value);
        out << "count=" << h.count
            << " sum=" << JsonWriter::format_number(h.sum)
            << " min=" << JsonWriter::format_number(h.min)
            << " max=" << JsonWriter::format_number(h.max)
            << " mean=" << JsonWriter::format_number(h.mean)
            << " p50=" << JsonWriter::format_number(h.p50)
            << " p90=" << JsonWriter::format_number(h.p90)
            << " p99=" << JsonWriter::format_number(h.p99);
        break;
      }
    }
    out << '\n';
  }
  return out.str();
}

void MetricsSnapshot::write_json(JsonWriter& json) const {
  json.begin_object();
  for (const Entry& e : entries) {
    json.key(e.name);
    json.begin_object();
    json.key("kind");
    json.value(kind_name(e.kind));
    switch (e.kind) {
      case MetricKind::kCounter:
        json.key("value");
        json.value(std::get<std::uint64_t>(e.value));
        break;
      case MetricKind::kGauge:
      case MetricKind::kProbe:
        json.key("value");
        json.value(std::get<double>(e.value));
        break;
      case MetricKind::kHistogram: {
        const auto& h = std::get<HistogramStats>(e.value);
        json.key("count");
        json.value(h.count);
        json.key("sum");
        json.value(h.sum);
        json.key("min");
        json.value(h.min);
        json.key("max");
        json.value(h.max);
        json.key("mean");
        json.value(h.mean);
        json.key("p50");
        json.value(h.p50);
        json.key("p90");
        json.value(h.p90);
        json.key("p99");
        json.value(h.p99);
        break;
      }
    }
    json.end_object();
  }
  json.end_object();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("schema");
  json.value("mhrp.metrics.v1");
  json.key("metrics");
  write_json(json);
  json.end_object();
  return out.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream out;
  out << "name,kind,field,value\n";
  const auto row = [&out](const std::string& name, MetricKind kind,
                          const char* field, const std::string& value) {
    out << name << ',' << kind_name(kind) << ',' << field << ',' << value
        << '\n';
  };
  for (const Entry& e : entries) {
    switch (e.kind) {
      case MetricKind::kCounter:
        row(e.name, e.kind, "value",
            std::to_string(std::get<std::uint64_t>(e.value)));
        break;
      case MetricKind::kGauge:
      case MetricKind::kProbe:
        row(e.name, e.kind, "value",
            JsonWriter::format_number(std::get<double>(e.value)));
        break;
      case MetricKind::kHistogram: {
        const auto& h = std::get<HistogramStats>(e.value);
        row(e.name, e.kind, "count", std::to_string(h.count));
        row(e.name, e.kind, "sum", JsonWriter::format_number(h.sum));
        row(e.name, e.kind, "min", JsonWriter::format_number(h.min));
        row(e.name, e.kind, "max", JsonWriter::format_number(h.max));
        row(e.name, e.kind, "mean", JsonWriter::format_number(h.mean));
        row(e.name, e.kind, "p50", JsonWriter::format_number(h.p50));
        row(e.name, e.kind, "p90", JsonWriter::format_number(h.p90));
        row(e.name, e.kind, "p99", JsonWriter::format_number(h.p99));
        break;
      }
    }
  }
  return out.str();
}

}  // namespace mhrp::telemetry
