// Metric primitives: Counter, Gauge, and a fixed-bucket log-scale Histogram.
// All three are plain in-memory accumulators with O(1) record paths — no
// allocation, no sorting, no locking (the simulator is single-threaded).
// Percentiles come from a cumulative walk over the histogram's fixed
// buckets, so reading a snapshot never sorts the recorded values.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace mhrp::telemetry {

class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Log-scale histogram with a fixed bucket layout: kSubBuckets buckets per
/// octave (power of two), covering 2^kMinExp .. 2^kMaxExp. Values below the
/// range land in an underflow bucket, values above in an overflow bucket.
/// record() is a frexp + two integer ops; quantile() walks the cumulative
/// counts with linear interpolation inside the winning bucket. With 8
/// sub-buckets per octave the relative quantile error is bounded by ~9%,
/// plenty for latency distributions spanning microseconds to minutes.
class Histogram {
 public:
  static constexpr int kMinExp = -20;  // ~9.5e-7: sub-microsecond floor
  static constexpr int kMaxExp = 21;   // ~2.1e6: covers multi-week sim times
  static constexpr int kSubBuckets = 8;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void record(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = v;
      max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
    ++buckets_[bucket_index(v)];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Empty histograms report 0 for min/max/mean — never +/-inf — so the
  /// values are always safe to export as JSON.
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Approximate quantile (q in [0,1]) from the bucket cumulative counts.
  /// Returns 0 for an empty histogram. Exact for the min/max endpoints.
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max();
    const double rank = q * static_cast<double>(count_ - 1);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (buckets_[i] == 0) continue;
      const double next = cumulative + static_cast<double>(buckets_[i]);
      if (rank < next) {
        const double lo = bucket_lower(i);
        const double hi = bucket_upper(i);
        const double frac =
            (rank - cumulative) / static_cast<double>(buckets_[i]);
        double v = lo + (hi - lo) * frac;
        // Clamp to observed extremes: the winning bucket's nominal edges can
        // straddle them.
        if (v < min_) v = min_;
        if (v > max_) v = max_;
        return v;
      }
      cumulative = next;
    }
    return max();
  }

  void reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    buckets_.fill(0);
  }

  /// Bucket index for a value; exposed for tests.
  [[nodiscard]] static std::size_t bucket_index(double v) {
    if (!(v > 0.0) || std::isnan(v)) return 0;  // underflow bucket (incl. <=0)
    int exp = 0;
    const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp
    if (exp <= kMinExp) return 0;
    if (exp > kMaxExp) return kBucketCount - 1;  // overflow bucket
    // mantissa in [0.5, 1): map linearly onto kSubBuckets slots.
    auto sub = static_cast<std::size_t>((mantissa - 0.5) * 2.0 *
                                       static_cast<double>(kSubBuckets));
    if (sub >= kSubBuckets) sub = kSubBuckets - 1;
    return 1 +
           static_cast<std::size_t>(exp - kMinExp - 1) * kSubBuckets + sub;
  }

 private:
  [[nodiscard]] static double bucket_lower(std::size_t i) {
    if (i == 0) return 0.0;
    if (i == kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
    const std::size_t rel = i - 1;
    const int exp = kMinExp + static_cast<int>(rel / kSubBuckets);
    const auto sub = static_cast<double>(rel % kSubBuckets);
    return std::ldexp(0.5 + sub / (2.0 * kSubBuckets), exp + 1);
  }

  [[nodiscard]] static double bucket_upper(std::size_t i) {
    if (i == 0) return std::ldexp(1.0, kMinExp);
    if (i == kBucketCount - 1) return std::ldexp(1.0, kMaxExp + 1);
    const std::size_t rel = i - 1;
    const int exp = kMinExp + static_cast<int>(rel / kSubBuckets);
    const auto sub = static_cast<double>(rel % kSubBuckets) + 1.0;
    return std::ldexp(0.5 + sub / (2.0 * kSubBuckets), exp + 1);
  }

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBucketCount> buckets_{};
};

}  // namespace mhrp::telemetry
