// Structural audit of a LocationCache: the bounded-LRU implementation
// keeps a doubly-linked recency list plus an address→node map, and every
// operation must leave the two describing the same set of entries. The
// inspector is a friend of LocationCache so the checks read the real
// structures rather than a projection of them.
#pragma once

#include <string>

#include "core/location_cache.hpp"

namespace mhrp::analysis {

class CacheInspector {
 public:
  struct Findings {
    bool coherent = true;        // list ↔ map bijection holds
    bool within_capacity = true; // size ≤ capacity (capacity 0 = unbounded)
    std::string detail;          // human-readable description of any breakage
  };

  [[nodiscard]] static Findings check(const core::LocationCache& cache);

  /// Test-only: break the list ↔ map bijection by appending an LRU node
  /// with no map entry, so auditor tests can prove corruption is seen.
  static void corrupt_with_orphan_entry_for_test(core::LocationCache& cache);

  /// Test-only: swap the LRU links of two resident entries, producing two
  /// map→node mismatches; determinism tests use this to pin the audit
  /// text across different map insertion orders. No-op unless both
  /// addresses are resident.
  static void corrupt_with_crossed_links_for_test(core::LocationCache& cache,
                                                  net::IpAddress a,
                                                  net::IpAddress b);
};

}  // namespace mhrp::analysis
