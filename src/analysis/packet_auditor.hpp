// PacketAuditor: attaches to the simulated wire (every Link) and, frame
// by frame, validates the paper's wire invariants — MHRP header sizes
// (§4.1), previous-source-list growth (§4.4), the no-duplicate guarantee
// of loop contraction (§5.3), IP/ICMP/MHRP checksum validity, and TTL
// monotonicity — plus the LocationCache structural invariants of every
// cache it is asked to watch. Violations are collected into an
// AuditReport that tests and benches assert on.
//
// Attachment is runtime and costs one pointer test per transmission when
// absent. Audit builds (cmake -DMHRP_AUDIT=ON) additionally auto-attach
// a process-global auditor to every scenario topology (see
// scenario/audit_hooks.hpp), so the whole suite runs under full audit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/audit_report.hpp"
#include "analysis/invariant_registry.hpp"
#include "core/location_cache.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::analysis {

class PacketAuditor final : public net::LinkObserver {
 public:
  PacketAuditor() = default;
  ~PacketAuditor() override;

  PacketAuditor(const PacketAuditor&) = delete;
  PacketAuditor& operator=(const PacketAuditor&) = delete;
  PacketAuditor(PacketAuditor&&) = delete;
  PacketAuditor& operator=(PacketAuditor&&) = delete;

  [[nodiscard]] InvariantRegistry& registry() { return registry_; }
  [[nodiscard]] const AuditReport& report() const { return report_; }
  [[nodiscard]] AuditReport& report() { return report_; }

  // ---- Attachment ----

  /// Observe every frame `link` carries. Lifetime is safe in both
  /// directions: a destroyed link removes itself (LinkObserver::
  /// on_detached) and the auditor's destructor detaches from live links.
  void attach_link(net::Link& link);
  void detach_link(net::Link& link);

  /// Check `cache`'s structural invariants on every audit_caches() pass.
  /// The cache must outlive the auditor or be unwatched first.
  void watch_cache(const core::LocationCache& cache, std::string label);
  void unwatch_cache(const core::LocationCache& cache);

  /// Detach from every link and forget every watched cache.
  void detach_all();

  /// Watched caches are re-checked every `frames` observed frames
  /// (default 256; 0 = only on explicit audit_caches() calls).
  void set_cache_audit_interval(std::uint64_t frames) {
    cache_audit_interval_ = frames;
  }

  /// Oracle behind the stale-binding invariant, consulted for every
  /// MHRP-tunneled frame: given the tunnel head (outer IP source), the
  /// mobile host, the tunnel destination, and the transmission time, it
  /// returns true when that binding use is acceptable (current, or
  /// within the repair window after a change). The scenario layer builds
  /// one from the home agent's binding history; with no oracle installed
  /// the invariant is not checked.
  using BindingOracle =
      std::function<bool(net::IpAddress tunnel_src, net::IpAddress mobile_host,
                         net::IpAddress tunnel_dst, sim::Time now)>;
  void set_binding_oracle(BindingOracle oracle) {
    binding_oracle_ = std::move(oracle);
  }

  // ---- Checks ----

  void on_transmit(const net::Link& link, const net::Frame& frame,
                   sim::Time now) override;
  void on_detached(net::Link& link) override;

  /// Audit one datagram as if it crossed a wire at `now`. `where` names
  /// the observation point in violation reports.
  void audit_packet(const net::Packet& packet, sim::Time now = sim::kTimeZero,
                    const std::string& where = "direct");

  /// Run the structural checks over every watched cache.
  void audit_caches(sim::Time now = sim::kTimeZero);

  /// Drop accumulated per-datagram path state (TTL / list-length
  /// history). The report is left untouched.
  void forget_path_state() { paths_.clear(); }

 private:
  /// Last-seen wire state of one datagram (keyed by Packet::id), used for
  /// the cross-hop invariants: TTL monotonicity and list growth.
  struct PathState {
    bool ttl_seen = false;
    std::uint8_t last_ttl = 0;
    bool mhrp_seen = false;
    std::size_t last_list_len = 0;
  };

  void violate(InvariantId id, const net::Packet& packet, sim::Time now,
               const std::string& where, std::string what);
  void check_round_trip(const net::Packet& packet, sim::Time now,
                        const std::string& where);
  void check_mhrp(const net::Packet& packet, PathState& state, sim::Time now,
                  const std::string& where);
  PathState& path_state(std::uint64_t packet_id);

  InvariantRegistry registry_;
  AuditReport report_;
  BindingOracle binding_oracle_;
  util::ByteWriter scratch_;  // reused per-packet serialize buffer
  std::unordered_map<std::uint64_t, PathState> paths_;
  std::vector<net::Link*> links_;
  std::vector<std::pair<const core::LocationCache*, std::string>> caches_;
  std::uint64_t cache_audit_interval_ = 256;

  /// Path-state entries are dropped wholesale past this many tracked
  /// datagrams (long benches would otherwise grow without bound; the
  /// cross-hop checks simply restart for in-flight packets).
  static constexpr std::size_t kMaxTrackedPackets = 1u << 20u;
};

}  // namespace mhrp::analysis
