// The catalogue of machine-checked invariants behind the paper's
// correctness argument. Each entry names the invariant, cites the paper
// section that states it, and carries a one-line prose statement used
// when an AuditReport is rendered.
//
// The registry also holds the per-invariant enable bits: tests that
// deliberately construct malformed traffic for one invariant can switch
// the others off to keep their reports focused.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace mhrp::analysis {

enum class InvariantId : std::uint8_t {
  /// Every datagram on the wire re-serializes and re-parses to an
  /// identical header and payload, with a valid IP header checksum
  /// (RFC 791; the byte-exact encoding DESIGN.md §2 commits to).
  kIpHeaderRoundTrip = 0,
  /// The MHRP header checksum verifies and its count field matches the
  /// bytes present (paper §4.1 Fig. 3).
  kMhrpHeaderChecksum,
  /// A newly built MHRP header is exactly 8 octets (sender-built, empty
  /// previous-source list) or 12 octets (built by a home or cache agent,
  /// one list entry) — the sizes §4.1 and §7 quote.
  kMhrpHeaderSize,
  /// Each re-tunnel appends exactly one address (4 octets) to the
  /// previous-source list; the list only ever shrinks via the §4.4
  /// overflow flush, which resets it to a single entry.
  kMhrpListGrowth,
  /// The previous-source list never contains a repeated address — the
  /// guarantee the loop-contraction rule (§5.3) provides.
  kMhrpNoDuplicateSources,
  /// ICMP message bodies carry a valid RFC 792 checksum and well-formed
  /// per-type fields.
  kIcmpChecksum,
  /// A datagram's TTL never increases between consecutive wire
  /// crossings (RFC 791; what ultimately kills loops larger than the
  /// previous-source list can record, §5.3).
  kTtlMonotone,
  /// LocationCache structure: the LRU list and the lookup map describe
  /// the same set of entries, and every map slot points at the list node
  /// holding its key.
  kCacheCoherence,
  /// LocationCache occupancy never exceeds its configured capacity
  /// ("the (finite) cache space provided by any cache agent", §2).
  kCacheCapacity,
  /// A link that has failed carries no frames: nothing is transmitted on
  /// it and nothing in flight is delivered through it (the lifecycle
  /// contract the fault plane injects against).
  kLinkDownSilent,
  /// After the repair window following a binding change, no agent keeps
  /// tunneling a mobile host's traffic toward the superseded foreign
  /// agent (§5.2/§6.3 lazy repair must converge). Checked against a
  /// scenario-supplied binding oracle.
  kStaleBindingForwarding,
  /// Recovery of the home agent's durable store always yields a prefix
  /// of the logged mutation history: the recovered database equals the
  /// state after the first N logged records for some N, with N at least
  /// the count made durable before the crash (§2's "recorded on disk to
  /// survive any crashes"; DESIGN §10).
  kWalPrefixConsistent,
  /// A registration acknowledged under a durable sync policy (kSync,
  /// kInterval) is never lost by a crash: the recovered database
  /// contains every acked binding (§4.2's registration contract extended
  /// over reboots).
  kDurableAckNotLost,
  /// A distance-vector route's metric never rises from the same next hop
  /// several consecutive times short of infinity — the mutual-deception
  /// "counting to infinity" pathology split horizon with poisoned
  /// reverse exists to prevent (RFC 2453 §3.4.3; the routing substrate
  /// the paper's §3 host-specific routes ride on).
  kCountingToInfinity,
};

inline constexpr std::size_t kInvariantCount = 14;

[[nodiscard]] constexpr std::size_t index_of(InvariantId id) {
  return static_cast<std::size_t>(id);
}

struct InvariantInfo {
  InvariantId id{};
  std::string_view name;       // short slug used in report lines
  std::string_view paper_ref;  // where the paper (or RFC) states it
  std::string_view statement;  // one-line prose form
};

class InvariantRegistry {
 public:
  /// All invariants registered and enabled.
  InvariantRegistry() { enabled_.fill(true); }

  [[nodiscard]] static const InvariantInfo& info(InvariantId id);
  [[nodiscard]] static std::span<const InvariantInfo> all();

  void set_enabled(InvariantId id, bool enabled) {
    enabled_[index_of(id)] = enabled;
  }
  [[nodiscard]] bool enabled(InvariantId id) const {
    return enabled_[index_of(id)];
  }

  /// Convenience: disable every invariant except `keep` (focused tests).
  void enable_only(InvariantId keep) {
    enabled_.fill(false);
    enabled_[index_of(keep)] = true;
  }

 private:
  std::array<bool, kInvariantCount> enabled_{};
};

}  // namespace mhrp::analysis
