#include "analysis/cache_inspector.hpp"

#include <sstream>

namespace mhrp::analysis {

CacheInspector::Findings CacheInspector::check(
    const core::LocationCache& cache) {
  Findings f;
  std::ostringstream detail;

  if (cache.lru_.size() != cache.map_.size()) {
    f.coherent = false;
    detail << "LRU list holds " << cache.lru_.size() << " entries but map holds "
           << cache.map_.size() << "; ";
  }
  for (const auto& [address, node] : cache.map_) {
    if (node->mobile_host != address) {
      f.coherent = false;
      detail << "map slot for " << address.to_string()
             << " points at LRU node for " << node->mobile_host.to_string()
             << "; ";
    }
  }
  if (cache.capacity_ != 0 && cache.map_.size() > cache.capacity_) {
    f.within_capacity = false;
    detail << "size " << cache.map_.size() << " exceeds capacity "
           << cache.capacity_ << "; ";
  }
  f.detail = detail.str();
  return f;
}

void CacheInspector::corrupt_with_orphan_entry_for_test(
    core::LocationCache& cache) {
  cache.lru_.emplace_back(core::LocationCache::Entry{
      net::IpAddress::of(203, 0, 113, 113), net::IpAddress::of(203, 0, 113, 1)});
}

}  // namespace mhrp::analysis
