#include "analysis/cache_inspector.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace mhrp::analysis {

CacheInspector::Findings CacheInspector::check(
    const core::LocationCache& cache) {
  Findings f;
  std::ostringstream detail;

  if (cache.lru_.size() != cache.map_.size()) {
    f.coherent = false;
    detail << "LRU list holds " << cache.lru_.size() << " entries but map holds "
           << cache.map_.size() << "; ";
  }
  // The map is unordered: collect mismatches and report them in address
  // order so the audit text is byte-identical regardless of insert order
  // (replay digests fold this string in).
  std::vector<std::pair<net::IpAddress, net::IpAddress>> crossed;
  // mhrp-lint: allow(unordered-iter) collect-then-sort; emission is ordered
  for (const auto& [address, node] : cache.map_) {
    if (node->mobile_host != address) {
      crossed.emplace_back(address, node->mobile_host);
    }
  }
  std::sort(crossed.begin(), crossed.end());
  for (const auto& [address, pointee] : crossed) {
    f.coherent = false;
    detail << "map slot for " << address.to_string()
           << " points at LRU node for " << pointee.to_string() << "; ";
  }
  if (cache.capacity_ != 0 && cache.map_.size() > cache.capacity_) {
    f.within_capacity = false;
    detail << "size " << cache.map_.size() << " exceeds capacity "
           << cache.capacity_ << "; ";
  }
  f.detail = detail.str();
  return f;
}

void CacheInspector::corrupt_with_orphan_entry_for_test(
    core::LocationCache& cache) {
  cache.lru_.emplace_back(core::LocationCache::Entry{
      net::IpAddress::of(203, 0, 113, 113), net::IpAddress::of(203, 0, 113, 1)});
}

void CacheInspector::corrupt_with_crossed_links_for_test(
    core::LocationCache& cache, net::IpAddress a, net::IpAddress b) {
  auto ia = cache.map_.find(a);
  auto ib = cache.map_.find(b);
  if (ia == cache.map_.end() || ib == cache.map_.end()) return;
  std::swap(ia->second, ib->second);
}

}  // namespace mhrp::analysis
