// The structured result of an audit run: per-invariant violation counts
// plus the first offending packet (or cache) for each invariant, kept as
// a rendered dump so a failing test prints something actionable.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "analysis/invariant_registry.hpp"
#include "sim/time.hpp"

namespace mhrp::analysis {

/// One recorded invariant violation. `packet_id` is 0 for violations not
/// tied to a packet (the cache invariants).
struct AuditViolation {
  InvariantId id{};
  std::uint64_t packet_id = 0;
  sim::Time when = sim::kTimeZero;
  std::string where;   // link name or cache label
  std::string detail;  // what failed, plus a first-offender dump
};

class AuditReport {
 public:
  /// Count the violation; the first one per invariant is kept verbatim.
  void add(AuditViolation v) {
    auto& slot = first_[index_of(v.id)];
    ++counts_[index_of(v.id)];
    ++total_;
    if (!slot.has_value()) slot = std::move(v);
  }

  [[nodiscard]] std::uint64_t total_violations() const { return total_; }
  [[nodiscard]] std::uint64_t count(InvariantId id) const {
    return counts_[index_of(id)];
  }
  /// First recorded violation of `id`, or nullptr when none occurred.
  [[nodiscard]] const AuditViolation* first(InvariantId id) const {
    const auto& slot = first_[index_of(id)];
    return slot.has_value() ? &*slot : nullptr;
  }
  [[nodiscard]] bool clean() const { return total_ == 0; }

  // ---- Coverage counters (what the audit actually looked at) ----

  std::uint64_t frames_audited = 0;
  std::uint64_t packets_audited = 0;
  std::uint64_t mhrp_packets_audited = 0;
  std::uint64_t cache_audits = 0;

  /// Render counts (per audited invariant) and first offenders, with the
  /// registry's names and paper citations. Tests print this on failure.
  [[nodiscard]] std::string to_string() const;

  void reset() {
    counts_.fill(0);
    for (auto& slot : first_) slot.reset();
    total_ = 0;
    frames_audited = packets_audited = mhrp_packets_audited = 0;
    cache_audits = 0;
  }

 private:
  std::array<std::uint64_t, kInvariantCount> counts_{};
  std::array<std::optional<AuditViolation>, kInvariantCount> first_{};
  std::uint64_t total_ = 0;
};

}  // namespace mhrp::analysis
