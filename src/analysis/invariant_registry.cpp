#include "analysis/invariant_registry.hpp"

namespace mhrp::analysis {

namespace {

constexpr std::array<InvariantInfo, kInvariantCount> kCatalogue{{
    {InvariantId::kIpHeaderRoundTrip, "ip-header-round-trip", "RFC 791 / DESIGN §2",
     "datagram re-serializes and re-parses byte-identically with a valid "
     "IP header checksum"},
    {InvariantId::kMhrpHeaderChecksum, "mhrp-header-checksum", "§4.1 Fig. 3",
     "MHRP header checksum verifies and the count field matches the bytes "
     "present"},
    {InvariantId::kMhrpHeaderSize, "mhrp-header-size", "§4.1, §7",
     "a newly built MHRP header is exactly 8 octets (sender-built) or 12 "
     "octets (agent-built)"},
    {InvariantId::kMhrpListGrowth, "mhrp-list-growth", "§4.4",
     "each re-tunnel appends exactly 4 octets; the list shrinks only via "
     "the overflow flush, to a single entry"},
    {InvariantId::kMhrpNoDuplicateSources, "mhrp-no-duplicate-sources", "§5.3",
     "the previous-source list never contains a repeated address"},
    {InvariantId::kIcmpChecksum, "icmp-checksum", "RFC 792",
     "ICMP bodies carry a valid checksum and well-formed per-type fields"},
    {InvariantId::kTtlMonotone, "ttl-monotone", "RFC 791 / §5.3",
     "a datagram's TTL never increases between consecutive wire crossings"},
    {InvariantId::kCacheCoherence, "cache-coherence", "§4.3",
     "the LocationCache LRU list and lookup map describe the same entries"},
    {InvariantId::kCacheCapacity, "cache-capacity", "§2",
     "LocationCache occupancy never exceeds its configured capacity"},
    {InvariantId::kLinkDownSilent, "link-down-silent", "§5.2 / DESIGN §9",
     "a failed link carries no frames — neither new transmissions nor "
     "in-flight deliveries"},
    {InvariantId::kStaleBindingForwarding, "stale-binding-forwarding",
     "§5.2, §6.3",
     "past the repair window, no agent tunnels toward a superseded "
     "foreign-agent binding"},
    {InvariantId::kWalPrefixConsistent, "wal-prefix-consistent",
     "§2 / DESIGN §10",
     "store recovery yields the state after some prefix of the logged "
     "history, no shorter than the durable prefix"},
    {InvariantId::kDurableAckNotLost, "durable-ack-not-lost",
     "§4.2 / DESIGN §10",
     "a registration acked under a durable sync policy survives any "
     "crash-and-recover"},
    {InvariantId::kCountingToInfinity, "counting-to-infinity",
     "RFC 2453 §3.4.3 / DESIGN §14",
     "no DV route's metric rises from the same next hop several "
     "consecutive times short of infinity"},
}};

}  // namespace

const InvariantInfo& InvariantRegistry::info(InvariantId id) {
  return kCatalogue[index_of(id)];
}

std::span<const InvariantInfo> InvariantRegistry::all() { return kCatalogue; }

}  // namespace mhrp::analysis
