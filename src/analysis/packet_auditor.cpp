#include "analysis/packet_auditor.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_set>

#include "analysis/cache_inspector.hpp"
#include "core/encapsulation.hpp"
#include "net/frame.hpp"
#include "net/icmp.hpp"
#include "net/protocols.hpp"

namespace mhrp::analysis {

namespace {

/// Compact first-offender dump: the header fields that matter to the
/// invariants plus a bounded hex prefix of the payload.
std::string describe_packet(const net::Packet& p) {
  constexpr std::size_t kDumpLimit = 24;
  std::ostringstream out;
  const net::IpHeader& h = p.header();
  out << p.header().src.to_string() << " -> " << h.dst.to_string()
      << " proto=" << static_cast<unsigned>(h.protocol)
      << " ttl=" << static_cast<unsigned>(h.ttl)
      << " wire=" << p.wire_size() << "B payload[0.."
      << std::min(p.payload().size(), kDumpLimit) << ")=";
  out << std::hex << std::setfill('0');
  for (std::size_t i = 0; i < p.payload().size() && i < kDumpLimit; ++i) {
    out << std::setw(2) << static_cast<unsigned>(p.payload()[i]);
  }
  if (p.payload().size() > kDumpLimit) out << "...";
  return out.str();
}

}  // namespace

PacketAuditor::~PacketAuditor() { detach_all(); }

void PacketAuditor::attach_link(net::Link& link) {
  if (link.observer() == this) return;
  link.set_observer(this);  // a replaced observer gets on_detached()
  links_.push_back(&link);
}

void PacketAuditor::detach_link(net::Link& link) {
  if (link.observer() == this) {
    link.set_observer(nullptr);  // triggers our on_detached()
  }
}

void PacketAuditor::on_detached(net::Link& link) {
  links_.erase(std::remove(links_.begin(), links_.end(), &link), links_.end());
}

void PacketAuditor::watch_cache(const core::LocationCache& cache,
                                std::string label) {
  for (const auto& [watched, name] : caches_) {
    if (watched == &cache) return;
  }
  caches_.emplace_back(&cache, std::move(label));
}

void PacketAuditor::unwatch_cache(const core::LocationCache& cache) {
  caches_.erase(std::remove_if(caches_.begin(), caches_.end(),
                               [&](const auto& entry) {
                                 return entry.first == &cache;
                               }),
                caches_.end());
}

void PacketAuditor::detach_all() {
  // set_observer(nullptr) re-enters on_detached(), which edits links_.
  const std::vector<net::Link*> attached = links_;
  for (net::Link* link : attached) {
    if (link->observer() == this) link->set_observer(nullptr);
  }
  links_.clear();
  caches_.clear();
}

void PacketAuditor::on_transmit(const net::Link& link, const net::Frame& frame,
                                sim::Time now) {
  ++report_.frames_audited;
  if (cache_audit_interval_ != 0 &&
      report_.frames_audited % cache_audit_interval_ == 0) {
    audit_caches(now);
  }
  if (!frame.is_ip()) {
    // ARP carries no audited invariants, but the lifecycle one still
    // holds: a down link must carry nothing at all.
    if (!link.is_up() && registry_.enabled(InvariantId::kLinkDownSilent)) {
      report_.add(AuditViolation{InvariantId::kLinkDownSilent, 0, now,
                                 link.name(),
                                 "ARP frame transmitted on a down link"});
    }
    return;
  }
  if (!link.is_up() && registry_.enabled(InvariantId::kLinkDownSilent)) {
    violate(InvariantId::kLinkDownSilent, frame.packet(), now, link.name(),
            "frame transmitted on a down link");
  }
  audit_packet(frame.packet(), now, link.name());
}

void PacketAuditor::violate(InvariantId id, const net::Packet& packet,
                            sim::Time now, const std::string& where,
                            std::string what) {
  report_.add(AuditViolation{id, packet.id(), now, where,
                             std::move(what) + " | " + describe_packet(packet)});
}

PacketAuditor::PathState& PacketAuditor::path_state(std::uint64_t packet_id) {
  if (paths_.size() > kMaxTrackedPackets) paths_.clear();
  return paths_[packet_id];
}

void PacketAuditor::audit_packet(const net::Packet& packet, sim::Time now,
                                 const std::string& where) {
  ++report_.packets_audited;
  check_round_trip(packet, now, where);

  PathState& state = path_state(packet.id());

  if (registry_.enabled(InvariantId::kTtlMonotone)) {
    if (state.ttl_seen && packet.header().ttl > state.last_ttl) {
      std::ostringstream what;
      what << "TTL rose from " << static_cast<unsigned>(state.last_ttl)
           << " to " << static_cast<unsigned>(packet.header().ttl)
           << " between wire crossings";
      violate(InvariantId::kTtlMonotone, packet, now, where, what.str());
    }
  }
  state.ttl_seen = true;
  state.last_ttl = packet.header().ttl;

  if (packet.header().protocol == net::to_u8(net::IpProto::kIcmp) &&
      registry_.enabled(InvariantId::kIcmpChecksum)) {
    try {
      (void)net::decode_icmp(packet.payload());
    } catch (const util::CodecError& e) {
      violate(InvariantId::kIcmpChecksum, packet, now, where,
              std::string("ICMP body rejected: ") + e.what());
    }
  }

  if (core::is_mhrp(packet)) {
    ++report_.mhrp_packets_audited;
    check_mhrp(packet, state, now, where);
  } else {
    // Once a datagram leaves the tunnel (decapsulated for last-hop
    // delivery) its list history no longer constrains a future tunnel.
    state.mhrp_seen = false;
    state.last_list_len = 0;
  }
}

void PacketAuditor::check_round_trip(const net::Packet& packet, sim::Time now,
                                     const std::string& where) {
  if (!registry_.enabled(InvariantId::kIpHeaderRoundTrip)) return;
  try {
    scratch_.clear();  // reuse one buffer across the whole audit run
    packet.serialize_into(scratch_);
    const net::Packet reparsed = net::Packet::deserialize(scratch_.view());
    if (!(reparsed.header() == packet.header()) ||
        reparsed.payload() != packet.payload()) {
      violate(InvariantId::kIpHeaderRoundTrip, packet, now, where,
              "serialize/deserialize round-trip changed the datagram");
    }
  } catch (const util::CodecError& e) {
    violate(InvariantId::kIpHeaderRoundTrip, packet, now, where,
            std::string("datagram failed to re-parse: ") + e.what());
  }
}

void PacketAuditor::check_mhrp(const net::Packet& packet, PathState& state,
                               sim::Time now, const std::string& where) {
  core::MhrpHeader header;
  try {
    header = core::read_mhrp_header(packet);
  } catch (const util::CodecError& e) {
    if (registry_.enabled(InvariantId::kMhrpHeaderChecksum)) {
      violate(InvariantId::kMhrpHeaderChecksum, packet, now, where,
              std::string("MHRP header rejected: ") + e.what());
    }
    return;  // the remaining checks need a decoded header
  }

  if (binding_oracle_ &&
      registry_.enabled(InvariantId::kStaleBindingForwarding) &&
      !binding_oracle_(packet.header().src, header.mobile_host,
                       packet.header().dst, now)) {
    violate(InvariantId::kStaleBindingForwarding, packet, now, where,
            "tunnel toward " + packet.header().dst.to_string() +
                " uses a binding for " + header.mobile_host.to_string() +
                " stale past the repair window");
  }

  const std::size_t list_len = header.previous_sources.size();

  // §4.1: the first time a tunnel appears on the wire its header was just
  // built — 8 octets by the original sender (empty list) or 12 by a home
  // or cache agent (the displaced original source as the one entry).
  if (registry_.enabled(InvariantId::kMhrpHeaderSize) && !state.mhrp_seen &&
      list_len > 1) {
    std::ostringstream what;
    what << "freshly built MHRP header is " << header.encoded_size()
         << " octets (" << list_len << " list entries); expected 8 or 12";
    violate(InvariantId::kMhrpHeaderSize, packet, now, where, what.str());
  }

  // §4.4: between consecutive crossings the list either stays (plain
  // forwarding), grows by exactly one address (a re-tunnel appends 4
  // octets), or collapses to a single entry (the overflow flush).
  if (registry_.enabled(InvariantId::kMhrpListGrowth) && state.mhrp_seen) {
    const bool unchanged = list_len == state.last_list_len;
    const bool grew_by_one = list_len == state.last_list_len + 1;
    const bool overflow_flush = list_len == 1 && state.last_list_len > 1;
    if (!unchanged && !grew_by_one && !overflow_flush) {
      std::ostringstream what;
      what << "previous-source list went from " << state.last_list_len
           << " to " << list_len
           << " entries in one hop; a re-tunnel appends exactly one";
      violate(InvariantId::kMhrpListGrowth, packet, now, where, what.str());
    }
  }

  if (registry_.enabled(InvariantId::kMhrpNoDuplicateSources)) {
    std::unordered_set<std::uint32_t> seen;
    for (net::IpAddress addr : header.previous_sources) {
      if (!seen.insert(addr.raw()).second) {
        violate(InvariantId::kMhrpNoDuplicateSources, packet, now, where,
                "address " + addr.to_string() +
                    " appears twice in the previous-source list");
        break;
      }
    }
  }

  state.mhrp_seen = true;
  state.last_list_len = list_len;
}

void PacketAuditor::audit_caches(sim::Time now) {
  for (const auto& [cache, label] : caches_) {
    ++report_.cache_audits;
    const CacheInspector::Findings findings = CacheInspector::check(*cache);
    if (!findings.coherent &&
        registry_.enabled(InvariantId::kCacheCoherence)) {
      report_.add(AuditViolation{InvariantId::kCacheCoherence, 0, now, label,
                                 findings.detail});
    }
    if (!findings.within_capacity &&
        registry_.enabled(InvariantId::kCacheCapacity)) {
      report_.add(AuditViolation{InvariantId::kCacheCapacity, 0, now, label,
                                 findings.detail});
    }
  }
}

}  // namespace mhrp::analysis
