#include "analysis/crash_checker.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/ip_address.hpp"
#include "store/sim_disk.hpp"
#include "util/rng.hpp"

namespace mhrp::analysis {

namespace {

using store::PersistAction;
using store::SimDisk;
using store::SyncPolicy;
using store::WalRecord;
using store::WalStore;

constexpr std::uint64_t kNoCrash = ~std::uint64_t{0};

net::IpAddress mobile_addr(std::uint32_t i) {
  return net::IpAddress(0x0A010100u + i + 1);
}

net::IpAddress foreign_addr(std::uint32_t i) {
  return net::IpAddress(0xC0A80001u + i * 256u);
}

/// The deterministic mutation history every run replays: provision each
/// mobile, then a seeded mix of re-registrations (dominant), timeouts,
/// and re-provisions — the record mix a home agent actually logs.
std::vector<WalRecord> make_workload(const CrashCheckerOptions& o) {
  util::Rng rng(o.seed);
  std::vector<WalRecord> history;
  history.reserve(o.workload_records);
  std::vector<std::uint32_t> sequence(o.mobiles, 0);
  std::vector<bool> provisioned(o.mobiles, false);
  for (std::uint32_t i = 0; i < o.mobiles && history.size() < o.workload_records;
       ++i) {
    history.push_back({WalRecord::Kind::kProvision, mobile_addr(i),
                       net::IpAddress(0), 0});
    provisioned[i] = true;
  }
  while (history.size() < o.workload_records) {
    const auto m = static_cast<std::uint32_t>(rng.index(o.mobiles));
    const double p = rng.real();
    if (!provisioned[m] || p < 0.1) {
      history.push_back({WalRecord::Kind::kProvision, mobile_addr(m),
                         net::IpAddress(0), 0});
      provisioned[m] = true;
    } else if (p < 0.9) {
      const auto fa = static_cast<std::uint32_t>(rng.index(4));
      history.push_back({WalRecord::Kind::kBinding, mobile_addr(m),
                         foreign_addr(fa), ++sequence[m]});
    } else {
      history.push_back(
          {WalRecord::Kind::kErase, mobile_addr(m), net::IpAddress(0), 0});
      provisioned[m] = false;
    }
  }
  return history;
}

/// The checker's own model of record semantics — independent of
/// WalStore::apply so a bug there shows up as a prefix mismatch instead
/// of being faithfully mirrored.
void fold(store::RecoveredDb& db, const WalRecord& r) {
  switch (r.kind) {
    case WalRecord::Kind::kProvision:
      db.emplace(r.mobile_host, store::RecoveredRow{r.foreign_agent, r.sequence});
      break;
    case WalRecord::Kind::kBinding:
      db[r.mobile_host] = store::RecoveredRow{r.foreign_agent, r.sequence};
      break;
    case WalRecord::Kind::kErase:
      db.erase(r.mobile_host);
      break;
  }
}

}  // namespace

struct CrashConsistencyChecker::RunOutcome {
  bool crashed = false;
};

std::string CrashCheckerResult::summary() const {
  std::ostringstream out;
  out << "crash-checker runs=" << runs << " points=" << crash_points
      << " torn=" << torn_runs << " logged=" << records_logged
      << " recovered=" << records_recovered << " acked=" << acked_before_crash
      << " acked_lost=" << acked_lost
      << " violations={prefix=" << prefix_violations
      << " ack=" << ack_violations << " determinism=" << determinism_violations
      << "}";
  return out.str();
}

std::uint64_t CrashConsistencyChecker::dry_run_steps() {
  // One hook-free pass over the identical workload counts how many
  // persist steps a run generates — the crash-point coordinate range.
  SimDisk disk(options_.store.sector_size, options_.store.disk_sectors);
  WalStore wal(disk, options_.store);
  wal.format();
  const auto history = make_workload(options_);
  std::uint32_t since_sync = 0;
  for (const auto& rec : history) {
    (void)wal.append(rec);
    ++since_sync;
    if (options_.store.sync_policy == SyncPolicy::kSync ||
        since_sync >= options_.sync_every) {
      (void)wal.sync();
      since_sync = 0;
    }
  }
  (void)wal.sync();
  return disk.persist_steps();
}

CrashConsistencyChecker::RunOutcome CrashConsistencyChecker::run_once(
    std::uint64_t crash_step, bool torn, std::size_t tear_at,
    AuditReport& report, CrashCheckerResult& result) {
  const auto history = make_workload(options_);
  SimDisk disk(options_.store.sector_size, options_.store.disk_sectors);
  WalStore wal(disk, options_.store);
  wal.format();
  if (crash_step != kNoCrash) {
    disk.set_crash_hook([&](std::uint64_t step, std::size_t /*sector*/,
                            std::size_t& tear) -> PersistAction {
      if (step != crash_step) return PersistAction::kPersist;
      if (!torn) return PersistAction::kCrashBefore;
      tear = tear_at;
      return PersistAction::kTear;
    });
  }

  // Drive the workload under the configured sync policy, tracking the
  // highest LSN the "agent" acked before the crash.
  store::Lsn max_acked = 0;
  std::uint64_t appended = 0;
  bool crashed = false;
  std::uint32_t since_sync = 0;
  for (const auto& rec : history) {
    const store::Lsn lsn = wal.append(rec);
    if (lsn == 0) {
      crashed = true;
      break;
    }
    ++appended;
    if (options_.store.sync_policy == SyncPolicy::kAsync) max_acked = lsn;
    ++since_sync;
    const bool boundary = options_.store.sync_policy == SyncPolicy::kSync ||
                          since_sync >= options_.sync_every;
    if (boundary) {
      since_sync = 0;
      if (wal.sync()) {
        if (options_.store.sync_policy != SyncPolicy::kAsync) {
          max_acked = wal.durable_lsn();
        }
      } else {
        crashed = true;
        break;
      }
    }
  }
  if (!crashed) {
    if (wal.sync()) {
      if (options_.store.sync_policy != SyncPolicy::kAsync) {
        max_acked = wal.durable_lsn();
      }
    } else {
      crashed = true;
    }
  }
  disk.clear_crash_hook();
  ++result.runs;
  if (torn && crashed) ++result.torn_runs;
  result.records_logged += appended;
  result.acked_before_crash += max_acked;

  // Recover twice from the post-crash media and require byte-identical
  // results before checking anything else.
  WalStore first(disk, options_.store);
  (void)first.recover();
  WalStore second(disk, options_.store);
  (void)second.recover();
  const std::string digest = first.state_digest();
  if (digest != second.state_digest()) {
    ++result.determinism_violations;
    report.add({InvariantId::kWalPrefixConsistent, crash_step, sim::kTimeZero,
                "store",
                "recovery is not deterministic: \"" + digest + "\" vs \"" +
                    second.state_digest() + "\""});
  }

  // The recovered database must equal fold(history[0..n]) for some n.
  const auto& recovered = first.state();
  store::RecoveredDb model;
  bool matched = false;
  std::uint64_t best_n = 0;
  if (recovered == model) {
    matched = true;
  }
  for (std::uint64_t n = 1; n <= appended; ++n) {
    fold(model, history[n - 1]);
    if (recovered == model) {
      matched = true;
      best_n = n;  // keep the largest matching prefix
    }
  }
  if (!matched) {
    ++result.prefix_violations;
    std::ostringstream detail;
    detail << "recovered state matches no prefix of the " << appended
           << "-record history (crash step " << crash_step
           << (torn ? ", torn" : ", clean") << "): " << digest;
    report.add({InvariantId::kWalPrefixConsistent, crash_step, sim::kTimeZero,
                "store", detail.str()});
  } else {
    result.records_recovered += best_n;
    if (best_n < max_acked) {
      const std::uint64_t lost = max_acked - best_n;
      if (options_.store.sync_policy == SyncPolicy::kAsync) {
        result.acked_lost += lost;  // the documented kAsync trade
      } else {
        ++result.ack_violations;
        result.acked_lost += lost;
        std::ostringstream detail;
        detail << "acked through lsn " << max_acked << " but recovery ("
               << to_string(options_.store.sync_policy)
               << ") reaches only lsn " << best_n << " (crash step "
               << crash_step << (torn ? ", torn)" : ", clean)");
        report.add({InvariantId::kDurableAckNotLost, crash_step,
                    sim::kTimeZero, "store", detail.str()});
      }
    }
  }
  return {crashed};
}

CrashCheckerResult CrashConsistencyChecker::enumerate(AuditReport& report) {
  CrashCheckerResult result;
  const std::uint64_t steps = dry_run_steps();
  result.crash_points = steps;
  // The no-crash control run: a completed workload must recover whole.
  (void)run_once(kNoCrash, false, 0, report, result);
  for (std::uint64_t step = 0; step < steps; ++step) {
    (void)run_once(step, false, 0, report, result);
    const std::size_t tear =
        1 + static_cast<std::size_t>(step) % (options_.store.sector_size - 1);
    (void)run_once(step, true, tear, report, result);
  }
  return result;
}

CrashCheckerResult CrashConsistencyChecker::fuzz(std::uint64_t budget,
                                                 AuditReport& report) {
  CrashCheckerResult result;
  const std::uint64_t steps = dry_run_steps();
  result.crash_points = steps;
  util::Rng rng(options_.seed ^ 0xF022u);
  for (std::uint64_t i = 0; i < budget; ++i) {
    const std::uint64_t step = rng.uniform(0, steps - 1);
    const bool torn = rng.chance(options_.tear_fraction);
    const std::size_t tear = static_cast<std::size_t>(
        rng.uniform(1, options_.store.sector_size - 1));
    (void)run_once(step, torn, tear, report, result);
  }
  return result;
}

}  // namespace mhrp::analysis
