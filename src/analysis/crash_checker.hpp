// CrashConsistencyChecker: a mini ALICE-style checker for the durable
// store. It runs a deterministic registration workload against a
// WalStore, crashes the simulated disk at chosen persist steps (clean
// cuts and torn sectors), recovers, and asserts two invariants:
//
//   kWalPrefixConsistent  the recovered database equals the state after
//                         some prefix of the logged history — never a
//                         reordered, merged, or fabricated state;
//   kDurableAckNotLost    under the durable sync policies, every
//                         registration the workload acked before the
//                         crash is present in that prefix. (kAsync runs
//                         count lost acks instead of flagging them — the
//                         loss is that policy's documented trade.)
//
// Crash points are named in the SimDisk's persist-step coordinate
// system, so `enumerate()` covers *every* point a crash could land in a
// given workload, and `fuzz()` samples (step, torn?, tear offset)
// triples from a seed for arbitrarily large budgets. Each recovery also
// re-runs recover() and requires a byte-identical state digest, pinning
// recovery determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/audit_report.hpp"
#include "store/store_options.hpp"
#include "store/wal_store.hpp"

namespace mhrp::analysis {

struct CrashCheckerOptions {
  store::StoreOptions store;     // geometry + snapshot cadence under test
  std::uint32_t workload_records = 200;  // mutations per run
  std::uint32_t mobiles = 8;     // distinct hosts the workload touches
  std::uint32_t sync_every = 4;  // group-commit size for kInterval/kAsync
  std::uint64_t seed = 0xD15C;   // workload + fuzz randomness
  /// Fraction of injected crashes that tear the sector instead of
  /// cutting cleanly before it (fuzz mode; enumerate does both).
  double tear_fraction = 0.5;
};

struct CrashCheckerResult {
  std::uint64_t runs = 0;              // crash scenarios executed
  std::uint64_t crash_points = 0;      // distinct persist steps covered
  std::uint64_t torn_runs = 0;
  std::uint64_t records_logged = 0;    // workload appends across runs
  std::uint64_t records_recovered = 0;
  std::uint64_t acked_before_crash = 0;
  std::uint64_t acked_lost = 0;        // > 0 only legal under kAsync
  std::uint64_t prefix_violations = 0;
  std::uint64_t ack_violations = 0;
  std::uint64_t determinism_violations = 0;

  [[nodiscard]] bool clean() const {
    return prefix_violations == 0 && ack_violations == 0 &&
           determinism_violations == 0;
  }
  [[nodiscard]] std::string summary() const;
};

class CrashConsistencyChecker {
 public:
  explicit CrashConsistencyChecker(const CrashCheckerOptions& options)
      : options_(options) {}

  /// Walk every persist step the workload generates (plus the no-crash
  /// run), injecting both a clean crash and a torn write at each.
  /// Violations are recorded into `report`.
  CrashCheckerResult enumerate(AuditReport& report);

  /// Sample `budget` random (persist step, torn?, tear offset) crash
  /// scenarios from the seeded stream.
  CrashCheckerResult fuzz(std::uint64_t budget, AuditReport& report);

 private:
  struct RunOutcome;
  RunOutcome run_once(std::uint64_t crash_step, bool torn,
                      std::size_t tear_at, AuditReport& report,
                      CrashCheckerResult& result);
  [[nodiscard]] std::uint64_t dry_run_steps();

  CrashCheckerOptions options_;
};

}  // namespace mhrp::analysis
