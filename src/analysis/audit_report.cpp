#include "analysis/audit_report.hpp"

#include <sstream>

namespace mhrp::analysis {

std::string AuditReport::to_string() const {
  std::ostringstream out;
  out << "AuditReport: " << total_ << " violation(s) over "
      << frames_audited << " frames / " << packets_audited << " datagrams ("
      << mhrp_packets_audited << " MHRP) / " << cache_audits
      << " cache audits\n";
  for (const InvariantInfo& inv : InvariantRegistry::all()) {
    const std::uint64_t n = count(inv.id);
    if (n == 0) continue;
    out << "  [" << inv.name << "] (" << inv.paper_ref << ") x" << n << ": "
        << inv.statement << "\n";
    if (const AuditViolation* v = first(inv.id)) {
      out << "    first offender";
      if (v->packet_id != 0) out << " packet #" << v->packet_id;
      if (!v->where.empty()) out << " at " << v->where;
      out << ", t=" << sim::format_time(v->when) << ":\n      " << v->detail
          << "\n";
    }
  }
  return out.str();
}

}  // namespace mhrp::analysis
