// FaultPlane: replays a FaultSchedule against a live simulation through
// the redesigned lifecycle API — net::Link::fail()/recover() and
// set_impairments(), node::Node::fail()/recover(), and
// core::MhrpAgent::reboot() — instead of the ad-hoc mutators the
// robustness tests used to poke. Targets are registered explicitly by
// the scenario layer (the plane knows nothing about topology builders),
// and every event is scheduled on the slab sim::EventQueue, so fault
// injection is exactly as deterministic as the rest of the run.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/agent.hpp"
#include "faults/fault_schedule.hpp"
#include "net/link.hpp"
#include "node/node.hpp"
#include "sim/executive.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"

namespace mhrp::faults {

struct FaultPlaneStats {
  std::uint64_t link_failures = 0;
  std::uint64_t link_recoveries = 0;
  std::uint64_t impairment_bursts = 0;
  std::uint64_t impairments_cleared = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t node_reboots = 0;
  std::uint64_t drop_windows_opened = 0;
  std::uint64_t drop_windows_closed = 0;
  std::uint64_t messages_dropped = 0;  // by the targeted drop filters
  std::uint64_t disk_error_windows = 0;  // kDiskReadError applied
};

class FaultPlane {
 public:
  /// `seed` drives the impairment draws on links this plane impairs (the
  /// schedule itself carries all scheduling randomness).
  FaultPlane(sim::Executive& sim, std::uint64_t seed);
  ~FaultPlane();

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // ---- Target registration (index order = schedule target ids) ----

  std::size_t add_link(net::Link& link);
  /// Register a node; when `agent` is non-null, a kNodeReboot event also
  /// runs the agent's §5.2 reboot (volatile state lost, home database
  /// per the event's preserve flag).
  std::size_t add_node(node::Node& node, core::MhrpAgent* agent = nullptr);

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Schedule every event of `schedule` on the simulator (absolute
  /// times). May be called once per schedule; targets must already be
  /// registered. Events whose target index is out of range throw.
  void load(const FaultSchedule& schedule);

  /// Apply one event immediately (tests use this for hand-driven
  /// injections; load() funnels through it too). Schedules the inverse
  /// event after `event.duration` when the duration is positive.
  void apply(const FaultEvent& event);

  /// Read while quiesced (between runs): under a sharded executive the
  /// counters are bumped from several shards and only settle at window
  /// boundaries.
  [[nodiscard]] const FaultPlaneStats& stats() const { return stats_; }
  /// Deterministic one-line stats rendering for replay digests.
  [[nodiscard]] std::string digest() const;

  /// Fired after each event is applied (and after the auto-scheduled
  /// inverse fires) — the scenario layer hangs its recovery metrics
  /// (time-to-reregister, packets lost per outage) off this.
  std::function<void(const FaultEvent&)> on_fault;

  /// Optional trace sink (nullptr = tracing off). When set, every
  /// applied event lands as an instant on the fault track.
  /// Observability only: it never changes injection behavior.
  void set_trace(telemetry::TraceCollector* trace) { trace_ = trace; }

 private:
  struct NodeTarget {
    node::Node* node = nullptr;
    core::MhrpAgent* agent = nullptr;
    /// Targeted-drop windows currently open (bit per drop FaultKind).
    std::uint8_t drop_mask = 0;
    bool filter_installed = false;
  };

  static std::uint8_t drop_bit(FaultKind kind);
  void bump(std::uint64_t FaultPlaneStats::*counter);
  void install_drop_filter(std::size_t target);
  [[nodiscard]] bool should_drop(const NodeTarget& t,
                                 const net::Packet& packet) const;

  sim::Executive& sim_;
  util::Rng rng_;
  std::vector<net::Link*> links_;
  std::vector<bool> impaired_;  // impairments installed (rng_ borrowed)
  std::vector<NodeTarget> nodes_;
  // Node-targeted events run on each node's shard; stats aggregate them.
  mutable std::mutex stats_mu_;
  FaultPlaneStats stats_;
  telemetry::TraceCollector* trace_ = nullptr;
};

}  // namespace mhrp::faults
