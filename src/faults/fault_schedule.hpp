// FaultSchedule: a deterministic list of fault events — link partitions
// and heals, impairment bursts, node crashes and reboots, targeted
// message drops — that a FaultPlane replays against a simulation. A
// schedule is either scripted (events appended by hand) or drawn from
// seeded Poisson processes over a horizon; either way it is a pure
// function of its inputs, so the same seed and the same schedule give a
// byte-identical run (the faults-active replay regression test asserts
// exactly that).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/link.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mhrp::faults {

enum class FaultKind : std::uint8_t {
  kLinkFail,     // partition a link (net::Link::fail)
  kLinkRecover,  // heal it (net::Link::recover)
  kLinkImpair,   // install a loss/delay/jitter/reorder/duplicate burst
  kLinkClear,    // remove the impairments
  kNodeCrash,    // node::Node::fail — both stack directions go silent
  kNodeReboot,   // node::Node::recover (+ core::MhrpAgent::reboot)
  kDropRegistration,     // drop §3 registration traffic at the node
  kDropLocationUpdates,  // drop §4.3 location updates at the node
  kDropIcmp,             // drop all ICMP at the node
  kDiskReadError,        // the node's store disk refuses reads
  kDiskReadClear,        // reads work again
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultEvent {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kLinkFail;
  /// Index into the FaultPlane's link registry (link faults) or node
  /// registry (node faults / message drops) — by index, not name, so the
  /// schedule stays independent of any particular topology builder.
  std::size_t target = 0;
  /// When > 0, the plane schedules the inverse event (recover, reboot,
  /// clear) this long after `at`.
  sim::Time duration = 0;
  /// Impairments installed by kLinkImpair.
  net::LinkImpairments impairments;
  /// kNodeReboot: whether the disk-persistent home-agent database (§2)
  /// survives the reboot.
  bool preserve_persistent_state = true;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Append one scripted event.
  void add(const FaultEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  // ---- Poisson generators ----
  //
  // Each draws exponential inter-arrival times from `rng` until
  // `horizon`, aiming every event at a uniformly drawn target in
  // [first_target, first_target + targets). All draws flow through the
  // caller's RNG, so the composition order of these calls is part of the
  // schedule's deterministic identity.

  /// Link outages at `rate_per_sec`, each lasting an exponential time
  /// with mean `mean_outage` (the heal is scheduled via duration).
  void append_poisson_link_outages(util::Rng& rng, sim::Time horizon,
                                   double rate_per_sec, sim::Time mean_outage,
                                   std::size_t first_target,
                                   std::size_t targets);

  /// Node crashes at `rate_per_sec`, each rebooting after an exponential
  /// downtime with mean `mean_downtime`.
  void append_poisson_node_crashes(util::Rng& rng, sim::Time horizon,
                                   double rate_per_sec, sim::Time mean_downtime,
                                   std::size_t first_target,
                                   std::size_t targets,
                                   bool preserve_persistent_state = true);

  /// Impairment bursts (loss/delay/jitter/...) at `rate_per_sec`, each
  /// cleared after an exponential burst length with mean `mean_burst`.
  void append_poisson_impairment_bursts(util::Rng& rng, sim::Time horizon,
                                        double rate_per_sec,
                                        sim::Time mean_burst,
                                        const net::LinkImpairments& burst,
                                        std::size_t first_target,
                                        std::size_t targets);

  /// Deterministic one-line-per-event rendering (replay tests and debug
  /// logs compare these).
  [[nodiscard]] std::string digest() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace mhrp::faults
