#include "faults/fault_plane.hpp"

#include <sstream>
#include <stdexcept>

#include "core/registration.hpp"
#include "net/icmp.hpp"
#include "net/udp.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::faults {

FaultPlane::FaultPlane(sim::Executive& sim, std::uint64_t seed)
    : sim_(sim), rng_(seed) {}

FaultPlane::~FaultPlane() {
  // Release the links' references to rng_ before it dies.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (impaired_[i]) links_[i]->clear_impairments();
  }
}

std::size_t FaultPlane::add_link(net::Link& link) {
  links_.push_back(&link);
  impaired_.push_back(false);
  return links_.size() - 1;
}

std::size_t FaultPlane::add_node(node::Node& node, core::MhrpAgent* agent) {
  NodeTarget t;
  t.node = &node;
  t.agent = agent;
  nodes_.push_back(t);
  return nodes_.size() - 1;
}

void FaultPlane::bump(std::uint64_t FaultPlaneStats::*counter) {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  ++(stats_.*counter);
}

std::uint8_t FaultPlane::drop_bit(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropRegistration: return 1;
    case FaultKind::kDropLocationUpdates: return 2;
    case FaultKind::kDropIcmp: return 4;
    default: return 0;
  }
}

bool FaultPlane::should_drop(const NodeTarget& t,
                             const net::Packet& packet) const {
  const std::uint8_t proto = packet.header().protocol;
  if ((t.drop_mask & drop_bit(FaultKind::kDropRegistration)) != 0 &&
      proto == net::to_u8(net::IpProto::kUdp)) {
    try {
      if (net::decode_udp(packet.payload()).header.dst_port ==
          core::kRegistrationPort) {
        return true;
      }
    } catch (const util::CodecError&) {
    }
  }
  if (proto == net::to_u8(net::IpProto::kIcmp)) {
    if ((t.drop_mask & drop_bit(FaultKind::kDropIcmp)) != 0) return true;
    if ((t.drop_mask & drop_bit(FaultKind::kDropLocationUpdates)) != 0) {
      try {
        const net::IcmpMessage msg = net::decode_icmp(packet.payload());
        if (std::holds_alternative<net::IcmpLocationUpdate>(msg)) return true;
      } catch (const util::CodecError&) {
      }
    }
  }
  return false;
}

void FaultPlane::install_drop_filter(std::size_t target) {
  NodeTarget& t = nodes_[target];
  if (t.filter_installed) return;
  t.filter_installed = true;
  // One filter on each path a message can take through the node: local
  // delivery (a registration arriving at its agent) and the forwarding
  // path (a location update passing through a router).
  auto filter = [this, target](net::Packet& packet, net::Interface&) {
    NodeTarget& node = nodes_[target];
    if (node.drop_mask != 0 && should_drop(node, packet)) {
      bump(&FaultPlaneStats::messages_dropped);
      return node::Intercept::kConsumed;
    }
    return node::Intercept::kContinue;
  };
  t.node->add_local_interceptor(filter);
  t.node->add_interceptor(filter);
}

void FaultPlane::load(const FaultSchedule& schedule) {
  for (const FaultEvent& e : schedule.events()) {
    const bool is_link = e.kind == FaultKind::kLinkFail ||
                         e.kind == FaultKind::kLinkRecover ||
                         e.kind == FaultKind::kLinkImpair ||
                         e.kind == FaultKind::kLinkClear;
    if (is_link ? e.target >= links_.size() : e.target >= nodes_.size()) {
      throw std::out_of_range("FaultPlane: schedule targets unregistered " +
                              std::string(is_link ? "link" : "node"));
    }
    // Node-targeted events run on the node's own shard (its executive is
    // the shard view), so crash/reboot/drop windows mutate node state
    // from the right worker. Link events stay on the plane's executive —
    // shard 0 under sharding; link state is safe to flip from there
    // (Link::up_ is atomic, and visibility skew is bounded by the
    // lookahead window, see DESIGN.md §13).
    sim::Executive& target_sim = is_link ? sim_ : nodes_[e.target].node->sim();
    (void)target_sim.at(
        e.at, [this, e] { apply(e); }, sim::EventCategory::kFaultInjection);
  }
}

void FaultPlane::apply(const FaultEvent& event) {
  // For events with a duration, the inverse fires this long from now.
  auto schedule_inverse = [this, &event](FaultKind inverse_kind) {
    if (event.duration <= 0) return;
    FaultEvent inverse = event;
    inverse.kind = inverse_kind;
    inverse.at = sim_.now() + event.duration;
    inverse.duration = 0;
    (void)sim_.after(
        event.duration, [this, inverse] { apply(inverse); },
        sim::EventCategory::kFaultInjection);
  };

  switch (event.kind) {
    case FaultKind::kLinkFail:
      links_.at(event.target)->fail();
      bump(&FaultPlaneStats::link_failures);
      schedule_inverse(FaultKind::kLinkRecover);
      break;
    case FaultKind::kLinkRecover:
      links_.at(event.target)->recover();
      bump(&FaultPlaneStats::link_recoveries);
      break;
    case FaultKind::kLinkImpair:
      links_.at(event.target)->set_impairments(event.impairments, rng_);
      impaired_.at(event.target) = true;
      bump(&FaultPlaneStats::impairment_bursts);
      schedule_inverse(FaultKind::kLinkClear);
      break;
    case FaultKind::kLinkClear:
      links_.at(event.target)->clear_impairments();
      impaired_.at(event.target) = false;
      bump(&FaultPlaneStats::impairments_cleared);
      break;
    case FaultKind::kNodeCrash: {
      NodeTarget& t = nodes_.at(event.target);
      t.node->fail();
      // The power goes at crash time, not reboot time: whatever the
      // store's volatile write cache held is lost *now*.
      if (t.agent != nullptr && t.agent->home_store() != nullptr) {
        t.agent->home_store()->crash();
      }
      bump(&FaultPlaneStats::node_crashes);
      schedule_inverse(FaultKind::kNodeReboot);
      break;
    }
    case FaultKind::kNodeReboot: {
      NodeTarget& t = nodes_.at(event.target);
      t.node->recover();
      // The node model keeps configuration across a crash; the agent's
      // volatile protocol state (§5.2) is what a reboot loses.
      if (t.agent != nullptr) t.agent->reboot(event.preserve_persistent_state);
      bump(&FaultPlaneStats::node_reboots);
      break;
    }
    case FaultKind::kDiskReadError: {
      NodeTarget& t = nodes_.at(event.target);
      if (t.agent != nullptr && t.agent->home_store() != nullptr) {
        t.agent->home_store()->disk().arm_read_errors();
        bump(&FaultPlaneStats::disk_error_windows);
        schedule_inverse(FaultKind::kDiskReadClear);
      }
      break;
    }
    case FaultKind::kDiskReadClear: {
      NodeTarget& t = nodes_.at(event.target);
      if (t.agent != nullptr && t.agent->home_store() != nullptr) {
        t.agent->home_store()->disk().clear_read_errors();
      }
      break;
    }
    case FaultKind::kDropRegistration:
    case FaultKind::kDropLocationUpdates:
    case FaultKind::kDropIcmp: {
      NodeTarget& t = nodes_.at(event.target);
      install_drop_filter(event.target);
      if (event.duration > 0) {
        // Opening a window; it closes by clearing the same bit.
        t.drop_mask = static_cast<std::uint8_t>(t.drop_mask |
                                                drop_bit(event.kind));
        bump(&FaultPlaneStats::drop_windows_opened);
        const FaultKind kind = event.kind;
        const std::size_t target = event.target;
        (void)sim_.after(
            event.duration,
            [this, kind, target] {
              nodes_[target].drop_mask =
                  static_cast<std::uint8_t>(nodes_[target].drop_mask &
                                            ~drop_bit(kind));
              bump(&FaultPlaneStats::drop_windows_closed);
            },
            sim::EventCategory::kFaultInjection);
      } else {
        // Duration zero toggles the window shut.
        t.drop_mask = static_cast<std::uint8_t>(t.drop_mask &
                                                ~drop_bit(event.kind));
        bump(&FaultPlaneStats::drop_windows_closed);
      }
      break;
    }
  }
  if (trace_ != nullptr) {
    trace_->instant(telemetry::TraceCategory::kFault,
                    to_string(event.kind).data(), sim_.now(), "target",
                    static_cast<double>(event.target), "duration_us",
                    static_cast<double>(event.duration));
  }
  if (on_fault) on_fault(event);
}

std::string FaultPlane::digest() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  std::ostringstream out;
  out << "faultplane links=" << links_.size() << " nodes=" << nodes_.size()
      << " linkfail=" << stats_.link_failures
      << " linkrec=" << stats_.link_recoveries
      << " bursts=" << stats_.impairment_bursts
      << " cleared=" << stats_.impairments_cleared
      << " crashes=" << stats_.node_crashes
      << " reboots=" << stats_.node_reboots
      << " dropwin=" << stats_.drop_windows_opened << "/"
      << stats_.drop_windows_closed
      << " dropped=" << stats_.messages_dropped
      << " diskerr=" << stats_.disk_error_windows << "\n";
  return out.str();
}

}  // namespace mhrp::faults
