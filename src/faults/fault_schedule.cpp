#include "faults/fault_schedule.hpp"

#include <algorithm>
#include <sstream>

namespace mhrp::faults {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkFail: return "link-fail";
    case FaultKind::kLinkRecover: return "link-recover";
    case FaultKind::kLinkImpair: return "link-impair";
    case FaultKind::kLinkClear: return "link-clear";
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeReboot: return "node-reboot";
    case FaultKind::kDropRegistration: return "drop-registration";
    case FaultKind::kDropLocationUpdates: return "drop-location-updates";
    case FaultKind::kDropIcmp: return "drop-icmp";
    case FaultKind::kDiskReadError: return "disk-read-error";
    case FaultKind::kDiskReadClear: return "disk-read-clear";
  }
  return "unknown";
}

namespace {

/// Draws Poisson arrival times over [0, horizon) and hands each one to
/// `emit(at, target, duration)`. One shared shape for all three
/// generators keeps the RNG consumption pattern identical.
template <typename Emit>
void poisson_arrivals(util::Rng& rng, sim::Time horizon, double rate_per_sec,
                      sim::Time mean_hold, std::size_t first_target,
                      std::size_t targets, Emit emit) {
  if (rate_per_sec <= 0.0 || targets == 0 || horizon <= 0) return;
  double at_s = 0.0;
  const double horizon_s = sim::to_seconds(horizon);
  while (true) {
    at_s += rng.exponential(1.0 / rate_per_sec);
    if (at_s >= horizon_s) return;
    const std::size_t target = first_target + rng.index(targets);
    const sim::Time hold = std::max<sim::Time>(
        1, sim::from_seconds(rng.exponential(sim::to_seconds(mean_hold))));
    emit(sim::from_seconds(at_s), target, hold);
  }
}

}  // namespace

void FaultSchedule::append_poisson_link_outages(util::Rng& rng,
                                                sim::Time horizon,
                                                double rate_per_sec,
                                                sim::Time mean_outage,
                                                std::size_t first_target,
                                                std::size_t targets) {
  poisson_arrivals(rng, horizon, rate_per_sec, mean_outage, first_target,
                   targets,
                   [this](sim::Time at, std::size_t target, sim::Time hold) {
                     FaultEvent e;
                     e.at = at;
                     e.kind = FaultKind::kLinkFail;
                     e.target = target;
                     e.duration = hold;
                     events_.push_back(e);
                   });
}

void FaultSchedule::append_poisson_node_crashes(util::Rng& rng,
                                                sim::Time horizon,
                                                double rate_per_sec,
                                                sim::Time mean_downtime,
                                                std::size_t first_target,
                                                std::size_t targets,
                                                bool preserve_persistent_state) {
  poisson_arrivals(
      rng, horizon, rate_per_sec, mean_downtime, first_target, targets,
      [this, preserve_persistent_state](sim::Time at, std::size_t target,
                                        sim::Time hold) {
        FaultEvent e;
        e.at = at;
        e.kind = FaultKind::kNodeCrash;
        e.target = target;
        e.duration = hold;
        e.preserve_persistent_state = preserve_persistent_state;
        events_.push_back(e);
      });
}

void FaultSchedule::append_poisson_impairment_bursts(
    util::Rng& rng, sim::Time horizon, double rate_per_sec,
    sim::Time mean_burst, const net::LinkImpairments& burst,
    std::size_t first_target, std::size_t targets) {
  poisson_arrivals(rng, horizon, rate_per_sec, mean_burst, first_target,
                   targets,
                   [this, &burst](sim::Time at, std::size_t target,
                                  sim::Time hold) {
                     FaultEvent e;
                     e.at = at;
                     e.kind = FaultKind::kLinkImpair;
                     e.target = target;
                     e.duration = hold;
                     e.impairments = burst;
                     events_.push_back(e);
                   });
}

std::string FaultSchedule::digest() const {
  std::ostringstream out;
  out << "faultschedule n=" << events_.size() << "\n";
  for (const FaultEvent& e : events_) {
    out << e.at << " " << to_string(e.kind) << " target=" << e.target
        << " dur=" << e.duration;
    if (e.kind == FaultKind::kLinkImpair) {
      out << " loss=" << e.impairments.loss
          << " delay=" << e.impairments.extra_delay
          << " jitter=" << e.impairments.jitter
          << " dup=" << e.impairments.duplicate
          << " reorder=" << e.impairments.reorder;
    }
    if (e.kind == FaultKind::kNodeCrash || e.kind == FaultKind::kNodeReboot) {
      out << " preserve=" << (e.preserve_persistent_state ? 1 : 0);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mhrp::faults
