// Baseline 5 (paper §7): Perkins & Rekhter, IBM — mobility via the IP
// "loose source route and record" (LSRR) option.
//
// Each mobile host registers with a base station in the visited network.
// Everything the mobile host sends goes through the base station with an
// LSRR option, so the recorded route at the receiver names the path back
// through the base station; receivers save and reverse that route for
// their replies. Properties the paper criticizes, all reproduced:
//
//  * 8 bytes of option per packet in each direction (sender→mobile AND
//    mobile→sender) — measured by bench_overhead;
//  * option-bearing packets leave the router fast path: every forwarding
//    router must parse the options (the Node::Counters::options_slow_path
//    counter; bench_lsrr_slowpath measures the cycle cost);
//  * after a move, correspondents keep using the stale recorded route to
//    the old base station "until some application on that host needs to
//    send a normal IP packet to that destination" — i.e. until the mobile
//    host itself sends again (integration-tested).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "node/host.hpp"

namespace mhrp::baselines {

/// A base station: relays source-routed packets in both directions —
/// inbound to visiting mobile hosts, outbound from them toward the rest
/// of the internetwork.
class BaseStation {
 public:
  BaseStation(node::Node& node, net::Interface& local_iface);

  void add_visitor(net::IpAddress mobile_host);
  void remove_visitor(net::IpAddress mobile_host);
  [[nodiscard]] bool is_visiting(net::IpAddress mobile_host) const {
    return visiting_.contains(mobile_host);
  }
  /// Addresses known to be mobile hosts (visiting or not); packets
  /// source-routed to a known-but-absent mobile host get "host
  /// unreachable" rather than a doomed onward relay.
  void add_known_mobile(net::IpAddress mobile_host) {
    known_mobiles_.insert(mobile_host);
  }

  struct Stats {
    std::uint64_t relayed_inbound = 0;
    std::uint64_t relayed_outbound = 0;
    std::uint64_t unreachable_returned = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] node::Intercept on_local(net::Packet& packet,
                                         net::Interface& in);

  node::Node& node_;
  net::Interface& local_iface_;
  std::set<net::IpAddress> visiting_;
  std::set<net::IpAddress> known_mobiles_;
  Stats stats_;
};

/// Mobile-host side: sends everything through the current base station
/// with an LSRR option naming the true destination.
class IbmMobileHost {
 public:
  explicit IbmMobileHost(node::Host& host);

  /// Register with (move to) a base station.
  void set_base_station(net::IpAddress base_station) {
    base_station_ = base_station;
  }
  [[nodiscard]] net::IpAddress base_station() const { return base_station_; }

  /// Send a UDP datagram to `dst` via the base station, LSRR-routed so
  /// the receiver learns the return path.
  void send(net::IpAddress dst, std::uint16_t dst_port,
            std::vector<std::uint8_t> data);

 private:
  node::Host& host_;
  net::IpAddress base_station_;
};

/// Correspondent-side: records the reversed LSRR route of everything it
/// receives and replies along it — "hosts receiving a packet containing
/// an LSRR option are supposed to save and reverse the recorded route"
/// (paper §7). The paper notes many real stacks got this wrong; the
/// `faithful` flag reproduces a broken stack that ignores the option,
/// so replies go to the mobile host's home network and die.
class IbmCorrespondent {
 public:
  explicit IbmCorrespondent(node::Host& host, bool faithful = true);

  /// Send a UDP datagram, using the saved reverse route when one exists.
  void send(net::IpAddress dst, std::uint16_t dst_port,
            std::vector<std::uint8_t> data);

  [[nodiscard]] bool has_route_to(net::IpAddress dst) const {
    return reverse_routes_.contains(dst);
  }

 private:
  node::Host& host_;
  bool faithful_;
  std::map<net::IpAddress, std::vector<net::IpAddress>> reverse_routes_;
};

}  // namespace mhrp::baselines
