// Baseline 3 (paper §7): Teraoka et al., Sony — the Virtual Internet
// Protocol (SIGCOMM '91 / ICDCS '92).
//
// Every host has two addresses: a permanent "virtual" (VIP) address and a
// physical IP address that changes when it moves (a temporary address
// acquired in each visited network). *Every* packet carries a 28-byte VIP
// header in addition to the IP header — including packets to and from
// hosts sitting at home, which is the zero-overhead-at-home contrast
// bench_home_overhead draws against MHRP.
//
// Senders map VIP→physical through a cache; a cache miss sends the packet
// with physical = VIP, which routes to the home network, whose router
// fills in the real physical address and resends. Intermediate routers
// opportunistically cache (vip_src → physical_src) of packets they
// forward. On movement a flooding protocol removes router cache entries —
// "but some may remain": sender-host caches are not flooded at all, so a
// stale sender keeps hitting the old physical address; the wrong receiver
// discards the packet and returns an error that purges caches along the
// path, and the sender retransmits (all reproduced in the tests and
// bench_cache_convergence).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "node/host.hpp"

namespace mhrp::baselines {

/// UDP port for VIP registrations and invalidation flooding.
inline constexpr std::uint16_t kVipControlPort = 5320;

/// The 28-octet VIP header carried by every data packet.
struct VipHeader {
  std::uint8_t version = 1;
  std::uint8_t type = 0;       // 0 data, 1 error
  std::uint16_t checksum = 0;  // computed on encode
  net::IpAddress vip_src;
  net::IpAddress vip_dst;
  std::uint32_t transit_count = 0;
  std::uint32_t timestamp = 0;   // version stamp of the binding
  std::uint64_t reserved = 0;

  static constexpr std::size_t kSize = 28;

  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> transport) const;
  /// Decodes the header and returns the transport bytes that follow.
  static VipHeader decode(std::span<const std::uint8_t> payload,
                          std::vector<std::uint8_t>* transport);
};

/// Router-side VIP agent: opportunistic cache of vip → physical learned
/// from forwarded packets, authoritative bindings for home hosts,
/// address completion for unresolved packets, and flood handling.
class VipRouter {
 public:
  explicit VipRouter(node::Node& node);

  /// Declare `vip` as homed on this router's network; the router is the
  /// authority that completes unresolved packets for it.
  void add_home_host(net::IpAddress vip);

  /// Current binding for a home host (registration from the host).
  void set_home_binding(net::IpAddress vip, net::IpAddress physical,
                        std::uint32_t version);

  /// Flood neighbors with an invalidation for `vip` (called when a home
  /// host moves). Neighbors forward the flood once (sequence-deduped).
  void flood_invalidate(net::IpAddress vip, std::uint32_t version);

  void set_neighbors(std::vector<net::IpAddress> neighbors) {
    neighbors_ = std::move(neighbors);
  }

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] bool has_cached(net::IpAddress vip) const {
    return cache_.contains(vip);
  }

  struct Stats {
    std::uint64_t learned = 0;
    std::uint64_t completed = 0;  // unresolved packets given an address
    std::uint64_t floods_sent = 0;
    std::uint64_t floods_forwarded = 0;
    std::uint64_t invalidated = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Binding {
    net::IpAddress physical;
    std::uint32_t version = 0;
  };

  [[nodiscard]] node::Intercept on_forward(net::Packet& packet,
                                           net::Interface& in);
  void on_control(const net::UdpDatagram& datagram,
                  const net::IpHeader& header);

  node::Node& node_;
  std::vector<net::IpAddress> neighbors_;
  std::map<net::IpAddress, Binding> home_;   // authoritative
  std::map<net::IpAddress, Binding> cache_;  // opportunistic
  std::set<std::uint64_t> seen_floods_;      // (vip, version) dedupe
  Stats stats_;
};

/// Host-side VIP stack: adds the VIP header to everything sent, strips it
/// on receipt, keeps the sender cache, discards misdelivered packets with
/// an error that purges stale caches, and registers each new temporary
/// address with the home router.
class VipHost {
 public:
  VipHost(node::Host& host, net::IpAddress home_router);

  /// Send a UDP datagram to a VIP destination.
  void send(net::IpAddress vip_dst, std::uint16_t dst_port,
            std::vector<std::uint8_t> data);

  /// Moved: adopt `temp_addr` as the physical address (alias) and
  /// register it home, triggering the invalidation flood there.
  void move_to_physical(net::IpAddress temp_addr);

  /// Back home: physical = VIP again.
  void return_home();

  [[nodiscard]] net::IpAddress vip() const { return host_.primary_address(); }
  [[nodiscard]] net::IpAddress physical() const {
    return physical_.is_unspecified() ? vip() : physical_;
  }

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t misdelivered_discards = 0;
    std::uint64_t errors_received = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t registrations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Delivered application data (vip_src, transport bytes) callback.
  std::function<void(net::IpAddress, const std::vector<std::uint8_t>&)>
      on_data;

 private:
  struct LastSend {
    net::IpAddress vip_dst;
    std::uint16_t dst_port = 0;
    std::vector<std::uint8_t> data;
  };

  void on_vip(net::Packet& packet, net::Interface& iface);
  void transmit(const LastSend& send);

  node::Host& host_;
  net::IpAddress home_router_;
  net::IpAddress physical_;  // unspecified when at home
  std::uint32_t binding_version_ = 0;
  std::map<net::IpAddress, net::IpAddress> cache_;  // vip → physical
  std::map<net::IpAddress, LastSend> last_sent_;
  Stats stats_;
};

}  // namespace mhrp::baselines
