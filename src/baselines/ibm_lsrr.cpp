#include "baselines/ibm_lsrr.hpp"

#include <algorithm>

#include "net/udp.hpp"

namespace mhrp::baselines {

using net::IpAddress;
using net::Packet;

// ---- BaseStation ----

BaseStation::BaseStation(node::Node& node, net::Interface& local_iface)
    : node_(node), local_iface_(local_iface) {
  node_.add_local_interceptor([this](Packet& p, net::Interface& in) {
    return on_local(p, in);
  });
}

void BaseStation::add_visitor(IpAddress mobile_host) {
  visiting_.insert(mobile_host);
  known_mobiles_.insert(mobile_host);
}

void BaseStation::remove_visitor(IpAddress mobile_host) {
  visiting_.erase(mobile_host);
}

node::Intercept BaseStation::on_local(Packet& packet, net::Interface& in) {
  (void)in;
  auto* option =
      packet.header().find_option(net::IpOptionKind::kLooseSourceRoute);
  if (option == nullptr) return node::Intercept::kContinue;
  net::LsrrView view;
  try {
    view = net::parse_lsrr_option(*option);
  } catch (const util::CodecError&) {
    return node::Intercept::kContinue;
  }
  if (view.pointer_index >= view.route.size()) {
    return node::Intercept::kContinue;  // exhausted: genuinely for us
  }
  const IpAddress next = view.route[view.pointer_index];

  if (known_mobiles_.contains(next) && !visiting_.contains(next)) {
    // A correspondent is still using a recorded route through us for a
    // mobile host that moved away.
    ++stats_.unreachable_returned;
    node_.send_icmp_error(
        packet, net::IcmpUnreachable{net::UnreachCode::kHostUnreachable, {}});
    return node::Intercept::kConsumed;
  }

  // RFC 791 LSRR hop: swap destination and next entry, recording our own
  // address in the slot, and advance the pointer.
  view.route[view.pointer_index] = packet.header().dst;
  ++view.pointer_index;
  *option = net::make_lsrr_option(view.route, view.pointer_index);
  packet.header().dst = next;

  if (visiting_.contains(next)) {
    ++stats_.relayed_inbound;
    node_.send_ip_on(local_iface_, std::move(packet), next);
  } else {
    ++stats_.relayed_outbound;
    node_.send_ip(std::move(packet));
  }
  return node::Intercept::kConsumed;
}

// ---- IbmMobileHost ----

IbmMobileHost::IbmMobileHost(node::Host& host) : host_(host) {}

void IbmMobileHost::send(IpAddress dst, std::uint16_t dst_port,
                         std::vector<std::uint8_t> data) {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = host_.primary_address();
  if (base_station_.is_unspecified()) {
    h.dst = dst;  // at home: plain IP, no option, no overhead
  } else {
    h.dst = base_station_;
    h.options.push_back(net::make_lsrr_option({dst}, 0));
  }
  Packet p(h, net::encode_udp({dst_port, dst_port}, data));
  p.set_base_payload_size(p.payload().size());
  host_.send_ip(std::move(p));
}

// ---- IbmCorrespondent ----

IbmCorrespondent::IbmCorrespondent(node::Host& host, bool faithful)
    : host_(host), faithful_(faithful) {
  // Observe LSRR-bearing packets as they are delivered and save the
  // reversed route (non-consuming).
  host_.add_local_interceptor([this](Packet& p, net::Interface&) {
    if (!faithful_) return node::Intercept::kContinue;
    const auto* option =
        p.header().find_option(net::IpOptionKind::kLooseSourceRoute);
    if (option == nullptr) return node::Intercept::kContinue;
    try {
      net::LsrrView view = net::parse_lsrr_option(*option);
      if (view.pointer_index < view.route.size()) {
        return node::Intercept::kContinue;  // still in transit, not ours
      }
      // Recorded route holds the hops the packet came through; reverse
      // it for replies to the original source.
      std::vector<IpAddress> reversed(view.route.rbegin(), view.route.rend());
      reverse_routes_[p.header().src] = std::move(reversed);
    } catch (const util::CodecError&) {
    }
    return node::Intercept::kContinue;
  });
}

void IbmCorrespondent::send(IpAddress dst, std::uint16_t dst_port,
                            std::vector<std::uint8_t> data) {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = host_.primary_address();

  auto it = faithful_ ? reverse_routes_.find(dst) : reverse_routes_.end();
  if (it != reverse_routes_.end() && !it->second.empty()) {
    // First recorded hop (the base station) becomes the IP destination;
    // the remaining hops plus the true destination ride in the option.
    h.dst = it->second.front();
    std::vector<IpAddress> rest(it->second.begin() + 1, it->second.end());
    rest.push_back(dst);
    h.options.push_back(net::make_lsrr_option(rest, 0));
  } else {
    h.dst = dst;  // no saved route: plain IP toward the home network
  }
  Packet p(h, net::encode_udp({dst_port, dst_port}, data));
  p.set_base_payload_size(p.payload().size());
  host_.send_ip(std::move(p));
}

}  // namespace mhrp::baselines
