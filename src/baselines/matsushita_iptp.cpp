#include "baselines/matsushita_iptp.hpp"

#include "net/udp.hpp"
#include "util/byte_buffer.hpp"
#include "util/checksum.hpp"

namespace mhrp::baselines {

using net::IpAddress;
using net::Packet;

namespace {

struct PfsControl {
  IpAddress mobile_host;
  IpAddress temp_addr;

  [[nodiscard]] std::vector<std::uint8_t> encode() const {
    util::ByteWriter w(8);
    w.u32(mobile_host.raw());
    w.u32(temp_addr.raw());
    return w.take();
  }
  static PfsControl decode(std::span<const std::uint8_t> wire) {
    util::ByteReader r(wire);
    PfsControl m;
    m.mobile_host = IpAddress(r.u32());
    m.temp_addr = IpAddress(r.u32());
    return m;
  }
};

}  // namespace

Packet iptp_encapsulate(const Packet& inner, IpAddress outer_src,
                        IpAddress outer_dst, IpAddress mobile_host,
                        bool autonomous) {
  util::ByteWriter w(IptpHeader::kSize + inner.wire_size());
  IptpHeader h;
  h.mode = autonomous ? 1 : 0;
  h.mobile_host = mobile_host;
  w.u8(h.version);
  w.u8(h.mode);
  w.u16(0);  // checksum placeholder
  w.u32(h.session);
  w.u32(h.sequence);
  w.u32(h.mobile_host.raw());
  w.u32(h.reserved);
  w.patch_u16(2, util::internet_checksum(
                     w.view().subspan(0, IptpHeader::kSize)));
  auto inner_bytes = inner.serialize();
  w.bytes(inner_bytes);

  net::IpHeader outer;
  outer.protocol = net::to_u8(net::IpProto::kIptp);
  outer.src = outer_src;
  outer.dst = outer_dst;
  Packet p(outer, w.take());
  p.set_flow_id(inner.flow_id());
  p.set_created_at(inner.created_at());
  p.set_base_payload_size(inner.base_payload_size());
  p.note_wire_crossing(inner.max_wire_size());
  return p;
}

IptpDecapsulated iptp_decapsulate(const Packet& outer) {
  if (outer.payload().size() < IptpHeader::kSize) {
    throw util::CodecError("truncated IPTP header");
  }
  if (!util::checksum_ok(
          std::span(outer.payload()).subspan(0, IptpHeader::kSize))) {
    throw util::CodecError("IPTP checksum mismatch");
  }
  util::ByteReader r(outer.payload());
  IptpDecapsulated d;
  d.header.version = r.u8();
  d.header.mode = r.u8();
  r.skip(2);
  d.header.session = r.u32();
  d.header.sequence = r.u32();
  d.header.mobile_host = IpAddress(r.u32());
  d.header.reserved = r.u32();
  d.inner = Packet::deserialize(r.rest());
  d.inner.set_flow_id(outer.flow_id());
  d.inner.set_created_at(outer.created_at());
  d.inner.set_base_payload_size(outer.base_payload_size());
  d.inner.note_wire_crossing(outer.max_wire_size());
  return d;
}

// ---- Pfs ----

Pfs::Pfs(node::Node& node) : node_(node) {
  node_.add_interceptor([this](Packet& p, net::Interface& in) {
    return on_forward(p, in);
  });
  node_.bind_udp(kPfsPort,
                 [this](const net::UdpDatagram& d, const net::IpHeader& h,
                        net::Interface&) { on_udp(d, h); });
}

void Pfs::add_home_host(IpAddress mobile_host) {
  bindings_.emplace(mobile_host, net::kUnspecified);
}

void Pfs::set_temporary_address(IpAddress mobile_host, IpAddress temp_addr) {
  auto it = bindings_.find(mobile_host);
  if (it == bindings_.end()) return;
  it->second = temp_addr;
}

std::optional<IpAddress> Pfs::temporary_address(IpAddress mobile_host) const {
  auto it = bindings_.find(mobile_host);
  if (it == bindings_.end() || it->second.is_unspecified()) {
    return std::nullopt;
  }
  return it->second;
}

node::Intercept Pfs::on_forward(Packet& packet, net::Interface& in) {
  (void)in;
  auto it = bindings_.find(packet.header().dst);
  if (it == bindings_.end() || it->second.is_unspecified()) {
    return node::Intercept::kContinue;  // not ours / at home
  }
  ++stats_.tunnels_built;
  node_.send_ip(iptp_encapsulate(packet, node_.primary_address(), it->second,
                                 it->first, /*autonomous=*/false));
  return node::Intercept::kConsumed;
}

void Pfs::on_udp(const net::UdpDatagram& datagram,
                 const net::IpHeader& header) {
  (void)header;
  PfsControl m;
  try {
    m = PfsControl::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }
  ++stats_.registrations;
  set_temporary_address(m.mobile_host, m.temp_addr);
}

// ---- IptpMobileHost ----

IptpMobileHost::IptpMobileHost(node::Host& host, IpAddress pfs)
    : host_(host), pfs_(pfs) {
  host_.set_protocol_handler(net::IpProto::kIptp,
                             [this](Packet& p, net::Interface&) {
                               on_iptp(p);
                             });
}

void IptpMobileHost::move_to(IpAddress temp_addr) {
  if (!temp_addr_.is_unspecified()) host_.remove_address_alias(temp_addr_);
  temp_addr_ = temp_addr;
  host_.add_address_alias(temp_addr);
  PfsControl m{host_.primary_address(), temp_addr};
  auto bytes = m.encode();
  host_.send_udp(pfs_, kPfsPort, kPfsPort, bytes);
}

void IptpMobileHost::return_home() {
  if (!temp_addr_.is_unspecified()) {
    host_.remove_address_alias(temp_addr_);
    temp_addr_ = net::kUnspecified;
  }
  PfsControl m{host_.primary_address(), net::kUnspecified};
  auto bytes = m.encode();
  host_.send_udp(pfs_, kPfsPort, kPfsPort, bytes);
}

void IptpMobileHost::on_iptp(Packet& packet) {
  try {
    IptpDecapsulated d = iptp_decapsulate(packet);
    ++tunnels_received_;
    host_.send_ip(std::move(d.inner));  // re-enters local delivery
  } catch (const util::CodecError&) {
  }
}

// ---- IptpAutonomousSender ----

IptpAutonomousSender::IptpAutonomousSender(node::Host& host) : host_(host) {}

void IptpAutonomousSender::send(IpAddress mobile_host, std::uint16_t dst_port,
                                std::vector<std::uint8_t> data) {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = host_.primary_address();
  h.dst = mobile_host;
  Packet inner(h, net::encode_udp({kPfsPort, dst_port}, data));
  inner.set_base_payload_size(inner.payload().size());

  auto it = cache_.find(mobile_host);
  if (it == cache_.end()) {
    host_.send_ip(std::move(inner));  // forwarding mode: PFS intercepts
    return;
  }
  host_.send_ip(iptp_encapsulate(inner, host_.primary_address(), it->second,
                                 mobile_host, /*autonomous=*/true));
}

}  // namespace mhrp::baselines
