#include "baselines/columbia_ipip.hpp"

#include "net/udp.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::baselines {

using net::IpAddress;
using net::Packet;

namespace {

enum class MsrOp : std::uint8_t {
  kWhoServes = 1,   // multicast query: which MSR serves host X?
  kIServe = 2,      // answer
  kRegister = 3,    // mobile host → MSR
};

struct MsrMessage {
  MsrOp op = MsrOp::kWhoServes;
  IpAddress mobile_host;
  IpAddress msr;

  [[nodiscard]] std::vector<std::uint8_t> encode() const {
    util::ByteWriter w(9);
    w.u8(static_cast<std::uint8_t>(op));
    w.u32(mobile_host.raw());
    w.u32(msr.raw());
    return w.take();
  }
  static MsrMessage decode(std::span<const std::uint8_t> wire) {
    util::ByteReader r(wire);
    MsrMessage m;
    m.op = static_cast<MsrOp>(r.u8());
    m.mobile_host = IpAddress(r.u32());
    m.msr = IpAddress(r.u32());
    return m;
  }
};

}  // namespace

Packet ipip_encapsulate(const Packet& inner, IpAddress outer_src,
                        IpAddress outer_dst) {
  net::IpHeader outer;
  outer.protocol = net::to_u8(net::IpProto::kIpInIp);
  outer.src = outer_src;
  outer.dst = outer_dst;

  util::ByteWriter w(IpipShim::kSize + inner.wire_size());
  IpipShim shim;
  w.u8(shim.version);
  w.u8(shim.flags);
  w.u16(shim.reserved);
  auto inner_bytes = inner.serialize();
  w.bytes(inner_bytes);

  Packet p(outer, w.take());
  p.set_flow_id(inner.flow_id());
  p.set_created_at(inner.created_at());
  p.set_base_payload_size(inner.base_payload_size());
  // Carry forward accounting so end-to-end overhead is measured across
  // both the clear and the tunneled segments.
  p.note_wire_crossing(inner.max_wire_size());
  return p;
}

Packet ipip_decapsulate(const Packet& outer) {
  util::ByteReader r(outer.payload());
  r.skip(IpipShim::kSize);
  Packet inner = Packet::deserialize(r.rest());
  inner.set_flow_id(outer.flow_id());
  inner.set_created_at(outer.created_at());
  inner.set_base_payload_size(outer.base_payload_size());
  inner.note_wire_crossing(outer.max_wire_size());
  return inner;
}

// ---- Msr ----

Msr::Msr(node::Node& node, net::Interface& local_iface)
    : node_(node), local_iface_(local_iface) {
  node_.add_interceptor([this](Packet& p, net::Interface& in) {
    return on_forward(p, in);
  });
  node_.set_protocol_handler(net::IpProto::kIpInIp,
                             [this](Packet& p, net::Interface& in) {
                               on_ipip(p, in);
                             });
  node_.bind_udp(kMsrPort,
                 [this](const net::UdpDatagram& d, const net::IpHeader& h,
                        net::Interface&) { on_udp(d, h); });
}

void Msr::add_campus_host(IpAddress mobile_host) {
  campus_hosts_[mobile_host] = true;
}

void Msr::attach_visitor(IpAddress mobile_host) {
  visiting_[mobile_host] = true;
  serving_cache_[mobile_host] = node_.primary_address();
}

void Msr::detach_visitor(IpAddress mobile_host) {
  visiting_.erase(mobile_host);
}

void Msr::set_offsite_address(IpAddress mobile_host, IpAddress temp_addr) {
  offsite_[mobile_host] = temp_addr;
}

void Msr::clear_offsite_address(IpAddress mobile_host) {
  offsite_.erase(mobile_host);
}

node::Intercept Msr::on_forward(Packet& packet, net::Interface& in) {
  (void)in;
  const IpAddress dst = packet.header().dst;
  if (!campus_hosts_.contains(dst)) return node::Intercept::kContinue;

  if (visiting_.contains(dst)) {
    // The host is on our own network right now: deliver directly.
    ++stats_.delivered;
    node_.send_ip_on(local_iface_, std::move(packet), dst);
    return node::Intercept::kConsumed;
  }
  auto offsite = offsite_.find(dst);
  if (offsite != offsite_.end()) {
    // Off campus: tunnel to the temporary address; every packet takes the
    // triangle through this home MSR (no optimization, paper §7).
    tunnel_to(offsite->second, std::move(packet));
    return node::Intercept::kConsumed;
  }
  auto cached = serving_cache_.find(dst);
  if (cached != serving_cache_.end()) {
    tunnel_to(cached->second, std::move(packet));
    return node::Intercept::kConsumed;
  }
  discover_and_hold(dst, std::move(packet));
  return node::Intercept::kConsumed;
}

void Msr::tunnel_to(IpAddress target, Packet inner) {
  ++stats_.tunnels_built;
  node_.send_ip(ipip_encapsulate(inner, node_.primary_address(), target));
}

void Msr::discover_and_hold(IpAddress mobile_host, Packet packet) {
  ++stats_.packets_held;
  held_[mobile_host].push_back(std::move(packet));
  // The Columbia protocol multicasts among the MSRs; we model the
  // multicast as unicast fan-out, which is what it costs on a backbone
  // without multicast routing (and what the paper's scalability critique
  // counts).
  MsrMessage q;
  q.op = MsrOp::kWhoServes;
  q.mobile_host = mobile_host;
  q.msr = node_.primary_address();
  auto bytes = q.encode();
  for (IpAddress peer : peers_) {
    if (peer == node_.primary_address()) continue;
    ++stats_.queries_multicast;
    node_.send_udp(peer, kMsrPort, kMsrPort, bytes);
  }
}

void Msr::on_ipip(Packet& packet, net::Interface& in) {
  (void)in;
  Packet inner;
  try {
    inner = ipip_decapsulate(packet);
  } catch (const util::CodecError&) {
    return;
  }
  const IpAddress dst = inner.header().dst;
  if (visiting_.contains(dst)) {
    ++stats_.delivered;
    node_.send_ip_on(local_iface_, std::move(inner), dst);
    return;
  }
  // Not here (stale cache at the home MSR): re-resolve from scratch.
  if (campus_hosts_.contains(dst) || serving_cache_.contains(dst)) {
    serving_cache_.erase(dst);
    discover_and_hold(dst, std::move(inner));
  }
}

void Msr::on_udp(const net::UdpDatagram& datagram,
                 const net::IpHeader& header) {
  MsrMessage m;
  try {
    m = MsrMessage::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }
  switch (m.op) {
    case MsrOp::kWhoServes: {
      if (!visiting_.contains(m.mobile_host)) return;
      ++stats_.queries_answered;
      MsrMessage reply;
      reply.op = MsrOp::kIServe;
      reply.mobile_host = m.mobile_host;
      reply.msr = node_.primary_address();
      auto bytes = reply.encode();
      node_.send_udp(header.src, kMsrPort, kMsrPort, bytes);
      return;
    }
    case MsrOp::kIServe: {
      serving_cache_[m.mobile_host] = m.msr;
      auto held = held_.find(m.mobile_host);
      if (held == held_.end()) return;
      auto packets = std::move(held->second);
      held_.erase(held);
      for (Packet& p : packets) tunnel_to(m.msr, std::move(p));
      return;
    }
    case MsrOp::kRegister: {
      attach_visitor(m.mobile_host);
      return;
    }
  }
}

// ---- ColumbiaMobileHost ----

ColumbiaMobileHost::ColumbiaMobileHost(node::Host& host, IpAddress home_msr)
    : host_(host), home_msr_(home_msr) {
  host_.set_protocol_handler(net::IpProto::kIpInIp,
                             [this](Packet& p, net::Interface&) {
                               on_ipip(p);
                             });
}

void ColumbiaMobileHost::register_with_msr(IpAddress msr) {
  if (!temp_addr_.is_unspecified()) {
    host_.remove_address_alias(temp_addr_);
    temp_addr_ = net::kUnspecified;
  }
  MsrMessage m;
  m.op = MsrOp::kRegister;
  m.mobile_host = host_.primary_address();
  m.msr = msr;
  auto bytes = m.encode();
  // Registration goes to the local MSR directly on the attached link.
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = host_.primary_address();
  h.dst = msr;
  Packet p(h, net::encode_udp({kMsrPort, kMsrPort}, bytes));
  for (const auto& iface : host_.interfaces()) {
    if (iface->attached()) {
      host_.send_ip_on(*iface, std::move(p), msr);
      break;
    }
  }
}

void ColumbiaMobileHost::register_offsite(IpAddress temp_addr) {
  temp_addr_ = temp_addr;
  host_.add_address_alias(temp_addr);
}

void ColumbiaMobileHost::on_ipip(Packet& packet) {
  try {
    Packet inner = ipip_decapsulate(packet);
    host_.send_ip(std::move(inner));  // loops back into local delivery
  } catch (const util::CodecError&) {
  }
}

}  // namespace mhrp::baselines
