#include "baselines/sony_vip.hpp"

#include "net/udp.hpp"
#include "util/byte_buffer.hpp"
#include "util/checksum.hpp"

namespace mhrp::baselines {

using net::IpAddress;
using net::Packet;

namespace {

enum class VipOp : std::uint8_t { kRegister = 1, kInvalidate = 2 };

struct VipControl {
  VipOp op = VipOp::kRegister;
  IpAddress vip;
  IpAddress physical;
  std::uint32_t version = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const {
    util::ByteWriter w(13);
    w.u8(static_cast<std::uint8_t>(op));
    w.u32(vip.raw());
    w.u32(physical.raw());
    w.u32(version);
    return w.take();
  }
  static VipControl decode(std::span<const std::uint8_t> wire) {
    util::ByteReader r(wire);
    VipControl m;
    m.op = static_cast<VipOp>(r.u8());
    m.vip = IpAddress(r.u32());
    m.physical = IpAddress(r.u32());
    m.version = r.u32();
    return m;
  }
};

std::uint64_t flood_key(IpAddress vip, std::uint32_t version) {
  return (std::uint64_t(vip.raw()) << 32) | version;
}

}  // namespace

std::vector<std::uint8_t> VipHeader::encode(
    std::span<const std::uint8_t> transport) const {
  util::ByteWriter w(kSize + transport.size());
  w.u8(version);
  w.u8(type);
  w.u16(0);  // checksum placeholder
  w.u32(vip_src.raw());
  w.u32(vip_dst.raw());
  w.u32(transit_count);
  w.u32(timestamp);
  w.u64(reserved);
  w.patch_u16(2, util::internet_checksum(w.view().subspan(0, kSize)));
  w.bytes(transport);
  return w.take();
}

VipHeader VipHeader::decode(std::span<const std::uint8_t> payload,
                            std::vector<std::uint8_t>* transport) {
  if (payload.size() < kSize) throw util::CodecError("truncated VIP header");
  if (!util::checksum_ok(payload.subspan(0, kSize))) {
    throw util::CodecError("VIP checksum mismatch");
  }
  util::ByteReader r(payload);
  VipHeader h;
  h.version = r.u8();
  h.type = r.u8();
  r.skip(2);
  h.vip_src = IpAddress(r.u32());
  h.vip_dst = IpAddress(r.u32());
  h.transit_count = r.u32();
  h.timestamp = r.u32();
  h.reserved = r.u64();
  if (transport != nullptr) *transport = r.bytes(r.remaining());
  return h;
}

// ---- VipRouter ----

VipRouter::VipRouter(node::Node& node) : node_(node) {
  node_.add_interceptor([this](Packet& p, net::Interface& in) {
    return on_forward(p, in);
  });
  node_.bind_udp(kVipControlPort,
                 [this](const net::UdpDatagram& d, const net::IpHeader& h,
                        net::Interface&) { on_control(d, h); });
}

void VipRouter::add_home_host(IpAddress vip) {
  home_[vip] = Binding{vip, 0};  // physical == vip while at home
}

void VipRouter::set_home_binding(IpAddress vip, IpAddress physical,
                                 std::uint32_t version) {
  home_[vip] = Binding{physical, version};
}

void VipRouter::flood_invalidate(IpAddress vip, std::uint32_t version) {
  seen_floods_.insert(flood_key(vip, version));
  cache_.erase(vip);
  VipControl m;
  m.op = VipOp::kInvalidate;
  m.vip = vip;
  m.version = version;
  auto bytes = m.encode();
  for (IpAddress neighbor : neighbors_) {
    ++stats_.floods_sent;
    node_.send_udp(neighbor, kVipControlPort, kVipControlPort, bytes);
  }
}

node::Intercept VipRouter::on_forward(Packet& packet, net::Interface& in) {
  (void)in;
  if (packet.header().protocol != net::to_u8(net::IpProto::kVip)) {
    return node::Intercept::kContinue;
  }
  VipHeader h;
  try {
    h = VipHeader::decode(packet.payload(), nullptr);
  } catch (const util::CodecError&) {
    return node::Intercept::kContinue;
  }
  // Learn the forward binding from traffic we carry.
  if (h.vip_src != packet.header().src) {
    auto& slot = cache_[h.vip_src];
    if (h.timestamp >= slot.version) {
      slot = Binding{packet.header().src, h.timestamp};
      ++stats_.learned;
    }
  }
  // Complete unresolved packets (physical == VIP) when we know better —
  // authoritatively for our home hosts, opportunistically from cache.
  if (packet.header().dst == h.vip_dst) {
    const Binding* binding = nullptr;
    auto at_home = home_.find(h.vip_dst);
    if (at_home != home_.end()) {
      binding = &at_home->second;
    } else {
      auto cached = cache_.find(h.vip_dst);
      if (cached != cache_.end()) binding = &cached->second;
    }
    if (binding != nullptr && binding->physical != packet.header().dst) {
      packet.header().dst = binding->physical;
      ++stats_.completed;
      node_.send_ip(std::move(packet));
      return node::Intercept::kConsumed;
    }
  }
  return node::Intercept::kContinue;
}

void VipRouter::on_control(const net::UdpDatagram& datagram,
                           const net::IpHeader& header) {
  (void)header;
  VipControl m;
  try {
    m = VipControl::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }
  switch (m.op) {
    case VipOp::kRegister:
      set_home_binding(m.vip, m.physical, m.version);
      flood_invalidate(m.vip, m.version);
      return;
    case VipOp::kInvalidate: {
      if (!seen_floods_.insert(flood_key(m.vip, m.version)).second) {
        return;  // already propagated this flood
      }
      cache_.erase(m.vip);
      ++stats_.invalidated;
      auto bytes = m.encode();
      for (IpAddress neighbor : neighbors_) {
        ++stats_.floods_forwarded;
        node_.send_udp(neighbor, kVipControlPort, kVipControlPort, bytes);
      }
      return;
    }
  }
}

// ---- VipHost ----

VipHost::VipHost(node::Host& host, IpAddress home_router)
    : host_(host), home_router_(home_router) {
  host_.set_protocol_handler(net::IpProto::kVip,
                             [this](Packet& p, net::Interface& i) {
                               on_vip(p, i);
                             });
}

void VipHost::send(IpAddress vip_dst, std::uint16_t dst_port,
                   std::vector<std::uint8_t> data) {
  LastSend s{vip_dst, dst_port, std::move(data)};
  last_sent_[vip_dst] = s;
  transmit(s);
}

void VipHost::transmit(const LastSend& send) {
  ++stats_.sent;
  VipHeader h;
  h.vip_src = vip();
  h.vip_dst = send.vip_dst;
  h.timestamp = binding_version_;

  auto transport =
      net::encode_udp({kVipControlPort, send.dst_port}, send.data);

  net::IpHeader ip;
  ip.protocol = net::to_u8(net::IpProto::kVip);
  ip.src = physical();
  // Cache hit → physical destination; miss → send with physical == VIP,
  // to be completed en route by the home network router.
  auto cached = cache_.find(send.vip_dst);
  ip.dst = cached == cache_.end() ? send.vip_dst : cached->second;

  Packet p(ip, h.encode(transport));
  p.set_base_payload_size(transport.size());
  host_.send_ip(std::move(p));
}

void VipHost::on_vip(Packet& packet, net::Interface& iface) {
  (void)iface;
  VipHeader h;
  std::vector<std::uint8_t> transport;
  try {
    h = VipHeader::decode(packet.payload(), &transport);
  } catch (const util::CodecError&) {
    return;
  }

  if (h.type == 1) {
    // Error message: a stale binding misdelivered our packet. Purge and
    // retransmit through the home network (Sony recovery).
    ++stats_.errors_received;
    cache_.erase(h.vip_dst);
    auto last = last_sent_.find(h.vip_dst);
    if (last != last_sent_.end()) {
      ++stats_.retransmits;
      transmit(last->second);
    }
    return;
  }

  if (h.vip_dst != vip()) {
    // Misdelivery: someone's cache still maps h.vip_dst to an address we
    // now hold. Discard and return an error to the sender (paper §7:
    // "An incorrect receiver discards the packet and returns an error
    // message to the sender").
    ++stats_.misdelivered_discards;
    VipHeader err;
    err.type = 1;
    err.vip_src = vip();
    err.vip_dst = h.vip_dst;  // the binding that is stale
    net::IpHeader ip;
    ip.protocol = net::to_u8(net::IpProto::kVip);
    ip.src = physical();
    ip.dst = packet.header().src;
    Packet reply(ip, err.encode({}));
    host_.send_ip(std::move(reply));
    return;
  }

  // Learn the reverse binding from received traffic.
  if (h.vip_src != packet.header().src) {
    cache_[h.vip_src] = packet.header().src;
  }
  ++stats_.received;
  if (on_data) on_data(h.vip_src, transport);
}

void VipHost::move_to_physical(IpAddress temp_addr) {
  if (!physical_.is_unspecified()) {
    host_.remove_address_alias(physical_);
  }
  physical_ = temp_addr;
  host_.add_address_alias(temp_addr);
  ++binding_version_;
  ++stats_.registrations;
  VipControl m;
  m.op = VipOp::kRegister;
  m.vip = vip();
  m.physical = temp_addr;
  m.version = binding_version_;
  auto bytes = m.encode();
  host_.send_udp(home_router_, kVipControlPort, kVipControlPort, bytes);
}

void VipHost::return_home() {
  if (!physical_.is_unspecified()) {
    host_.remove_address_alias(physical_);
    physical_ = net::kUnspecified;
  }
  ++binding_version_;
  ++stats_.registrations;
  VipControl m;
  m.op = VipOp::kRegister;
  m.vip = vip();
  m.physical = vip();
  m.version = binding_version_;
  auto bytes = m.encode();
  host_.send_udp(home_router_, kVipControlPort, kVipControlPort, bytes);
}

}  // namespace mhrp::baselines
