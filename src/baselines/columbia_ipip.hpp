// Baseline 2 (paper §7): Ioannidis et al., Columbia University —
// "IP-based protocols for mobile internetworking" (SIGCOMM '91).
//
// A set of Mobile Support Routers (MSRs) on the home campus advertise
// reachability to *all* of the campus's mobile hosts. A packet for a
// mobile host reaches some home MSR, which tunnels it IP-within-IP to the
// MSR currently serving the host. Properties the paper contrasts with
// MHRP, all reproduced here:
//
//  * 24 bytes of overhead per tunneled packet (a full new IP header plus
//    the IPIP shim) versus MHRP's 8/12 — measured by bench_overhead from
//    real serialized packets;
//  * when the serving MSR is not cached, the home MSR must discover it by
//    multicasting a query to every other MSR — control traffic that grows
//    with the MSR population (bench_scalability);
//  * optimized for movement inside the home campus: a host that leaves
//    the campus must obtain a temporary IP address, and every packet to
//    it is routed through its home MSR with no route optimization
//    (bench_route_optimization's "triangle forever" series).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "node/host.hpp"

namespace mhrp::baselines {

/// UDP port for MSR↔MSR queries and host registrations.
inline constexpr std::uint16_t kMsrPort = 5310;

/// The 4-octet shim following the outer IP header of an IPIP tunnel
/// packet, making the total added overhead 20 + 4 = 24 octets as the
/// paper states.
struct IpipShim {
  std::uint8_t version = 1;
  std::uint8_t flags = 0;
  std::uint16_t reserved = 0;

  static constexpr std::size_t kSize = 4;
};

/// Encapsulate `inner` IP-within-IP: the returned packet has a fresh
/// outer header src→dst and carries shim + serialized inner datagram.
[[nodiscard]] net::Packet ipip_encapsulate(const net::Packet& inner,
                                           net::IpAddress outer_src,
                                           net::IpAddress outer_dst);

/// Recover the inner datagram; throws util::CodecError if malformed.
[[nodiscard]] net::Packet ipip_decapsulate(const net::Packet& outer);

/// A Mobile Support Router. Every MSR of a campus knows its peers (the
/// multicast group); home MSRs intercept packets for the campus's mobile
/// hosts.
class Msr {
 public:
  Msr(node::Node& node, net::Interface& local_iface);

  /// Declare a mobile host as belonging to this campus (this MSR
  /// advertises reachability for it even while it roams).
  void add_campus_host(net::IpAddress mobile_host);

  /// Peers that participate in the serving-MSR discovery multicast.
  void set_peers(std::vector<net::IpAddress> peers) {
    peers_ = std::move(peers);
  }

  /// Registration by a mobile host now attached to this MSR's network.
  void attach_visitor(net::IpAddress mobile_host);
  void detach_visitor(net::IpAddress mobile_host);
  [[nodiscard]] bool is_visiting(net::IpAddress mobile_host) const {
    return visiting_.contains(mobile_host);
  }

  /// A campus host moved out of campus entirely: all its packets tunnel
  /// to this temporary address (no optimization, paper §7).
  void set_offsite_address(net::IpAddress mobile_host,
                           net::IpAddress temp_addr);
  void clear_offsite_address(net::IpAddress mobile_host);

  struct Stats {
    std::uint64_t tunnels_built = 0;
    std::uint64_t delivered = 0;
    std::uint64_t queries_multicast = 0;   // MSR-discovery fan-out messages
    std::uint64_t queries_answered = 0;
    std::uint64_t packets_held = 0;        // awaiting discovery
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] node::Intercept on_forward(net::Packet& packet,
                                           net::Interface& in);
  void on_ipip(net::Packet& packet, net::Interface& in);
  void on_udp(const net::UdpDatagram& datagram, const net::IpHeader& header);
  void tunnel_to(net::IpAddress target_msr, net::Packet inner);
  void discover_and_hold(net::IpAddress mobile_host, net::Packet packet);

  node::Node& node_;
  net::Interface& local_iface_;
  std::vector<net::IpAddress> peers_;
  std::map<net::IpAddress, bool> campus_hosts_;
  std::map<net::IpAddress, bool> visiting_;
  std::map<net::IpAddress, net::IpAddress> serving_cache_;  // host → MSR
  std::map<net::IpAddress, net::IpAddress> offsite_;        // host → temp addr
  std::map<net::IpAddress, std::vector<net::Packet>> held_;
  Stats stats_;
};

/// Mobile-host side: registers with the local MSR on each move. When the
/// host leaves the campus it must obtain a temporary address in the
/// visited network (contrast with MHRP, which never needs one).
class ColumbiaMobileHost {
 public:
  ColumbiaMobileHost(node::Host& host, net::IpAddress home_msr);

  /// Attached to a campus network served by `msr`.
  void register_with_msr(net::IpAddress msr);

  /// Out-of-campus: `temp_addr` was acquired in the visited network and
  /// the home MSR told to tunnel there. The host decapsulates locally.
  void register_offsite(net::IpAddress temp_addr);

 private:
  void on_ipip(net::Packet& packet);

  node::Host& host_;
  net::IpAddress home_msr_;
  net::IpAddress temp_addr_;
};

}  // namespace mhrp::baselines
