// Baseline 4 (paper §7): Wada et al., Matsushita — "Packet forwarding
// for mobile hosts" using the Internet Packet Transmission Protocol.
//
// A Packet Forwarding Server (PFS) on the mobile host's home network
// intercepts its packets and tunnels them to the temporary IP address the
// host acquired in the visited network. Tunneling adds a complete new IP
// header *plus* a separate 20-byte IPTP header: 40 bytes per packet, the
// largest of the protocols the paper compares. Two modes:
//
//  * forwarding mode — every packet triangles through the PFS; "route
//    optimization ... is not possible" (bench_route_optimization);
//  * autonomous mode — senders that know the temporary address tunnel
//    directly (still 40 bytes of overhead).
#pragma once

#include <cstdint>
#include <map>

#include "node/host.hpp"

namespace mhrp::baselines {

/// UDP port for PFS registrations.
inline constexpr std::uint16_t kPfsPort = 5330;

/// The 20-octet IPTP header that follows the new outer IP header.
struct IptpHeader {
  std::uint8_t version = 1;
  std::uint8_t mode = 0;  // 0 forwarding, 1 autonomous
  std::uint16_t checksum = 0;
  std::uint32_t session = 0;
  std::uint32_t sequence = 0;
  net::IpAddress mobile_host;
  std::uint32_t reserved = 0;

  static constexpr std::size_t kSize = 20;
};

/// Wrap `inner` in outer IP + IPTP: adds exactly 40 octets.
[[nodiscard]] net::Packet iptp_encapsulate(const net::Packet& inner,
                                           net::IpAddress outer_src,
                                           net::IpAddress outer_dst,
                                           net::IpAddress mobile_host,
                                           bool autonomous);

struct IptpDecapsulated {
  net::Packet inner;
  IptpHeader header;
};
[[nodiscard]] IptpDecapsulated iptp_decapsulate(const net::Packet& outer);

/// The Packet Forwarding Server on the home network.
class Pfs {
 public:
  explicit Pfs(node::Node& node);

  /// Declare a home mobile host (packets for it are intercepted while a
  /// temporary address is registered).
  void add_home_host(net::IpAddress mobile_host);

  /// Registration from the mobile host: its current temporary address
  /// (unspecified = back home, stop forwarding).
  void set_temporary_address(net::IpAddress mobile_host,
                             net::IpAddress temp_addr);

  [[nodiscard]] std::optional<net::IpAddress> temporary_address(
      net::IpAddress mobile_host) const;

  struct Stats {
    std::uint64_t tunnels_built = 0;
    std::uint64_t registrations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] node::Intercept on_forward(net::Packet& packet,
                                           net::Interface& in);
  void on_udp(const net::UdpDatagram& datagram, const net::IpHeader& header);

  node::Node& node_;
  std::map<net::IpAddress, net::IpAddress> bindings_;  // mh → temp (or 0)
  Stats stats_;
};

/// Mobile-host side: acquires/registers temporary addresses and
/// decapsulates IPTP tunnels terminating at them.
class IptpMobileHost {
 public:
  IptpMobileHost(node::Host& host, net::IpAddress pfs);

  /// Moved to a foreign network where `temp_addr` was acquired.
  void move_to(net::IpAddress temp_addr);
  /// Returned to the home network.
  void return_home();

  [[nodiscard]] std::uint64_t tunnels_received() const {
    return tunnels_received_;
  }

 private:
  void on_iptp(net::Packet& packet);

  node::Host& host_;
  net::IpAddress pfs_;
  net::IpAddress temp_addr_;
  std::uint64_t tunnels_received_ = 0;
};

/// Autonomous-mode sender: caches mobile→temporary bindings and tunnels
/// its own packets directly (learned out of band in the Matsushita
/// design; here the scenario installs bindings explicitly).
class IptpAutonomousSender {
 public:
  explicit IptpAutonomousSender(node::Host& host);

  void learn_binding(net::IpAddress mobile_host, net::IpAddress temp_addr) {
    cache_[mobile_host] = temp_addr;
  }

  /// Send a UDP datagram, tunneling directly when a binding is cached
  /// (autonomous mode) and plainly otherwise (forwarding mode — the PFS
  /// will pick it up).
  void send(net::IpAddress mobile_host, std::uint16_t dst_port,
            std::vector<std::uint8_t> data);

 private:
  node::Host& host_;
  std::map<net::IpAddress, net::IpAddress> cache_;
};

}  // namespace mhrp::baselines
