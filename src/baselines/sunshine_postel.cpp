#include "baselines/sunshine_postel.hpp"

#include "net/udp.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::baselines {

using net::IpAddress;
using net::Packet;

namespace {

enum class SpOp : std::uint8_t { kQuery = 1, kQueryReply = 2, kRegister = 3 };

struct SpMessage {
  SpOp op = SpOp::kQuery;
  IpAddress mobile_host;
  IpAddress forwarder;

  [[nodiscard]] std::vector<std::uint8_t> encode() const {
    util::ByteWriter w(9);
    w.u8(static_cast<std::uint8_t>(op));
    w.u32(mobile_host.raw());
    w.u32(forwarder.raw());
    return w.take();
  }

  static SpMessage decode(std::span<const std::uint8_t> wire) {
    util::ByteReader r(wire);
    SpMessage m;
    m.op = static_cast<SpOp>(r.u8());
    m.mobile_host = IpAddress(r.u32());
    m.forwarder = IpAddress(r.u32());
    return m;
  }
};

}  // namespace

// ---- SpDatabase ----

SpDatabase::SpDatabase(node::Node& node) : node_(node) {
  node_.bind_udp(kSpDatabasePort,
                 [this](const net::UdpDatagram& d, const net::IpHeader& h,
                        net::Interface&) { on_udp(d, h); });
}

void SpDatabase::on_udp(const net::UdpDatagram& datagram,
                        const net::IpHeader& header) {
  SpMessage m;
  try {
    m = SpMessage::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }
  switch (m.op) {
    case SpOp::kRegister:
      ++stats_.registrations;
      table_[m.mobile_host] = m.forwarder;
      return;
    case SpOp::kQuery: {
      ++stats_.queries;
      SpMessage reply;
      reply.op = SpOp::kQueryReply;
      reply.mobile_host = m.mobile_host;
      auto it = table_.find(m.mobile_host);
      reply.forwarder = it == table_.end() ? net::kUnspecified : it->second;
      auto bytes = reply.encode();
      node_.send_udp(header.src, kSpDatabasePort, datagram.header.src_port,
                     bytes);
      return;
    }
    default:
      return;
  }
}

// ---- SpForwarder ----

SpForwarder::SpForwarder(node::Node& node, net::Interface& local_iface)
    : node_(node), local_iface_(local_iface) {
  node_.add_local_interceptor([this](Packet& p, net::Interface& in) {
    return on_local(p, in);
  });
}

void SpForwarder::add_visitor(IpAddress mobile_host) {
  visiting_[mobile_host] = true;
}

void SpForwarder::remove_visitor(IpAddress mobile_host) {
  visiting_.erase(mobile_host);
}

node::Intercept SpForwarder::on_local(Packet& packet, net::Interface& in) {
  (void)in;
  // Only source-routed packets whose next hop we must supply are ours.
  auto* option =
      packet.header().find_option(net::IpOptionKind::kLooseSourceRoute);
  if (option == nullptr) return node::Intercept::kContinue;
  net::LsrrView view;
  try {
    view = net::parse_lsrr_option(*option);
  } catch (const util::CodecError&) {
    return node::Intercept::kContinue;
  }
  if (view.pointer_index >= view.route.size()) {
    return node::Intercept::kContinue;  // route exhausted: really for us
  }
  const IpAddress next = view.route[view.pointer_index];
  if (!visiting_.contains(next)) {
    // The host moved away: tell the sender, who will re-query the global
    // database and retransmit (IEN 135 behavior).
    ++stats_.unreachable_returned;
    node_.send_icmp_error(
        packet, net::IcmpUnreachable{net::UnreachCode::kHostUnreachable, {}});
    return node::Intercept::kConsumed;
  }
  // RFC 791 LSRR hop processing: swap destination with the next route
  // entry, recording our own address in the vacated slot.
  view.route[view.pointer_index] = packet.header().dst;
  ++view.pointer_index;
  *option = net::make_lsrr_option(view.route, view.pointer_index);
  packet.header().dst = next;
  ++stats_.delivered;
  node_.send_ip_on(local_iface_, std::move(packet), next);
  return node::Intercept::kConsumed;
}

// ---- SpSender ----

SpSender::SpSender(node::Host& host, IpAddress database)
    : host_(host), database_(database) {
  host_.bind_udp(kSpDatabasePort,
                 [this](const net::UdpDatagram& d, const net::IpHeader& h,
                        net::Interface&) { on_udp(d, h); });
  host_.add_icmp_handler([this](const net::IcmpMessage& msg,
                                const net::IpHeader&, net::Interface&) {
    return on_icmp(msg);
  });
}

void SpSender::send(IpAddress mobile_host, std::uint16_t dst_port,
                    std::vector<std::uint8_t> data) {
  PendingSend pending{mobile_host, dst_port, std::move(data)};
  auto it = cache_.find(mobile_host);
  if (it != cache_.end()) {
    transmit_via(it->second, pending);
    return;
  }
  awaiting_[mobile_host].push_back(std::move(pending));
  query(mobile_host);
}

void SpSender::query(IpAddress mobile_host) {
  ++stats_.queries_sent;
  SpMessage q;
  q.op = SpOp::kQuery;
  q.mobile_host = mobile_host;
  auto bytes = q.encode();
  host_.send_udp(database_, kSpDatabasePort, kSpDatabasePort, bytes);
}

void SpSender::transmit_via(IpAddress forwarder, const PendingSend& send) {
  ++stats_.data_sent;
  last_sent_[send.mobile_host] = send;
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.dst = forwarder;
  h.options.push_back(net::make_lsrr_option({send.mobile_host}, 0));
  Packet p(h, net::encode_udp({kSpForwarderPort, send.dst_port}, send.data));
  p.set_base_payload_size(p.payload().size());
  host_.send_ip(std::move(p));
}

void SpSender::on_udp(const net::UdpDatagram& datagram,
                      const net::IpHeader& header) {
  if (header.src != database_) return;
  SpMessage m;
  try {
    m = SpMessage::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }
  if (m.op != SpOp::kQueryReply) return;
  if (m.forwarder.is_unspecified()) {
    awaiting_.erase(m.mobile_host);  // database does not know the host
    return;
  }
  cache_[m.mobile_host] = m.forwarder;
  auto it = awaiting_.find(m.mobile_host);
  if (it == awaiting_.end()) return;
  auto queue = std::move(it->second);
  awaiting_.erase(it);
  for (const PendingSend& pending : queue) {
    transmit_via(m.forwarder, pending);
  }
}

bool SpSender::on_icmp(const net::IcmpMessage& msg) {
  const auto* unreachable = std::get_if<net::IcmpUnreachable>(&msg);
  if (unreachable == nullptr) return false;
  // Recover the mobile destination from the quoted packet's LSRR option.
  net::IpHeader quoted_header;
  try {
    util::ByteReader r(unreachable->quoted);
    std::size_t total = 0;
    quoted_header = net::IpHeader::decode(r, &total);
  } catch (const util::CodecError&) {
    return false;
  }
  const auto* option =
      quoted_header.find_option(net::IpOptionKind::kLooseSourceRoute);
  if (option == nullptr) return false;
  net::LsrrView view;
  try {
    view = net::parse_lsrr_option(*option);
  } catch (const util::CodecError&) {
    return false;
  }
  if (view.pointer_index >= view.route.size()) return false;
  const IpAddress mobile_host = view.route[view.pointer_index];
  if (cache_.erase(mobile_host) == 0) return false;
  // IEN 135 recovery: consult the database again and retransmit the lost
  // datagram (we keep a copy of the last one per destination, standing in
  // for the transport layer's retransmission buffer).
  auto last = last_sent_.find(mobile_host);
  if (last != last_sent_.end()) {
    ++stats_.retransmits;
    awaiting_[mobile_host].push_back(last->second);
  }
  query(mobile_host);
  return true;
}

// ---- SpMobileNode ----

SpMobileNode::SpMobileNode(node::Host& host, IpAddress database)
    : host_(host), database_(database) {}

void SpMobileNode::register_forwarder(IpAddress forwarder) {
  ++registrations_sent_;
  SpMessage m;
  m.op = SpOp::kRegister;
  m.mobile_host = host_.primary_address();
  m.forwarder = forwarder;
  auto bytes = m.encode();
  host_.send_udp(database_, kSpForwarderPort, kSpDatabasePort, bytes);
}

}  // namespace mhrp::baselines
