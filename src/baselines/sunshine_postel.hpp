// Baseline 1 (paper §7): Sunshine & Postel, "Addressing mobile hosts in
// the ARPA Internet environment" (IEN 135, 1980).
//
// The protocol the paper summarizes: a *global database* records, for
// every mobile host, its current "forwarder". Senders query the database,
// then deliver packets to the forwarder via loose source routing; the
// forwarder hands them to the locally visiting host. After a move, the
// old forwarder answers arriving packets with "host unreachable"; the
// sender must re-query the database and retransmit.
//
// The paper's criticism — reproduced by bench_scalability — is the
// reliance on global state: every registration and every cold-start
// lookup crosses the network to one service, so control traffic at the
// database grows linearly with the number of mobile hosts and with
// sender population, where MHRP keeps per-organization state only.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "node/host.hpp"
#include "sim/timer.hpp"

namespace mhrp::baselines {

/// UDP port of the global location database service.
inline constexpr std::uint16_t kSpDatabasePort = 5300;
/// UDP port forwarders and mobile nodes use for registration.
inline constexpr std::uint16_t kSpForwarderPort = 5301;

/// The global database: one well-known host the whole internetwork
/// queries and registers with.
class SpDatabase {
 public:
  explicit SpDatabase(node::Node& node);

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t registrations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] net::IpAddress address() const {
    return node_.primary_address();
  }

 private:
  void on_udp(const net::UdpDatagram& datagram, const net::IpHeader& header);

  node::Node& node_;
  std::map<net::IpAddress, net::IpAddress> table_;  // mobile → forwarder
  Stats stats_;
};

/// A forwarder on some network: keeps the list of locally visiting
/// mobile hosts and relays source-routed packets to them. Returns ICMP
/// host unreachable for hosts that moved away.
class SpForwarder {
 public:
  SpForwarder(node::Node& node, net::Interface& local_iface);

  void add_visitor(net::IpAddress mobile_host);
  void remove_visitor(net::IpAddress mobile_host);
  [[nodiscard]] bool is_visiting(net::IpAddress mobile_host) const {
    return visiting_.contains(mobile_host);
  }

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t unreachable_returned = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] node::Intercept on_local(net::Packet& packet,
                                         net::Interface& in);

  node::Node& node_;
  net::Interface& local_iface_;
  std::map<net::IpAddress, bool> visiting_;
  Stats stats_;
};

/// Sender-side library: resolves a mobile destination through the global
/// database (with a local cache), source-routes data packets via the
/// forwarder, and re-queries + retransmits when the old forwarder says
/// "host unreachable".
class SpSender {
 public:
  SpSender(node::Host& host, net::IpAddress database);

  /// Send one UDP datagram to the mobile host, resolving as needed.
  void send(net::IpAddress mobile_host, std::uint16_t dst_port,
            std::vector<std::uint8_t> data);

  struct Stats {
    std::uint64_t queries_sent = 0;
    std::uint64_t data_sent = 0;
    std::uint64_t retransmits = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct PendingSend {
    net::IpAddress mobile_host;
    std::uint16_t dst_port;
    std::vector<std::uint8_t> data;
  };

  void on_udp(const net::UdpDatagram& datagram, const net::IpHeader& header);
  bool on_icmp(const net::IcmpMessage& msg);
  void transmit_via(net::IpAddress forwarder, const PendingSend& send);
  void query(net::IpAddress mobile_host);

  node::Host& host_;
  net::IpAddress database_;
  std::map<net::IpAddress, net::IpAddress> cache_;  // mobile → forwarder
  std::map<net::IpAddress, std::vector<PendingSend>> awaiting_;
  std::map<net::IpAddress, PendingSend> last_sent_;
  Stats stats_;
};

/// Mobile-node-side: registers the current forwarder with the global
/// database on every move.
class SpMobileNode {
 public:
  SpMobileNode(node::Host& host, net::IpAddress database);

  /// Called after attaching to the network served by `forwarder`.
  void register_forwarder(net::IpAddress forwarder);

  [[nodiscard]] std::uint64_t registrations_sent() const {
    return registrations_sent_;
  }

 private:
  node::Host& host_;
  net::IpAddress database_;
  std::uint64_t registrations_sent_ = 0;
};

}  // namespace mhrp::baselines
