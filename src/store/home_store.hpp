// HomeStore: the home agent's view of its durable database. Owns the
// SimDisk and WalStore and implements the sync *policy* — the knob that
// trades registration latency against durability (§4.3 discusses the
// home agent as the reliability anchor; this is the subsystem that makes
// the anchor survive a power cycle):
//
//   kSync     every logged mutation is synced before log() returns; the
//             ticket says "ack now" only when the sync survived. Crash
//             safety: an acked registration is always recovered.
//   kInterval group commit: mutations accumulate in the disk cache and a
//             periodic timer syncs them; tickets say "don't ack yet" and
//             the on_durable callback releases the deferred acks once
//             their LSN is durable. Same guarantee as kSync, amortized
//             sync cost, added ack latency.
//   kAsync    ack immediately, sync in the background. Fast and *unsafe*:
//             a crash between ack and sync loses an acked registration.
//             The crash-consistency checker quantifies exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/executive.hpp"
#include "sim/timer.hpp"
#include "store/sim_disk.hpp"
#include "store/store_options.hpp"
#include "store/wal_store.hpp"
#include "telemetry/trace.hpp"

namespace mhrp::store {

struct HomeStoreStats {
  std::uint64_t logged = 0;
  std::uint64_t acks_immediate = 0;  // ticket said ack_now
  std::uint64_t acks_deferred = 0;   // parked until a durable callback
  std::uint64_t interval_syncs = 0;  // timer-driven group commits
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
};

class HomeStore {
 public:
  /// What the caller may do with the mutation it just logged: `lsn` is
  /// the record's position (0 when the store is down), `ack_now` says
  /// whether the ack can be sent immediately or must wait for the
  /// on_durable callback to report `lsn` durable.
  struct Ticket {
    Lsn lsn = 0;
    bool ack_now = false;
  };

  /// Creates the disk and formats it (a fresh home agent). The simulator
  /// drives the interval-sync timer; with policy kSync no timer runs.
  HomeStore(sim::Executive& sim, const StoreOptions& options);
  ~HomeStore();

  HomeStore(const HomeStore&) = delete;
  HomeStore& operator=(const HomeStore&) = delete;

  /// Append one mutation per the sync policy. Down stores swallow the
  /// record (lsn 0, no ack) — the caller is mid-crash anyway.
  [[nodiscard]] Ticket log(const WalRecord& record);

  /// Force everything durable now (used at snapshot points and by tests).
  /// Returns false when the store is down or a crash was injected.
  [[nodiscard]] bool flush();

  /// Power-cut the device: the volatile cache is lost, the store goes
  /// inert, and the interval timer stops. Mirrors FaultKind::kNodeCrash.
  void crash();

  /// Mount after a crash (or a fresh boot): replays the longest valid
  /// prefix and re-arms the interval timer. The recovered rows are in
  /// `state()`; the agent rebuilds its map from them.
  [[nodiscard]] RecoveryStats recover();

  /// Wipe the device and start empty — the reboot(preserve=false) path
  /// and a replica rebuilt from scratch.
  void reset();

  /// Fired after a group commit with the new durable LSN; every deferred
  /// ack with lsn <= the argument may now be sent.
  std::function<void(Lsn)> on_durable;

  [[nodiscard]] bool down() const { return down_; }
  [[nodiscard]] SyncPolicy policy() const { return options_.sync_policy; }
  [[nodiscard]] const RecoveredDb& state() const { return wal_->state(); }
  [[nodiscard]] Lsn durable_lsn() const { return wal_->durable_lsn(); }
  [[nodiscard]] Lsn last_lsn() const { return wal_->last_lsn(); }
  [[nodiscard]] const HomeStoreStats& stats() const { return stats_; }
  [[nodiscard]] WalStore& wal() { return *wal_; }
  [[nodiscard]] const WalStore& wal() const { return *wal_; }
  [[nodiscard]] SimDisk& disk() { return *disk_; }
  [[nodiscard]] std::string digest() const;

  /// Optional trace sink (nullptr = tracing off). When set, the store
  /// emits "wal.commit" spans covering each group-commit window (first
  /// pending append -> sync) and "crash.recovery" spans (crash ->
  /// recover). Observability only: it never changes store behavior.
  void set_trace(telemetry::TraceCollector* trace) { trace_ = trace; }

 private:
  void interval_fire();
  void note_append();
  void note_synced(const char* reason);

  sim::Executive& sim_;
  StoreOptions options_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<WalStore> wal_;
  sim::PeriodicTimer sync_timer_;
  bool down_ = false;
  HomeStoreStats stats_;
  telemetry::TraceCollector* trace_ = nullptr;
  sim::Time pending_since_ = -1;  // first un-synced append; -1 = none
  sim::Time crashed_at_ = -1;
};

}  // namespace mhrp::store
