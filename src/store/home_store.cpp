#include "store/home_store.hpp"

#include <sstream>

namespace mhrp::store {

HomeStore::HomeStore(sim::Executive& sim, const StoreOptions& options)
    : sim_(sim),
      options_(options),
      disk_(std::make_unique<SimDisk>(options.sector_size,
                                      options.disk_sectors)),
      wal_(std::make_unique<WalStore>(*disk_, options)),
      sync_timer_(sim, options.sync_interval, [this] { interval_fire(); },
                  sim::EventCategory::kStoreSync) {
  wal_->format();
  if (options_.sync_policy != SyncPolicy::kSync &&
      options_.sync_interval > 0) {
    sync_timer_.start();
  }
}

HomeStore::~HomeStore() = default;

void HomeStore::note_append() {
  if (pending_since_ < 0) pending_since_ = sim_.now();
}

// Close the current group-commit window: everything appended since
// pending_since_ just became durable.
void HomeStore::note_synced(const char* reason) {
  if (pending_since_ < 0) return;
  if (trace_ != nullptr) {
    trace_->span(telemetry::TraceCategory::kStore, "wal.commit",
                 pending_since_, sim_.now(), "policy",
                 static_cast<double>(static_cast<int>(options_.sync_policy)),
                 reason, 1.0);
  }
  pending_since_ = -1;
}

HomeStore::Ticket HomeStore::log(const WalRecord& record) {
  if (down_) return {};
  const Lsn lsn = wal_->append(record);
  if (lsn == 0) {  // a forced compaction crashed under us
    crash();
    return {};
  }
  ++stats_.logged;
  note_append();
  switch (options_.sync_policy) {
    case SyncPolicy::kSync:
      if (!wal_->sync()) {
        crash();
        return {};  // never ack a registration the crash just ate
      }
      note_synced("sync");
      ++stats_.acks_immediate;
      return {lsn, true};
    case SyncPolicy::kInterval:
      ++stats_.acks_deferred;
      return {lsn, false};
    case SyncPolicy::kAsync:
      ++stats_.acks_immediate;
      return {lsn, true};
  }
  return {};
}

bool HomeStore::flush() {
  if (down_) return false;
  if (!wal_->sync()) {
    crash();
    return false;
  }
  note_synced("flush");
  return true;
}

void HomeStore::interval_fire() {
  if (down_) return;
  if (wal_->durable_lsn() == wal_->last_lsn()) return;  // nothing pending
  if (!wal_->sync()) {
    crash();
    return;
  }
  note_synced("interval");
  ++stats_.interval_syncs;
  if (on_durable) on_durable(wal_->durable_lsn());
}

void HomeStore::crash() {
  if (down_) return;
  down_ = true;
  ++stats_.crashes;
  crashed_at_ = sim_.now();
  pending_since_ = -1;  // the window's appends died with the cache
  sync_timer_.stop();
  disk_->crash();
}

RecoveryStats HomeStore::recover() {
  auto out = wal_->recover();
  down_ = false;
  ++stats_.recoveries;
  if (trace_ != nullptr && crashed_at_ >= 0) {
    trace_->span(telemetry::TraceCategory::kStore, "crash.recovery",
                 crashed_at_, sim_.now(), "records_replayed",
                 static_cast<double>(out.records_replayed));
  }
  crashed_at_ = -1;
  if (options_.sync_policy != SyncPolicy::kSync &&
      options_.sync_interval > 0) {
    sync_timer_.start();
  }
  return out;
}

void HomeStore::reset() {
  disk_->crash();  // drop any cached sectors from the previous life
  wal_->format();
  down_ = false;
  pending_since_ = -1;
  crashed_at_ = -1;
  if (options_.sync_policy != SyncPolicy::kSync &&
      options_.sync_interval > 0) {
    sync_timer_.start();
  }
}

std::string HomeStore::digest() const {
  std::ostringstream out;
  out << "store policy=" << to_string(options_.sync_policy)
      << (down_ ? " DOWN " : " ") << wal_->state_digest();
  return out.str();
}

}  // namespace mhrp::store
