#include "store/home_store.hpp"

#include <sstream>

namespace mhrp::store {

HomeStore::HomeStore(sim::Simulator& sim, const StoreOptions& options)
    : options_(options),
      disk_(std::make_unique<SimDisk>(options.sector_size,
                                      options.disk_sectors)),
      wal_(std::make_unique<WalStore>(*disk_, options)),
      sync_timer_(sim, options.sync_interval, [this] { interval_fire(); }) {
  wal_->format();
  if (options_.sync_policy != SyncPolicy::kSync &&
      options_.sync_interval > 0) {
    sync_timer_.start();
  }
}

HomeStore::~HomeStore() = default;

HomeStore::Ticket HomeStore::log(const WalRecord& record) {
  if (down_) return {};
  const Lsn lsn = wal_->append(record);
  if (lsn == 0) {  // a forced compaction crashed under us
    crash();
    return {};
  }
  ++stats_.logged;
  switch (options_.sync_policy) {
    case SyncPolicy::kSync:
      if (!wal_->sync()) {
        crash();
        return {};  // never ack a registration the crash just ate
      }
      ++stats_.acks_immediate;
      return {lsn, true};
    case SyncPolicy::kInterval:
      ++stats_.acks_deferred;
      return {lsn, false};
    case SyncPolicy::kAsync:
      ++stats_.acks_immediate;
      return {lsn, true};
  }
  return {};
}

bool HomeStore::flush() {
  if (down_) return false;
  if (!wal_->sync()) {
    crash();
    return false;
  }
  return true;
}

void HomeStore::interval_fire() {
  if (down_) return;
  if (wal_->durable_lsn() == wal_->last_lsn()) return;  // nothing pending
  if (!wal_->sync()) {
    crash();
    return;
  }
  ++stats_.interval_syncs;
  if (on_durable) on_durable(wal_->durable_lsn());
}

void HomeStore::crash() {
  if (down_) return;
  down_ = true;
  ++stats_.crashes;
  sync_timer_.stop();
  disk_->crash();
}

RecoveryStats HomeStore::recover() {
  auto out = wal_->recover();
  down_ = false;
  ++stats_.recoveries;
  if (options_.sync_policy != SyncPolicy::kSync &&
      options_.sync_interval > 0) {
    sync_timer_.start();
  }
  return out;
}

void HomeStore::reset() {
  disk_->crash();  // drop any cached sectors from the previous life
  wal_->format();
  down_ = false;
  if (options_.sync_policy != SyncPolicy::kSync &&
      options_.sync_interval > 0) {
    sync_timer_.start();
  }
}

std::string HomeStore::digest() const {
  std::ostringstream out;
  out << "store policy=" << to_string(options_.sync_policy)
      << (down_ ? " DOWN " : " ") << wal_->state_digest();
  return out.str();
}

}  // namespace mhrp::store
