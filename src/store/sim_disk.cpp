#include "store/sim_disk.hpp"

#include <algorithm>
#include <cstring>

namespace mhrp::store {

void SimDisk::check_readable(std::size_t at, std::size_t len) const {
  if (read_error_count_ == 0 || len == 0) return;
  const std::size_t first = at / sector_size_;
  const std::size_t last = (at + len - 1) / sector_size_;
  if (last >= read_error_first_ &&
      first < read_error_first_ + read_error_count_) {
    ++stats_.read_errors;
    throw DiskError("SimDisk: read error");
  }
}

void SimDisk::write(std::size_t at, std::span<const std::uint8_t> data) {
  check_range(at, data.size());
  ++stats_.writes;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t sector = (at + pos) / sector_size_;
    const std::size_t in_sector = (at + pos) % sector_size_;
    const std::size_t chunk =
        std::min(sector_size_ - in_sector, data.size() - pos);
    auto it = cache_.find(sector);
    if (it == cache_.end()) {
      // Seed the cached image from the current durable content so a
      // partial-sector write keeps the untouched bytes.
      std::vector<std::uint8_t> image(
          media_.begin() +
              static_cast<std::ptrdiff_t>(sector * sector_size_),
          media_.begin() +
              static_cast<std::ptrdiff_t>((sector + 1) * sector_size_));
      it = cache_.emplace(sector, std::move(image)).first;
      ++stats_.sectors_dirtied;
    }
    std::memcpy(it->second.data() + in_sector, data.data() + pos, chunk);
    pos += chunk;
  }
}

void SimDisk::read(std::size_t at, std::span<std::uint8_t> out) const {
  check_range(at, out.size());
  check_readable(at, out.size());
  ++stats_.reads;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t sector = (at + pos) / sector_size_;
    const std::size_t in_sector = (at + pos) % sector_size_;
    const std::size_t chunk =
        std::min(sector_size_ - in_sector, out.size() - pos);
    auto it = cache_.find(sector);
    const std::uint8_t* src =
        it != cache_.end() ? it->second.data() + in_sector
                           : media_.data() + sector * sector_size_ + in_sector;
    std::memcpy(out.data() + pos, src, chunk);
    pos += chunk;
  }
}

std::vector<std::uint8_t> SimDisk::read(std::size_t at,
                                        std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  read(at, std::span<std::uint8_t>(out));
  return out;
}

void SimDisk::read_durable(std::size_t at,
                           std::span<std::uint8_t> out) const {
  check_range(at, out.size());
  check_readable(at, out.size());
  ++stats_.reads;
  std::memcpy(out.data(), media_.data() + at, out.size());
}

bool SimDisk::sync() {
  // Persist in ascending sector order: deterministic, and the order the
  // crash-point coordinate system is defined over.
  while (!cache_.empty()) {
    auto it = cache_.begin();
    const std::size_t sector = it->first;
    if (crash_hook_) {
      std::size_t tear_at = sector_size_ / 2;
      const PersistAction action =
          crash_hook_(persist_step_, sector, tear_at);
      if (action == PersistAction::kCrashBefore) {
        crash();
        return false;
      }
      if (action == PersistAction::kTear) {
        const std::size_t n = std::min(tear_at, sector_size_);
        std::memcpy(media_.data() + sector * sector_size_,
                    it->second.data(), n);
        ++stats_.torn_sectors;
        ++persist_step_;
        crash();
        return false;
      }
    }
    std::memcpy(media_.data() + sector * sector_size_, it->second.data(),
                sector_size_);
    cache_.erase(it);
    ++stats_.sectors_persisted;
    ++persist_step_;
  }
  ++stats_.syncs;
  return true;
}

void SimDisk::crash() {
  cache_.clear();
  ++stats_.crashes;
}

}  // namespace mhrp::store
