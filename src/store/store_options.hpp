// Durability knobs for the home-agent store, factored into a dependency-
// free header so scenario::ProtocolOptions can embed them without pulling
// the store implementation into every world header.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace mhrp::store {

/// When a logged home-database mutation becomes durable relative to the
/// registration acknowledgment (§4.3: the agent must not promise a
/// binding it can lose).
enum class SyncPolicy : std::uint8_t {
  /// sync() after every append; the ack never races the disk. The §2
  /// "recorded on disk" reading with zero acked-then-lost registrations.
  kSync = 0,
  /// Group commit: appends accumulate in the write cache and a periodic
  /// timer syncs; acks are *deferred* until the record is durable, so
  /// the guarantee holds but registration latency grows by up to one
  /// sync interval.
  kInterval = 1,
  /// Ack immediately, sync in the background. Fastest, and the one
  /// policy that can lose an acknowledged registration on a crash — the
  /// crash-consistency checker and the E-store chaos series quantify
  /// exactly how many.
  kAsync = 2,
};

[[nodiscard]] constexpr const char* to_string(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kSync: return "sync";
    case SyncPolicy::kInterval: return "interval";
    case SyncPolicy::kAsync: return "async";
  }
  return "?";
}

struct StoreOptions {
  /// Attach a durable store to the home agent at all.
  bool enabled = false;
  SyncPolicy sync_policy = SyncPolicy::kSync;
  /// Group-commit period for kInterval / background-sync period for
  /// kAsync (ignored under kSync).
  sim::Time sync_interval = sim::millis(50);
  /// Log records between snapshot+compaction passes.
  std::uint32_t snapshot_every = 1024;

  // ---- Simulated disk geometry ----
  std::size_t sector_size = 512;
  std::size_t disk_sectors = 4096;
  /// Sectors reserved for EACH of the two snapshot regions; must hold
  /// 8 + 12 * max_mobile_hosts bytes.
  std::size_t snapshot_region_sectors = 256;
};

}  // namespace mhrp::store
