// SimDisk: a deterministic simulated block device — the "disk" of the
// paper's §2 requirement that the home agent's location database be
// "recorded on disk to survive any crashes and subsequent reboots".
//
// The model is the one crash-consistency literature assumes of real
// hardware: writes land in a volatile cache and become durable only at
// an explicit sync(), which persists dirty sectors one at a time in
// ascending order. A crash() loses everything still in the cache. Fault
// hooks make the interesting failure modes injectable and enumerable:
//
//  * a crash hook consulted before each sector persist during sync() —
//    the crash-consistency checker walks every such point, and can ask
//    for a *torn* persist (a prefix of the sector reaches the media);
//  * armed read errors, so recovery paths can be driven through
//    unreadable superblocks, snapshots, and log regions.
//
// Everything is synchronous and allocation-cheap; there is no real I/O
// and no wall-clock dependence, so store runs replay byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <vector>

namespace mhrp::store {

class DiskError : public std::runtime_error {
 public:
  explicit DiskError(const std::string& what) : std::runtime_error(what) {}
};

/// What the crash hook tells sync() to do with the next dirty sector.
enum class PersistAction : std::uint8_t {
  kPersist,      // write the sector to the media and continue
  kCrashBefore,  // crash now: this sector and everything after is lost
  kTear,         // persist only a prefix of the sector, then crash
};

struct SimDiskStats {
  std::uint64_t writes = 0;          // write() calls
  std::uint64_t sectors_dirtied = 0; // cache sectors touched by writes
  std::uint64_t reads = 0;
  std::uint64_t syncs = 0;           // completed sync() calls
  std::uint64_t sectors_persisted = 0;
  std::uint64_t crashes = 0;         // crash() calls + hook-induced crashes
  std::uint64_t torn_sectors = 0;
  std::uint64_t read_errors = 0;     // reads refused by an armed error
};

class SimDisk {
 public:
  /// `persist_step` is a monotone counter of sectors persisted over the
  /// disk's lifetime — the coordinate system crash points are named in.
  using CrashHook =
      std::function<PersistAction(std::uint64_t persist_step,
                                  std::size_t sector, std::size_t& tear_at)>;

  SimDisk(std::size_t sector_size, std::size_t sectors)
      : sector_size_(sector_size),
        media_(sector_size * sectors, std::uint8_t{0}) {
    if (sector_size == 0 || sectors == 0) {
      throw DiskError("SimDisk: zero geometry");
    }
  }

  [[nodiscard]] std::size_t sector_size() const { return sector_size_; }
  [[nodiscard]] std::size_t sectors() const {
    return media_.size() / sector_size_;
  }
  [[nodiscard]] std::size_t size_bytes() const { return media_.size(); }
  [[nodiscard]] const SimDiskStats& stats() const { return stats_; }

  /// Buffer `data` at byte offset `at` in the volatile write cache. The
  /// bytes are NOT durable until sync(). Out-of-range writes throw.
  void write(std::size_t at, std::span<const std::uint8_t> data);

  /// Read `out.size()` bytes at `at`, seeing cached writes over the
  /// media (what the firmware's cache would serve). Throws DiskError on
  /// an armed read error covering any touched sector.
  void read(std::size_t at, std::span<std::uint8_t> out) const;
  [[nodiscard]] std::vector<std::uint8_t> read(std::size_t at,
                                               std::size_t len) const;

  /// Read straight from the durable media, bypassing the cache — what a
  /// recovery sees after a crash. Same read-error behavior.
  void read_durable(std::size_t at, std::span<std::uint8_t> out) const;

  /// Persist dirty sectors in ascending sector order, consulting the
  /// crash hook (if any) before each. Returns false when the hook
  /// injected a crash mid-sync (the cache is dropped, as crash() does).
  bool sync();

  /// Power loss: every write still in the volatile cache is gone.
  void crash();

  [[nodiscard]] bool has_unsynced_writes() const { return !cache_.empty(); }
  [[nodiscard]] std::uint64_t persist_steps() const { return persist_step_; }

  // ---- Fault hooks ----

  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }
  void clear_crash_hook() { crash_hook_ = nullptr; }

  /// All reads touching sectors [first, first + count) throw DiskError
  /// until cleared. `count` of 0 arms the whole disk.
  void arm_read_errors(std::size_t first = 0, std::size_t count = 0) {
    read_error_first_ = first;
    read_error_count_ = count == 0 ? sectors() - first : count;
  }
  void clear_read_errors() { read_error_count_ = 0; }
  [[nodiscard]] bool read_errors_armed() const {
    return read_error_count_ != 0;
  }

  /// Flip one durable media byte (tests model latent sector corruption —
  /// a record that went bad *after* it was written).
  void corrupt_media(std::size_t at, std::uint8_t xor_mask = 0xFF) {
    if (at >= media_.size()) throw DiskError("SimDisk: corrupt out of range");
    media_[at] ^= xor_mask;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& media() const {
    return media_;
  }

 private:
  void check_range(std::size_t at, std::size_t len) const {
    if (at + len > media_.size() || at + len < at) {
      throw DiskError("SimDisk: access out of range");
    }
  }
  void check_readable(std::size_t at, std::size_t len) const;

  std::size_t sector_size_;
  std::vector<std::uint8_t> media_;  // durable content
  /// Dirty sectors: full sector images layered over the media.
  std::map<std::size_t, std::vector<std::uint8_t>> cache_;
  CrashHook crash_hook_;
  std::size_t read_error_first_ = 0;
  std::size_t read_error_count_ = 0;
  std::uint64_t persist_step_ = 0;
  mutable SimDiskStats stats_;
};

}  // namespace mhrp::store
