#include "store/wal_store.hpp"

#include <sstream>

#include "util/byte_buffer.hpp"
#include "util/checksum.hpp"

namespace mhrp::store {

namespace {

constexpr std::uint32_t kSuperMagic = 0x4D485753;  // "MHWS"
constexpr std::uint8_t kRecordMagic = 0xA5;
// The checksummed payload (magic..snapshot_crc); the trailing crc32 over
// exactly these bytes makes the on-disk superblock 4 bytes longer.
constexpr std::size_t kSuperblockBytes = 4 + 8 + 1 + 4 + 8 + 4;
constexpr std::size_t kRecordHeaderBytes = 1 + 1 + 2 + 8;  // magic..lsn
constexpr std::size_t kRecordPayloadBytes = 4 + 4 + 4;
constexpr std::size_t kRecordBytes =
    kRecordHeaderBytes + kRecordPayloadBytes + 4;

std::vector<std::uint8_t> encode_record(const WalRecord& r, Lsn lsn) {
  util::ByteWriter w(kRecordBytes);
  w.u8(kRecordMagic);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.u16(static_cast<std::uint16_t>(kRecordPayloadBytes));
  w.u64(lsn);
  w.u32(r.mobile_host.raw());
  w.u32(r.foreign_agent.raw());
  w.u32(r.sequence);
  auto bytes = w.take();
  const std::uint32_t crc = util::crc32(bytes);
  w.u32(crc);
  auto tail = w.take();
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  return bytes;
}

}  // namespace

WalStore::WalStore(SimDisk& disk, const StoreOptions& options)
    : disk_(&disk), options_(options) {
  const std::size_t ss = disk.sector_size();
  snapshot_region_bytes_ = options.snapshot_region_sectors * ss;
  log_start_ = (2 + 2 * options.snapshot_region_sectors) * ss;
  log_tail_ = log_start_;
  if (log_start_ + kRecordBytes > disk.size_bytes()) {
    throw DiskError("WalStore: disk too small for the configured layout");
  }
  if (kSuperblockBytes + 4 > ss) {
    throw DiskError("WalStore: sector smaller than a superblock");
  }
}

std::size_t WalStore::snapshot_offset(int region) const {
  return (2 + static_cast<std::size_t>(region) *
                  options_.snapshot_region_sectors) *
         disk_->sector_size();
}

void WalStore::write_superblock(int slot, const Superblock& sb) {
  util::ByteWriter w(kSuperblockBytes);
  w.u32(kSuperMagic);
  w.u64(sb.epoch);
  w.u8(sb.snapshot_region);
  w.u32(sb.snapshot_len);
  w.u64(sb.snapshot_lsn);
  w.u32(sb.snapshot_crc);
  auto bytes = w.take();
  const std::uint32_t crc = util::crc32(bytes);
  w.u32(crc);
  auto tail = w.take();
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  disk_->write(static_cast<std::size_t>(slot) * disk_->sector_size(), bytes);
}

std::optional<WalStore::Superblock> WalStore::read_superblock(
    int slot) const {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = disk_->read(
        static_cast<std::size_t>(slot) * disk_->sector_size(),
        kSuperblockBytes + 4);
  } catch (const DiskError&) {
    return std::nullopt;
  }
  try {
    util::ByteReader r(bytes);
    Superblock sb;
    if (r.u32() != kSuperMagic) return std::nullopt;
    sb.epoch = r.u64();
    sb.snapshot_region = r.u8();
    sb.snapshot_len = r.u32();
    sb.snapshot_lsn = r.u64();
    sb.snapshot_crc = r.u32();
    const std::uint32_t crc = r.u32();
    if (crc != util::crc32(std::span(bytes).first(kSuperblockBytes))) {
      return std::nullopt;
    }
    if (sb.snapshot_region > 1 ||
        sb.snapshot_len > snapshot_region_bytes_) {
      return std::nullopt;
    }
    return sb;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

std::optional<RecoveredDb> WalStore::load_snapshot(
    const Superblock& sb) const {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = disk_->read(snapshot_offset(sb.snapshot_region), sb.snapshot_len);
  } catch (const DiskError&) {
    return std::nullopt;
  }
  if (util::crc32(bytes) != sb.snapshot_crc) return std::nullopt;
  try {
    util::ByteReader r(bytes);
    const std::uint32_t count = r.u32();
    RecoveredDb db;
    for (std::uint32_t i = 0; i < count; ++i) {
      const net::IpAddress mobile(r.u32());
      RecoveredRow row;
      row.foreign_agent = net::IpAddress(r.u32());
      row.sequence = r.u32();
      db.emplace(mobile, row);
    }
    return db;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

void WalStore::format() {
  // Blank both superblock slots, then write epoch 1 (slot 1 = 1 % 2).
  const std::vector<std::uint8_t> zero(disk_->sector_size(), 0);
  disk_->write(0, zero);
  disk_->write(disk_->sector_size(), zero);
  Superblock sb;
  sb.epoch = 1;
  write_superblock(1, sb);
  (void)disk_->sync();
  current_sb_ = sb;
  state_.clear();
  next_lsn_ = 1;
  durable_lsn_ = 0;
  log_tail_ = log_start_;
  records_since_snapshot_ = 0;
  crashed_ = false;
}

RecoveryStats WalStore::recover() {
  RecoveryStats out;
  crashed_ = false;
  const auto sb0 = read_superblock(0);
  const auto sb1 = read_superblock(1);
  out.superblock_found = sb0.has_value() || sb1.has_value();

  Superblock chosen;  // epoch 0: nothing valid, recover from log alone
  if (sb0.has_value() && sb1.has_value()) {
    chosen = sb0->epoch >= sb1->epoch ? *sb0 : *sb1;
  } else if (sb0.has_value() || sb1.has_value()) {
    chosen = sb0.has_value() ? *sb0 : *sb1;
    // The other slot holds something unparsable (torn flip) rather than
    // the blank a fresh format leaves.
    std::vector<std::uint8_t> other;
    try {
      other = disk_->read(
          (sb0.has_value() ? 1u : 0u) * disk_->sector_size(),
          kSuperblockBytes + 4);
    } catch (const DiskError&) {
    }
    for (std::uint8_t b : other) {
      if (b != 0) {
        out.superblock_fallback = true;
        break;
      }
    }
  }

  state_.clear();
  Lsn base_lsn = 0;
  if (chosen.epoch != 0 && chosen.snapshot_len != 0) {
    if (auto db = load_snapshot(chosen)) {
      state_ = std::move(*db);
      out.snapshot_used = true;
      out.snapshot_lsn = chosen.snapshot_lsn;
      base_lsn = chosen.snapshot_lsn;
    } else {
      out.snapshot_unreadable = true;
      // The deltas in the log are meaningless without their base; stop
      // with an empty database rather than replaying onto the wrong one.
      current_sb_ = chosen;
      next_lsn_ = chosen.snapshot_lsn + 1;
      durable_lsn_ = chosen.snapshot_lsn;
      log_tail_ = log_start_;
      records_since_snapshot_ = 0;
      out.last_lsn = chosen.snapshot_lsn;
      return out;
    }
  }

  // Replay the longest valid prefix of the log.
  Lsn expected = base_lsn + 1;
  std::size_t offset = log_start_;
  while (offset + kRecordBytes <= disk_->size_bytes()) {
    std::vector<std::uint8_t> bytes;
    try {
      bytes = disk_->read(offset, kRecordBytes);
    } catch (const DiskError&) {
      out.stopped_at_invalid = true;
      break;
    }
    if (bytes[0] != kRecordMagic) break;  // clean end of log
    util::ByteReader r(bytes);
    WalRecord rec;
    Lsn lsn = 0;
    try {
      (void)r.u8();  // magic
      rec.kind = static_cast<WalRecord::Kind>(r.u8());
      const std::uint16_t len = r.u16();
      lsn = r.u64();
      if (len != kRecordPayloadBytes) {
        out.stopped_at_invalid = true;
        break;
      }
      rec.mobile_host = net::IpAddress(r.u32());
      rec.foreign_agent = net::IpAddress(r.u32());
      rec.sequence = r.u32();
      const std::uint32_t crc = r.u32();
      if (crc != util::crc32(std::span(bytes).first(kRecordBytes - 4))) {
        out.stopped_at_invalid = true;  // torn tail or corrupt record
        break;
      }
    } catch (const util::CodecError&) {
      out.stopped_at_invalid = true;
      break;
    }
    if (lsn != expected) break;  // stale pre-compaction leftover
    if (rec.kind != WalRecord::Kind::kProvision &&
        rec.kind != WalRecord::Kind::kBinding &&
        rec.kind != WalRecord::Kind::kErase) {
      out.stopped_at_invalid = true;
      break;
    }
    apply(rec);
    ++expected;
    ++out.records_replayed;
    offset += kRecordBytes;
  }

  current_sb_ = chosen;
  next_lsn_ = expected;
  durable_lsn_ = expected - 1;
  log_tail_ = offset;
  records_since_snapshot_ =
      static_cast<std::uint32_t>(out.records_replayed);
  out.last_lsn = expected - 1;
  return out;
}

void WalStore::apply(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kProvision:
      state_.emplace(record.mobile_host,
                     RecoveredRow{record.foreign_agent, record.sequence});
      break;
    case WalRecord::Kind::kBinding:
      state_[record.mobile_host] =
          RecoveredRow{record.foreign_agent, record.sequence};
      break;
    case WalRecord::Kind::kErase:
      state_.erase(record.mobile_host);
      break;
  }
}

Lsn WalStore::append(const WalRecord& record) {
  if (crashed_) return 0;
  if (!in_snapshot_ && log_tail_ + kRecordBytes > disk_->size_bytes()) {
    ++stats_.forced_snapshots;
    if (!snapshot()) return 0;  // crashed mid-compaction: store is down
  }
  const Lsn lsn = next_lsn_++;
  const auto bytes = encode_record(record, lsn);
  disk_->write(log_tail_, bytes);
  log_tail_ += bytes.size();
  apply(record);
  ++records_since_snapshot_;
  ++stats_.appends;
  stats_.bytes_appended += bytes.size();
  if (!in_snapshot_ && options_.snapshot_every != 0 &&
      records_since_snapshot_ >= options_.snapshot_every) {
    (void)snapshot();
  }
  return lsn;
}

bool WalStore::sync() {
  if (crashed_) return false;
  if (!disk_->sync()) {
    crashed_ = true;
    return false;
  }
  durable_lsn_ = next_lsn_ - 1;
  ++stats_.syncs;
  return true;
}

bool WalStore::snapshot() {
  if (crashed_) return false;
  if (in_snapshot_) return true;
  in_snapshot_ = true;
  util::ByteWriter w(4 + state_.size() * 12);
  w.u32(static_cast<std::uint32_t>(state_.size()));
  for (const auto& [mobile, row] : state_) {
    w.u32(mobile.raw());
    w.u32(row.foreign_agent.raw());
    w.u32(row.sequence);
  }
  const auto bytes = w.take();
  if (bytes.size() > snapshot_region_bytes_) {
    in_snapshot_ = false;
    throw DiskError("WalStore: snapshot exceeds its region; size the "
                    "store for the provisioned host count");
  }

  const int target = current_sb_.snapshot_region == 0 ? 1 : 0;
  disk_->write(snapshot_offset(target), bytes);
  // The snapshot region must be durable before any superblock points at
  // it; this sync also carries any still-cached log sectors (harmless).
  if (!disk_->sync()) {
    crashed_ = true;
    in_snapshot_ = false;
    return false;
  }

  Superblock sb;
  sb.epoch = current_sb_.epoch + 1;
  sb.snapshot_region = static_cast<std::uint8_t>(target);
  sb.snapshot_len = static_cast<std::uint32_t>(bytes.size());
  sb.snapshot_lsn = next_lsn_ - 1;
  sb.snapshot_crc = util::crc32(bytes);
  // Alternate slots by epoch so the flip overwrites the *older* copy and
  // a torn write can never destroy the only valid superblock.
  write_superblock(static_cast<int>(sb.epoch % 2), sb);
  if (!disk_->sync()) {
    crashed_ = true;
    in_snapshot_ = false;
    return false;
  }

  current_sb_ = sb;
  log_tail_ = log_start_;
  records_since_snapshot_ = 0;
  durable_lsn_ = next_lsn_ - 1;
  ++stats_.snapshots;
  in_snapshot_ = false;
  return true;
}

std::string WalStore::state_digest() const {
  std::ostringstream out;
  out << "wal lsn=" << last_lsn() << " durable=" << durable_lsn_
      << " rows=" << state_.size();
  for (const auto& [mobile, row] : state_) {
    out << " " << mobile << "->" << row.foreign_agent << "/" << row.sequence;
  }
  return out.str();
}

}  // namespace mhrp::store
