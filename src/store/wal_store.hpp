// WalStore: the durable home-agent database — a checksummed append-only
// write-ahead log of registration/deregistration records over a SimDisk,
// with periodic snapshot + log compaction and a recovery path that
// replays the longest valid prefix.
//
// On-disk layout (all integers big-endian, every region checksummed):
//
//   sector 0,1   two superblock copies. Each carries an epoch; recovery
//                takes the valid copy with the larger epoch, so a torn
//                superblock write can only lose the *newest* flip, never
//                both. Superblocks are rewritten alternately.
//   snapshot A/B two fixed regions, double-buffered. A compaction writes
//                the full database into the *inactive* region, syncs it,
//                then flips the superblock; a crash at any intermediate
//                step leaves the old superblock pointing at the old
//                snapshot + old log, which is still a consistent prefix.
//   log          append-only records from the first sector past the
//                snapshot regions to the end of the disk.
//
// Log record framing:  magic u8 | kind u8 | len u16 | lsn u64 |
//                      payload[len] | crc32 u32   (over everything
//                      before the crc). Recovery replays records while
//                      the magic, CRC, and LSN contiguity all hold and
//                      stops at the first violation — a torn tail, a
//                      corrupt record, or a stale record left over from
//                      before the last compaction (its LSN is not the
//                      expected successor) all end the valid prefix.
//
// The WalStore also keeps the materialized state (mobile -> row) in
// memory: appends apply to it, snapshots serialize it, and the agent's
// own map is rebuilt from it on recovery.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/ip_address.hpp"
#include "store/sim_disk.hpp"
#include "store/store_options.hpp"

namespace mhrp::store {

using Lsn = std::uint64_t;

/// One logged home-database mutation (§3 notifications as the home agent
/// records them): provision creates the row, binding moves it (a
/// foreign agent, zero for "at home", the detached sentinel for a
/// graceful disconnect), erase retires it (registration timeout).
struct WalRecord {
  enum class Kind : std::uint8_t {
    kProvision = 1,
    kBinding = 2,
    kErase = 3,
  };
  Kind kind = Kind::kBinding;
  net::IpAddress mobile_host;
  net::IpAddress foreign_agent;
  std::uint32_t sequence = 0;

  [[nodiscard]] bool operator==(const WalRecord&) const = default;
};

struct RecoveredRow {
  net::IpAddress foreign_agent;
  std::uint32_t sequence = 0;

  [[nodiscard]] bool operator==(const RecoveredRow&) const = default;
};

using RecoveredDb = std::map<net::IpAddress, RecoveredRow>;

struct RecoveryStats {
  bool superblock_found = false;   // any valid superblock at all
  bool superblock_fallback = false;  // newest copy invalid, older used
  bool snapshot_used = false;
  bool snapshot_unreadable = false;  // pointed-to snapshot failed checks
  Lsn snapshot_lsn = 0;            // LSN the snapshot covers through
  std::uint64_t records_replayed = 0;
  Lsn last_lsn = 0;                // highest LSN in the recovered state
  /// Why replay stopped: end-of-log (clean), or a framing/CRC/LSN
  /// violation (the discarded suffix began here).
  bool stopped_at_invalid = false;
};

struct WalStoreStats {
  std::uint64_t appends = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t syncs = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t forced_snapshots = 0;  // log region filled up
};

class WalStore {
 public:
  /// Binds to `disk` (which must outlive the store) without touching
  /// it. Call recover() to load existing state and position the log
  /// tail, or format() to initialize an empty store.
  WalStore(SimDisk& disk, const StoreOptions& options);

  WalStore(const WalStore&) = delete;
  WalStore& operator=(const WalStore&) = delete;

  /// Write empty superblocks and an empty log, then sync. The previous
  /// contents are unrecoverable afterwards (a replica rebuilt from
  /// scratch on a fresh disk).
  void format();

  /// Read superblocks, load the pointed-to snapshot, replay the longest
  /// valid log prefix, and position the tail so append() continues the
  /// sequence. Safe to call repeatedly; recovery mutates nothing on
  /// disk, so calling it twice yields byte-identical results.
  [[nodiscard]] RecoveryStats recover();

  /// Append one record to the log (volatile until the next sync()).
  /// Triggers snapshot+compaction when the configured record budget or
  /// the log region is exhausted. Returns the record's LSN.
  [[nodiscard]] Lsn append(const WalRecord& record);

  /// Make everything appended so far durable. Returns false when the
  /// disk's crash hook injected a crash mid-sync.
  [[nodiscard]] bool sync();

  /// Serialize the current state into the inactive snapshot region,
  /// flip the superblock, and logically truncate the log. Durable when
  /// it returns true (the flip is synced); false = crashed mid-way.
  [[nodiscard]] bool snapshot();

  /// True once a disk crash hook fired mid-sync: the "machine" is down
  /// and every append/sync/snapshot is inert until recover() or
  /// format() brings the store back up.
  [[nodiscard]] bool crashed() const { return crashed_; }

  [[nodiscard]] const RecoveredDb& state() const { return state_; }
  [[nodiscard]] Lsn last_lsn() const { return next_lsn_ - 1; }
  [[nodiscard]] Lsn durable_lsn() const { return durable_lsn_; }
  [[nodiscard]] const WalStoreStats& stats() const { return stats_; }
  [[nodiscard]] SimDisk& disk() { return *disk_; }

  /// Deterministic one-line rendering of the recovered/current state
  /// (tests compare recoveries byte-for-byte through this).
  [[nodiscard]] std::string state_digest() const;

  // Layout coordinates, exposed for the checker and for tests that
  // corrupt specific structures.
  [[nodiscard]] std::size_t log_start() const { return log_start_; }
  [[nodiscard]] std::size_t log_tail() const { return log_tail_; }
  [[nodiscard]] std::size_t snapshot_offset(int region) const;
  [[nodiscard]] std::size_t snapshot_capacity() const {
    return snapshot_region_bytes_;
  }

 private:
  struct Superblock {
    std::uint64_t epoch = 0;
    std::uint8_t snapshot_region = 0;  // 0/1, which region is live
    std::uint32_t snapshot_len = 0;    // 0 = no snapshot yet
    Lsn snapshot_lsn = 0;              // state covers LSNs <= this
    std::uint32_t snapshot_crc = 0;
  };

  void apply(const WalRecord& record);
  void write_superblock(int slot, const Superblock& sb);
  [[nodiscard]] std::optional<Superblock> read_superblock(int slot) const;
  [[nodiscard]] std::optional<RecoveredDb> load_snapshot(
      const Superblock& sb) const;

  SimDisk* disk_;
  StoreOptions options_;
  std::size_t snapshot_region_bytes_;
  std::size_t log_start_;
  std::size_t log_tail_;  // next append offset
  Superblock current_sb_;
  RecoveredDb state_;
  Lsn next_lsn_ = 1;
  Lsn durable_lsn_ = 0;
  std::uint32_t records_since_snapshot_ = 0;
  bool in_snapshot_ = false;  // re-entrancy guard (append during compaction)
  bool crashed_ = false;
  WalStoreStats stats_;
};

}  // namespace mhrp::store
