// RFC 1071 Internet checksum, used by the simulated IP, ICMP, UDP, and
// MHRP headers exactly as the real protocols use it.
#pragma once

#include <cstdint>
#include <span>

namespace mhrp::util {

/// One's-complement sum of 16-bit words over `data` (odd trailing byte is
/// padded with zero), folded to 16 bits. Returns the raw folded sum; use
/// `internet_checksum` for the complemented header field value.
[[nodiscard]] std::uint16_t ones_complement_sum(std::span<const std::uint8_t> data);

/// The value to place in a header checksum field: the one's complement of
/// the one's-complement sum computed with the checksum field set to zero.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// True when `data` (including its embedded checksum field) verifies,
/// i.e. the one's-complement sum over the whole region is 0xFFFF.
[[nodiscard]] bool checksum_ok(std::span<const std::uint8_t> data);

/// CRC-32 (IEEE 802.3 polynomial, reflected). The Internet checksum
/// misses reordered 16-bit words and compensating bit flips, which is
/// fine for a hop-by-hop header check but not for deciding where a
/// write-ahead log's valid prefix ends; the durable store uses this.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);

}  // namespace mhrp::util
