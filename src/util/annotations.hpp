// Source annotations read by the compiler and by tools/lint/mhrp-lint.
//
// Three families:
//
//  * MHRP_HOT_PATH marks the per-event functions the whole simulator's
//    throughput rides on (EventQueue schedule/cancel/pop, Link::transmit,
//    packet serialization). mhrp-lint forbids operator new, make_shared/
//    make_unique, and allocating container growth inside them — the slab
//    queue's zero-per-event-allocation property (DESIGN.md §8) is a
//    measured 2.7-3.3x and must not erode one push_back at a time.
//    Expands to [[gnu::hot]] so the optimizer hears about it too.
//
//  * MHRP_DETERMINISM_EXEMPT(reason) exempts one function from
//    mhrp-lint's determinism rules (wall-clock, unseeded RNG, unordered
//    iteration). The reason string is mandatory and should say why the
//    nondeterminism cannot reach replay digests.
//
//  * Clang thread-safety annotations (MHRP_GUARDED_BY & co.), compiled
//    under -Wthread-safety on Clang builds and inert elsewhere. The
//    sharded executive (ROADMAP item 1) will hand each shard its own
//    EventQueue + worker thread; annotating the executive's shared state
//    NOW means the shard refactor inherits machine-checked locking
//    discipline instead of retrofitting it. Until real locks exist,
//    ExecutiveSerial below is the capability: a phantom "I am the (only)
//    executive thread of this shard" token.
#pragma once

namespace mhrp::util {

// ---- Thread-safety analysis attributes (Clang only) ----

#if defined(__clang__) && (!defined(SWIG))
#define MHRP_TS_ATTR(x) __attribute__((x))
#else
#define MHRP_TS_ATTR(x)  // no-op outside Clang
#endif

#define MHRP_CAPABILITY(x) MHRP_TS_ATTR(capability(x))
#define MHRP_SCOPED_CAPABILITY MHRP_TS_ATTR(scoped_lockable)
#define MHRP_GUARDED_BY(x) MHRP_TS_ATTR(guarded_by(x))
#define MHRP_PT_GUARDED_BY(x) MHRP_TS_ATTR(pt_guarded_by(x))
#define MHRP_REQUIRES(...) MHRP_TS_ATTR(requires_capability(__VA_ARGS__))
#define MHRP_REQUIRES_SHARED(...) \
  MHRP_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define MHRP_ACQUIRE(...) MHRP_TS_ATTR(acquire_capability(__VA_ARGS__))
#define MHRP_RELEASE(...) MHRP_TS_ATTR(release_capability(__VA_ARGS__))
#define MHRP_TRY_ACQUIRE(...) \
  MHRP_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define MHRP_EXCLUDES(...) MHRP_TS_ATTR(locks_excluded(__VA_ARGS__))
#define MHRP_ASSERT_CAPABILITY(x) MHRP_TS_ATTR(assert_capability(x))
#define MHRP_RETURN_CAPABILITY(x) MHRP_TS_ATTR(lock_returned(x))
#define MHRP_NO_THREAD_SAFETY_ANALYSIS MHRP_TS_ATTR(no_thread_safety_analysis)

/// Phantom capability standing in for "the executive thread of this
/// shard". Today the simulator is single-threaded, so holding it is
/// trivially true and assert_held() compiles to nothing; once worker
/// threads land, each shard's loop asserts its own serial and
/// -Wthread-safety rejects any cross-shard touch of guarded state that
/// does not go through a real synchronization point (which will acquire
/// the capability for the analysis via MHRP_ACQUIRE/MHRP_RELEASE).
class MHRP_CAPABILITY("executive-serial") ExecutiveSerial {
 public:
  /// Zero-cost: tells the analysis (not the runtime) that the calling
  /// context is serialized on this shard's executive.
  void assert_held() const MHRP_ASSERT_CAPABILITY(this) {}
};

// ---- Hot-path marker ----

#if defined(__GNUC__) || defined(__clang__)
#define MHRP_HOT_PATH [[gnu::hot]]
#else
#define MHRP_HOT_PATH
#endif

// ---- Determinism exemption (lint marker only) ----

/// Exempts the enclosing function from mhrp-lint's determinism rules.
/// Place it in the function body (first statement, by convention). The
/// reason must explain why the nondeterminism cannot reach replay
/// digests. Expands to nothing; the linter matches it lexically.
#define MHRP_DETERMINISM_EXEMPT(reason) \
  static_assert(sizeof(reason) > 1, "exemption reason required")

}  // namespace mhrp::util
