// Bounds-checked big-endian (network byte order) serialization primitives.
//
// All wire formats in this project (IP, ICMP, UDP, MHRP, and the baseline
// protocols' headers) are encoded through ByteWriter and decoded through
// ByteReader so that every "overhead bytes" number reported by the
// benchmarks is measured from real serialized octets rather than asserted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mhrp::util {

/// Error thrown when a read or write would cross the end of a buffer, or
/// when decoded fields violate a format's invariants.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends integers and byte ranges to a growable buffer in network byte
/// order. The buffer can be taken out with `take()` once encoding is done.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Reserve capacity up front when the encoded size is known.
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Append `count` zero octets (padding).
  void zeros(std::size_t count) { buf_.insert(buf_.end(), count, 0); }

  /// Overwrite a previously written 16-bit field (e.g. a checksum or
  /// length slot) at byte offset `at`.
  void patch_u16(std::size_t at, std::uint16_t v) {
    if (at + 2 > buf_.size()) throw CodecError("patch_u16 out of range");
    buf_[at] = static_cast<std::uint8_t>(v >> 8);
    buf_[at + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }

  /// Move the encoded bytes out; the writer is left empty and reusable.
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

  /// Discard the contents but keep the capacity, so one writer can be
  /// reused across many encodes without reallocating (the per-packet
  /// audit and ICMP-quote paths lean on this).
  void clear() { buf_.clear(); }

  /// Drop everything past the first `size` bytes (no-op when already
  /// shorter). Used to cap ICMP error quotes at the configured limit.
  void truncate(std::size_t size) {
    if (size < buf_.size()) buf_.resize(size);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads integers and byte ranges from a fixed span in network byte order.
/// Every accessor throws CodecError instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t u16() {
    need(2);
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t count) {
    need(count);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return out;
  }

  void skip(std::size_t count) {
    need(count);
    pos_ += count;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  /// Remaining bytes without consuming them.
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return data_.subspan(pos_);
  }

 private:
  void need(std::size_t count) const {
    if (pos_ + count > data_.size()) {
      throw CodecError("ByteReader: truncated buffer (need " +
                       std::to_string(count) + " at offset " +
                       std::to_string(pos_) + ", size " +
                       std::to_string(data_.size()) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mhrp::util
