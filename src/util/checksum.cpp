#include "util/checksum.hpp"

#include <array>

namespace mhrp::util {

std::uint16_t ones_complement_sum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(~ones_complement_sum(data));
}

bool checksum_ok(std::span<const std::uint8_t> data) {
  return ones_complement_sum(data) == 0xFFFF;
}

namespace {

constexpr std::uint32_t kCrcPoly = 0xEDB88320u;  // reflected 0x04C11DB7

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? kCrcPoly ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mhrp::util
