// Minimal leveled logger. Examples turn tracing on to narrate protocol
// events; tests and benchmarks leave it off (the default) for speed.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace mhrp::util {

enum class LogLevel { kTrace = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: `LOG(kInfo) << "x=" << x;`
/// Implemented as a temporary that flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

inline LogLine log_trace() { return LogLine(LogLevel::kTrace); }
inline LogLine log_info() { return LogLine(LogLevel::kInfo); }
inline LogLine log_warn() { return LogLine(LogLevel::kWarn); }
inline LogLine log_error() { return LogLine(LogLevel::kError); }

}  // namespace mhrp::util
