// Deterministic random number generation. Every source of randomness in
// the simulator (workload inter-arrival times, movement schedules, link
// loss) flows through an Rng seeded by the scenario, so any run is exactly
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>

namespace mhrp::util {

/// Thin seedable wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d687270 /* "mhrp" */) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool chance(double p) { return real() < p; }

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  // mhrp-lint: allow(unseeded-rng) every constructor seeds this engine
  std::mt19937_64 engine_;
};

}  // namespace mhrp::util
