#include "routing/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace mhrp::routing {

ShortestPaths shortest_paths(const Graph& graph, int source) {
  const std::size_t n = graph.size();
  ShortestPaths sp;
  sp.distance.assign(n, ShortestPaths::kUnreachable);
  sp.predecessor.assign(n, -1);
  sp.first_hop.assign(n, -1);

  using Item = std::tuple<double, int>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  sp.distance[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    auto [dist, u] = heap.top();
    heap.pop();
    if (dist > sp.distance[static_cast<std::size_t>(u)]) continue;
    for (const Edge& e : graph[static_cast<std::size_t>(u)]) {
      const double candidate = dist + e.cost;
      auto& best = sp.distance[static_cast<std::size_t>(e.to)];
      // Strict improvement, or equal-cost tie broken by lower predecessor
      // id for determinism.
      if (candidate < best ||
          (candidate == best &&
           u < sp.predecessor[static_cast<std::size_t>(e.to)])) {
        best = candidate;
        sp.predecessor[static_cast<std::size_t>(e.to)] = u;
        heap.emplace(candidate, e.to);
      }
    }
  }

  // Derive first hops by walking predecessors back to the source.
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<int>(v) == source || !sp.reachable(static_cast<int>(v))) {
      continue;
    }
    int cursor = static_cast<int>(v);
    while (sp.predecessor[static_cast<std::size_t>(cursor)] != source) {
      cursor = sp.predecessor[static_cast<std::size_t>(cursor)];
    }
    sp.first_hop[v] = cursor;
  }
  return sp;
}

std::vector<int> path_to(const ShortestPaths& sp, int source, int target) {
  if (!sp.reachable(target)) return {};
  std::vector<int> path;
  for (int v = target; v != -1; v = sp.predecessor[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != source) return {};
  return path;
}

}  // namespace mhrp::routing
