// Longest-prefix-match IP routing table.
//
// Besides ordinary network routes, the table holds host-specific (/32)
// routes — the mechanism §3 of the paper suggests for covering a whole
// routing domain with one agent — and redirect-learned entries, which
// share this table exactly as §4.3 describes cache agents sharing the
// ICMP-redirect table ("with a different type field on the table entry").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip_address.hpp"

namespace mhrp::net {
class Interface;
}

namespace mhrp::routing {

/// Provenance of a route; doubles as replacement priority (a connected
/// route is never displaced by a dynamic one for the same prefix).
enum class RouteKind : std::uint8_t {
  kConnected,  // directly attached subnet
  kStatic,     // installed by topology setup ("converged standard routing")
  kDynamic,    // learned from the distance-vector protocol
  kHostSpecific,  // /32 advertised for a mobile host (paper §3)
  kRedirect,   // learned from ICMP redirect
};

struct Route {
  net::Prefix prefix;
  /// Next-hop router; unspecified means "directly connected, deliver on
  /// `iface` by ARP-resolving the final destination".
  net::IpAddress next_hop;
  net::Interface* iface = nullptr;
  int metric = 1;
  RouteKind kind = RouteKind::kStatic;
};

class RoutingTable {
 public:
  /// Insert or replace the route for `route.prefix`. A connected route is
  /// only replaced by another connected route.
  void install(const Route& route);

  void remove(const net::Prefix& prefix);

  /// Drop every route of the given kind (used by DV refresh and by
  /// host-specific route withdrawal).
  void remove_kind(RouteKind kind);

  /// Longest-prefix match. Returns nullptr when no route covers `dst`.
  [[nodiscard]] const Route* lookup(net::IpAddress dst) const;

  /// Exact-prefix fetch (tests, DV comparisons).
  [[nodiscard]] const Route* find(const net::Prefix& prefix) const;

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Every route, for diagnostics and DV advertisement.
  [[nodiscard]] std::vector<Route> routes() const;

  [[nodiscard]] std::string to_string() const;

 private:
  static std::uint32_t key_of(const net::Prefix& p) {
    return p.address().raw();
  }

  // One exact-match map per prefix length; LPM scans lengths descending.
  std::array<std::unordered_map<std::uint32_t, Route>, 33> by_length_;
  std::size_t count_ = 0;
};

}  // namespace mhrp::routing
