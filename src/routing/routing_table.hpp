// Longest-prefix-match IP routing table.
//
// Besides ordinary network routes, the table holds host-specific (/32)
// routes — the mechanism §3 of the paper suggests for covering a whole
// routing domain with one agent — and redirect-learned entries, which
// share this table exactly as §4.3 describes cache agents sharing the
// ICMP-redirect table ("with a different type field on the table entry").
//
// Each prefix holds a small stack of routes ordered by tier: connected
// routes outrank dynamically learned ones (DV, host-specific,
// redirect), which outrank the statically installed fallback. Lookup
// always answers with the best tier, so a DV-learned route overrides
// the static route for the same prefix while it is alive, and
// withdrawing it (remove_route) re-exposes the static fallback instead
// of blackholing — the substrate the routing::dv plane converges on.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip_address.hpp"

namespace mhrp::net {
class Interface;
}

namespace mhrp::routing {

/// Provenance of a route; determines its tier (see priority_of).
enum class RouteKind : std::uint8_t {
  kConnected,  // directly attached subnet
  kStatic,     // installed by topology setup ("converged standard routing")
  kDynamic,    // learned from the distance-vector protocol
  kHostSpecific,  // /32 advertised for a mobile host (paper §3)
  kRedirect,   // learned from ICMP redirect
};

/// Replacement/preference tier. Higher wins lookup; equal tiers replace
/// each other in place (a redirect and a DV-learned route for the same
/// prefix share one slot, as §4.3's shared table does).
constexpr int priority_of(RouteKind kind) {
  switch (kind) {
    case RouteKind::kConnected:
      return 3;
    case RouteKind::kDynamic:
    case RouteKind::kHostSpecific:
    case RouteKind::kRedirect:
      return 2;
    case RouteKind::kStatic:
      return 1;
  }
  return 0;
}

struct Route {
  net::Prefix prefix;
  /// Next-hop router; unspecified means "directly connected, deliver on
  /// `iface` by ARP-resolving the final destination".
  net::IpAddress next_hop;
  net::Interface* iface = nullptr;
  int metric = 1;
  RouteKind kind = RouteKind::kStatic;
};

class RoutingTable {
 public:
  /// Insert `route` into its tier for `route.prefix`: replaces any
  /// existing route of equal tier, shadows lower tiers, and is shadowed
  /// by higher ones (a connected route is never displaced by a dynamic
  /// or static install).
  void install(const Route& route);

  /// Drop every route for `prefix`, all tiers.
  void remove(const net::Prefix& prefix);

  /// Withdraw the route of exactly `kind`'s tier for `prefix`, if its
  /// occupant is of that kind; any lower-tier route (e.g. the static
  /// fallback under a DV-learned route) becomes active again. Returns
  /// true when a route was removed.
  bool remove_route(const net::Prefix& prefix, RouteKind kind);

  /// Update the metric of the `kind`-tier route for `prefix` in place
  /// (no reordering, next hop untouched). Returns false when no route
  /// of that kind exists.
  bool update_metric(const net::Prefix& prefix, RouteKind kind, int metric);

  /// Drop every route of the given kind (used by DV refresh and by
  /// host-specific route withdrawal).
  void remove_kind(RouteKind kind);

  /// Longest-prefix match on active (best-tier) routes. Returns nullptr
  /// when no route covers `dst`.
  [[nodiscard]] const Route* lookup(net::IpAddress dst) const;

  /// Exact-prefix fetch of the active route (tests, DV comparisons).
  [[nodiscard]] const Route* find(const net::Prefix& prefix) const;

  /// Exact fetch of the `kind`-tier route even when shadowed (tests).
  [[nodiscard]] const Route* find_kind(const net::Prefix& prefix,
                                       RouteKind kind) const;

  /// Number of distinct prefixes with at least one route.
  [[nodiscard]] std::size_t size() const { return count_; }

  /// The active route of every prefix, for diagnostics and DV
  /// advertisement. Shadowed fallback routes are not emitted.
  [[nodiscard]] std::vector<Route> routes() const;

  [[nodiscard]] std::string to_string() const;

 private:
  /// Routes for one prefix, descending tier; at most one per tier.
  using Slot = std::vector<Route>;

  static std::uint32_t key_of(const net::Prefix& p) {
    return p.address().raw();
  }

  // One exact-match map per prefix length; LPM scans lengths descending.
  std::array<std::unordered_map<std::uint32_t, Slot>, 33> by_length_;
  std::size_t count_ = 0;
};

}  // namespace mhrp::routing
