// Single-source shortest paths over an abstract weighted graph.
//
// The scenario layer uses this to model a *converged* standard IP routing
// system (paper §1: "the standard IP routing algorithms will deliver the
// packet to M's home network"): it computes shortest paths over the
// topology and installs static routes on every router. The benchmarks'
// hop counts therefore reflect optimal unicast paths, isolating the
// mobility protocols' own path stretch.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mhrp::routing {

struct Edge {
  int to = 0;
  double cost = 1.0;
};

/// Adjacency list; vertex ids are dense [0, n).
using Graph = std::vector<std::vector<Edge>>;

struct ShortestPaths {
  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();

  std::vector<double> distance;   // distance[v] from the source
  std::vector<int> predecessor;   // predecessor[v] on a shortest path; -1 at source/unreachable
  std::vector<int> first_hop;     // first vertex after the source toward v; -1 if none

  [[nodiscard]] bool reachable(int v) const {
    return distance[static_cast<std::size_t>(v)] != kUnreachable;
  }
};

/// Dijkstra from `source`. Ties are broken by vertex id so results are
/// deterministic across runs and platforms.
[[nodiscard]] ShortestPaths shortest_paths(const Graph& graph, int source);

/// The vertex sequence of a shortest path source→target (inclusive), or
/// empty when unreachable.
[[nodiscard]] std::vector<int> path_to(const ShortestPaths& sp, int source,
                                       int target);

}  // namespace mhrp::routing
