#include "routing/dv/dv_process.hpp"

#include <algorithm>

#include "util/byte_buffer.hpp"

namespace mhrp::routing::dv {

namespace {

// Update entry wire format (unchanged from the original node-level
// service, so captures stay comparable): prefix address (4), prefix
// length (1), metric (1).
constexpr std::size_t kEntrySize = 6;

/// How many advertisement rounds a withdrawn host route stays poisoned.
constexpr int kWithdrawRounds = 3;

/// Consecutive metric rises from the same next hop before a
/// counting-to-infinity episode is suspected.
constexpr int kRiseSuspicion = 3;

RouteKind kind_of(const net::Prefix& prefix) {
  return prefix.is_host_route() ? RouteKind::kHostSpecific
                                : RouteKind::kDynamic;
}

}  // namespace

DvProcess::DvProcess(node::Node& node, Options options,
                     std::uint64_t jitter_seed)
    : node_(node),
      options_(options),
      rng_(jitter_seed),
      periodic_(node.sim(),
                [this] {
                  ++stats_.periodic_rounds;
                  send_updates();
                  arm_periodic();
                },
                sim::EventCategory::kRouting),
      triggered_(node.sim(),
                 [this] {
                   ++stats_.triggered_updates;
                   send_updates();
                 },
                 sim::EventCategory::kRouting),
      sweep_(node.sim(), [this] { sweep(); }, sim::EventCategory::kRouting) {
  node_.bind_udp(kPort, [this](const net::UdpDatagram& d,
                               const net::IpHeader& h, net::Interface& i) {
    on_update(d, h, i);
  });
  // Chain (not clobber) the node's lifecycle hooks; the destructor
  // restores them, so processes must be destroyed in reverse
  // construction order — which scenario worlds, owning them in vectors
  // alongside the nodes, already do.
  chained_state_hook_ = node_.on_state_changed;
  node_.on_state_changed = [this](bool up) {
    if (chained_state_hook_) chained_state_hook_(up);
    handle_node_state(up);
  };
  chained_iface_hook_ = node_.on_interface_state;
  node_.on_interface_state = [this](net::Interface& iface, bool up) {
    if (chained_iface_hook_) chained_iface_hook_(iface, up);
    handle_link_state(iface, up);
  };
}

DvProcess::~DvProcess() {
  stop();
  node_.unbind_udp(kPort);
  node_.on_state_changed = std::move(chained_state_hook_);
  node_.on_interface_state = std::move(chained_iface_hook_);
}

void DvProcess::start() {
  if (running_) return;
  running_ = true;
  // First advertisement after a triggered-sized jittered delay: a fleet
  // of routers started at t=0 floods initial tables quickly without
  // every message landing on the same instant.
  schedule_triggered();
  arm_periodic();
}

void DvProcess::stop() {
  running_ = false;
  periodic_.cancel();
  triggered_.cancel();
  sweep_.cancel();
}

void DvProcess::arm_periodic() {
  const auto period = options_.update_period;
  sim::Time band = static_cast<sim::Time>(
      static_cast<double>(period) * options_.periodic_jitter);
  band = std::min(band, period / 2);
  sim::Time delay = period;
  if (band > 0) {
    delay = period - band +
            static_cast<sim::Time>(
                rng_.uniform(0, static_cast<std::uint64_t>(2 * band)));
  }
  periodic_.arm(delay);
}

void DvProcess::schedule_triggered() {
  if (!running_ || triggered_.armed()) return;
  const auto lo = static_cast<std::uint64_t>(
      std::max<sim::Time>(options_.triggered_min, 0));
  const auto hi = static_cast<std::uint64_t>(
      std::max<sim::Time>(options_.triggered_max, options_.triggered_min));
  triggered_.arm(static_cast<sim::Time>(rng_.uniform(lo, hi)));
}

bool DvProcess::iface_up(const net::Interface& iface) const {
  return iface.attached() && iface.link()->is_up();
}

std::vector<std::uint8_t> DvProcess::encode_update(
    const net::Interface& out_iface) const {
  util::ByteWriter w;
  std::size_t count = 0;
  const std::size_t count_at = w.size();
  w.u16(0);  // patched below

  auto emit = [&](const net::Prefix& prefix, int metric) {
    w.u32(prefix.address().raw());
    w.u8(static_cast<std::uint8_t>(prefix.length()));
    w.u8(static_cast<std::uint8_t>(metric > kInfinity ? kInfinity : metric));
    ++count;
  };

  // Connected subnets, metric 0 at the origin; a subnet whose link is
  // down is poisoned so neighbors withdraw it now instead of waiting
  // out the timeout.
  for (const auto& iface : node_.interfaces()) {
    emit(iface->prefix(), iface_up(*iface) ? 0 : kInfinity);
  }
  // Locally originated host routes (paper §3 mechanism).
  for (net::IpAddress addr : host_routes_) {
    emit(net::Prefix::host(addr), 0);
  }
  // Poisoned host-route withdrawals.
  for (const auto& [addr, rounds] : withdrawing_) {
    emit(net::Prefix::host(addr), kInfinity);
  }
  // Learned routes: split horizon with poisoned reverse toward the
  // route's own interface; timed-out routes poison everywhere until
  // garbage collection deletes them.
  for (const auto& [prefix, entry] : routes_) {
    if (options_.split_horizon && entry.iface == &out_iface &&
        !entry.poisoned()) {
      if (options_.poisoned_reverse) emit(prefix, kInfinity);
      continue;
    }
    emit(prefix, entry.poisoned() ? kInfinity : entry.metric);
  }

  w.patch_u16(count_at, static_cast<std::uint16_t>(count));
  return w.take();
}

void DvProcess::send_updates() {
  for (auto it = withdrawing_.begin(); it != withdrawing_.end();) {
    if (--it->second <= 0) {
      it = withdrawing_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& iface : node_.interfaces()) {
    if (!iface_up(*iface)) continue;
    auto body = encode_update(*iface);
    node_.send_udp_broadcast(*iface, kPort, kPort, body);
    ++stats_.updates_sent;
  }
}

void DvProcess::install(const net::Prefix& prefix, const Entry& entry) {
  node_.routing_table().install(
      {prefix, entry.from, entry.iface, entry.metric, kind_of(prefix)});
}

void DvProcess::note_route_change(const net::Prefix& prefix, int metric) {
  ++stats_.route_changes;
  if (on_route_change) on_route_change(prefix, metric);
}

bool DvProcess::poison(const net::Prefix& prefix, Entry& entry) {
  if (entry.poisoned()) return false;
  entry.metric = kInfinity;
  entry.poisoned_at = node_.sim().now();
  entry.consecutive_rises = 0;
  (void)node_.routing_table().remove_route(prefix, kind_of(prefix));
  ++stats_.routes_withdrawn;
  note_route_change(prefix, kInfinity);
  arm_sweep();  // the GC deadline may now be the earliest
  return true;
}

void DvProcess::on_update(const net::UdpDatagram& datagram,
                          const net::IpHeader& header, net::Interface& iface) {
  if (node_.owns_address(header.src)) return;  // our own broadcast
  ++stats_.updates_received;
  util::ByteReader r(datagram.data);
  std::uint16_t count = 0;
  try {
    count = r.u16();
  } catch (const util::CodecError&) {
    ++stats_.malformed_updates;
    return;
  }
  const sim::Time now = node_.sim().now();
  bool changed = false;
  for (std::uint16_t i = 0; i < count; ++i) {
    net::Prefix prefix;
    int metric = 0;
    try {
      net::IpAddress addr(r.u32());
      int length = r.u8();
      metric = r.u8();
      if (length > 32) continue;
      prefix = net::Prefix(addr, length);
    } catch (const util::CodecError&) {
      ++stats_.malformed_updates;
      return;
    }
    const int candidate = std::min(metric + 1, kInfinity);

    // Never override our own connected subnets or originated routes.
    bool own = false;
    for (const auto& own_iface : node_.interfaces()) {
      if (own_iface->prefix() == prefix) own = true;
    }
    if (own || (prefix.is_host_route() &&
                host_routes_.contains(prefix.address()))) {
      continue;
    }

    auto it = routes_.find(prefix);
    if (it == routes_.end()) {
      if (candidate >= kInfinity) continue;  // poison for an unknown route
      Entry entry;
      entry.metric = candidate;
      entry.from = header.src;
      entry.iface = &iface;
      entry.heard_at = now;
      routes_.emplace(prefix, entry);
      install(prefix, entry);
      note_route_change(prefix, candidate);
      changed = true;
      continue;
    }

    Entry& entry = it->second;
    const bool from_current_next_hop = entry.from == header.src;
    if (!from_current_next_hop && candidate >= entry.metric) continue;

    if (candidate >= kInfinity) {
      // The next hop lost the route: withdraw and pass the poison on
      // (our own advertisements now carry metric 16 until GC).
      if (!entry.poisoned()) {
        ++stats_.poisons_received;
        changed |= poison(prefix, entry);
      }
      continue;
    }

    // Counting-to-infinity suspicion: the same next hop pushing the
    // metric up again and again is the classic mutual-deception loop.
    if (from_current_next_hop && !entry.poisoned() &&
        candidate > entry.metric) {
      if (++entry.consecutive_rises == kRiseSuspicion) {
        ++stats_.counting_to_infinity;
        if (on_counting_to_infinity) on_counting_to_infinity(prefix, candidate);
      }
    } else if (candidate < entry.metric) {
      entry.consecutive_rises = 0;
    }

    const bool route_changed = entry.metric != candidate ||
                               entry.from != header.src || entry.poisoned();
    entry.metric = candidate;
    entry.from = header.src;
    entry.iface = &iface;
    entry.heard_at = now;
    entry.poisoned_at = -1;
    if (route_changed) {
      install(prefix, entry);
      note_route_change(prefix, candidate);
      changed = true;
    }
  }
  if (!routes_.empty() && !sweep_.armed()) arm_sweep();
  if (changed) schedule_triggered();
}

void DvProcess::sweep() {
  const sim::Time now = node_.sim().now();
  bool changed = false;
  for (auto it = routes_.begin(); it != routes_.end();) {
    Entry& entry = it->second;
    if (!entry.poisoned() && now - entry.heard_at >= options_.route_timeout) {
      ++stats_.routes_expired;
      changed |= poison(it->first, entry);
      ++it;
    } else if (entry.poisoned() &&
               now - entry.poisoned_at >= options_.gc_delay) {
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  arm_sweep();
  if (changed) schedule_triggered();
}

void DvProcess::arm_sweep() {
  sim::Time next = -1;
  for (const auto& [prefix, entry] : routes_) {
    const sim::Time deadline = entry.poisoned()
                                   ? entry.poisoned_at + options_.gc_delay
                                   : entry.heard_at + options_.route_timeout;
    if (next < 0 || deadline < next) next = deadline;
  }
  if (next < 0) {
    sweep_.cancel();
    return;
  }
  const sim::Time now = node_.sim().now();
  sweep_.arm(next > now ? next - now : 0);
}

void DvProcess::advertise_host_route(net::IpAddress addr, bool enabled) {
  if (enabled) {
    host_routes_.insert(addr);
    withdrawing_.erase(addr);
    // If a peer's advertisement for this /32 was learned earlier, our
    // origination (metric 0) supersedes it.
    auto it = routes_.find(net::Prefix::host(addr));
    if (it != routes_.end()) {
      (void)node_.routing_table().remove_route(it->first,
                                               kind_of(it->first));
      routes_.erase(it);
    }
  } else if (host_routes_.erase(addr) > 0) {
    // Poison for a few rounds so neighbors flush immediately.
    withdrawing_[addr] = kWithdrawRounds;
  } else {
    return;
  }
  if (running_) {
    schedule_triggered();
  } else {
    send_updates();
  }
}

void DvProcess::handle_link_state(net::Interface& iface, bool up) {
  if (!up) {
    // Everything learned through the dead link is unreachable now; the
    // poison shows up in our next (triggered) update on the surviving
    // interfaces, and the static fallback tier takes over locally until
    // an alternate path is learned.
    for (auto& [prefix, entry] : routes_) {
      if (entry.iface == &iface) (void)poison(prefix, entry);
    }
  }
  // Either way the picture changed (a connected subnet came or went):
  // advertise soon. The neighbor on the other end of the link saw the
  // same transition and does the same.
  schedule_triggered();
}

void DvProcess::handle_node_state(bool up) {
  if (!up) return;
  // Reboot: a power cycle loses the process's RAM — learned routes,
  // originated host routes, poison bookkeeping. Withdraw what we had
  // installed (the static fallback tier resumes) and start over; the
  // agent layer re-originates host routes as bindings are rebuilt.
  for (auto& [prefix, entry] : routes_) {
    if (!entry.poisoned()) {
      (void)node_.routing_table().remove_route(prefix, kind_of(prefix));
    }
  }
  routes_.clear();
  host_routes_.clear();
  withdrawing_.clear();
  sweep_.cancel();
  if (running_) {
    triggered_.cancel();
    schedule_triggered();
    arm_periodic();
  }
}

std::size_t DvProcess::reachable_routes() const {
  std::size_t n = 0;
  for (const auto& [prefix, entry] : routes_) {
    if (!entry.poisoned()) ++n;
  }
  return n;
}

}  // namespace mhrp::routing::dv
