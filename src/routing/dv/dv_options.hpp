// Knobs for the dynamic distance-vector routing plane (routing::dv).
//
// The defaults follow the RFC 2453 subset ROADMAP item 3 calls for,
// scaled down one order of magnitude so a simulated minute exercises
// several full timeout/garbage-collection cycles: periodic updates
// every 10s (RIP: 30s), route timeout 30s (RIP: 180s), garbage
// collection 20s after timeout (RIP: 120s). Triggered updates are
// delayed by a small seeded-random interval, as RFC 2453 §3.10.1
// requires, so an update storm after a topology change coalesces
// instead of synchronizing.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mhrp::routing::dv {

/// Which intra-domain routing plane a scenario world runs.
enum class Mode : std::uint8_t {
  kStatic,  // converged shortest paths installed once at build time
  kDv,      // per-router DvProcess; static routes remain a fallback tier
};

struct DvOptions {
  /// Period of full-table advertisements on every interface. Each firing
  /// is jittered by ±`periodic_jitter` of the period (seeded), so
  /// routers sharing a segment do not self-synchronize (RFC 2453 §3.8).
  sim::Time update_period = sim::seconds(10);
  double periodic_jitter = 0.1;

  /// A route not refreshed for this long is marked unreachable (metric
  /// 16), withdrawn from the node's forwarding table, and advertised as
  /// poison until garbage collection deletes it.
  sim::Time route_timeout = sim::seconds(30);
  /// How long an unreachable route is kept (and poisoned in updates)
  /// before deletion.
  sim::Time gc_delay = sim::seconds(20);

  /// A triggered update fires after a uniform seeded delay in
  /// [triggered_min, triggered_max] (RFC 2453 §3.10.1's 1–5s window,
  /// scaled to the simulation's millisecond link latencies).
  sim::Time triggered_min = sim::millis(10);
  sim::Time triggered_max = sim::millis(100);

  /// Split horizon: never advertise a route back out the interface it
  /// was learned on. With poisoned reverse, advertise it there with
  /// metric infinity instead of omitting it (RFC 2453 §3.4.3).
  bool split_horizon = true;
  bool poisoned_reverse = true;
};

}  // namespace mhrp::routing::dv
