// DvProcess: the per-router distance-vector routing process (RFC 2453
// subset) behind ProtocolOptions.routing = Mode::kDv.
//
// One process runs on each forwarding node. It advertises the node's
// connected subnets plus everything it has learned, applies split
// horizon with poisoned reverse on every per-interface advertisement,
// reacts to topology changes with jitter-delayed triggered updates, and
// expires silence with the classic timeout / garbage-collection pair.
// Learned routes are installed into the node's RoutingTable as
// RouteKind::kDynamic (host /32s as kHostSpecific), a tier that
// overrides the statically installed fallback routes and re-exposes
// them when withdrawn — so a link fault triggers real reconvergence
// instead of a silent blackhole.
//
// It also subsumes the paper-§3 host-specific-route mechanism the old
// node::DistanceVector provided: a home agent covering a whole routing
// domain originates a /32 for each disconnected mobile host via
// advertise_host_route() and poisons it on withdrawal.
//
// Determinism contract: no wall clock; every random draw (periodic
// jitter, triggered-update delay) comes from one per-process seeded
// RNG; all iteration that reaches the wire or the table walks ordered
// containers (std::map/std::set) or construction-ordered vectors, so
// advertisement bodies are insert-order invariant. Timers live on the
// node's executive (its shard view under sharding); updates to
// neighbors on other shards ride the ordinary Link frame path, i.e.
// the existing cross-shard mailbox protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "node/node.hpp"
#include "routing/dv/dv_options.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace mhrp::routing::dv {

/// Protocol-observable counters (telemetry probes read these; they feed
/// the replay digest, so nothing wall-clock-derived belongs here).
struct DvStats {
  std::uint64_t updates_sent = 0;       // datagrams out (one per interface)
  std::uint64_t updates_received = 0;   // datagrams in
  std::uint64_t periodic_rounds = 0;
  std::uint64_t triggered_updates = 0;  // triggered rounds actually sent
  std::uint64_t route_changes = 0;      // adds + next-hop/metric changes
  std::uint64_t routes_withdrawn = 0;   // poisoned (timeout, link-down, poison)
  std::uint64_t routes_expired = 0;     // timed out in silence
  std::uint64_t poisons_received = 0;   // metric-16 entries accepted
  std::uint64_t counting_to_infinity = 0;  // suspected episodes (see hook)
  std::uint64_t malformed_updates = 0;
};

class DvProcess {
 public:
  static constexpr std::uint16_t kPort = 520;  // RIP's UDP port
  static constexpr int kInfinity = 16;

  using Options = DvOptions;

  /// Binds UDP port 520 on `node`. `jitter_seed` seeds the process's
  /// private RNG (periodic jitter + triggered-update delays); derive it
  /// deterministically from the world seed and the router's index.
  DvProcess(node::Node& node, Options options = Options(),
            std::uint64_t jitter_seed = 0x5209);
  ~DvProcess();

  DvProcess(const DvProcess&) = delete;
  DvProcess& operator=(const DvProcess&) = delete;

  /// Begin operating: an initial triggered advertisement goes out after
  /// a short jittered delay (routers started together do not
  /// synchronize), then jittered periodic full-table updates.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Advertise (or withdraw, with poison) a host-specific /32 route for
  /// `addr`, originated here with metric 0 (paper §3's domain-coverage
  /// mechanism). Schedules a triggered update.
  void advertise_host_route(net::IpAddress addr, bool enabled);

  /// Send one full-table update on every up interface now. Tests use
  /// this to step convergence deterministically; the periodic and
  /// triggered timers call it internally.
  void send_updates();

  /// React to the attached link of `iface` going down (poison every
  /// route learned through it, withdraw them from the forwarding table,
  /// schedule a triggered update) or up (re-advertise). Wired
  /// automatically through node::Node::on_interface_state.
  void handle_link_state(net::Interface& iface, bool up);

  [[nodiscard]] const DvStats& stats() const { return stats_; }
  /// Transitional accessors matching the old node::DistanceVector API.
  [[nodiscard]] std::uint64_t updates_sent() const {
    return stats_.updates_sent;
  }
  [[nodiscard]] std::uint64_t updates_received() const {
    return stats_.updates_received;
  }

  /// Fired after this process changes what it would forward on: a route
  /// learned, re-pointed, re-metric'd, or withdrawn. The scenario layer
  /// records these instants to measure convergence.
  std::function<void(const net::Prefix&, int metric)> on_route_change;
  /// Fired when a route's metric has risen monotonically from the same
  /// next hop often enough to suspect a counting-to-infinity episode
  /// (the pathology split horizon + poisoned reverse exists to prevent;
  /// audited as kCountingToInfinity).
  std::function<void(const net::Prefix&, int metric)>
      on_counting_to_infinity;

  /// The routes this process currently considers reachable (tests).
  [[nodiscard]] std::size_t reachable_routes() const;

 private:
  struct Entry {
    int metric = kInfinity;
    net::IpAddress from;               // advertising neighbor; unspecified
                                       // for locally originated routes
    net::Interface* iface = nullptr;   // learned via
    sim::Time heard_at = 0;
    sim::Time poisoned_at = -1;        // >= 0: unreachable, GC pending
    int consecutive_rises = 0;         // counting-to-infinity detector
    [[nodiscard]] bool poisoned() const { return poisoned_at >= 0; }
  };

  void on_update(const net::UdpDatagram& datagram, const net::IpHeader& header,
                 net::Interface& iface);
  [[nodiscard]] std::vector<std::uint8_t> encode_update(
      const net::Interface& out_iface) const;
  /// Mark `entry` unreachable now: withdraw from the forwarding table,
  /// start its GC clock, count the change. Returns true when the entry
  /// was live before.
  bool poison(const net::Prefix& prefix, Entry& entry);
  void install(const net::Prefix& prefix, const Entry& entry);
  void note_route_change(const net::Prefix& prefix, int metric);
  void schedule_triggered();
  /// Walk deadlines: time out silent routes, delete GC-expired ones,
  /// then re-arm the sweep timer at the next deadline.
  void sweep();
  void arm_sweep();
  void arm_periodic();
  [[nodiscard]] bool iface_up(const net::Interface& iface) const;
  void handle_node_state(bool up);

  node::Node& node_;
  Options options_;
  util::Rng rng_;
  sim::OneShotTimer periodic_;   // re-armed per firing with fresh jitter
  sim::OneShotTimer triggered_;
  sim::OneShotTimer sweep_;
  std::map<net::Prefix, Entry> routes_;
  std::set<net::IpAddress> host_routes_;  // locally originated /32s
  /// Withdrawn host routes still being poisoned; value = rounds left.
  std::map<net::IpAddress, int> withdrawing_;
  DvStats stats_;
  std::function<void(bool)> chained_state_hook_;
  std::function<void(net::Interface&, bool)> chained_iface_hook_;
  bool running_ = false;
};

}  // namespace mhrp::routing::dv
