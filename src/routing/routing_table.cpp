#include "routing/routing_table.hpp"

#include <algorithm>
#include <sstream>

namespace mhrp::routing {

namespace {

// The per-length buckets are unordered maps; anything observable (DV
// advertisement bodies, diagnostic dumps) must emit them in sorted key
// order so output is byte-identical regardless of install order. Only
// the active (best-tier) route of each slot is observable.
std::vector<const Route*> sorted_bucket(
    const std::unordered_map<std::uint32_t, std::vector<Route>>& slot_map) {
  std::vector<const Route*> out;
  out.reserve(slot_map.size());
  for (const auto& [key, slot] : slot_map) {
    if (!slot.empty()) out.push_back(&slot.front());
  }
  std::sort(out.begin(), out.end(), [](const Route* a, const Route* b) {
    return a->prefix.address().raw() < b->prefix.address().raw();
  });
  return out;
}

}  // namespace

void RoutingTable::install(const Route& route) {
  auto& slot_map = by_length_[static_cast<std::size_t>(route.prefix.length())];
  auto [it, inserted] = slot_map.try_emplace(key_of(route.prefix));
  Slot& slot = it->second;
  if (inserted) ++count_;
  const int priority = priority_of(route.kind);
  auto pos = slot.begin();
  while (pos != slot.end() && priority_of(pos->kind) > priority) ++pos;
  if (pos != slot.end() && priority_of(pos->kind) == priority) {
    *pos = route;  // same tier: replace in place
    return;
  }
  slot.insert(pos, route);
}

void RoutingTable::remove(const net::Prefix& prefix) {
  auto& slot_map = by_length_[static_cast<std::size_t>(prefix.length())];
  if (slot_map.erase(key_of(prefix)) > 0) --count_;
}

bool RoutingTable::remove_route(const net::Prefix& prefix, RouteKind kind) {
  auto& slot_map = by_length_[static_cast<std::size_t>(prefix.length())];
  auto it = slot_map.find(key_of(prefix));
  if (it == slot_map.end()) return false;
  Slot& slot = it->second;
  auto pos = std::find_if(slot.begin(), slot.end(),
                          [&](const Route& r) { return r.kind == kind; });
  if (pos == slot.end()) return false;
  slot.erase(pos);
  if (slot.empty()) {
    slot_map.erase(it);
    --count_;
  }
  return true;
}

bool RoutingTable::update_metric(const net::Prefix& prefix, RouteKind kind,
                                 int metric) {
  auto& slot_map = by_length_[static_cast<std::size_t>(prefix.length())];
  auto it = slot_map.find(key_of(prefix));
  if (it == slot_map.end()) return false;
  for (Route& r : it->second) {
    if (r.kind == kind) {
      r.metric = metric;
      return true;
    }
  }
  return false;
}

void RoutingTable::remove_kind(RouteKind kind) {
  for (auto& slot_map : by_length_) {
    for (auto it = slot_map.begin(); it != slot_map.end();) {
      Slot& slot = it->second;
      std::erase_if(slot, [&](const Route& r) { return r.kind == kind; });
      if (slot.empty()) {
        it = slot_map.erase(it);
        --count_;
      } else {
        ++it;
      }
    }
  }
}

const Route* RoutingTable::lookup(net::IpAddress dst) const {
  for (int length = 32; length >= 0; --length) {
    const auto& slot_map = by_length_[static_cast<std::size_t>(length)];
    if (slot_map.empty()) continue;
    auto it = slot_map.find(net::Prefix(dst, length).address().raw());
    if (it != slot_map.end() && !it->second.empty()) {
      return &it->second.front();
    }
  }
  return nullptr;
}

const Route* RoutingTable::find(const net::Prefix& prefix) const {
  const auto& slot_map = by_length_[static_cast<std::size_t>(prefix.length())];
  auto it = slot_map.find(key_of(prefix));
  if (it == slot_map.end() || it->second.empty()) return nullptr;
  return &it->second.front();
}

const Route* RoutingTable::find_kind(const net::Prefix& prefix,
                                     RouteKind kind) const {
  const auto& slot_map = by_length_[static_cast<std::size_t>(prefix.length())];
  auto it = slot_map.find(key_of(prefix));
  if (it == slot_map.end()) return nullptr;
  for (const Route& r : it->second) {
    if (r.kind == kind) return &r;
  }
  return nullptr;
}

std::vector<Route> RoutingTable::routes() const {
  std::vector<Route> out;
  out.reserve(count_);
  for (const auto& slot_map : by_length_) {
    for (const Route* route : sorted_bucket(slot_map)) out.push_back(*route);
  }
  return out;
}

std::string RoutingTable::to_string() const {
  std::ostringstream os;
  for (int length = 32; length >= 0; --length) {
    for (const Route* route :
         sorted_bucket(by_length_[static_cast<std::size_t>(length)])) {
      os << route->prefix.to_string() << " via "
         << (route->next_hop.is_unspecified() ? std::string("direct")
                                              : route->next_hop.to_string())
         << " metric " << route->metric << '\n';
    }
  }
  return os.str();
}

}  // namespace mhrp::routing
