#include "routing/routing_table.hpp"

#include <algorithm>
#include <sstream>

namespace mhrp::routing {

namespace {

// The per-length buckets are unordered maps; anything observable (DV
// advertisement bodies, diagnostic dumps) must emit them in sorted key
// order so output is byte-identical regardless of install order.
std::vector<const Route*> sorted_bucket(
    const std::unordered_map<std::uint32_t, Route>& slot) {
  std::vector<const Route*> out;
  out.reserve(slot.size());
  for (const auto& [key, route] : slot) out.push_back(&route);
  std::sort(out.begin(), out.end(), [](const Route* a, const Route* b) {
    return a->prefix.address().raw() < b->prefix.address().raw();
  });
  return out;
}

}  // namespace

void RoutingTable::install(const Route& route) {
  auto& slot = by_length_[static_cast<std::size_t>(route.prefix.length())];
  auto [it, inserted] = slot.try_emplace(key_of(route.prefix), route);
  if (!inserted) {
    if (it->second.kind == RouteKind::kConnected &&
        route.kind != RouteKind::kConnected) {
      return;  // connected routes win
    }
    it->second = route;
    return;
  }
  ++count_;
}

void RoutingTable::remove(const net::Prefix& prefix) {
  auto& slot = by_length_[static_cast<std::size_t>(prefix.length())];
  if (slot.erase(key_of(prefix)) > 0) --count_;
}

void RoutingTable::remove_kind(RouteKind kind) {
  for (auto& slot : by_length_) {
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->second.kind == kind) {
        it = slot.erase(it);
        --count_;
      } else {
        ++it;
      }
    }
  }
}

const Route* RoutingTable::lookup(net::IpAddress dst) const {
  for (int length = 32; length >= 0; --length) {
    const auto& slot = by_length_[static_cast<std::size_t>(length)];
    if (slot.empty()) continue;
    auto it = slot.find(net::Prefix(dst, length).address().raw());
    if (it != slot.end()) return &it->second;
  }
  return nullptr;
}

const Route* RoutingTable::find(const net::Prefix& prefix) const {
  const auto& slot = by_length_[static_cast<std::size_t>(prefix.length())];
  auto it = slot.find(key_of(prefix));
  return it == slot.end() ? nullptr : &it->second;
}

std::vector<Route> RoutingTable::routes() const {
  std::vector<Route> out;
  out.reserve(count_);
  for (const auto& slot : by_length_) {
    for (const Route* route : sorted_bucket(slot)) out.push_back(*route);
  }
  return out;
}

std::string RoutingTable::to_string() const {
  std::ostringstream os;
  for (int length = 32; length >= 0; --length) {
    for (const Route* route :
         sorted_bucket(by_length_[static_cast<std::size_t>(length)])) {
      os << route->prefix.to_string() << " via "
         << (route->next_hop.is_unspecified() ? std::string("direct")
                                              : route->next_hop.to_string())
         << " metric " << route->metric << '\n';
    }
  }
  return os.str();
}

}  // namespace mhrp::routing
