// The simulation executive: owns the clock and the event queue, and runs
// events in timestamp order until the queue drains, a deadline passes, or
// stop() is called from inside an event.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mhrp::sim {

class Simulator {
 public:
  using Action = EventQueue::Action;

  /// Current simulated time. Monotone non-decreasing across the run.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `action` at absolute simulated time `when`; times in the
  /// past are clamped to `now()` (the event still fires, immediately
  /// after already-queued events at `now()`).
  EventHandle at(Time when, Action action) {
    if (when < now_) when = now_;
    return queue_.schedule(when, std::move(action));
  }

  /// Schedule `action` after a relative delay (>= 0) from now.
  EventHandle after(Time delay, Action action) {
    return at(now_ + (delay < 0 ? 0 : delay), std::move(action));
  }

  bool cancel(const EventHandle& handle) { return queue_.cancel(handle); }

  /// Run until the queue is empty or stop() is called. Returns the number
  /// of events executed.
  std::size_t run() { return run_until(std::numeric_limits<Time>::max()); }

  /// Run events with timestamp <= deadline. The clock is advanced to
  /// `deadline` when the queue drains early (so subsequent `after()`
  /// calls are relative to the deadline). Returns events executed.
  std::size_t run_until(Time deadline) {
    stopped_ = false;
    std::size_t executed = 0;
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
      auto [when, action] = queue_.pop();
      now_ = when;
      action();
      ++executed;
    }
    if (!stopped_ && deadline != std::numeric_limits<Time>::max() &&
        now_ < deadline) {
      now_ = deadline;
    }
    return executed;
  }

  /// Run for a relative duration from the current clock.
  std::size_t run_for(Time duration) { return run_until(now_ + duration); }

  /// Execute exactly one event, if any. Returns whether one ran.
  bool step() {
    if (queue_.empty()) return false;
    auto [when, action] = queue_.pop();
    now_ = when;
    action();
    return true;
  }

  /// Request that the current run() / run_until() return after the
  /// currently executing event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  bool stopped_ = false;
};

}  // namespace mhrp::sim
