// The single-threaded simulation executive: owns the clock and the event
// queue, and runs events in timestamp order until the queue drains, a
// deadline passes, or stop() is called from inside an event. Implements
// sim::Executive as its one-shard special case (post() to shard 0 is
// at(); there is nothing to cross).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>

#include "sim/event_category.hpp"
#include "sim/event_queue.hpp"
#include "sim/executive.hpp"
#include "sim/profiler.hpp"
#include "sim/time.hpp"
#include "util/annotations.hpp"

namespace mhrp::sim {

class Simulator final : public Executive {
 public:
  using Action = EventQueue::Action;

  Simulator() = default;

  /// Current simulated time. Monotone non-decreasing across the run.
  [[nodiscard]] Time now() const override {
    serial_.assert_held();
    return now_;
  }

  /// Schedule `action` at absolute simulated time `when`; times in the
  /// past are clamped to `now()` (the event still fires, immediately
  /// after already-queued events at `now()`). Discarding the handle
  /// forfeits cancellation — cast to void at fire-and-forget sites.
  [[nodiscard]] MHRP_HOT_PATH EventHandle at(
      Time when, Action action,
      EventCategory category = EventCategory::kGeneral) override {
    serial_.assert_held();
    if (when < now_) when = now_;
    return queue_.schedule(when, std::move(action), category);
  }

  /// Schedule `action` after a relative delay (>= 0) from now.
  [[nodiscard]] MHRP_HOT_PATH EventHandle after(
      Time delay, Action action,
      EventCategory category = EventCategory::kGeneral) override {
    serial_.assert_held();
    return at(now_ + (delay < 0 ? 0 : delay), std::move(action), category);
  }

  bool cancel(const EventHandle& handle) override {
    return queue_.cancel(handle);
  }

  /// The one-shard post: target must be shard 0, and the cross-shard
  /// lookahead rules never engage — this is exactly at(), clamp included.
  void post(ShardId target, Time when, Action action,
            EventCategory category = EventCategory::kGeneral) override {
    if (target != 0) {
      throw std::out_of_range("Simulator::post: shard out of range");
    }
    (void)at(when, std::move(action), category);
  }

  /// Install (or clear, with nullptr) an event-loop profiler. The profiler
  /// observes wall-time only; scheduling and simulated time are unaffected,
  /// so profiled and unprofiled runs stay replay-identical. Takes effect at
  /// the next run()/run_until()/run_for() call: the loop body is selected
  /// once per run, so the unprofiled path carries no per-event check.
  void set_profiler(EventLoopProfiler* profiler) override {
    profiler_ = profiler;
  }
  [[nodiscard]] EventLoopProfiler* profiler() const { return profiler_; }

  /// Run until the queue is empty or stop() is called. Returns the number
  /// of events executed.
  std::size_t run() override {
    return run_until(std::numeric_limits<Time>::max());
  }

  /// Run events with timestamp <= deadline. The clock is advanced to
  /// `deadline` when the queue drains early (so subsequent `after()`
  /// calls are relative to the deadline). Returns events executed.
  std::size_t run_until(Time deadline) override {
    return profiler_ == nullptr ? run_loop<false>(deadline)
                                : run_loop<true>(deadline);
  }

  /// Run for a relative duration from the current clock.
  std::size_t run_for(Time duration) override {
    serial_.assert_held();
    return run_until(now_ + duration);
  }

  /// Execute exactly one event, if any. Returns whether one ran.
  bool step() {
    serial_.assert_held();
    if (queue_.empty()) return false;
    auto fired = queue_.pop();
    now_ = fired.when;
    fired.action();
    return true;
  }

  /// Request that the current run() / run_until() return after the
  /// currently executing event completes.
  void stop() override {
    serial_.assert_held();
    stopped_ = true;
  }

  [[nodiscard]] std::size_t pending_events() const override {
    return queue_.size();
  }

 private:
  /// The executive loop, instantiated with and without profiling so the
  /// unprofiled (default) build of the loop is instruction-identical to
  /// an executive with no telemetry at all — zero cost when disabled.
  template <bool kProfiled>
  std::size_t run_loop(Time deadline) {
    serial_.assert_held();
    stopped_ = false;
    std::size_t executed = 0;
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
      auto fired = queue_.pop();
      now_ = fired.when;
      if constexpr (kProfiled) {
        const auto started = profiler_->begin_event();
        fired.action();
        profiler_->end_event(fired.category, started);
      } else {
        fired.action();
      }
      ++executed;
    }
    if (!stopped_ && deadline != std::numeric_limits<Time>::max() &&
        now_ < deadline) {
      now_ = deadline;
    }
    return executed;
  }

  // Executive state is serial today; the phantom capability records that
  // for the future sharded executive (ROADMAP item 1) and a clang
  // -Wthread-safety build, at zero runtime cost. The clock and stop flag
  // are only touched between events, never concurrently with one.
  util::ExecutiveSerial serial_;
  EventQueue queue_;
  Time now_ MHRP_GUARDED_BY(serial_) = kTimeZero;
  bool stopped_ MHRP_GUARDED_BY(serial_) = false;
  EventLoopProfiler* profiler_ = nullptr;
};

}  // namespace mhrp::sim
