// EventLoopProfiler: attributes executed-event counts and handler
// wall-time to EventCategory buckets. Installed on a Simulator with
// set_profiler(); when absent (the default) the run loop pays one
// dispatch per run_until() call — nothing per event — and when present
// it adds two steady_clock reads around each handler.
//
// IMPORTANT: the profiler measures *wall* time, which is
// machine-dependent and therefore must never feed a replay digest or a
// metric registry snapshot — counts and seconds here are for bench
// reporting only. Simulated-time behavior is unaffected either way.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/event_category.hpp"

namespace mhrp::sim {

class EventLoopProfiler {
 public:
  struct Bucket {
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
  };

  using Clock = std::chrono::steady_clock;

  /// Called by the Simulator run loop around each handler.
  [[nodiscard]] Clock::time_point begin_event() const { return Clock::now(); }

  void end_event(EventCategory category, Clock::time_point started) {
    const auto elapsed = Clock::now() - started;
    Bucket& b = buckets_[static_cast<std::size_t>(category)];
    ++b.events;
    b.wall_seconds +=
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
            .count();
  }

  [[nodiscard]] const Bucket& bucket(EventCategory category) const {
    return buckets_[static_cast<std::size_t>(category)];
  }

  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t total = 0;
    for (const Bucket& b : buckets_) total += b.events;
    return total;
  }

  [[nodiscard]] double total_wall_seconds() const {
    double total = 0.0;
    for (const Bucket& b : buckets_) total += b.wall_seconds;
    return total;
  }

  void reset() { buckets_.fill(Bucket{}); }

  /// Fixed-width table of per-category counts, wall-time, and shares —
  /// the form bench_scalability prints.
  [[nodiscard]] std::string to_text() const {
    const std::uint64_t events = total_events();
    const double seconds = total_wall_seconds();
    std::string out;
    out += "category         events     events%   wall_ms    wall%   ns/event\n";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(EventCategory::kCount); ++i) {
      const Bucket& b = buckets_[i];
      if (b.events == 0) continue;
      char line[160];
      const double ev_pct =
          events == 0 ? 0.0
                      : 100.0 * static_cast<double>(b.events) /
                            static_cast<double>(events);
      const double wall_pct =
          seconds <= 0.0 ? 0.0 : 100.0 * b.wall_seconds / seconds;
      const double ns_per =
          b.events == 0 ? 0.0
                        : 1e9 * b.wall_seconds /
                              static_cast<double>(b.events);
      std::snprintf(line, sizeof line,
                    "%-15s %10llu   %6.2f  %8.3f   %6.2f   %8.1f\n",
                    event_category_name(static_cast<EventCategory>(i)),
                    static_cast<unsigned long long>(b.events), ev_pct,
                    b.wall_seconds * 1e3, wall_pct, ns_per);
      out += line;
    }
    char total_line[160];
    std::snprintf(total_line, sizeof total_line,
                  "%-15s %10llu   %6.2f  %8.3f   %6.2f\n", "total",
                  static_cast<unsigned long long>(events), 100.0,
                  seconds * 1e3, 100.0);
    out += total_line;
    return out;
  }

 private:
  std::array<Bucket, static_cast<std::size_t>(EventCategory::kCount)>
      buckets_{};
};

}  // namespace mhrp::sim
