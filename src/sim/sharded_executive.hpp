// ShardedExecutive: the multi-core simulation executive (DESIGN.md §13).
//
// The internetwork is partitioned into shards; each shard owns a slab
// EventQueue, its own clock, and one persistent worker thread. Shards
// synchronize conservatively in windows of width W = the executive's
// lookahead (the minimum cross-shard link latency, scenario-provided):
// every event in [T, T+W) can be executed with no input from any other
// shard, because anything another shard sends from inside the same
// window arrives at T+W or later. Each window runs three phases,
// separated by one std::barrier:
//
//   A  the coordinator publishes the window end E = min-next-event + W
//      and releases the workers;
//   B  each worker executes its local events with timestamp < E in
//      (time, seq) order, exactly like the single-threaded Simulator;
//      cross-shard work lands in per-(source,target) SPSC mailboxes;
//   C  each worker drains its own inboxes in ascending source-shard
//      order into its queue, so sequence numbers — and therefore
//      same-timestamp FIFO order — are assigned deterministically.
//
// Determinism contract: for a FIXED shard count, runs are byte-identical
// (mailbox drain order and per-shard (time, seq) order are both
// deterministic). A one-shard ShardedExecutive executes the exact event
// sequence of the single-threaded Simulator. Across DIFFERENT shard
// counts, same-timestamp interleaving at shared nodes differs (a
// cross-shard send is sequenced at inbox-drain time, not transmit
// time), so data-plane counters may wobble by a few packets; only
// simulated-time-keyed observables — movement, registration
// completions, series merged on a canonical (time, mobile) key — are
// comparable. See DESIGN.md §13 for the full contract.
//
// Cross-shard sends are subject to the lookahead contract: a post()
// whose timestamp lands inside the still-open window throws
// LookaheadViolation (see executive.hpp) — never a silent clamp.
#pragma once

#include <array>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <ctime>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_category.hpp"
#include "sim/event_queue.hpp"
#include "sim/executive.hpp"
#include "sim/time.hpp"
#include "util/annotations.hpp"

namespace mhrp::sim {

class ShardedExecutive final : public Executive {
 public:
  /// `shards` worker threads/queues; `lookahead` is the conservative
  /// window width W (>= 1 microsecond) — set it to the minimum latency
  /// of any cross-shard link before the first run.
  explicit ShardedExecutive(ShardId shards, Time lookahead = millis(1))
      : lookahead_(lookahead),
        barrier_(static_cast<std::ptrdiff_t>(shards) + 1) {
    if (shards < 1) {
      throw std::invalid_argument("ShardedExecutive: shards < 1");
    }
    if (lookahead_ < 1) {
      throw std::invalid_argument("ShardedExecutive: lookahead < 1us");
    }
    shards_.reserve(shards);
    for (ShardId s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(*this, s, shards));
    }
  }

  ~ShardedExecutive() override { shutdown_workers(); }

  /// Narrow the window width. Must be called while quiesced (between
  /// runs); the scenario layer calls it once partitioning is known.
  void set_lookahead(Time lookahead) {
    if (lookahead < 1) {
      throw std::invalid_argument("ShardedExecutive: lookahead < 1us");
    }
    lookahead_ = lookahead;
  }
  [[nodiscard]] Time lookahead() const override { return lookahead_; }

  /// Per-shard work accounting, read while quiesced. `busy_ns` is the
  /// worker's own CPU time (CLOCK_THREAD_CPUTIME_ID) spent executing
  /// events and draining inboxes — barrier waits excluded — so
  /// executed/busy_ns is the shard's event rate independent of how many
  /// cores the host actually granted (bench_shard reports the sum).
  struct ShardStats {
    std::uint64_t executed = 0;
    std::uint64_t busy_ns = 0;
  };
  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    std::vector<ShardStats> stats;
    stats.reserve(shards_.size());
    for (const auto& shard : shards_) {
      stats.push_back({shard->executed, shard->busy_ns});
    }
    return stats;
  }

  /// The per-shard scheduling facade. Nodes assigned to shard `s` hold
  /// this as their sim::Executive&, so everything they schedule — even
  /// at construction time, before any worker exists — lands on their
  /// own shard's queue.
  [[nodiscard]] Executive& shard_view(ShardId shard) {
    return shards_.at(shard)->view;
  }

  // ---- Executive ----

  [[nodiscard]] Time now() const override {
    const Shard* s = current_shard();
    return s != nullptr ? s->now : floor_;
  }

  [[nodiscard]] EventHandle at(
      Time when, Action action,
      EventCategory category = EventCategory::kGeneral) override {
    Shard* s = current_shard();
    if (s == nullptr) s = shards_.front().get();  // quiesced: shard 0
    return schedule_local(*s, when, std::move(action), category);
  }

  bool cancel(const EventHandle& handle) override {
    if (Shard* s = current_shard()) {
      // Mid-run, only the calling shard's own events are cancellable; a
      // handle owned by another shard's queue reports false (the same
      // answer as an event that already fired), never races that queue.
      return s->queue.cancel(handle);
    }
    for (auto& shard : shards_) {  // quiesced: find the owning queue
      if (shard->queue.cancel(handle)) return true;
    }
    return false;
  }

  void post(ShardId target, Time when, Action action,
            EventCategory category = EventCategory::kGeneral) override {
    if (target >= shards_.size()) {
      throw std::out_of_range("ShardedExecutive::post: shard out of range");
    }
    Shard& to = *shards_[target];
    Shard* from = current_shard();
    if (from == nullptr || from == &to) {
      // Quiesced (no window open), or shard-local: plain scheduling.
      Shard& s = from != nullptr ? *from : to;
      (void)schedule_local(s, when, std::move(action), category);
      return;
    }
    const Time window_end = window_end_.load(std::memory_order_relaxed);
    if (when < window_end) throw LookaheadViolation(when, window_end);
    to.inbox[from->id].push(when, category, std::move(action));
  }

  [[nodiscard]] ShardId shard_count() const override {
    return static_cast<ShardId>(shards_.size());
  }

  [[nodiscard]] ShardId shard_id() const override {
    const Shard* s = current_shard();
    return s != nullptr ? s->id : 0;
  }

  std::size_t run() override {
    return run_until(std::numeric_limits<Time>::max());
  }

  std::size_t run_until(Time deadline) override {
    if (current_shard() != nullptr) {
      throw std::logic_error(
          "ShardedExecutive::run_until called from inside a shard event");
    }
    start_workers();
    const std::uint64_t before = total_executed();
    stopped_.store(false, std::memory_order_relaxed);

    constexpr Time kMax = std::numeric_limits<Time>::max();
    // First timestamp NOT covered by this run (deadline is inclusive).
    const Time limit = deadline == kMax ? kMax : deadline + 1;
    while (!stopped_.load(std::memory_order_relaxed)) {
      Time next = kMax;
      for (auto& shard : shards_) {
        if (!shard->queue.empty()) {
          next = std::min(next, shard->queue.next_time());
        }
      }
      if (next >= limit) break;  // drained, or nothing left in range
      const Time window_end =
          next >= limit - lookahead_ ? limit : next + lookahead_;
      window_end_.store(window_end, std::memory_order_relaxed);
      barrier_.arrive_and_wait();  // A: window published, workers go
      barrier_.arrive_and_wait();  // B: local events < end executed
      barrier_.arrive_and_wait();  // C: inboxes drained
      if (has_error()) {
        std::exception_ptr err;
        {
          const std::lock_guard<std::mutex> lock(error_mu_);
          err = std::exchange(error_, nullptr);
        }
        shutdown_workers();
        std::rethrow_exception(err);
      }
    }

    if (!stopped_.load(std::memory_order_relaxed) && deadline != kMax) {
      // Match Simulator::run_until: a drained run leaves the clock at
      // the deadline, so subsequent after() calls are deadline-relative.
      for (auto& shard : shards_) {
        if (shard->now < deadline) shard->now = deadline;
      }
      floor_ = deadline;
    } else {
      Time reached = floor_;
      for (auto& shard : shards_) reached = std::max(reached, shard->now);
      floor_ = reached;
    }
    return static_cast<std::size_t>(total_executed() - before);
  }

  std::size_t run_for(Time duration) override {
    return run_until(floor_ + duration);
  }

  void stop() override { stopped_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t pending_events() const override {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->queue.size();
    return total;
  }

  /// The sharded executive refuses a profiler: per-event wall times from
  /// concurrent workers would interleave meaninglessly. Profile under the
  /// single-threaded Simulator instead. Clearing (nullptr) is accepted so
  /// generic teardown paths need not special-case the executive kind.
  void set_profiler(EventLoopProfiler* profiler) override {
    if (profiler != nullptr) {
      throw std::logic_error(
          "ShardedExecutive: profiler unsupported; profile single-threaded");
    }
  }

 private:
  struct Shard;

  /// Bounded SPSC mailbox for one (source shard -> target shard) pair.
  /// The ring alone carries the common case; a burst past the ring's
  /// capacity spills into the overflow vector, which is safe because the
  /// producer only writes it during the execute phase and the consumer
  /// only reads it after the phase-B barrier (a happens-before edge).
  class Mailbox {
   public:
    void push(Time when, EventCategory category, Action action) {
      const std::size_t tail = tail_.load(std::memory_order_relaxed);
      if (tail - head_.load(std::memory_order_acquire) < kCapacity) {
        Item& slot = ring_[tail & (kCapacity - 1)];
        slot.when = when;
        slot.category = category;
        slot.action = std::move(action);
        tail_.store(tail + 1, std::memory_order_release);
      } else {
        overflow_.push_back(Item{when, category, std::move(action)});
      }
    }

    /// Drain FIFO into `fn`. Caller is the consumer side, past the
    /// phase-B barrier.
    template <typename Fn>
    void drain(Fn&& fn) {
      std::size_t head = head_.load(std::memory_order_relaxed);
      const std::size_t tail = tail_.load(std::memory_order_acquire);
      while (head != tail) {
        Item& slot = ring_[head & (kCapacity - 1)];
        fn(slot.when, slot.category, std::move(slot.action));
        slot.action = nullptr;
        ++head;
      }
      head_.store(head, std::memory_order_release);
      for (Item& item : overflow_) {
        fn(item.when, item.category, std::move(item.action));
      }
      overflow_.clear();
    }

   private:
    struct Item {
      Time when = 0;
      EventCategory category = EventCategory::kGeneral;
      Action action;
    };
    static constexpr std::size_t kCapacity = 256;  // power of two

    std::array<Item, kCapacity> ring_{};
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
    std::vector<Item> overflow_;
  };

  /// The facade a shard's nodes hold as their Executive. Scheduling pins
  /// to the owning shard no matter which thread calls (construction-time
  /// calls come from the quiesced main thread); mid-run, only the
  /// owning shard's worker may schedule through it.
  class ShardView final : public Executive {
   public:
    explicit ShardView(ShardedExecutive& owner, Shard& shard)
        : owner_(owner), shard_(shard) {}

    [[nodiscard]] Time now() const override { return shard_.now; }

    [[nodiscard]] EventHandle at(
        Time when, Action action,
        EventCategory category = EventCategory::kGeneral) override {
      Shard* current = owner_.current_shard();
      if (current != nullptr && current != &shard_) {
        throw std::logic_error(
            "cross-shard at() through a foreign shard view; use post()");
      }
      return owner_.schedule_local(shard_, when, std::move(action), category);
    }

    bool cancel(const EventHandle& handle) override {
      return shard_.queue.cancel(handle);
    }

    void post(ShardId target, Time when, Action action,
              EventCategory category = EventCategory::kGeneral) override {
      owner_.post(target, when, std::move(action), category);
    }

    [[nodiscard]] ShardId shard_count() const override {
      return owner_.shard_count();
    }
    [[nodiscard]] ShardId shard_id() const override { return shard_.id; }
    [[nodiscard]] Time lookahead() const override {
      return owner_.lookahead();
    }

    std::size_t run() override { return owner_.run(); }
    std::size_t run_until(Time deadline) override {
      return owner_.run_until(deadline);
    }
    std::size_t run_for(Time duration) override {
      return owner_.run_for(duration);
    }
    void stop() override { owner_.stop(); }
    [[nodiscard]] std::size_t pending_events() const override {
      return shard_.queue.size();
    }
    void set_profiler(EventLoopProfiler* profiler) override {
      owner_.set_profiler(profiler);
    }

   private:
    ShardedExecutive& owner_;
    Shard& shard_;
  };

  struct Shard {
    Shard(ShardedExecutive& exec, ShardId shard_id, ShardId shard_count)
        : owner(&exec), id(shard_id), view(exec, *this), inbox(shard_count) {}

    ShardedExecutive* const owner;
    const ShardId id;
    /// The shard's serial domain: its queue, clock, and executed counter
    /// are touched only by its worker mid-window, and only by the
    /// quiesced coordinator between windows (barrier happens-before).
    util::ExecutiveSerial serial;
    EventQueue queue;
    Time now = kTimeZero;
    std::uint64_t executed = 0;
    std::uint64_t busy_ns = 0;
    ShardView view;
    std::vector<Mailbox> inbox;  // indexed by source shard
    std::thread worker;
  };

  [[nodiscard]] Shard* current_shard() const {
    Shard* s = tls_shard_;
    return (s != nullptr && s->owner == this) ? s : nullptr;
  }

  [[nodiscard]] EventHandle schedule_local(Shard& shard, Time when,
                                           Action action,
                                           EventCategory category) {
    if (when < shard.now) when = shard.now;  // local clamp, as Simulator::at
    return shard.queue.schedule(when, std::move(action), category);
  }

  /// Execute the shard's local events with timestamp < `window_end`,
  /// advancing its clock — phase B of the window. Newly scheduled local
  /// events inside the window run in the same pass, exactly as they
  /// would under the single-threaded executive.
  void run_window(Shard& shard, Time window_end)
      MHRP_REQUIRES(shard.serial) {
    while (!shard.queue.empty() && shard.queue.next_time() < window_end) {
      auto fired = shard.queue.pop();
      shard.now = fired.when;
      fired.action();
      ++shard.executed;
    }
  }

  /// Drain this shard's inboxes in ascending source-shard order — phase
  /// C. The fixed order makes sequence-number assignment (and therefore
  /// same-timestamp FIFO order) deterministic for a fixed shard count.
  void drain_inboxes(Shard& shard) MHRP_REQUIRES(shard.serial) {
    for (Mailbox& mail : shard.inbox) {
      mail.drain([&shard](Time when, EventCategory category, Action action) {
        if (when < shard.now) when = shard.now;  // defensive; cannot fire
        (void)shard.queue.schedule(when, std::move(action), category);
      });
    }
  }

  [[nodiscard]] static std::uint64_t thread_cpu_ns() {
    timespec ts{};
    // CPU-time accounting for bench_shard's aggregate event rate; the
    // value never feeds simulation state or replay digests.
    // mhrp-lint: allow(wallclock) per-thread CPU time for bench stats only
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

  void worker_main(Shard& shard) {
    tls_shard_ = &shard;
    shard.serial.assert_held();
    while (true) {
      barrier_.arrive_and_wait();  // A: window published (or shutdown)
      if (shutdown_.load(std::memory_order_relaxed)) break;
      const Time window_end = window_end_.load(std::memory_order_relaxed);
      const std::uint64_t busy_start = thread_cpu_ns();
      try {
        run_window(shard, window_end);
      } catch (...) {
        record_error();
      }
      barrier_.arrive_and_wait();  // B
      try {
        drain_inboxes(shard);
      } catch (...) {
        record_error();
      }
      shard.busy_ns += thread_cpu_ns() - busy_start;
      barrier_.arrive_and_wait();  // C
    }
    tls_shard_ = nullptr;
  }

  void start_workers() {
    if (started_) return;
    shutdown_.store(false, std::memory_order_relaxed);
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, s = shard.get()] { worker_main(*s); });
    }
    started_ = true;
  }

  void shutdown_workers() {
    if (!started_) return;
    shutdown_.store(true, std::memory_order_relaxed);
    barrier_.arrive_and_wait();  // release workers at phase A; they exit
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    started_ = false;
  }

  [[nodiscard]] bool has_error() {
    const std::lock_guard<std::mutex> lock(error_mu_);
    return error_ != nullptr;
  }

  void record_error() {
    const std::lock_guard<std::mutex> lock(error_mu_);
    if (error_ == nullptr) error_ = std::current_exception();
  }

  [[nodiscard]] std::uint64_t total_executed() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->executed;
    return total;
  }

  inline static thread_local Shard* tls_shard_ = nullptr;

  Time lookahead_;
  Time floor_ = kTimeZero;  // completed time, read while quiesced
  std::vector<std::unique_ptr<Shard>> shards_;
  std::barrier<> barrier_;
  std::atomic<Time> window_end_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> shutdown_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
  bool started_ = false;
};

}  // namespace mhrp::sim
