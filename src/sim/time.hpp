// Simulation time. All timestamps and durations are integer microseconds,
// which keeps event ordering exact (no floating-point tie ambiguity) and
// comfortably spans multi-day simulated runs in 64 bits.
#pragma once

#include <cstdint>
#include <string>

namespace mhrp::sim {

/// A point in simulated time (microseconds since simulation start) or a
/// duration in microseconds, depending on context.
using Time = std::int64_t;

constexpr Time kTimeZero = 0;

constexpr Time micros(std::int64_t n) { return n; }
constexpr Time millis(std::int64_t n) { return n * 1000; }
constexpr Time seconds(std::int64_t n) { return n * 1'000'000; }

/// Duration from a floating-point second count (workload generators draw
/// exponential inter-arrivals in seconds); rounds to the nearest microsecond.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e6; }

/// Human-readable rendering, e.g. "1.250000s".
inline std::string format_time(Time t) {
  return std::to_string(to_seconds(t)) + "s";
}

}  // namespace mhrp::sim
