// Cancellable discrete-event queue with deterministic ordering.
//
// Events that share a timestamp fire in the order they were scheduled
// (FIFO by sequence number), which makes every simulation run exactly
// reproducible — a property the integration and property tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace mhrp::sim {

/// Opaque handle identifying a scheduled event so it can be cancelled.
/// Default-constructed handles refer to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True when the handle refers to an event that has neither fired nor
  /// been cancelled.
  [[nodiscard]] bool pending() const {
    auto s = state_.lock();
    return s && !*s;
  }

  [[nodiscard]] bool valid() const { return !state_.expired(); }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::weak_ptr<bool> state_;  // *state == true means cancelled
};

/// Min-heap of (time, sequence) ordered events. Cancellation is O(1):
/// the entry is flagged and skipped at pop time.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when`. Times may not decrease
  /// relative to already-popped events; the Simulator enforces that.
  EventHandle schedule(Time when, Action action) {
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, std::move(action), cancelled});
    ++live_;
    return EventHandle(std::move(cancelled));
  }

  /// Cancel a pending event. Returns true when the event was pending and
  /// is now cancelled; false when it already fired or was cancelled.
  bool cancel(const EventHandle& handle) {
    auto s = handle.state_.lock();
    if (!s || *s) return false;
    *s = true;
    --live_;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the next live event. Requires !empty().
  [[nodiscard]] Time next_time() {
    drop_cancelled();
    return heap_.top().when;
  }

  /// Remove and return the next live event. Requires !empty().
  std::pair<Time, Action> pop() {
    drop_cancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    *top.cancelled = true;  // mark fired so handles report non-pending
    return {top.when, std::move(top.action)};
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> cancelled;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace mhrp::sim
