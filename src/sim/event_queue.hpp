// Cancellable discrete-event queue with deterministic ordering.
//
// Events that share a timestamp fire in the order they were scheduled
// (FIFO by sequence number), which makes every simulation run exactly
// reproducible — a property the integration and property tests rely on.
//
// Storage is a slab of event slots addressed by {slot index, generation}
// handles. Scheduling an event allocates nothing beyond amortized vector
// growth (the pre-slab design paid a shared_ptr control block per event):
// the action lives in a slab slot that is recycled through a free list,
// and the heap orders 24-byte POD entries. Cancellation is O(1): it bumps
// the slot's generation, which orphans the heap entry; orphans are
// skipped lazily at pop time. A handle whose generation no longer matches
// its slot refers to an event that already fired or was cancelled — slot
// reuse cannot resurrect it (short of 2^32 reuses of one slot between a
// handle's creation and its last use, which no simulation approaches).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_category.hpp"
#include "sim/time.hpp"
#include "util/annotations.hpp"

namespace mhrp::sim {

class EventQueue;

/// Opaque handle identifying a scheduled event so it can be cancelled or
/// queried. Default-constructed handles refer to no event. Handles are
/// trivially copyable and never dangle into freed memory, but they hold a
/// pointer to their queue: using a non-default handle after its queue is
/// destroyed is undefined.
class EventHandle {
 public:
  EventHandle() = default;

  /// True when the handle refers to an event that has neither fired nor
  /// been cancelled.
  [[nodiscard]] bool pending() const;

  /// True when the handle was obtained from a schedule() call (i.e. it
  /// identifies some event, pending or not); default handles are invalid.
  [[nodiscard]] bool valid() const { return queue_ != nullptr; }

 private:
  friend class EventQueue;
  EventHandle(const EventQueue* queue, std::uint32_t slot,
              std::uint32_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  const EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Min-heap of (time, sequence) ordered events over a slab of action
/// slots. Cancellation is O(1); cancelled heap entries are dropped lazily.
class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue() = default;
  // Handles point at their queue, so the queue must not move or be copied.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `action` at absolute time `when`. Times may not decrease
  /// relative to already-popped events; the Simulator enforces that.
  /// `category` tags the event for profiler attribution; it does not
  /// affect ordering. Dropping the returned handle forfeits the only way
  /// to cancel the event — cast to void at intentional fire-and-forget
  /// sites.
  [[nodiscard]] MHRP_HOT_PATH EventHandle schedule(
      Time when, Action action,
      EventCategory category = EventCategory::kGeneral) {
    serial_.assert_held();
    std::uint32_t slot = 0;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      // mhrp-lint: allow(hotpath-alloc) amortized slab growth (file comment)
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.action = std::move(action);
    s.category = category;
    s.live = true;
    // mhrp-lint: allow(hotpath-alloc) amortized heap growth; entries are POD
    heap_.push_back(HeapItem{when, next_seq_++, slot, s.generation});
    sift_up(heap_.size() - 1);
    ++live_;
    return EventHandle(this, slot, s.generation);
  }

  /// Cancel a pending event. Returns true when the event was pending and
  /// is now cancelled; false when it already fired or was cancelled, or
  /// when the handle is default-constructed / from another queue.
  MHRP_HOT_PATH bool cancel(const EventHandle& handle) {
    serial_.assert_held();
    if (!pending(handle)) return false;
    release(handle.slot_);
    --live_;
    return true;
  }

  /// True when `handle` names an event of this queue that has neither
  /// fired nor been cancelled.
  [[nodiscard]] MHRP_HOT_PATH bool pending(const EventHandle& handle) const {
    serial_.assert_held();
    if (handle.queue_ != this) return false;
    const Slot& s = slots_[handle.slot_];
    return s.live && s.generation == handle.generation_;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the next live event. Requires !empty().
  [[nodiscard]] MHRP_HOT_PATH Time next_time() {
    serial_.assert_held();
    drop_orphans();
    return heap_.front().when;
  }

  /// A popped event: its firing time, its action, and its category tag.
  struct Fired {
    Time when;
    Action action;
    EventCategory category;
  };

  /// Remove and return the next live event. Requires !empty(). The slot
  /// is released before returning, so the event's handle reports
  /// non-pending while the action runs (and cancelling it returns false).
  MHRP_HOT_PATH Fired pop() {
    serial_.assert_held();
    drop_orphans();
    const HeapItem top = heap_.front();
    pop_root();
    Action action = std::move(slots_[top.slot].action);
    const EventCategory category = slots_[top.slot].category;
    release(top.slot);
    --live_;
    return Fired{top.when, std::move(action), category};
  }

 private:
  friend struct EventQueueTestPeer;  // generation-wraparound tests

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Slot {
    Action action;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    EventCategory category = EventCategory::kGeneral;  // fits slot padding
    bool live = false;
  };

  struct HeapItem {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static bool before(const HeapItem& a, const HeapItem& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  /// Free a slot: clear the action, invalidate outstanding handles and
  /// heap entries by bumping the generation, and push it on the free list.
  void release(std::uint32_t slot) MHRP_REQUIRES(serial_) {
    Slot& s = slots_[slot];
    s.action = nullptr;
    s.live = false;
    ++s.generation;  // wraps at 2^32, see file comment
    s.next_free = free_head_;
    free_head_ = slot;
  }

  /// A heap entry is an orphan when its slot was cancelled (and possibly
  /// reused since): the generations no longer match.
  [[nodiscard]] bool orphan(const HeapItem& item) const {
    return slots_[item.slot].generation != item.generation;
  }

  void drop_orphans() MHRP_REQUIRES(serial_) {
    while (!heap_.empty() && orphan(heap_.front())) pop_root();
  }

  void pop_root() MHRP_REQUIRES(serial_) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void sift_up(std::size_t i) MHRP_REQUIRES(serial_) {
    const HeapItem item = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(item, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = item;
  }

  void sift_down(std::size_t i) MHRP_REQUIRES(serial_) {
    const HeapItem item = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], item)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = item;
  }

  // Groundwork for the sharded executive (ROADMAP item 1): all mutable
  // queue state is owned by a single logical serial domain today. The
  // phantom capability documents that invariant and lets a clang
  // -Wthread-safety build verify it at zero runtime cost; when shards
  // land, each shard's queue carries its own domain and the annotations
  // turn into real lock requirements.
  util::ExecutiveSerial serial_;
  std::vector<Slot> slots_ MHRP_GUARDED_BY(serial_);
  std::vector<HeapItem> heap_ MHRP_GUARDED_BY(serial_);
  std::uint32_t free_head_ MHRP_GUARDED_BY(serial_) = kNoSlot;
  std::uint64_t next_seq_ MHRP_GUARDED_BY(serial_) = 0;
  std::size_t live_ = 0;  // read by empty()/size() observers
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->pending(*this);
}

}  // namespace mhrp::sim
