// Event categories for handler attribution. Every scheduled event carries
// a one-byte category tag (default kGeneral) so the event-loop profiler
// can break down event counts and wall-time by what kind of work the
// simulator is doing — link deliveries vs ARP churn vs registration
// traffic — without inspecting the closures themselves.
#pragma once

#include <cstdint>

namespace mhrp::sim {

enum class EventCategory : std::uint8_t {
  kGeneral = 0,     // untagged / miscellaneous
  kLinkDelivery,    // frame propagation across a Link
  kLocalDelivery,   // loopback / same-node delivery
  kArp,             // ARP requests, retries, gratuitous announcements
  kAdvertisement,   // agent advertisement beacons
  kRegistration,    // MHRP registration send / retransmit timers
  kMovement,        // scripted mobility (detach/attach)
  kWorkload,        // scenario traffic generators (CBR flows, probes)
  kStoreSync,       // home-agent store WAL sync timers
  kFaultInjection,  // fault-plane schedule (link down/up, crashes)
  kRouting,         // distance-vector timers (periodic/triggered/sweep)
  kCount,
};

inline const char* event_category_name(EventCategory cat) {
  switch (cat) {
    case EventCategory::kGeneral:
      return "general";
    case EventCategory::kLinkDelivery:
      return "link_delivery";
    case EventCategory::kLocalDelivery:
      return "local_delivery";
    case EventCategory::kArp:
      return "arp";
    case EventCategory::kAdvertisement:
      return "advertisement";
    case EventCategory::kRegistration:
      return "registration";
    case EventCategory::kMovement:
      return "movement";
    case EventCategory::kWorkload:
      return "workload";
    case EventCategory::kStoreSync:
      return "store_sync";
    case EventCategory::kFaultInjection:
      return "fault_injection";
    case EventCategory::kRouting:
      return "routing";
    case EventCategory::kCount:
      break;
  }
  return "unknown";
}

}  // namespace mhrp::sim
