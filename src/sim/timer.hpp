// RAII timers layered on the simulation executive. A PeriodicTimer drives recurring
// protocol behavior (agent advertisements, distance-vector updates); a
// OneShotTimer drives timeouts (registration retransmission, movement
// detection). Both cancel themselves on destruction, so a node that is
// torn down never leaves dangling callbacks in the event queue.
#pragma once

#include <functional>
#include <utility>

#include "sim/executive.hpp"

namespace mhrp::sim {

/// Fires `action` every `period` until stopped or destroyed. The first
/// firing happens after an initial delay (default: one period).
class PeriodicTimer {
 public:
  using Action = std::function<void()>;

  PeriodicTimer(Executive& sim, Time period, Action action,
                EventCategory category = EventCategory::kGeneral)
      : sim_(sim),
        period_(period),
        action_(std::move(action)),
        category_(category) {}

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  ~PeriodicTimer() { stop(); }

  void start() { start_after(period_); }

  void start_after(Time initial_delay) {
    stop();
    running_ = true;
    handle_ = sim_.after(initial_delay, [this] { fire(); }, category_);
  }

  void stop() {
    if (running_) {
      sim_.cancel(handle_);
      running_ = false;
    }
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Time period() const { return period_; }
  void set_period(Time period) { period_ = period; }

 private:
  void fire() {
    // Re-arm before running the action so the action may call stop().
    handle_ = sim_.after(period_, [this] { fire(); }, category_);
    action_();
  }

  Executive& sim_;
  Time period_;
  Action action_;
  EventHandle handle_;
  EventCategory category_ = EventCategory::kGeneral;
  bool running_ = false;
};

/// Fires `action` once after `delay`; can be re-armed or cancelled.
class OneShotTimer {
 public:
  using Action = std::function<void()>;

  OneShotTimer(Executive& sim, Action action,
               EventCategory category = EventCategory::kGeneral)
      : sim_(sim), action_(std::move(action)), category_(category) {}

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;
  ~OneShotTimer() { cancel(); }

  /// (Re)schedule the timer `delay` from now, replacing any pending firing.
  void arm(Time delay) {
    cancel();
    armed_ = true;
    handle_ = sim_.after(
        delay,
        [this] {
          armed_ = false;
          action_();
        },
        category_);
  }

  void cancel() {
    if (armed_) {
      sim_.cancel(handle_);
      armed_ = false;
    }
  }

  [[nodiscard]] bool armed() const { return armed_; }

 private:
  Executive& sim_;
  Action action_;
  EventHandle handle_;
  EventCategory category_ = EventCategory::kGeneral;
  bool armed_ = false;
};

}  // namespace mhrp::sim
