// sim::Executive — the simulation-executive interface every consumer of
// the clock and event queue programs against (nodes, timers, links, the
// fault plane, the durable store). Two implementations exist:
//
//  * sim::Simulator — the classic single-threaded executive: one slab
//    EventQueue, one clock, events strictly in (time, seq) order.
//  * sim::ShardedExecutive — one EventQueue + worker thread per shard,
//    synchronized conservatively in lookahead-sized windows (DESIGN.md
//    §13). Every node lives on exactly one shard and schedules through a
//    per-shard view of this interface; frames crossing shards travel as
//    cross-shard messages (post()).
//
// Scheduling semantics shared by both:
//  * at()/after() are SHARD-LOCAL: they schedule on the calling shard
//    (for the Simulator, the only shard). Times in the past are clamped
//    to now() — a local event can always legally fire "immediately".
//  * post() targets an explicit shard. Cross-shard posts are subject to
//    the lookahead contract: during a run, an event posted into another
//    shard must land at or after the end of the current synchronization
//    window, or the executive throws LookaheadViolation. There is no
//    clamping across shards — a cross-shard send arriving "in the past"
//    of the receiving shard is a protocol bug, never silently repaired
//    (contrast with the local-clamp rule above).
//  * post() returns no handle: a cross-shard event cannot be cancelled
//    (the handle would race the receiving shard). cancel() of a handle
//    owned by another shard's queue returns false, exactly like a handle
//    whose event already fired.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/event_category.hpp"
#include "sim/event_queue.hpp"
#include "sim/profiler.hpp"
#include "sim/time.hpp"

namespace mhrp::sim {

/// A cross-shard post violated the conservative-synchronization contract:
/// the event's timestamp falls inside (or before) the window the sending
/// shard is still executing, so the receiving shard may already have
/// advanced past it. This is always a modeling error — cross-shard
/// latency must be >= the executive's lookahead — and is reported as a
/// hard error rather than clamped (DESIGN.md §13).
class LookaheadViolation : public std::logic_error {
 public:
  LookaheadViolation(Time when, Time window_end)
      : std::logic_error("cross-shard post at t=" + std::to_string(when) +
                         "us lands inside the open window (ends t=" +
                         std::to_string(window_end) +
                         "us): link latency < executive lookahead"),
        when_(when),
        window_end_(window_end) {}

  [[nodiscard]] Time when() const { return when_; }
  [[nodiscard]] Time window_end() const { return window_end_; }

 private:
  Time when_;
  Time window_end_;
};

class Executive {
 public:
  using Action = EventQueue::Action;
  using ShardId = std::uint32_t;

  Executive() = default;
  Executive(const Executive&) = delete;
  Executive& operator=(const Executive&) = delete;
  virtual ~Executive() = default;

  /// Current simulated time of the calling shard. Monotone non-decreasing
  /// across the run.
  [[nodiscard]] virtual Time now() const = 0;

  /// Schedule `action` at absolute simulated time `when` on the calling
  /// shard; times in the past are clamped to now(). Discarding the handle
  /// forfeits cancellation — cast to void at fire-and-forget sites.
  [[nodiscard]] virtual EventHandle at(
      Time when, Action action,
      EventCategory category = EventCategory::kGeneral) = 0;

  /// Schedule `action` after a relative delay (>= 0) from now, on the
  /// calling shard.
  [[nodiscard]] virtual EventHandle after(
      Time delay, Action action,
      EventCategory category = EventCategory::kGeneral) {
    return at(now() + (delay < 0 ? 0 : delay), std::move(action), category);
  }

  /// Cancel a pending event scheduled on the calling shard. Returns false
  /// when the event already fired or was cancelled — or when the handle
  /// belongs to another shard's queue (cross-shard cancellation is
  /// rejected, never forwarded).
  virtual bool cancel(const EventHandle& handle) = 0;

  /// Schedule `action` on shard `target` at absolute time `when`. On the
  /// shard that owns the caller this is at(); crossing shards, `when`
  /// must respect the lookahead contract (see LookaheadViolation) and no
  /// handle is returned — a cross-shard event cannot be cancelled.
  virtual void post(ShardId target, Time when, Action action,
                    EventCategory category = EventCategory::kGeneral) = 0;

  [[nodiscard]] virtual ShardId shard_count() const { return 1; }
  /// The shard this executive (view) schedules onto. For a sharded
  /// driver, resolves to the calling worker's shard mid-run.
  [[nodiscard]] virtual ShardId shard_id() const { return 0; }
  /// The conservative lookahead window (0 when single-threaded). A
  /// cross-shard post() from inside an event is always legal at
  /// `now() + lookahead()` or later.
  [[nodiscard]] virtual Time lookahead() const { return 0; }

  /// Run until every queue is empty or stop() is called. Returns events
  /// executed (summed over shards).
  virtual std::size_t run() = 0;
  /// Run events with timestamp <= deadline; clocks advance to `deadline`
  /// when the queues drain early. Returns events executed.
  virtual std::size_t run_until(Time deadline) = 0;
  /// Run for a relative duration from the current clock.
  virtual std::size_t run_for(Time duration) = 0;
  /// Request that the current run return: immediately on a single-threaded
  /// executive, at the next window boundary on a sharded one.
  virtual void stop() = 0;

  [[nodiscard]] virtual std::size_t pending_events() const = 0;

  /// Install (or clear, with nullptr) an event-loop profiler. Wall-time
  /// observation only; replay-identical on or off. The sharded executive
  /// rejects a profiler (its per-event wall times interleave across
  /// threads) — profile single-threaded runs.
  virtual void set_profiler(EventLoopProfiler* profiler) = 0;
};

/// Transitional name from the PR that introduced the interface; every
/// in-tree caller says sim::Executive. Removed after one release.
using SimulatorApi [[deprecated("use sim::Executive")]] = Executive;

}  // namespace mhrp::sim
