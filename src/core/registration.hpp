// Registration / notification messages exchanged when a mobile host
// moves (paper §3). The paper specifies the notification *ordering* and
// semantics but not a wire format; this one is minimal and rides UDP on
// a dedicated control port, with acknowledgment and retransmission so a
// lost notification does not strand a mobile host (robustness in the
// spirit of §5).
//
// Ordering implemented by MobileHost, per §3:
//   reconnect:  new FA  →  home agent (and old FA, if not yet notified)
//   planned disconnect:  home agent  →  old FA
//   returning home: home agent only, with "foreign agent address zero"
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip_address.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::core {

/// UDP port agents and mobile hosts use for registration traffic.
inline constexpr std::uint16_t kRegistrationPort = 434;

enum class RegKind : std::uint8_t {
  kConnect = 1,        // MH → new FA: add me to your visiting list
  kConnectAck = 2,     // FA → MH
  kHomeRegister = 3,   // MH → HA: my FA is now X (0 = I am home)
  kHomeRegisterAck = 4,  // HA → MH
  kDisconnect = 5,     // MH → old FA: I left; my new FA is X (0 = home)
  kDisconnectAck = 6,  // old FA → MH
  kReconnectQuery = 7,  // rebooted FA → broadcast: visiting hosts, re-register
};

struct RegMessage {
  RegKind kind = RegKind::kConnect;
  net::IpAddress mobile_host;
  /// kConnect: unused. kHomeRegister/kDisconnect: the new foreign agent
  /// (0 = at home). Acks echo the request's value.
  net::IpAddress foreign_agent;
  /// Monotonic per-mobile-host sequence; lets agents and the home agent
  /// ignore stale, reordered registrations.
  std::uint32_t sequence = 0;

  static constexpr std::size_t kWireSize = 13;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static RegMessage decode(std::span<const std::uint8_t> wire);

  bool operator==(const RegMessage&) const = default;
};

}  // namespace mhrp::core
