#include "core/location_cache.hpp"

namespace mhrp::core {

void LocationCache::update(net::IpAddress mobile_host,
                           net::IpAddress foreign_agent) {
  if (foreign_agent.is_unspecified()) {
    invalidate(mobile_host);
    return;
  }
  ++stats_.updates;
  auto it = map_.find(mobile_host);
  if (it != map_.end()) {
    it->second->foreign_agent = foreign_agent;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (capacity_ != 0 && map_.size() >= capacity_) {
    ++stats_.evictions;
    map_.erase(lru_.back().mobile_host);
    lru_.pop_back();
  }
  lru_.push_front(Entry{mobile_host, foreign_agent});
  map_[mobile_host] = lru_.begin();
}

void LocationCache::invalidate(net::IpAddress mobile_host) {
  auto it = map_.find(mobile_host);
  if (it == map_.end()) return;
  ++stats_.invalidations;
  lru_.erase(it->second);
  map_.erase(it);
}

std::optional<net::IpAddress> LocationCache::lookup(
    net::IpAddress mobile_host) {
  auto it = map_.find(mobile_host);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->foreign_agent;
}

std::optional<net::IpAddress> LocationCache::peek(
    net::IpAddress mobile_host) const {
  auto it = map_.find(mobile_host);
  if (it == map_.end()) return std::nullopt;
  return it->second->foreign_agent;
}

void LocationCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace mhrp::core
