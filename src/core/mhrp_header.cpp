#include "core/mhrp_header.hpp"

#include "util/checksum.hpp"

namespace mhrp::core {

void MhrpHeader::encode(util::ByteWriter& w) const {
  if (previous_sources.size() > 255) {
    throw util::CodecError("MHRP previous-source list exceeds 255 entries");
  }
  const std::size_t start = w.size();
  w.u8(orig_protocol);
  w.u8(static_cast<std::uint8_t>(previous_sources.size()));
  w.u16(0);  // checksum placeholder
  w.u32(mobile_host.raw());
  for (net::IpAddress a : previous_sources) w.u32(a.raw());
  w.patch_u16(start + 2, util::internet_checksum(
                             w.view().subspan(start, encoded_size())));
}

MhrpHeader MhrpHeader::decode(util::ByteReader& r) {
  if (r.remaining() < kBaseSize) {
    throw util::CodecError("truncated MHRP header");
  }
  // Verify checksum over the full header before consuming fields.
  const auto whole = r.rest();
  const std::size_t count_peek = whole[1];
  const std::size_t size = kBaseSize + 4 * count_peek;
  if (whole.size() < size) throw util::CodecError("truncated MHRP list");
  if (!util::checksum_ok(whole.subspan(0, size))) {
    throw util::CodecError("MHRP header checksum mismatch");
  }

  MhrpHeader h;
  h.orig_protocol = r.u8();
  const std::size_t count = r.u8();
  r.skip(2);  // checksum, verified above
  h.mobile_host = net::IpAddress(r.u32());
  h.previous_sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    h.previous_sources.emplace_back(r.u32());
  }
  return h;
}

}  // namespace mhrp::core
