// §3's alternative deployment: "It may also be possible to support an
// entire routing domain with one (or more) home agents or foreign agents
// by selectively using host-specific IP routes. When a mobile host
// disconnects from its home network, its home agent could begin
// advertising network reachability to that specific host. Such
// host-specific routes would be advertised only while the mobile host was
// disconnected from its home network, and would not be propagated outside
// that routing domain."
//
// DomainCoverage glues a home agent to the domain's distance-vector
// routing: whenever a provisioned mobile host's binding moves away from
// home, a /32 for it is injected (drawing the domain's traffic for that
// host to the agent, which intercepts and tunnels); when the host
// returns, the route is withdrawn (poisoned), and plain subnet routing
// resumes. The DV protocol already keeps host routes inside the domain.
#pragma once

#include "core/agent.hpp"
#include "routing/dv/dv_process.hpp"

namespace mhrp::core {

class DomainCoverage {
 public:
  /// `agent` must be a home agent on the same node that runs `dv`.
  /// Overwrites the agent's on_binding_changed hook.
  DomainCoverage(MhrpAgent& agent, routing::dv::DvProcess& dv)
      : agent_(agent), dv_(dv) {
    agent_.on_binding_changed = [this](net::IpAddress mobile_host,
                                       net::IpAddress foreign_agent) {
      const bool away = !foreign_agent.is_unspecified();
      dv_.advertise_host_route(mobile_host, away);
      if (away) {
        ++routes_advertised_;
      } else {
        ++routes_withdrawn_;
      }
    };
  }

  DomainCoverage(const DomainCoverage&) = delete;
  DomainCoverage& operator=(const DomainCoverage&) = delete;
  ~DomainCoverage() { agent_.on_binding_changed = nullptr; }

  [[nodiscard]] std::uint64_t routes_advertised() const {
    return routes_advertised_;
  }
  [[nodiscard]] std::uint64_t routes_withdrawn() const {
    return routes_withdrawn_;
  }

 private:
  MhrpAgent& agent_;
  routing::dv::DvProcess& dv_;
  std::uint64_t routes_advertised_ = 0;
  std::uint64_t routes_withdrawn_ = 0;
};

}  // namespace mhrp::core
