#include "core/mobile_host.hpp"

#include <algorithm>

#include "core/encapsulation.hpp"
#include "util/log.hpp"

namespace mhrp::core {

using net::IpAddress;
using net::Packet;

sim::Time registration_backoff_delay(const MobileHostConfig& config,
                                     int attempt, util::Rng& rng) {
  const double cap = static_cast<double>(
      std::max(config.registration_retry_max, config.registration_retry));
  double delay = static_cast<double>(config.registration_retry);
  for (int i = 0; i < attempt && delay < cap; ++i) {
    delay *= std::max(config.backoff_factor, 1.0);
  }
  delay = std::min(delay, cap);
  if (config.retry_jitter > 0.0) {
    delay *= 1.0 + config.retry_jitter * (2.0 * rng.real() - 1.0);
  }
  return std::max<sim::Time>(1, static_cast<sim::Time>(delay));
}

MobileHost::MobileHost(sim::Executive& sim, std::string name,
                       IpAddress home_ip, int home_prefix_length,
                       MobileHostConfig config)
    : Host(sim, std::move(name)),
      config_(config),
      agent_lifetime_(sim, [this] { on_agent_lost(); },
                      sim::EventCategory::kRegistration),
      solicit_timer_(sim, config.solicit_period, [this] { solicit(); },
                     sim::EventCategory::kRegistration),
      cache_(config.cache_capacity),
      limiter_(config.update_min_interval),
      retry_rng_(config.retry_seed) {
  radio_ = &add_interface("wlan0", home_ip, home_prefix_length);
  join_multicast(net::kAllAgentsGroup);

  bind_udp(kRegistrationPort,
           [this](const net::UdpDatagram& d, const net::IpHeader& h,
                  net::Interface& i) { on_registration_udp(d, h, i); });
  set_protocol_handler(net::IpProto::kMhrp,
                       [this](Packet& p, net::Interface& i) {
                         on_mhrp_packet(p, i);
                       });
  add_icmp_handler([this](const net::IcmpMessage& msg,
                          const net::IpHeader& h, net::Interface& i) {
    return on_icmp_msg(msg, h, i);
  });
  if (config_.cache_agent) {
    // §4.1: a sending host functioning as a cache agent builds the MHRP
    // header itself (list empty, 8 octets).
    add_egress_hook([this](Packet& p) {
      if (is_mhrp(p)) return;
      const IpAddress dst = p.header().dst;
      if (dst.is_broadcast() || dst.is_multicast() || owns_address(dst)) {
        return;
      }
      if (auto fa = cache_.lookup(dst)) {
        encapsulate(p, *fa, home_address());
      }
    });
  }
}

// ---- Movement ----

void MobileHost::attach_to(net::Link& link) {
  ++stats_.moves;
  // Implicit disconnect: whatever we were attached to is simply gone.
  if (radio_->attached()) radio_->link()->detach(*radio_);
  arp_table(*radio_).clear();  // new segment, old neighbors meaningless
  if (current_agent_ != net::kUnspecified &&
      current_agent_ != config_.home_agent) {
    old_foreign_agent_ = current_agent_;
  }
  current_agent_ = net::kUnspecified;
  link.attach(*radio_);
  if (on_attached) on_attached();
  start_discovery();
}

void MobileHost::detach() {
  if (radio_->attached()) radio_->link()->detach(*radio_);
  if (current_agent_ != net::kUnspecified &&
      current_agent_ != config_.home_agent) {
    old_foreign_agent_ = current_agent_;
  }
  current_agent_ = net::kUnspecified;
  state_ = State::kDetached;
  agent_lifetime_.cancel();
  solicit_timer_.stop();
  outstanding_.clear();
}

void MobileHost::disconnect_gracefully() {
  // §3: "it first notifies its home agent, and then notifies its old
  // foreign agent from which it is disconnecting."
  ++sequence_;
  // kBroadcast is MhrpAgent::kDetachedSentinel — "I am going offline".
  send_registration(RegKind::kHomeRegister, config_.home_agent,
                    net::kBroadcast, /*direct=*/false);
  if (current_agent_ != net::kUnspecified &&
      current_agent_ != config_.home_agent) {
    send_registration(RegKind::kDisconnect, current_agent_, net::kUnspecified,
                      /*direct=*/true);
    old_foreign_agent_ = net::kUnspecified;  // notified now
  }
  // Give the notifications (and retransmissions) a moment, then go dark.
  (void)sim().after(config_.registration_retry * config_.registration_attempts,
              [this] { detach(); });
}

// ---- Discovery (§3) ----

void MobileHost::start_discovery() {
  state_ = State::kDiscovering;
  // §3: a mobile host "may wait to hear the next periodic advertisement
  // message, or may optionally multicast an agent solicitation". With
  // soliciting disabled, discovery is entirely passive.
  if (config_.solicit_on_attach) {
    solicit();
    solicit_timer_.start();
  }
}

void MobileHost::solicit() {
  if (!radio_->attached()) return;
  ++stats_.solicitations_sent;
  send_icmp_on(*radio_, net::kAllAgentsGroup, net::IcmpAgentSolicitation{});
}

void MobileHost::on_advertisement(const net::IcmpAgentAdvertisement& adv) {
  ++stats_.advertisements_heard;
  // Refresh liveness for the agent we are registered with.
  const sim::Time lifetime = sim::seconds(adv.lifetime_s);
  if (adv.agent == current_agent_ &&
      (state_ == State::kHome || state_ == State::kForeign)) {
    agent_lifetime_.arm(lifetime);
    return;
  }
  if (state_ != State::kDiscovering) return;
  solicit_timer_.stop();
  agent_lifetime_.arm(lifetime);

  if (adv.agent == config_.home_agent) {
    // "Mobile hosts realize that they have returned to their home network
    // when they hear an advertisement from their own home agent" (§3).
    register_at_home();
  } else if (adv.offers_foreign_agent) {
    register_with_foreign_agent(adv.agent);
  }
}

void MobileHost::on_agent_lost() {
  // The agent's advertisements stopped before their lifetime ran out:
  // we have moved out of range (implicit disconnect) or the agent died.
  if (current_agent_ != net::kUnspecified &&
      current_agent_ != config_.home_agent) {
    old_foreign_agent_ = current_agent_;
  }
  current_agent_ = net::kUnspecified;
  if (radio_->attached()) {
    start_discovery();
  } else {
    state_ = State::kDetached;
  }
}

// ---- Registration (§3 ordering) ----

void MobileHost::register_with_foreign_agent(IpAddress fa) {
  state_ = State::kRegistering;
  pending_agent_ = fa;
  ++sequence_;
  // New FA first; HA and old FA follow once the FA acknowledges.
  send_registration(RegKind::kConnect, fa, net::kUnspecified, /*direct=*/true);
}

void MobileHost::register_at_home() {
  state_ = State::kRegistering;
  pending_agent_ = config_.home_agent;
  ++sequence_;
  // §2/§3: reclaim our link-layer identity from the home agent's proxy.
  send_gratuitous_arp(*radio_, home_address(), radio_->mac());
  install_default_route(config_.home_agent);
  // "The mobile host registers a special foreign agent address of zero
  // with its home agent when reconnecting to its home network" (§3).
  // The old FA is notified after the home agent acknowledges: §3 orders
  // the home agent strictly before the old foreign agent, and that
  // ordering matters — a Disconnect processed while the home agent still
  // holds the old binding lets in-flight packets bounce HA→old-FA with a
  // stale location update that would resurrect the deleted visitor entry
  // through the §5.2 recovery path.
  send_registration(RegKind::kHomeRegister, config_.home_agent,
                    net::kUnspecified, /*direct=*/true);
}

void MobileHost::complete_home_registration() {
  // Runs when the new FA acked the Connect: now notify the home agent.
  // The old FA follows once the home agent acknowledges (see
  // register_at_home for why the §3 ordering is strict).
  install_default_route(pending_agent_);
  send_registration(RegKind::kHomeRegister, config_.home_agent,
                    pending_agent_, /*direct=*/false);
}

void MobileHost::notify_old_foreign_agent(IpAddress new_fa) {
  send_registration(RegKind::kDisconnect, old_foreign_agent_, new_fa,
                    /*direct=*/false);
  old_foreign_agent_ = net::kUnspecified;
}

void MobileHost::install_default_route(IpAddress via) {
  routing_table().install({net::Prefix(net::kUnspecified, 0), via, radio_, 1,
                           routing::RouteKind::kStatic});
  // The connected route for the home prefix must not shadow the default
  // while the host is away: the home subnet is NOT on-link at a foreign
  // network (the home agent itself is reached through the tunnel/agent).
  if (via == config_.home_agent ||
      radio_->prefix().contains(via)) {
    // At home (or the agent is genuinely on our home subnet): restore
    // normal on-link delivery.
    routing_table().install({radio_->prefix(), net::kUnspecified, radio_, 0,
                             routing::RouteKind::kConnected});
  } else {
    routing_table().remove(radio_->prefix());
  }
}

void MobileHost::send_registration(RegKind kind, IpAddress dst,
                                   IpAddress foreign_agent, bool direct) {
  RegMessage m{kind, home_address(), foreign_agent, sequence_};
  Outstanding out;
  out.message = m;
  out.dst = dst;
  out.direct = direct;
  out.started = sim().now();
  out.timer = std::make_unique<sim::OneShotTimer>(
      sim(),
      [this, kind] {
    auto it = outstanding_.find(kind);
    if (it == outstanding_.end()) return;
    Outstanding& o = it->second;
    if (++o.attempts >= config_.registration_attempts) {
      // Give up; discovery will retry on the next advertisement.
      ++stats_.registrations_abandoned;
      outstanding_.erase(it);
      return;
    }
    ++stats_.registration_retransmits;
    if (trace_ != nullptr) {
      trace_->instant(telemetry::TraceCategory::kProtocol, "reg.retry",
                      sim().now(), "attempt", o.attempts);
    }
    auto bytes = o.message.encode();
    if (o.direct) {
      net::IpHeader h;
      h.protocol = net::to_u8(net::IpProto::kUdp);
      h.src = home_address();
      h.dst = o.dst;
      Packet p(h, net::encode_udp({kRegistrationPort, kRegistrationPort},
                                  bytes));
      send_ip_on(*radio_, std::move(p), o.dst);
    } else {
      send_udp(o.dst, kRegistrationPort, kRegistrationPort, bytes);
    }
    o.timer->arm(registration_backoff_delay(config_, o.attempts, retry_rng_));
      },
      sim::EventCategory::kRegistration);
  out.timer->arm(registration_backoff_delay(config_, 0, retry_rng_));

  auto bytes = m.encode();
  if (direct) {
    net::IpHeader h;
    h.protocol = net::to_u8(net::IpProto::kUdp);
    h.src = home_address();
    h.dst = dst;
    Packet p(h, net::encode_udp({kRegistrationPort, kRegistrationPort},
                                bytes));
    send_ip_on(*radio_, std::move(p), dst);
  } else {
    send_udp(dst, kRegistrationPort, kRegistrationPort, bytes);
  }
  outstanding_[kind] = std::move(out);
}

void MobileHost::on_registration_udp(const net::UdpDatagram& datagram,
                                     const net::IpHeader& header,
                                     net::Interface& iface) {
  (void)iface;
  RegMessage m;
  try {
    m = RegMessage::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }

  if (m.kind == RegKind::kReconnectQuery) {
    // A rebooted foreign agent asks visitors to re-register (§5.2).
    if (header.src == current_agent_ && state_ == State::kForeign) {
      register_with_foreign_agent(current_agent_);
    }
    return;
  }

  // Acks: match the outstanding request of the corresponding kind.
  RegKind request_kind;
  switch (m.kind) {
    case RegKind::kConnectAck:
      request_kind = RegKind::kConnect;
      break;
    case RegKind::kHomeRegisterAck:
      request_kind = RegKind::kHomeRegister;
      break;
    case RegKind::kDisconnectAck:
      request_kind = RegKind::kDisconnect;
      break;
    default:
      return;
  }
  auto it = outstanding_.find(request_kind);
  if (it == outstanding_.end() || it->second.message.sequence != m.sequence) {
    return;
  }
  if (trace_ != nullptr) {
    const char* span_name = "reg.roundtrip";
    switch (request_kind) {
      case RegKind::kConnect:
        span_name = "reg.connect";
        break;
      case RegKind::kHomeRegister:
        span_name = "reg.home_register";
        break;
      case RegKind::kDisconnect:
        span_name = "reg.disconnect";
        break;
      default:
        break;
    }
    trace_->span(telemetry::TraceCategory::kProtocol, span_name,
                 it->second.started, sim().now(), "attempts",
                 it->second.attempts + 1);
  }
  outstanding_.erase(it);

  switch (m.kind) {
    case RegKind::kConnectAck:
      complete_home_registration();
      break;
    case RegKind::kHomeRegisterAck: {
      current_agent_ = pending_agent_;
      state_ = (current_agent_ == config_.home_agent) ? State::kHome
                                                      : State::kForeign;
      // §3: the old foreign agent is notified last, after the home agent
      // has the new binding. Reconnecting to the same agent (a bounce
      // back into the same cell) needs no disconnect — it would erase
      // the registration just made.
      if (old_foreign_agent_ == current_agent_) {
        old_foreign_agent_ = net::kUnspecified;
      } else if (!old_foreign_agent_.is_unspecified()) {
        notify_old_foreign_agent(state_ == State::kHome ? net::kUnspecified
                                                        : current_agent_);
      }
      ++stats_.registrations_completed;
      if (on_registered) on_registered();
      break;
    }
    case RegKind::kDisconnectAck:
      break;
    default:
      break;
  }
}

// ---- Receiving tunneled packets ----

void MobileHost::on_mhrp_packet(Packet& packet, net::Interface& iface) {
  (void)iface;
  // A tunnel terminating at this host: either we are at home and an old
  // foreign agent tunneled to our home address (§6.3), or we serve as
  // our own foreign agent (§2).
  MhrpHeader h;
  try {
    h = read_mhrp_header(packet);
  } catch (const util::CodecError&) {
    return;
  }
  if (h.mobile_host != home_address()) return;  // not for us
  ++stats_.tunneled_received;

  const IpAddress tunnel_head = packet.header().src;
  decapsulate(packet);

  // Tell everyone who handled the packet where we really are (§6.3: at
  // home, "indicating that S's cache entry for M should be deleted").
  for (IpAddress member : h.previous_sources) report_own_location(member);
  report_own_location(tunnel_head);

  // Re-inject the reconstructed original packet into our own stack.
  send_ip(std::move(packet));
}

void MobileHost::report_own_location(IpAddress dst) {
  if (dst.is_unspecified() || owns_address(dst)) return;
  if (!limiter_.allow(dst, sim().now())) return;
  net::IcmpLocationUpdate update;
  update.mobile_host = home_address();
  // At home → zero (delete the entry); as own FA → the temp address.
  update.foreign_agent =
      (state_ == State::kForeign && !self_agent_addr_.is_unspecified())
          ? self_agent_addr_
          : net::kUnspecified;
  ++stats_.updates_sent;
  send_icmp(dst, update);
}

bool MobileHost::on_icmp_msg(const net::IcmpMessage& msg,
                             const net::IpHeader& header,
                             net::Interface& iface) {
  (void)header;
  (void)iface;
  if (const auto* adv = std::get_if<net::IcmpAgentAdvertisement>(&msg)) {
    on_advertisement(*adv);
    return true;
  }
  if (const auto* update = std::get_if<net::IcmpLocationUpdate>(&msg)) {
    if (config_.cache_agent) {
      if (update->invalidate || update->foreign_agent.is_unspecified()) {
        cache_.invalidate(update->mobile_host);
      } else {
        cache_.update(update->mobile_host, update->foreign_agent);
      }
    }
    return true;
  }
  return false;
}

// ---- Own foreign agent (§2, optional) ----

void MobileHost::enable_self_agent(IpAddress temp_addr,
                                   IpAddress local_router) {
  self_agent_addr_ = temp_addr;
  add_address_alias(temp_addr);
  state_ = State::kRegistering;
  pending_agent_ = temp_addr;
  ++sequence_;
  // No foreign agent exists here; route via the visited network's router.
  install_default_route(local_router);
  // Register the temporary address as our "foreign agent" (§2: packets
  // are tunneled to it exactly as to any other FA).
  send_registration(RegKind::kHomeRegister, config_.home_agent, temp_addr,
                    /*direct=*/false);
}

void MobileHost::disable_self_agent() {
  if (self_agent_addr_.is_unspecified()) return;
  remove_address_alias(self_agent_addr_);
  self_agent_addr_ = net::kUnspecified;
}

}  // namespace mhrp::core
