#include "core/registration.hpp"

namespace mhrp::core {

std::vector<std::uint8_t> RegMessage::encode() const {
  util::ByteWriter w(kWireSize);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(mobile_host.raw());
  w.u32(foreign_agent.raw());
  w.u32(sequence);
  return w.take();
}

RegMessage RegMessage::decode(std::span<const std::uint8_t> wire) {
  util::ByteReader r(wire);
  RegMessage m;
  std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 7) throw util::CodecError("bad registration kind");
  m.kind = static_cast<RegKind>(kind);
  m.mobile_host = net::IpAddress(r.u32());
  m.foreign_agent = net::IpAddress(r.u32());
  m.sequence = r.u32();
  return m;
}

}  // namespace mhrp::core
