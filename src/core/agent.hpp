// MhrpAgent: the home agent, foreign agent, and cache agent roles of the
// paper, attachable to any Node in any combination ("the functionality
// ... may be combined in different ways on one or more hosts or routers",
// paper §2).
//
// Wiring into the node stack:
//  * an egress hook tunnels locally originated packets when this node is
//    the original sender and has a cache entry (or is the HA) — §4.1;
//  * a forward-path interceptor implements home-agent interception of
//    packets for away mobile hosts, opportunistic tunneling by cache
//    agents in routers (§6.2), and the §4.3 behavior of caching
//    location updates seen in transit;
//  * an IP-protocol handler for kMhrp processes tunneled packets
//    addressed to this node: visitor delivery, re-tunneling with the
//    previous-source-list machinery, loop detection/dissolution (§5.3);
//  * an ICMP handler consumes location updates (§4.3), answers agent
//    solicitations (§3), implements foreign-agent state recovery (§5.2),
//    and reverse-tunnels ICMP errors (§4.5);
//  * a UDP handler on the registration port processes the §3
//    notifications;
//  * a periodic timer multicasts agent advertisements (§3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/encapsulation.hpp"
#include "core/location_cache.hpp"
#include "core/rate_limiter.hpp"
#include "core/registration.hpp"
#include "node/node.hpp"
#include "sim/timer.hpp"
#include "store/home_store.hpp"
#include "telemetry/trace.hpp"
#include "util/annotations.hpp"

namespace mhrp::core {

struct AgentConfig {
  bool home_agent = false;
  bool foreign_agent = false;
  /// Nearly every node should also be a cache agent (paper §2).
  bool cache_agent = true;

  std::size_t cache_capacity = 1024;
  /// Maximum previous-source-list entries before the §4.4 overflow
  /// procedure runs; 0 = unbounded.
  std::size_t max_list_length = 8;

  sim::Time advertisement_period = sim::seconds(5);
  std::uint16_t advertisement_lifetime_s = 15;

  /// §4.3 rate limit on location updates per destination.
  sim::Time update_min_interval = sim::millis(500);
  std::size_t rate_limiter_capacity = 256;

  /// Old FA caches the new FA on disconnect — the "forwarding pointer"
  /// of §2 (ablation toggle for bench_handoff).
  bool forwarding_pointers = true;
  /// §4.5: delete the cache entry for a mobile host when an ICMP
  /// destination-unreachable comes back through a tunnel this node heads.
  bool invalidate_cache_on_error = true;
  /// §5.2: verify a recovery location update with an ARP query before
  /// re-adding the visitor, instead of "believing the home agent".
  bool verify_recovery_with_arp = false;
  /// §5.2 optional speedup: after a reboot, broadcast a query telling
  /// visiting mobile hosts to re-register.
  bool reregister_broadcast_on_reboot = false;
  /// §4.3: routers should have a switch for the cost of examining every
  /// forwarded packet.
  bool examine_forwarded_packets = true;
};

struct AgentStats {
  std::uint64_t intercepted_home = 0;      // HA interceptions on the home net
  std::uint64_t tunnels_built = 0;         // §4.1 encapsulations
  std::uint64_t retunnels = 0;             // §4.4 re-tunnels
  std::uint64_t tunneled_to_home = 0;      // re-tunnels that fell back to home
  std::uint64_t delivered_to_visitor = 0;  // FA last-hop deliveries
  std::uint64_t discarded_for_recovery = 0;  // §5.2 HA discards
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t loops_detected = 0;
  std::uint64_t list_overflows = 0;
  std::uint64_t retunnel_ttl_drops = 0;  // packets that died of TTL here
  std::uint64_t packets_examined = 0;      // §4.3 CA forwarding cost
  std::uint64_t errors_reversed = 0;       // §4.5 ICMP errors re-sent backwards
  std::uint64_t errors_terminated = 0;     // §4.5 errors surfaced at the origin
  std::uint64_t cache_error_invalidations = 0;
  std::uint64_t recovery_readds = 0;       // §5.2 visitor re-adds
  std::uint64_t registrations = 0;
  std::uint64_t dropped_disconnected = 0;  // HA drops for detached hosts
  std::uint64_t bindings_logged = 0;       // mutations sent to the store
  std::uint64_t acks_deferred = 0;         // held for a group commit
  std::uint64_t acks_released = 0;         // sent once durable
  std::uint64_t acks_dropped_on_crash = 0; // pending acks a reboot cleared
};

class MhrpAgent {
 public:
  /// Sentinel registered as the "foreign agent" of a host that has
  /// disconnected entirely (graceful disconnect, §3). Packets for it are
  /// answered with ICMP host unreachable.
  static constexpr net::IpAddress kDetachedSentinel = net::kBroadcast;

  MhrpAgent(node::Node& node, AgentConfig config);

  MhrpAgent(const MhrpAgent&) = delete;
  MhrpAgent& operator=(const MhrpAgent&) = delete;

  [[nodiscard]] node::Node& node() { return node_; }
  [[nodiscard]] const AgentConfig& config() const { return config_; }
  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  [[nodiscard]] LocationCache& cache() { return cache_; }
  [[nodiscard]] const LocationCache& cache() const { return cache_; }
  [[nodiscard]] UpdateRateLimiter& rate_limiter() { return limiter_; }

  /// Optional trace sink (nullptr = tracing off). When set, the agent
  /// emits sampled encap/decap/retunnel instants on the packet track.
  /// Observability only: it never changes protocol behavior.
  void set_trace(telemetry::TraceCollector* trace) { trace_ = trace; }

  /// Advertise and serve mobile hosts on this interface's network. A
  /// foreign agent delivers visitors here; a home agent intercepts here.
  void serve_on(net::Interface& iface);

  /// The agent's canonical address — what it advertises, what mobile
  /// hosts register, what the previous-source list records, and what the
  /// home-agent database compares against (§5.2 depends on these all
  /// matching). The first served interface's address, falling back to
  /// the node's primary address for pure cache agents.
  [[nodiscard]] net::IpAddress agent_address() const {
    return served_.empty() ? node_.primary_address() : served_.front()->ip();
  }

  [[nodiscard]] const std::vector<net::Interface*>& served_interfaces()
      const {
    return served_;
  }

  /// Begin periodic agent advertisements on served interfaces.
  void start_advertising();
  void stop_advertising();

  // ---- Home agent ----

  /// Declare `mobile_host` as one of this home agent's own (its address
  /// must lie in a served network). Creates the (persistent) database
  /// row, initially "at home".
  void provision_mobile_host(net::IpAddress mobile_host);

  /// The current binding in the HA database, if provisioned: the serving
  /// FA, 0 when at home, kDetachedSentinel when disconnected.
  [[nodiscard]] std::optional<net::IpAddress> home_binding(
      net::IpAddress mobile_host) const;

  /// Replication support (paper §2; see core/replication.hpp). A passive
  /// replica maintains the database but neither intercepts packets nor
  /// answers ARP for away hosts; activating it installs proxy ARP for
  /// every away host and announces with gratuitous ARP.
  void set_passive(bool passive);
  [[nodiscard]] bool passive() const { return passive_; }

  /// Apply a binding learned from a replica peer (provisions the host if
  /// needed). Does not ack anything or bump registration sequences.
  void apply_replicated_binding(net::IpAddress mobile_host,
                                net::IpAddress foreign_agent);

  /// Attach a durable store (paper §2: the database is "recorded on disk
  /// to survive any crashes and subsequent reboots"). Every HomeRow
  /// mutation is logged *before* its registration ack goes out; under
  /// the interval sync policy the ack is held until the record's group
  /// commit completes. The store must outlive the agent.
  void attach_store(store::HomeStore& store);
  [[nodiscard]] store::HomeStore* home_store() { return store_; }

  /// Registration acks currently parked awaiting a group commit.
  [[nodiscard]] std::size_t pending_ack_count() const {
    return pending_acks_.size();
  }

  /// Every (mobile host, binding) row, for replica bootstrap and tests.
  [[nodiscard]] std::vector<std::pair<net::IpAddress, net::IpAddress>>
  home_bindings() const;

  [[nodiscard]] std::size_t home_database_size() const {
    return home_db_.size();
  }

  // ---- Foreign agent ----

  [[nodiscard]] bool is_visiting(net::IpAddress mobile_host) const {
    return visiting_.contains(mobile_host);
  }
  [[nodiscard]] std::size_t visiting_count() const { return visiting_.size(); }

  // ---- Fault injection (paper §5.2) ----

  /// Reboot the agent: lose all volatile state — the visiting list, the
  /// location cache, the rate limiter — as a crash+reboot would. With
  /// `preserve_home_database` (the default), the home-agent database
  /// survives ("should also be recorded on disk", §2); without it the
  /// disk is lost too, modeling a replica rebuilt from scratch.
  /// Optionally broadcasts the §5.2 re-register query afterwards. The
  /// fault plane calls this when it reboots a crashed node.
  ///
  /// With a store attached, `preserve_home_database` means "the disk
  /// survived": the database is rebuilt by store recovery (so anything
  /// that never became durable is genuinely gone), while `false` wipes
  /// the disk too. Registration acks still awaiting a group commit are
  /// dropped either way — the crash ate them, and the mobile host's
  /// retransmission is what recovers.
  void reboot(bool preserve_home_database = true);

  /// Send a location update about `mobile_host` to `dst`, rate limited.
  /// Exposed for the mobile host (which reports "I am home", §6.3) and
  /// for tests.
  void send_location_update(net::IpAddress dst, net::IpAddress mobile_host,
                            net::IpAddress foreign_agent,
                            bool invalidate = false);

  /// Fired whenever the home database binding for a mobile host changes
  /// (new FA, returned home with FA zero, or detached). The §3
  /// domain-coverage extension uses this to advertise/withdraw
  /// host-specific routes (see core/domain_coverage.hpp).
  std::function<void(net::IpAddress mobile_host, net::IpAddress foreign_agent)>
      on_binding_changed;

 private:
  struct HomeRow {
    net::IpAddress foreign_agent;  // 0 = at home
    std::uint32_t last_sequence = 0;
    net::Interface* home_iface = nullptr;
  };
  struct Visitor {
    std::uint32_t last_sequence = 0;
    net::Interface* iface = nullptr;
  };
  /// A registration reply held back until its WAL record is durable.
  struct PendingAck {
    net::IpAddress dst;
    RegMessage reply;
  };

  // Node-stack hooks.
  void on_egress(net::Packet& packet);
  [[nodiscard]] MHRP_HOT_PATH node::Intercept on_forward(net::Packet& packet,
                                                         net::Interface& in);
  void on_mhrp_packet(net::Packet& packet, net::Interface& in);
  bool on_icmp(const net::IcmpMessage& msg, const net::IpHeader& header,
               net::Interface& iface);
  void on_registration(const net::UdpDatagram& datagram,
                       const net::IpHeader& header, net::Interface& iface);

  // Home-agent pieces.
  [[nodiscard]] MHRP_HOT_PATH node::Intercept home_intercept(
      net::Packet& packet);
  void home_handle_tunneled(net::Packet& packet);
  void set_home_binding(net::IpAddress mobile_host, net::IpAddress fa,
                        HomeRow& row);
  /// Log one mutation to the attached store (no-op without one). Returns
  /// the ticket deciding when the caller may ack.
  [[nodiscard]] store::HomeStore::Ticket log_mutation(
      store::WalRecord::Kind kind, net::IpAddress mobile_host,
      net::IpAddress foreign_agent, std::uint32_t sequence);
  void release_pending_acks(store::Lsn durable);
  void restore_from_store();

  // Foreign/cache-agent pieces.
  void deliver_to_visitor(net::Packet packet);
  void retunnel_or_home(net::Packet packet);
  bool handle_returned_error(const net::IcmpMessage& msg);
  void handle_location_update(const net::IcmpLocationUpdate& update);
  void advertise();
  void advertise_on(net::Interface& iface);
  void reply_registration(net::Interface& iface, net::IpAddress dst,
                          const RegMessage& reply);

  /// Sampled packet-track instant (encap/decap/retunnel). A single
  /// branch when tracing is off.
  void trace_packet(const char* name, net::IpAddress mobile_host) {
    if (trace_ == nullptr) return;
    trace_->instant(telemetry::TraceCategory::kPacket, name,
                    node_.sim().now(), "mh",
                    static_cast<double>(mobile_host.raw()));
  }

  node::Node& node_;
  AgentConfig config_;
  AgentStats stats_;
  LocationCache cache_;
  UpdateRateLimiter limiter_;
  sim::PeriodicTimer advertise_timer_;
  std::vector<net::Interface*> served_;
  std::map<net::IpAddress, HomeRow> home_db_;   // persistent (survives crash)
  std::map<net::IpAddress, Visitor> visiting_;  // volatile
  store::HomeStore* store_ = nullptr;
  std::map<store::Lsn, PendingAck> pending_acks_;  // volatile
  bool restoring_ = false;  // suppress logging while replaying recovery
  std::uint16_t advertisement_sequence_ = 0;
  bool passive_ = false;
  telemetry::TraceCollector* trace_ = nullptr;
};

}  // namespace mhrp::core
