// Home agent replication (paper §2): "if that organization requires
// increased reliability of service for its own mobile hosts, it can
// replicate the home agent function on several support hosts on its own
// network, although these hosts must cooperate to provide a consistent
// view of the database recording the current location of each of that
// home network's mobile hosts."
//
// HaReplicator implements that cooperation: every binding change on one
// replica is pushed to its peers (primary-propagates, last-writer-wins by
// registration order — adequate because the mobile host serializes its
// own registrations), and replicas heartbeat each other so a backup
// notices a dead primary and takes over interception on the home LAN
// (proxy ARP for every away host, plus gratuitous ARP to capture
// in-flight frames).
#pragma once

#include <cstdint>
#include <vector>

#include "core/agent.hpp"
#include "sim/timer.hpp"

namespace mhrp::core {

/// UDP port for replica sync and heartbeats.
inline constexpr std::uint16_t kReplicationPort = 436;

/// Tunables for replica cooperation.
struct HaReplicatorConfig {
  sim::Time heartbeat_period = sim::millis(500);
  /// Missing this many consecutive heartbeats declares the peer dead.
  int missed_heartbeats = 4;
};

class HaReplicator {
 public:
  using Config = HaReplicatorConfig;

  /// `agent` must be a home agent. `peers` are the other replicas'
  /// addresses. `is_primary` selects which replica intercepts while all
  /// are healthy (exactly one should be primary).
  HaReplicator(MhrpAgent& agent, std::vector<net::IpAddress> peers,
               bool is_primary, Config config = Config());

  HaReplicator(const HaReplicator&) = delete;
  HaReplicator& operator=(const HaReplicator&) = delete;
  ~HaReplicator();

  void start();

  [[nodiscard]] bool is_active() const { return active_; }
  [[nodiscard]] std::uint64_t bindings_replicated() const {
    return bindings_replicated_;
  }
  [[nodiscard]] std::uint64_t takeovers() const { return takeovers_; }
  /// Times this replica yielded the active role back after discovering a
  /// concurrently active peer (a healed partition or a recovered
  /// primary). Exactly one replica must stay active afterwards: the
  /// original primary wins the tiebreak, and any other replica steps
  /// down when it hears an active heartbeat.
  [[nodiscard]] std::uint64_t stepdowns() const { return stepdowns_; }

 private:
  void on_udp(const net::UdpDatagram& datagram, const net::IpHeader& header);
  void broadcast_binding(net::IpAddress mobile_host,
                         net::IpAddress foreign_agent);
  void heartbeat();
  /// Unicast `bytes` to every peer except those whose address this node
  /// currently holds as an alias (i.e. dead peers it stands in for).
  void send_to_peers(const std::vector<std::uint8_t>& bytes);
  void peer_timeout();
  void take_over();
  void step_down();
  void reassert();

  MhrpAgent& agent_;
  std::vector<net::IpAddress> peers_;
  bool active_;            // currently the intercepting replica
  bool original_primary_;  // tiebreak winner when two replicas are active
  Config config_;
  bool applying_remote_ = false;  // suppress re-broadcast loops
  sim::PeriodicTimer heartbeat_timer_;
  sim::OneShotTimer peer_lifetime_;
  std::uint64_t bindings_replicated_ = 0;
  std::uint64_t takeovers_ = 0;
  std::uint64_t stepdowns_ = 0;
};

}  // namespace mhrp::core
