#include "core/agent.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace mhrp::core {

using net::IpAddress;
using net::Packet;

MhrpAgent::MhrpAgent(node::Node& node, AgentConfig config)
    : node_(node),
      config_(config),
      cache_(config.cache_capacity),
      limiter_(config.update_min_interval, config.rate_limiter_capacity),
      advertise_timer_(node.sim(), config.advertisement_period,
                       [this] { advertise(); },
                       sim::EventCategory::kAdvertisement) {
  node_.join_multicast(net::kAllAgentsGroup);
  node_.add_egress_hook([this](Packet& p) { on_egress(p); });
  node_.add_interceptor([this](Packet& p, net::Interface& in) {
    return on_forward(p, in);
  });
  node_.set_protocol_handler(
      net::IpProto::kMhrp,
      [this](Packet& p, net::Interface& in) { on_mhrp_packet(p, in); });
  node_.add_icmp_handler([this](const net::IcmpMessage& msg,
                                const net::IpHeader& header,
                                net::Interface& iface) {
    return on_icmp(msg, header, iface);
  });
  node_.bind_udp(kRegistrationPort,
                 [this](const net::UdpDatagram& d, const net::IpHeader& h,
                        net::Interface& i) { on_registration(d, h, i); });
}

void MhrpAgent::serve_on(net::Interface& iface) {
  if (std::find(served_.begin(), served_.end(), &iface) == served_.end()) {
    served_.push_back(&iface);
  }
}

void MhrpAgent::start_advertising() {
  advertise();
  advertise_timer_.start();
}

void MhrpAgent::stop_advertising() { advertise_timer_.stop(); }

void MhrpAgent::advertise() {
  for (net::Interface* iface : served_) advertise_on(*iface);
}

void MhrpAgent::advertise_on(net::Interface& iface) {
  net::IcmpAgentAdvertisement adv;
  adv.agent = iface.ip();
  adv.offers_home_agent = config_.home_agent;
  adv.offers_foreign_agent = config_.foreign_agent;
  adv.lifetime_s = config_.advertisement_lifetime_s;
  adv.sequence = ++advertisement_sequence_;
  node_.send_icmp_on(iface, net::kAllAgentsGroup, adv);
}

// ---- Home agent ----

void MhrpAgent::provision_mobile_host(IpAddress mobile_host) {
  net::Interface* home_iface = nullptr;
  for (net::Interface* iface : served_) {
    if (iface->prefix().contains(mobile_host)) {
      home_iface = iface;
      break;
    }
  }
  HomeRow row;
  row.foreign_agent = net::kUnspecified;  // at home
  row.home_iface = home_iface;
  if (home_db_.emplace(mobile_host, row).second) {
    (void)log_mutation(store::WalRecord::Kind::kProvision, mobile_host,
                       net::kUnspecified, 0);
  }
}

void MhrpAgent::attach_store(store::HomeStore& store) {
  store_ = &store;
  store_->on_durable = [this](store::Lsn durable) {
    release_pending_acks(durable);
  };
  // Scenarios may provision before attaching; bring the log up to date
  // with whatever the database already holds.
  for (const auto& [mobile_host, row] : home_db_) {
    (void)log_mutation(store::WalRecord::Kind::kProvision, mobile_host,
                       net::kUnspecified, 0);
    if (!row.foreign_agent.is_unspecified()) {
      (void)log_mutation(store::WalRecord::Kind::kBinding, mobile_host,
                         row.foreign_agent, row.last_sequence);
    }
  }
}

store::HomeStore::Ticket MhrpAgent::log_mutation(store::WalRecord::Kind kind,
                                                 IpAddress mobile_host,
                                                 IpAddress foreign_agent,
                                                 std::uint32_t sequence) {
  if (store_ == nullptr || restoring_) return {0, true};
  ++stats_.bindings_logged;
  return store_->log({kind, mobile_host, foreign_agent, sequence});
}

void MhrpAgent::release_pending_acks(store::Lsn durable) {
  while (!pending_acks_.empty() && pending_acks_.begin()->first <= durable) {
    auto entry = pending_acks_.extract(pending_acks_.begin());
    ++stats_.acks_released;
    auto bytes = entry.mapped().reply.encode();
    node_.send_udp(entry.mapped().dst, kRegistrationPort, kRegistrationPort,
                   bytes);
  }
}

void MhrpAgent::restore_from_store() {
  restoring_ = true;
  home_db_.clear();
  for (const auto& [mobile_host, recovered] : store_->state()) {
    provision_mobile_host(mobile_host);
    auto it = home_db_.find(mobile_host);
    it->second.last_sequence = recovered.sequence;
    if (!recovered.foreign_agent.is_unspecified()) {
      set_home_binding(mobile_host, recovered.foreign_agent, it->second);
    }
  }
  restoring_ = false;
}

std::optional<IpAddress> MhrpAgent::home_binding(IpAddress mobile_host) const {
  auto it = home_db_.find(mobile_host);
  if (it == home_db_.end()) return std::nullopt;
  return it->second.foreign_agent;
}

void MhrpAgent::set_home_binding(IpAddress mobile_host, IpAddress fa,
                                 HomeRow& row) {
  const bool was_away = !row.foreign_agent.is_unspecified();
  const bool now_away = !fa.is_unspecified();
  row.foreign_agent = fa;
  if (on_binding_changed) on_binding_changed(mobile_host, fa);
  // Without a presence on the host's own subnet (the §3 domain-coverage
  // deployment), interception happens via host-specific routes instead
  // of ARP games; nothing link-layer to do here. A passive replica keeps
  // the database in sync but leaves the link layer to the active one.
  if (row.home_iface == nullptr || passive_) return;
  if (!was_away && now_away) {
    // Take over the mobile host's identity on the home network: answer
    // future ARP queries for it and rewrite the neighbors' caches now
    // (paper §2).
    node_.add_proxy_arp(*row.home_iface, mobile_host);
    node_.send_gratuitous_arp(*row.home_iface, mobile_host,
                              row.home_iface->mac());
  } else if (was_away && !now_away) {
    // The returning mobile host broadcasts its own gratuitous ARP; we
    // just stop answering for it.
    node_.remove_proxy_arp(*row.home_iface, mobile_host);
  }
}

void MhrpAgent::set_passive(bool passive) {
  if (passive == passive_) return;
  passive_ = passive;
  for (auto& [mobile_host, row] : home_db_) {
    if (row.home_iface == nullptr) continue;
    const bool away = !row.foreign_agent.is_unspecified();
    if (!away) continue;
    if (passive_) {
      node_.remove_proxy_arp(*row.home_iface, mobile_host);
    } else {
      // Taking over interception: claim every away host at the link
      // layer and rewrite the neighbors' caches now.
      node_.add_proxy_arp(*row.home_iface, mobile_host);
      node_.send_gratuitous_arp(*row.home_iface, mobile_host,
                                row.home_iface->mac());
    }
  }
}

void MhrpAgent::apply_replicated_binding(IpAddress mobile_host,
                                         IpAddress foreign_agent) {
  auto it = home_db_.find(mobile_host);
  if (it == home_db_.end()) {
    provision_mobile_host(mobile_host);
    it = home_db_.find(mobile_host);
  }
  set_home_binding(mobile_host, foreign_agent, it->second);
  // A replica's copy is durable too — it may be promoted after a crash.
  (void)log_mutation(store::WalRecord::Kind::kBinding, mobile_host,
                     foreign_agent, it->second.last_sequence);
}

std::vector<std::pair<IpAddress, IpAddress>> MhrpAgent::home_bindings()
    const {
  std::vector<std::pair<IpAddress, IpAddress>> out;
  out.reserve(home_db_.size());
  for (const auto& [mobile_host, row] : home_db_) {
    out.emplace_back(mobile_host, row.foreign_agent);
  }
  return out;
}

node::Intercept MhrpAgent::home_intercept(Packet& packet) {
  if (passive_) return node::Intercept::kContinue;
  auto it = home_db_.find(packet.header().dst);
  if (it == home_db_.end()) return node::Intercept::kContinue;
  HomeRow& row = it->second;
  if (row.foreign_agent.is_unspecified()) {
    // At home: standard routing delivers with zero MHRP overhead.
    return node::Intercept::kContinue;
  }
  ++stats_.intercepted_home;
  if (row.foreign_agent == kDetachedSentinel) {
    ++stats_.dropped_disconnected;
    node_.send_icmp_error(
        packet, net::IcmpUnreachable{net::UnreachCode::kHostUnreachable, {}});
    return node::Intercept::kConsumed;
  }
  if (is_mhrp(packet)) {
    home_handle_tunneled(packet);
    return node::Intercept::kConsumed;
  }
  // Plain packet from a sender with no (or stale) location knowledge:
  // tunnel it and tell the sender where the host is (paper §6.1).
  const IpAddress sender = packet.header().src;
  encapsulate(packet, row.foreign_agent, agent_address());
  ++stats_.tunnels_built;
  trace_packet("tunnel.encap", it->first);
  send_location_update(sender, it->first, row.foreign_agent);
  node_.send_ip(std::move(packet));
  return node::Intercept::kConsumed;
}

void MhrpAgent::home_handle_tunneled(Packet& packet) {
  // An old foreign agent with no forwarding pointer tunneled this packet
  // to the mobile host's home address (paper §4.4); repair everyone who
  // handled it (§5.1) and pass it along to the true foreign agent —
  // unless the "true" FA itself appears among the handlers, which means
  // that FA lost its state and must be restored instead (§5.2).
  MhrpHeader h;
  try {
    h = read_mhrp_header(packet);
  } catch (const util::CodecError&) {
    return;  // corrupt tunnel header; drop
  }
  auto it = home_db_.find(h.mobile_host);
  if (it == home_db_.end()) return;
  HomeRow& row = it->second;
  const IpAddress true_fa = row.foreign_agent;

  std::vector<IpAddress> handlers = h.previous_sources;
  if (std::find(handlers.begin(), handlers.end(), packet.header().src) ==
      handlers.end()) {
    handlers.push_back(packet.header().src);
  }
  bool fa_among_handlers = false;
  for (IpAddress handler : handlers) {
    send_location_update(handler, h.mobile_host, true_fa);
    if (handler == true_fa) fa_among_handlers = true;
  }

  if (true_fa.is_unspecified()) {
    // Host is at home: hand the packet onward; it will reach the host on
    // the home network, which reports "I am home" itself (§6.3). Since
    // the packet is already addressed to the host, just forward it.
    node_.send_ip(std::move(packet));
    return;
  }
  if (fa_among_handlers) {
    // §5.2: the serving FA forgot this host (reboot). The update we just
    // sent restores it; re-tunneling now would only loop.
    ++stats_.discarded_for_recovery;
    return;
  }
  RetunnelResult r = retunnel(packet, agent_address(), true_fa,
                              config_.max_list_length);
  if (r.loop_detected) {
    ++stats_.loops_detected;
    for (IpAddress member : r.stale_members) {
      send_location_update(member, h.mobile_host, net::kUnspecified,
                           /*invalidate=*/true);
    }
    return;
  }
  if (r.list_overflowed) {
    ++stats_.list_overflows;
    for (IpAddress member : r.flushed) {
      send_location_update(member, h.mobile_host, true_fa);
    }
  }
  ++stats_.retunnels;
  node_.send_ip(std::move(packet));
}

// ---- Egress: this node is the original sender (§4.1) ----

void MhrpAgent::on_egress(Packet& packet) {
  if (is_mhrp(packet)) return;
  const IpAddress dst = packet.header().dst;
  if (dst.is_unspecified() || dst.is_broadcast() || dst.is_multicast() ||
      node_.owns_address(dst)) {
    return;
  }
  // This node originated the packet, so whatever owned address it chose
  // as the source is "the original sender" — the header is sender-built
  // (8 octets, empty list, §4.1). Using the agent's canonical address as
  // the builder here would wrongly push our own other address into the
  // list and draw §5.1 updates back at ourselves.
  const IpAddress builder = packet.header().src;
  if (config_.home_agent) {
    auto it = home_db_.find(dst);
    if (it != home_db_.end() && !it->second.foreign_agent.is_unspecified() &&
        it->second.foreign_agent != kDetachedSentinel) {
      encapsulate(packet, it->second.foreign_agent, builder);
      ++stats_.tunnels_built;
      trace_packet("tunnel.encap", dst);
      return;
    }
  }
  if (config_.cache_agent) {
    if (auto fa = cache_.lookup(dst)) {
      encapsulate(packet, *fa, builder);
      ++stats_.tunnels_built;
      trace_packet("tunnel.encap", dst);
    }
  }
}

// ---- Forward path (router roles) ----

node::Intercept MhrpAgent::on_forward(Packet& packet, net::Interface& in) {
  (void)in;
  if (config_.home_agent) {
    if (home_intercept(packet) == node::Intercept::kConsumed) {
      return node::Intercept::kConsumed;
    }
  }
  if (!config_.cache_agent || !config_.examine_forwarded_packets) {
    return node::Intercept::kContinue;
  }
  ++stats_.packets_examined;

  // §4.3: an intermediate router that forwards a location update may also
  // cache the address it carries. Other ICMP (echo, errors) falls through
  // and may itself be tunneled when it targets a cached mobile host.
  if (packet.header().protocol == net::to_u8(net::IpProto::kIcmp)) {
    try {
      auto msg = net::decode_icmp(packet.payload());
      if (const auto* update = std::get_if<net::IcmpLocationUpdate>(&msg)) {
        if (update->invalidate || update->foreign_agent.is_unspecified()) {
          cache_.invalidate(update->mobile_host);
        } else {
          cache_.update(update->mobile_host, update->foreign_agent);
        }
        return node::Intercept::kContinue;
      }
    } catch (const util::CodecError&) {
      return node::Intercept::kContinue;  // not decodable: forward untouched
    }
  }

  // §6.2: a cache agent in a router tunnels forwarded packets destined to
  // mobile hosts it has locations for (supporting hosts that do not
  // implement MHRP themselves).
  if (!is_mhrp(packet)) {
    if (auto fa = cache_.lookup(packet.header().dst)) {
      trace_packet("tunnel.encap", packet.header().dst);
      encapsulate(packet, *fa, agent_address());
      ++stats_.tunnels_built;
      node_.send_ip(std::move(packet));
      return node::Intercept::kConsumed;
    }
  }
  return node::Intercept::kContinue;
}

// ---- Tunneled packets addressed to this node ----

void MhrpAgent::on_mhrp_packet(Packet& packet, net::Interface& in) {
  (void)in;
  MhrpHeader h;
  try {
    h = read_mhrp_header(packet);
  } catch (const util::CodecError&) {
    return;
  }

  if (config_.foreign_agent && visiting_.contains(h.mobile_host)) {
    deliver_to_visitor(std::move(packet));
    return;
  }

  // A combined home+foreign agent may receive tunnels addressed to
  // itself for hosts it is the *home* agent of (e.g. stale caches that
  // recorded this node while the host visited here).
  if (config_.home_agent && home_db_.contains(h.mobile_host)) {
    home_handle_tunneled(packet);
    return;
  }

  retunnel_or_home(std::move(packet));
}

void MhrpAgent::deliver_to_visitor(Packet packet) {
  MhrpHeader h = decapsulate(packet);
  ++stats_.delivered_to_visitor;
  trace_packet("tunnel.decap", h.mobile_host);
  // §5.1: every address in the previous-source list is an out-of-date
  // cache agent — point them all directly at this foreign agent.
  for (IpAddress member : h.previous_sources) {
    send_location_update(member, h.mobile_host, agent_address());
  }
  auto it = visiting_.find(h.mobile_host);
  if (it == visiting_.end() || it->second.iface == nullptr) return;
  node_.send_ip_on(*it->second.iface, std::move(packet), h.mobile_host);
}

void MhrpAgent::retunnel_or_home(Packet packet) {
  // Re-tunneling is a routing decision: the TTL spends a hop here, which
  // is what eventually kills a packet circling a cache loop larger than
  // the list can record (§5.3 — "the next packet will continue the loop
  // contraction and detection procedure").
  if (packet.header().ttl <= 1) {
    ++stats_.retunnel_ttl_drops;
    return;
  }
  --packet.header().ttl;

  MhrpHeader h = read_mhrp_header(packet);
  std::optional<IpAddress> next;
  if (config_.cache_agent) next = cache_.lookup(h.mobile_host);
  // §4.4: with a cached location, tunnel to the new foreign agent;
  // without one, tunnel to the mobile host's home address, where its
  // home agent will intercept.
  const IpAddress destination = next.value_or(h.mobile_host);

  RetunnelResult r = retunnel(packet, agent_address(), destination,
                              config_.max_list_length);
  if (r.loop_detected) {
    // §5.3: dissolve the loop — every member deletes its cache entry.
    ++stats_.loops_detected;
    cache_.invalidate(h.mobile_host);
    for (IpAddress member : r.stale_members) {
      if (member == agent_address()) continue;
      send_location_update(member, h.mobile_host, net::kUnspecified,
                           /*invalidate=*/true);
    }
    return;
  }
  if (r.list_overflowed) {
    // §4.4: every flushed address learns where this node tunnels now.
    ++stats_.list_overflows;
    for (IpAddress member : r.flushed) {
      send_location_update(member, h.mobile_host, destination);
    }
  }
  ++stats_.retunnels;
  trace_packet("tunnel.retunnel", h.mobile_host);
  if (!next.has_value()) ++stats_.tunneled_to_home;
  node_.send_ip(std::move(packet));
}

// ---- ICMP ----

bool MhrpAgent::on_icmp(const net::IcmpMessage& msg,
                        const net::IpHeader& header, net::Interface& iface) {
  (void)header;
  if (const auto* update = std::get_if<net::IcmpLocationUpdate>(&msg)) {
    ++stats_.updates_received;
    handle_location_update(*update);
    return true;
  }
  if (std::get_if<net::IcmpAgentSolicitation>(&msg) != nullptr) {
    if (std::find(served_.begin(), served_.end(), &iface) != served_.end()) {
      advertise_on(iface);
      return true;
    }
    return false;
  }
  if (std::get_if<net::IcmpUnreachable>(&msg) != nullptr ||
      std::get_if<net::IcmpTimeExceeded>(&msg) != nullptr) {
    return handle_returned_error(msg);
  }
  return false;
}

void MhrpAgent::handle_location_update(const net::IcmpLocationUpdate& update) {
  // §5.2: a foreign agent told that *it* serves a mobile host it has no
  // record of lost its state; restore the visitor.
  if (config_.foreign_agent && !update.invalidate &&
      node_.owns_address(update.foreign_agent)) {
    if (!visiting_.contains(update.mobile_host) && !served_.empty()) {
      net::Interface* iface = served_.front();
      if (config_.verify_recovery_with_arp) {
        // Elicit a reply from the mobile host before believing the home
        // agent (the paper's "query message onto its local network").
        net::ArpMessage query;
        query.op = net::ArpMessage::Op::kRequest;
        query.sender_mac = iface->mac();
        query.sender_ip = iface->ip();
        query.target_ip = update.mobile_host;
        iface->send(net::Frame{iface->mac(), net::kMacBroadcast, query});
        (void)node_.sim().after(sim::millis(300), [this, iface,
                                             mh = update.mobile_host] {
          if (node_.arp_table(*iface).lookup(mh).has_value() &&
              !visiting_.contains(mh)) {
            visiting_[mh] = Visitor{0, iface};
            ++stats_.recovery_readds;
          }
        });
      } else {
        visiting_[update.mobile_host] = Visitor{0, iface};
        ++stats_.recovery_readds;
      }
    }
    return;
  }
  if (!config_.cache_agent) return;
  // A home agent is authoritative for its own mobile hosts; a cache
  // entry for one could only ever be redundant or stale.
  if (config_.home_agent && home_db_.contains(update.mobile_host)) return;
  if (update.invalidate || update.foreign_agent.is_unspecified()) {
    cache_.invalidate(update.mobile_host);
  } else if (!node_.owns_address(update.foreign_agent)) {
    cache_.update(update.mobile_host, update.foreign_agent);
  }
}

namespace {

struct QuotedPacket {
  net::IpHeader header;
  std::vector<std::uint8_t> body;  // possibly truncated
};

std::optional<QuotedPacket> parse_quoted(
    std::span<const std::uint8_t> quoted) {
  try {
    util::ByteReader r(quoted);
    std::size_t total = 0;
    QuotedPacket q;
    q.header = net::IpHeader::decode(r, &total);
    q.body = r.bytes(r.remaining());
    return q;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace

bool MhrpAgent::handle_returned_error(const net::IcmpMessage& msg) {
  // §4.5: an ICMP error about a tunneled packet arrives at the head of
  // the most recent tunnel (us). Reverse the changes we made to the
  // packet quoted inside the error and resend the error one tunnel back.
  const std::vector<std::uint8_t>* quoted = nullptr;
  const bool is_unreachable =
      std::holds_alternative<net::IcmpUnreachable>(msg);
  if (is_unreachable) {
    quoted = &std::get<net::IcmpUnreachable>(msg).quoted;
  } else {
    quoted = &std::get<net::IcmpTimeExceeded>(msg).quoted;
  }

  auto q = parse_quoted(*quoted);
  if (!q.has_value()) return false;
  if (q->header.protocol != net::to_u8(net::IpProto::kMhrp)) {
    // A plain (fully reversed) quote can still tell a sending cache agent
    // that its entry for the quoted destination is stale (§4.5).
    if (config_.cache_agent && config_.invalidate_cache_on_error &&
        is_unreachable && cache_.peek(q->header.dst).has_value()) {
      cache_.invalidate(q->header.dst);
      ++stats_.cache_error_invalidations;
    }
    return false;  // let the transport layer see the error too
  }
  if (!node_.owns_address(q->header.src)) return false;
  const IpAddress self = q->header.src;

  MhrpHeader h;
  std::vector<std::uint8_t> transport;
  bool full_header = true;
  try {
    util::ByteReader r(q->body);
    h = MhrpHeader::decode(r);
    transport = r.bytes(r.remaining());
  } catch (const util::CodecError&) {
    full_header = false;
  }

  if (!full_header) {
    // Only part of the MHRP header came back; if the fixed part is there
    // we can at least identify the mobile host and drop our stale entry
    // ("little can be done by a cache agent beyond deleting its cache
    // entry", §4.5).
    if (q->body.size() >= MhrpHeader::kBaseSize && config_.cache_agent &&
        config_.invalidate_cache_on_error && is_unreachable) {
      const IpAddress mh((std::uint32_t(q->body[4]) << 24) |
                         (std::uint32_t(q->body[5]) << 16) |
                         (std::uint32_t(q->body[6]) << 8) |
                         std::uint32_t(q->body[7]));
      cache_.invalidate(mh);
      ++stats_.cache_error_invalidations;
    }
    return true;
  }

  if (config_.cache_agent && config_.invalidate_cache_on_error &&
      is_unreachable) {
    // A "destination unreachable" may mean a router toward the *cached
    // location* is down, not the host itself; drop the entry so the next
    // packet can take a fresh path (§4.5).
    cache_.invalidate(h.mobile_host);
    ++stats_.cache_error_invalidations;
  }

  if (transport.size() < 8) {
    // Not enough of the transport header survived to be meaningful to
    // the original sender (§4.5).
    return true;
  }

  if (h.previous_sources.empty()) {
    // We built this tunnel as the original sender: the error has come
    // all the way home. Surface it by reconstructing the original packet
    // and treating the error as addressed to our own transport layer.
    ++stats_.errors_terminated;
    return true;
  }

  const IpAddress previous = h.previous_sources.back();
  h.previous_sources.pop_back();

  util::ByteWriter quote;
  if (h.previous_sources.empty()) {
    // `previous` originated the packet before any MHRP header existed
    // (either as a plain sender or as a sender-builder): return a fully
    // reconstructed original quote it will understand.
    q->header.protocol = h.orig_protocol;
    q->header.src = previous;
    q->header.dst = h.mobile_host;
    q->header.encode(quote, transport.size());
    quote.bytes(transport);
  } else {
    // `previous` re-tunneled to us: undo exactly our transform.
    q->header.src = previous;
    q->header.dst = self;
    util::ByteWriter body;
    h.encode(body);
    body.bytes(transport);
    auto body_bytes = body.take();
    q->header.encode(quote, body_bytes.size());
    quote.bytes(body_bytes);
  }

  net::IcmpMessage out = msg;
  std::visit(
      [&quote](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::IcmpUnreachable> ||
                      std::is_same_v<T, net::IcmpTimeExceeded>) {
          m.quoted = quote.take();
        }
      },
      out);
  ++stats_.errors_reversed;
  node_.send_icmp(previous, out);
  return true;
}

// ---- Registration ----

void MhrpAgent::on_registration(const net::UdpDatagram& datagram,
                                const net::IpHeader& header,
                                net::Interface& iface) {
  RegMessage m;
  try {
    m = RegMessage::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }

  switch (m.kind) {
    case RegKind::kConnect: {
      if (!config_.foreign_agent) return;
      Visitor& v = visiting_[m.mobile_host];
      if (m.sequence < v.last_sequence) return;  // stale retransmit
      v.last_sequence = m.sequence;
      v.iface = &iface;
      ++stats_.registrations;
      reply_registration(
          iface, header.src,
          RegMessage{RegKind::kConnectAck, m.mobile_host,
                     iface.ip(), m.sequence});
      return;
    }
    case RegKind::kDisconnect: {
      if (!config_.foreign_agent) return;
      // A disconnect naming *us* as the new agent is nonsense (stale or
      // bounced); processing it would erase a live registration.
      if (node_.owns_address(m.foreign_agent)) return;
      auto it = visiting_.find(m.mobile_host);
      if (it != visiting_.end() && m.sequence >= it->second.last_sequence) {
        visiting_.erase(it);
        // §2: optionally keep a forwarding pointer to the new FA — but
        // not when the host went home (§6.3).
        if (config_.forwarding_pointers && config_.cache_agent &&
            !m.foreign_agent.is_unspecified() &&
            m.foreign_agent != kDetachedSentinel) {
          cache_.update(m.mobile_host, m.foreign_agent);
        }
      }
      ++stats_.registrations;
      // Unlike the Connect ack (the host is on our link and routeless),
      // the Disconnect arrives from wherever the host moved to; the ack
      // is routed normally and reaches it through its new tunnel.
      RegMessage ack{RegKind::kDisconnectAck, m.mobile_host, m.foreign_agent,
                     m.sequence};
      auto bytes = ack.encode();
      node_.send_udp(m.mobile_host, kRegistrationPort, kRegistrationPort,
                     bytes);
      return;
    }
    case RegKind::kHomeRegister: {
      if (!config_.home_agent) return;
      auto it = home_db_.find(m.mobile_host);
      if (it == home_db_.end()) {
        // Auto-provision hosts addressed within a served (home) network.
        bool ours = false;
        for (net::Interface* served : served_) {
          if (served->prefix().contains(m.mobile_host)) ours = true;
        }
        if (!ours) return;
        provision_mobile_host(m.mobile_host);
        it = home_db_.find(m.mobile_host);
      }
      HomeRow& row = it->second;
      if (m.sequence < row.last_sequence) return;
      row.last_sequence = m.sequence;
      set_home_binding(m.mobile_host, m.foreign_agent, row);
      ++stats_.registrations;
      RegMessage ack{RegKind::kHomeRegisterAck, m.mobile_host,
                     m.foreign_agent, m.sequence};
      // §2 durability: the binding is logged before the ack leaves.
      // Under kSync the ticket says ack-now only once the record is on
      // the media; under group commit (kInterval) the ack is parked
      // until the record's sync completes; kAsync acks immediately and
      // accepts the documented loss window.
      const store::HomeStore::Ticket ticket = log_mutation(
          store::WalRecord::Kind::kBinding, m.mobile_host, m.foreign_agent,
          m.sequence);
      if (store_ != nullptr && !ticket.ack_now) {
        if (ticket.lsn == 0) return;  // store crashed under the append
        ++stats_.acks_deferred;
        pending_acks_[ticket.lsn] = PendingAck{m.mobile_host, ack};
        return;
      }
      // The ack is routed normally; if the host is away our own egress
      // hook tunnels it through the freshly recorded foreign agent.
      auto bytes = ack.encode();
      node_.send_udp(m.mobile_host, kRegistrationPort, kRegistrationPort,
                     bytes);
      return;
    }
    default:
      return;  // acks and queries are for mobile hosts, not agents
  }
}

void MhrpAgent::reply_registration(net::Interface& iface, IpAddress dst,
                                   const RegMessage& reply) {
  auto bytes = reply.encode();
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = iface.ip();
  h.dst = dst;
  Packet p(h, net::encode_udp({kRegistrationPort, kRegistrationPort}, bytes));
  p.set_base_payload_size(p.payload().size());
  // Delivered on the local network directly — the visiting host's
  // address is from another network, so routing would misdirect it.
  node_.send_ip_on(iface, std::move(p), dst);
}

// ---- Shared helpers ----

void MhrpAgent::send_location_update(IpAddress dst, IpAddress mobile_host,
                                     IpAddress foreign_agent,
                                     bool invalidate) {
  if (dst.is_unspecified() || node_.owns_address(dst)) return;
  if (!limiter_.allow(dst, node_.sim().now())) return;
  net::IcmpLocationUpdate update;
  update.mobile_host = mobile_host;
  update.foreign_agent = foreign_agent;
  update.invalidate = invalidate;
  ++stats_.updates_sent;
  node_.send_icmp(dst, update);
}

void MhrpAgent::reboot(bool preserve_home_database) {
  visiting_.clear();
  cache_.clear();
  limiter_ = UpdateRateLimiter(config_.update_min_interval,
                               config_.rate_limiter_capacity);
  // Registration replies parked for a group commit died with the
  // process, whichever way the disk fared; the mobile host's §3
  // retransmission is what recovers the handshake.
  stats_.acks_dropped_on_crash += pending_acks_.size();
  pending_acks_.clear();
  // The home database is "recorded on disk to survive any crashes and
  // subsequent reboots" (paper §2) — it persists unless the caller
  // models losing the disk as well. With a store attached, "persists"
  // means whatever store recovery yields: the write cache is gone, so a
  // binding that never reached the media is honestly lost.
  if (store_ != nullptr) {
    if (preserve_home_database) {
      if (!store_->down()) store_->crash();
      (void)store_->recover();
      restore_from_store();
    } else {
      store_->reset();
      home_db_.clear();
    }
  } else if (!preserve_home_database) {
    home_db_.clear();
  }
  if (config_.reregister_broadcast_on_reboot) {
    RegMessage query{RegKind::kReconnectQuery, net::kUnspecified,
                     net::kUnspecified, 0};
    auto bytes = query.encode();
    for (net::Interface* iface : served_) {
      // Limited broadcast: visiting mobile hosts keep their home-network
      // addresses, so the local subnet-directed broadcast would not match
      // their notion of "this subnet".
      net::IpHeader h;
      h.protocol = net::to_u8(net::IpProto::kUdp);
      h.src = iface->ip();
      h.dst = net::kBroadcast;
      h.ttl = 1;
      net::Packet p(h, net::encode_udp({kRegistrationPort, kRegistrationPort},
                                       bytes));
      node_.send_ip_on(*iface, std::move(p), net::kBroadcast);
    }
  }
}

}  // namespace mhrp::core
