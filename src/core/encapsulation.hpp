// The MHRP encapsulation engine: the header-insertion tunneling of §4.1,
// the re-tunneling of §4.4 (including previous-source-list overflow), the
// original-header reconstruction done by foreign agents, and the loop
// check of §5.3.
//
// Unlike IP-in-IP, MHRP does not wrap the packet in a complete new IP
// header: it *modifies fields in the existing one*, displacing the
// original protocol number and destination (and, when the header is not
// built by the original sender, the original source) into the small MHRP
// header inserted ahead of the transport header.
#pragma once

#include <optional>
#include <vector>

#include "core/mhrp_header.hpp"
#include "net/packet.hpp"
#include "net/protocols.hpp"

namespace mhrp::core {

/// True when `packet` carries the MHRP protocol number.
[[nodiscard]] bool is_mhrp(const net::Packet& packet);

/// Parse the MHRP header at the front of an MHRP packet's payload.
/// Throws util::CodecError if the packet is not well-formed MHRP.
[[nodiscard]] MhrpHeader read_mhrp_header(const net::Packet& packet);

/// Replace the MHRP header at the front of the payload (the transport
/// bytes that follow it are preserved).
void write_mhrp_header(net::Packet& packet, const MhrpHeader& header);

/// §4.1: transform a plain IP packet into an MHRP tunnel packet bound for
/// `foreign_agent`, built by the node addressed `builder`.
///  * orig protocol → MHRP header; IP protocol := MHRP
///  * orig destination (the mobile host) → MHRP header; IP dst := FA
///  * unless the builder is the original sender, orig source → the
///    previous-source list; IP src := builder
/// Resulting header is 8 octets (sender-built) or 12 (agent-built).
void encapsulate(net::Packet& packet, net::IpAddress foreign_agent,
                 net::IpAddress builder);

/// Foreign-agent reconstruction before last-hop delivery (§4.1/§4.4):
/// restores protocol and destination from the MHRP header, restores the
/// original source (first list entry when present, else the current IP
/// source, which then belongs to the sender-builder), and strips the
/// MHRP header. Returns the header that was removed (its list tells the
/// FA which cache agents to repair, §5.1).
MhrpHeader decapsulate(net::Packet& packet);

/// Outcome of a re-tunnel attempt.
struct RetunnelResult {
  /// §5.3: the re-tunneling node found its own address already in the
  /// previous-source list — a forwarding loop. The packet was NOT
  /// modified; `stale_members` lists every node in the loop so the
  /// caller can dissolve it with invalidating location updates.
  bool loop_detected = false;

  /// §4.4 list overflow: the previous-source list was at `max_list` and
  /// had to be truncated. `flushed` holds the addresses that were
  /// dropped; the caller must send each a location update naming its own
  /// tunnel target.
  bool list_overflowed = false;

  std::vector<net::IpAddress> flushed;
  std::vector<net::IpAddress> stale_members;
};

/// §4.4: re-tunnel an MHRP packet at a node addressed `self` toward
/// `new_destination` (the next foreign agent, or the mobile host's home
/// address when no location is cached):
///  * append the current IP source to the previous-source list (+4 B),
///    honoring `max_list` with the overflow procedure;
///  * IP src := self (the current IP destination);
///  * IP dst := new_destination.
/// Performs the §5.3 loop check first; on detection the packet is left
/// untouched and the result says so. `max_list` of 0 means unbounded.
RetunnelResult retunnel(net::Packet& packet, net::IpAddress self,
                        net::IpAddress new_destination, std::size_t max_list);

}  // namespace mhrp::core
