#include "core/replication.hpp"

#include "net/udp.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::core {

using net::IpAddress;

namespace {

// kYield: sent by a replica stepping down from interception, telling the
// recovered original primary to reclaim ARP mappings it rewrote. The
// primary cannot detect the overlap itself: while the interim replica
// holds the primary's address as an alias, the interim replica's
// heartbeats to that address are delivered locally and never reach the
// wire.
enum class ReplOp : std::uint8_t { kBinding = 1, kHeartbeat = 2, kYield = 3 };

struct ReplMessage {
  ReplOp op = ReplOp::kHeartbeat;
  bool sender_active = false;  // is the sender the intercepting replica?
  IpAddress mobile_host;
  IpAddress foreign_agent;

  [[nodiscard]] std::vector<std::uint8_t> encode() const {
    util::ByteWriter w(10);
    w.u8(static_cast<std::uint8_t>(op));
    w.u8(sender_active ? 1 : 0);
    w.u32(mobile_host.raw());
    w.u32(foreign_agent.raw());
    return w.take();
  }
  static ReplMessage decode(std::span<const std::uint8_t> wire) {
    util::ByteReader r(wire);
    ReplMessage m;
    m.op = static_cast<ReplOp>(r.u8());
    m.sender_active = r.u8() != 0;
    m.mobile_host = IpAddress(r.u32());
    m.foreign_agent = IpAddress(r.u32());
    return m;
  }
};

}  // namespace

HaReplicator::HaReplicator(MhrpAgent& agent, std::vector<IpAddress> peers,
                           bool is_primary, Config config)
    : agent_(agent),
      peers_(std::move(peers)),
      active_(is_primary),
      original_primary_(is_primary),
      config_(config),
      heartbeat_timer_(agent.node().sim(), config.heartbeat_period,
                       [this] { heartbeat(); }),
      peer_lifetime_(agent.node().sim(), [this] { peer_timeout(); }) {
  agent_.set_passive(!active_);
  agent_.on_binding_changed = [this](IpAddress mobile_host,
                                     IpAddress foreign_agent) {
    if (!applying_remote_) broadcast_binding(mobile_host, foreign_agent);
  };
  agent_.node().bind_udp(kReplicationPort,
                         [this](const net::UdpDatagram& d,
                                const net::IpHeader& h, net::Interface&) {
                           on_udp(d, h);
                         });
}

HaReplicator::~HaReplicator() {
  agent_.on_binding_changed = nullptr;
  agent_.node().unbind_udp(kReplicationPort);
}

void HaReplicator::start() {
  heartbeat();
  heartbeat_timer_.start();
  peer_lifetime_.arm(config_.heartbeat_period * config_.missed_heartbeats);
}

void HaReplicator::broadcast_binding(IpAddress mobile_host,
                                     IpAddress foreign_agent) {
  ReplMessage m;
  m.op = ReplOp::kBinding;
  m.sender_active = active_;
  m.mobile_host = mobile_host;
  m.foreign_agent = foreign_agent;
  auto bytes = m.encode();
  send_to_peers(bytes);
  ++bindings_replicated_;
}

void HaReplicator::heartbeat() {
  ReplMessage m;
  m.op = ReplOp::kHeartbeat;
  m.sender_active = active_;
  auto bytes = m.encode();
  send_to_peers(bytes);
}

void HaReplicator::send_to_peers(const std::vector<std::uint8_t>& bytes) {
  for (IpAddress peer : peers_) {
    // A peer address held as an alias belongs to a dead peer we stand in
    // for; a datagram to it would only loop back to this node.
    if (agent_.node().owns_address(peer)) continue;
    agent_.node().send_udp(peer, kReplicationPort, kReplicationPort, bytes);
  }
}

void HaReplicator::on_udp(const net::UdpDatagram& datagram,
                          const net::IpHeader&) {
  ReplMessage m;
  try {
    m = ReplMessage::decode(datagram.data);
  } catch (const util::CodecError&) {
    return;
  }
  switch (m.op) {
    case ReplOp::kBinding: {
      applying_remote_ = true;
      agent_.apply_replicated_binding(m.mobile_host, m.foreign_agent);
      applying_remote_ = false;
      [[fallthrough]];  // a binding push also proves the peer is alive
    }
    case ReplOp::kHeartbeat:
      peer_lifetime_.arm(config_.heartbeat_period * config_.missed_heartbeats);
      if (m.sender_active && active_) {
        // Two active replicas: a healed partition, or the old primary came
        // back after a takeover. The original primary wins the tiebreak
        // and re-announces itself; everyone else yields.
        if (original_primary_) {
          reassert();
        } else {
          step_down();
        }
      }
      return;
    case ReplOp::kYield:
      peer_lifetime_.arm(config_.heartbeat_period * config_.missed_heartbeats);
      // A replica that intercepted in our absence is handing the role
      // back; the home LAN's ARP caches still point at it.
      if (active_ && original_primary_) reassert();
      return;
  }
}

void HaReplicator::peer_timeout() {
  if (active_) return;  // the active replica has nothing to take over
  take_over();
}

void HaReplicator::take_over() {
  ++takeovers_;
  active_ = true;
  // Resume interception: proxy ARP for every away host, gratuitous ARP
  // to rewrite neighbor caches (done inside set_passive(false)).
  agent_.set_passive(false);
  // Also adopt the dead peers' agent addresses so in-flight registrations
  // and tunnels addressed to the old primary reach us.
  const auto& served = agent_.served_interfaces();
  for (IpAddress peer : peers_) {
    agent_.node().add_address_alias(peer);
    for (net::Interface* iface : served) {
      if (iface->prefix().contains(peer)) {
        agent_.node().send_gratuitous_arp(*iface, peer, iface->mac());
      }
    }
  }
}

void HaReplicator::step_down() {
  ++stepdowns_;
  active_ = false;
  // Return the interception role: stop answering ARP for away hosts and
  // give the adopted peer addresses back, then tell the recovered primary
  // to gratuitous-ARP everything onto its own MAC again.
  agent_.set_passive(true);
  for (IpAddress peer : peers_) {
    agent_.node().remove_address_alias(peer);
  }
  ReplMessage m;
  m.op = ReplOp::kYield;
  m.sender_active = false;
  send_to_peers(m.encode());
}

void HaReplicator::reassert() {
  // A backup intercepted in our absence and rewrote the home LAN's ARP
  // caches. Claim our own agent address and every away host back.
  const auto& served = agent_.served_interfaces();
  for (net::Interface* iface : served) {
    agent_.node().send_gratuitous_arp(*iface, iface->ip(), iface->mac());
  }
  for (const auto& [mobile_host, foreign_agent] : agent_.home_bindings()) {
    if (foreign_agent.is_unspecified() ||
        foreign_agent == MhrpAgent::kDetachedSentinel) {
      continue;
    }
    for (net::Interface* iface : served) {
      if (iface->prefix().contains(mobile_host)) {
        agent_.node().send_gratuitous_arp(*iface, mobile_host, iface->mac());
      }
    }
  }
}

}  // namespace mhrp::core
