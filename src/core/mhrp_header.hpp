// The MHRP header (paper Figure 3), inserted between the IP header and
// the transport header when a packet is tunneled to a mobile host's
// foreign agent.
//
// Layout (octets):
//   0       Orig Protocol — the IP protocol number displaced from the IP
//           header when it was overwritten with the MHRP number
//   1       Count — number of entries in the previous-source list
//   2-3     MHRP Header Checksum
//   4-7     IP Address of Mobile Host — the displaced IP destination
//   8-...   List of Previous IP Source Addresses, 4 octets each
//
// Size is therefore 8 octets when built by the original sender (empty
// list), 12 when built by a home agent or another cache agent (one
// entry), growing by 4 per re-tunnel — the exact numbers §4.1/§7 quote.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip_address.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::core {

struct MhrpHeader {
  std::uint8_t orig_protocol = 0;
  net::IpAddress mobile_host;
  /// "List of previous IP source addresses for this packet": index 0 is
  /// the original sender (when non-empty); later entries are the heads of
  /// successive tunnels — i.e. out-of-date cache agents (paper §5.1).
  std::vector<net::IpAddress> previous_sources;

  static constexpr std::size_t kBaseSize = 8;

  [[nodiscard]] std::size_t encoded_size() const {
    return kBaseSize + 4 * previous_sources.size();
  }

  /// Append the header, with a valid checksum, to `w`.
  void encode(util::ByteWriter& w) const;

  /// Decode from the front of `r`, validating count and checksum.
  static MhrpHeader decode(util::ByteReader& r);

  bool operator==(const MhrpHeader&) const = default;
};

}  // namespace mhrp::core
