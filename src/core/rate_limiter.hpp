// Per-destination rate limiting for location update messages.
//
// Paper §4.3: "any host or router that sends location update messages
// must provide some mechanism for limiting the rate at which it sends
// these messages to any single IP address. For example, a list could be
// maintained giving the IP addresses to which updates have been sent and
// the time at which an update was last sent to each address. This stored
// time on each list entry could also be used to implement LRU replacement
// of the entries within the list." This class is exactly that list.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "net/ip_address.hpp"
#include "sim/time.hpp"

namespace mhrp::core {

class UpdateRateLimiter {
 public:
  UpdateRateLimiter(sim::Time min_interval, std::size_t capacity = 256)
      : min_interval_(min_interval), capacity_(capacity) {}

  /// Returns true — and records the send — when an update may be sent to
  /// `dst` at time `now`; false when one was sent too recently.
  bool allow(net::IpAddress dst, sim::Time now) {
    auto it = map_.find(dst);
    if (it != map_.end()) {
      if (now - it->second->last_sent < min_interval_) {
        ++suppressed_;
        return false;
      }
      it->second->last_sent = now;
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    if (capacity_ != 0 && map_.size() >= capacity_) {
      // LRU replacement keyed by last-send time, as the paper suggests.
      map_.erase(lru_.back().dst);
      lru_.pop_back();
    }
    lru_.push_front(Slot{dst, now});
    map_[dst] = lru_.begin();
    return true;
  }

  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  struct Slot {
    net::IpAddress dst;
    sim::Time last_sent;
  };

  sim::Time min_interval_;
  std::size_t capacity_;
  std::list<Slot> lru_;
  std::unordered_map<net::IpAddress, std::list<Slot>::iterator> map_;
  std::uint64_t suppressed_ = 0;
};

}  // namespace mhrp::core
