#include "core/encapsulation.hpp"

#include <algorithm>

namespace mhrp::core {

bool is_mhrp(const net::Packet& packet) {
  return packet.header().protocol == net::to_u8(net::IpProto::kMhrp);
}

MhrpHeader read_mhrp_header(const net::Packet& packet) {
  if (!is_mhrp(packet)) {
    throw util::CodecError("packet is not MHRP");
  }
  util::ByteReader r(packet.payload());
  return MhrpHeader::decode(r);
}

void write_mhrp_header(net::Packet& packet, const MhrpHeader& header) {
  // Locate the existing header to find where the transport bytes begin.
  util::ByteReader r(packet.payload());
  MhrpHeader existing = MhrpHeader::decode(r);
  const std::size_t transport_at = existing.encoded_size();

  util::ByteWriter w(header.encoded_size() + packet.payload().size() -
                     transport_at);
  header.encode(w);
  w.bytes(std::span(packet.payload()).subspan(transport_at));
  packet.payload() = w.take();
}

void encapsulate(net::Packet& packet, net::IpAddress foreign_agent,
                 net::IpAddress builder) {
  MhrpHeader h;
  h.orig_protocol = packet.header().protocol;
  h.mobile_host = packet.header().dst;
  if (packet.header().src != builder) {
    // Built by the first-hop router, another cache agent, or the home
    // agent: the original sender's address moves into the list.
    h.previous_sources.push_back(packet.header().src);
    packet.header().src = builder;
  }
  packet.header().protocol = net::to_u8(net::IpProto::kMhrp);
  packet.header().dst = foreign_agent;

  util::ByteWriter w(h.encoded_size() + packet.payload().size());
  h.encode(w);
  w.bytes(packet.payload());
  packet.payload() = w.take();
}

MhrpHeader decapsulate(net::Packet& packet) {
  util::ByteReader r(packet.payload());
  MhrpHeader h = MhrpHeader::decode(r);

  packet.header().protocol = h.orig_protocol;
  packet.header().dst = h.mobile_host;
  if (!h.previous_sources.empty()) {
    packet.header().src = h.previous_sources.front();
  }
  // Strip the MHRP header; the transport header and data are untouched.
  packet.payload() = r.bytes(r.remaining());
  return h;
}

RetunnelResult retunnel(net::Packet& packet, net::IpAddress self,
                        net::IpAddress new_destination, std::size_t max_list) {
  RetunnelResult result;
  MhrpHeader h = read_mhrp_header(packet);

  // §5.3: "If the IP address of this node is already present in the list
  // ... a forwarding loop exists involving the nodes identified in the
  // list; one pass around the loop has just been completed."
  if (std::find(h.previous_sources.begin(), h.previous_sources.end(), self) !=
      h.previous_sources.end()) {
    result.loop_detected = true;
    result.stale_members = h.previous_sources;
    // The incoming tunnel head is part of the loop too.
    if (std::find(result.stale_members.begin(), result.stale_members.end(),
                  packet.header().src) == result.stale_members.end()) {
      result.stale_members.push_back(packet.header().src);
    }
    return result;
  }

  const net::IpAddress incoming_source = packet.header().src;

  // §4.4 overflow: when the list is full, every current member gets a
  // location update (sent by the caller), the list resets to empty, and
  // the new address becomes its single entry.
  if (max_list != 0 && h.previous_sources.size() >= max_list) {
    result.list_overflowed = true;
    result.flushed = std::move(h.previous_sources);
    h.previous_sources.clear();
  }
  h.previous_sources.push_back(incoming_source);

  packet.header().src = self;
  packet.header().dst = new_destination;
  write_mhrp_header(packet, h);
  return result;
}

}  // namespace mhrp::core
