// The cache a cache agent keeps: mobile host → current foreign agent.
//
// Paper §2: "the contents of the (finite) cache space provided by any
// cache agent may be maintained by any local cache replacement policy" —
// this implementation is a bounded LRU, the policy §4.3 sketches for the
// shared redirect table. Consistency is *not* this class's job: MHRP
// repairs stale entries lazily via location updates.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "net/ip_address.hpp"

namespace mhrp::analysis {
class CacheInspector;  // audit-build structural checks (src/analysis/)
}

namespace mhrp::core {

class LocationCache {
 public:
  explicit LocationCache(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Insert or refresh the binding mobile_host → foreign_agent. A
  /// foreign agent of 0 means "the host is at home": the entry is
  /// removed (paper §6.3). Evicts the least recently used entry when
  /// full.
  void update(net::IpAddress mobile_host, net::IpAddress foreign_agent);

  /// Remove the entry, if any (loop dissolution §5.3, ICMP error
  /// handling §4.5).
  void invalidate(net::IpAddress mobile_host);

  /// Look up and touch (LRU-promote) the entry.
  [[nodiscard]] std::optional<net::IpAddress> lookup(
      net::IpAddress mobile_host);

  /// Look up without touching (diagnostics/tests).
  [[nodiscard]] std::optional<net::IpAddress> peek(
      net::IpAddress mobile_host) const;

  void clear();

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t updates = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Grants the audit layer read access to the raw list/map so it can
  // verify their coherence without widening the public interface.
  friend class mhrp::analysis::CacheInspector;

  struct Entry {
    net::IpAddress mobile_host;
    net::IpAddress foreign_agent;
  };

  // Most recently used at front.
  std::list<Entry> lru_;
  std::unordered_map<net::IpAddress, std::list<Entry>::iterator> map_;
  std::size_t capacity_;
  Stats stats_;
};

}  // namespace mhrp::core
