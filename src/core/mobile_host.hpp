// MobileHost: "any host may become a mobile host simply by moving away
// from its home network" (paper §1). This class is a Host plus the
// mobile-side MHRP machinery:
//
//  * agent discovery (§3): listens for periodic agent advertisements,
//    solicits on attach, detects movement when the current agent's
//    advertisements stop arriving before their lifetime expires, and
//    recognizes homecoming by hearing its own home agent;
//  * the §3 notification ordering with acknowledgment/retransmission:
//    on reconnect — new FA first, then the home agent, then the old FA;
//    on planned disconnect — home agent first, then the old FA; when
//    returning home — home agent only, registering "foreign agent
//    address zero";
//  * gratuitous ARP on returning home to reclaim its address from the
//    home agent's proxy (§2);
//  * decapsulation of MHRP packets that reach the host itself (at home,
//    §6.3, or as its own foreign agent, §2), answering with location
//    updates so senders repair or delete their cache entries;
//  * a cache-agent role for its own traffic, since "any node functioning
//    as a ... mobile host should generally also function as a cache
//    agent" (§2).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/location_cache.hpp"
#include "core/rate_limiter.hpp"
#include "core/registration.hpp"
#include "node/host.hpp"
#include "sim/timer.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"

namespace mhrp::core {

struct MobileHostConfig {
  /// The home agent's address; assigned by the owning organization along
  /// with the host's permanent address (paper §2).
  net::IpAddress home_agent;

  /// First retransmission interval for unacknowledged registrations.
  sim::Time registration_retry = sim::millis(500);
  int registration_attempts = 5;
  /// Exponential backoff on registration retransmissions: retry k waits
  /// registration_retry * backoff_factor^k, capped at
  /// registration_retry_max — so the protocol rides through injected
  /// outages instead of hammering a dead agent at a fixed rate.
  double backoff_factor = 2.0;
  sim::Time registration_retry_max = sim::seconds(8);
  /// Each retry interval is scaled by a uniform draw from
  /// [1 - retry_jitter, 1 + retry_jitter), desynchronizing hosts that
  /// lost the same agent at the same instant.
  double retry_jitter = 0.1;
  /// Seed for the per-host retry-jitter stream (worlds derive it from
  /// their own seed so replay stays deterministic).
  std::uint64_t retry_seed = 0x6d687270;
  /// Send an agent solicitation immediately on attaching (§3 allows
  /// either soliciting or waiting for the next periodic advertisement —
  /// bench_handoff sweeps both).
  bool solicit_on_attach = true;
  /// Re-solicitation period while searching for an agent.
  sim::Time solicit_period = sim::seconds(1);

  bool cache_agent = true;
  std::size_t cache_capacity = 64;
  sim::Time update_min_interval = sim::millis(500);
};

/// The interval before retransmission number `attempt` (0 = the first
/// retransmission): registration_retry * backoff_factor^attempt, capped
/// at registration_retry_max, then jittered by a uniform factor in
/// [1 - retry_jitter, 1 + retry_jitter). Free function so the backoff
/// policy is unit-testable without a host.
[[nodiscard]] sim::Time registration_backoff_delay(
    const MobileHostConfig& config, int attempt, util::Rng& rng);

struct MobileHostStats {
  std::uint64_t moves = 0;
  std::uint64_t registrations_completed = 0;
  std::uint64_t registration_retransmits = 0;
  std::uint64_t registrations_abandoned = 0;  // gave up after max attempts
  std::uint64_t advertisements_heard = 0;
  std::uint64_t solicitations_sent = 0;
  std::uint64_t tunneled_received = 0;  // MHRP packets decapsulated by the host
  std::uint64_t updates_sent = 0;
};

class MobileHost : public node::Host {
 public:
  enum class State {
    kDetached,     // no link
    kDiscovering,  // attached, searching for an agent
    kRegistering,  // notifications in flight
    kHome,         // registered at home (FA address zero)
    kForeign,      // registered with a foreign agent
  };

  /// Creates the host with one (wireless) interface carrying its
  /// permanent home address.
  MobileHost(sim::Executive& sim, std::string name, net::IpAddress home_ip,
             int home_prefix_length, MobileHostConfig config);

  [[nodiscard]] net::Interface& radio() { return *radio_; }
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] net::IpAddress home_address() const { return radio_->ip(); }
  /// The agent currently registered with (FA, or the home agent at home).
  [[nodiscard]] net::IpAddress current_agent() const { return current_agent_; }
  [[nodiscard]] const MobileHostStats& stats() const { return stats_; }
  [[nodiscard]] LocationCache& cache() { return cache_; }

  /// Move to (the cell of) `link`. Implicit disconnect from wherever the
  /// host was — exactly what happens when a radio leaves one transceiver's
  /// range and enters another's (§3).
  void attach_to(net::Link& link);

  /// Radio silence: detach without telling anyone.
  void detach();

  /// §3 planned disconnection: notify the home agent (registering the
  /// detached marker), then the old foreign agent, then detach.
  void disconnect_gracefully();

  /// §2 (optional): serve as own foreign agent using a temporary address
  /// obtained in the visited network (obtaining it is outside MHRP's
  /// scope, per the paper). Registers `temp_addr` as the "foreign agent"
  /// with the home agent; tunneled packets addressed to it are
  /// decapsulated locally. The host keeps using only its home address
  /// above IP. `local_router` is the visited network's router, used as
  /// the default route since no foreign agent exists there.
  void enable_self_agent(net::IpAddress temp_addr,
                         net::IpAddress local_router);
  void disable_self_agent();

  /// Optional trace sink (nullptr = tracing off). When set, the host
  /// emits registration round-trip spans and retransmission instants.
  /// Observability only: it never changes protocol behavior.
  void set_trace(telemetry::TraceCollector* trace) { trace_ = trace; }

  /// Fired whenever a registration round completes (state becomes kHome
  /// or kForeign).
  std::function<void()> on_registered;

  /// Fired at the instant attach_to() switches cells, before discovery
  /// starts — the "radio heard the new transceiver" moment a handoff
  /// latency measurement starts from (scenario::ScaleWorld uses this).
  std::function<void()> on_attached;

 private:
  struct Outstanding {
    RegMessage message;
    net::IpAddress dst;
    bool direct = false;  // send on the radio link, bypassing routing
    int attempts = 0;
    sim::Time started = 0;  // when the first copy was sent (for trace spans)
    std::unique_ptr<sim::OneShotTimer> timer;
  };

  void start_discovery();
  void solicit();
  void on_advertisement(const net::IcmpAgentAdvertisement& adv);
  void register_with_foreign_agent(net::IpAddress fa);
  void register_at_home();
  void complete_home_registration();
  void notify_old_foreign_agent(net::IpAddress new_fa);
  void send_registration(RegKind kind, net::IpAddress dst,
                         net::IpAddress foreign_agent, bool direct);
  void on_registration_udp(const net::UdpDatagram& datagram,
                           const net::IpHeader& header, net::Interface& iface);
  void on_mhrp_packet(net::Packet& packet, net::Interface& iface);
  bool on_icmp_msg(const net::IcmpMessage& msg, const net::IpHeader& header,
                   net::Interface& iface);
  void on_agent_lost();
  void install_default_route(net::IpAddress via);
  void report_own_location(net::IpAddress dst);

  MobileHostConfig config_;
  MobileHostStats stats_;
  net::Interface* radio_ = nullptr;
  State state_ = State::kDetached;
  net::IpAddress current_agent_;      // registered agent
  net::IpAddress pending_agent_;      // agent being registered with
  net::IpAddress old_foreign_agent_;  // FA to notify after a move
  net::IpAddress self_agent_addr_;    // temp address when own-FA mode
  std::uint32_t sequence_ = 0;
  std::map<RegKind, Outstanding> outstanding_;
  sim::OneShotTimer agent_lifetime_;
  sim::PeriodicTimer solicit_timer_;
  LocationCache cache_;
  UpdateRateLimiter limiter_;
  util::Rng retry_rng_;
  telemetry::TraceCollector* trace_ = nullptr;
};

}  // namespace mhrp::core
