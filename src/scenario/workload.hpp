// Workload generators for the experiments: constant-bit-rate UDP flows
// (the streaming correspondent of bench_handoff / bench_cache_convergence)
// and movement schedules that walk a mobile host through a sequence of
// cells (random-waypoint-over-networks, paper §3's continuously moving
// host).
#pragma once

#include <functional>
#include <vector>

#include "core/mobile_host.hpp"
#include "node/host.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace mhrp::scenario {

/// Sends fixed-size UDP datagrams at a fixed interval from `src` to
/// `dst`. Packets are tagged with a flow id so FlowRecorder can match
/// deliveries to sends.
class CbrFlow {
 public:
  CbrFlow(node::Host& src, net::IpAddress dst, std::uint16_t dst_port,
          std::size_t payload_size, sim::Time interval);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t flow_id() const { return flow_id_; }

  /// Hook to customize how each datagram is emitted (the baseline
  /// comparison benches replace plain send_udp with a protocol-specific
  /// sender). Receives the payload bytes.
  std::function<void(const std::vector<std::uint8_t>&)> emit_override;

 private:
  void tick();

  node::Host& src_;
  net::IpAddress dst_;
  std::uint16_t dst_port_;
  std::vector<std::uint8_t> payload_;
  sim::PeriodicTimer timer_;
  std::uint64_t sent_ = 0;
  std::uint64_t flow_id_;
};

/// Walks a mobile host through `cells` — each dwell drawn exponentially
/// around `mean_dwell` (deterministic given the topology seed). Visits
/// round-robin or uniformly at random.
class MovementSchedule {
 public:
  MovementSchedule(core::MobileHost& host, std::vector<net::Link*> cells,
                   sim::Time mean_dwell, util::Rng rng,
                   bool random_order = true);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t moves() const { return moves_; }

 private:
  void move_next();

  core::MobileHost& host_;
  std::vector<net::Link*> cells_;
  sim::Time mean_dwell_;
  util::Rng rng_;
  bool random_order_;
  std::size_t cursor_ = 0;
  std::uint64_t moves_ = 0;
  sim::OneShotTimer timer_;
};

}  // namespace mhrp::scenario
