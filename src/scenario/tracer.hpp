// Human-readable protocol tracing: attach to a Topology and every
// delivery and forwarding event prints one line — time, node, protocol,
// addresses, and (for MHRP packets) the tunnel header's mobile host and
// previous-source list. The examples enable it with MHRP_TRACE=1.
//
// The tracer chains onto the nodes' metric hooks, so it coexists with a
// FlowRecorder attached before or after it.
#pragma once

#include <functional>
#include <iosfwd>

#include "scenario/topology.hpp"

namespace mhrp::scenario {

class Tracer {
 public:
  /// Attach to every node currently in the topology, writing to `out`
  /// (defaults to std::clog). Nodes added to the topology later are
  /// attached too, via the topology's node-added hook, so construction
  /// order no longer silently leaves late nodes untraced.
  ///
  /// Throws std::logic_error when the topology runs on a sharded
  /// executive: worker threads would interleave the output stream. Run
  /// the scenario with shards == 0 to trace it (DESIGN.md §13); the
  /// event-loop profiler has the same restriction
  /// (ShardedExecutive::set_profiler).
  explicit Tracer(Topology& topo, std::ostream* out = nullptr);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when the MHRP_TRACE environment variable asks for tracing.
  static bool enabled_by_env();

  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  void attach(node::Node& node);
  void print(const char* verb, const node::Node& node,
             const net::Packet& packet);

  Topology& topo_;
  std::ostream* out_;
  std::uint64_t events_ = 0;
  HookHandle hook_;
};

}  // namespace mhrp::scenario
