// Wiring between the audit layer (src/analysis/) and whole scenarios.
//
// Two modes:
//  * Explicit — tests construct a PacketAuditor and attach() it to a
//    Figure1 / MhrpWorld / Topology; links and (for the world helpers)
//    every agent's LocationCache are covered. The auditor should be
//    declared after the world (or detached before the world dies) so the
//    watched caches outlive it; link lifetime is safe either way.
//  * Audit builds (cmake -DMHRP_AUDIT=ON) — every Topology constructed by
//    Figure1 / MhrpWorld auto-attaches a process-global auditor, so the
//    entire test and bench suite runs under wire audit. The global
//    auditor watches links only (caches die with their scenarios).
#pragma once

#include <string>

#include "analysis/packet_auditor.hpp"

namespace mhrp::scenario {

class Topology;
struct Figure1;
class MhrpWorld;

namespace audit {

/// Attach `auditor` to every link currently in `topo`. Links added later
/// are not covered; call again after construction completes.
void attach(analysis::PacketAuditor& auditor, Topology& topo);

/// Attach to every link and watch every installed agent's cache.
void attach(analysis::PacketAuditor& auditor, Figure1& world);
void attach(analysis::PacketAuditor& auditor, MhrpWorld& world);

/// True when this binary was compiled with -DMHRP_AUDIT=ON.
[[nodiscard]] bool audit_build();

/// The process-global auditor audit builds attach automatically. Usable
/// in any build (tests may assert on its report after a run).
[[nodiscard]] analysis::PacketAuditor& global_auditor();

/// Called by scenario constructors: in audit builds, attach the global
/// auditor to every link of `topo`; otherwise a no-op.
void auto_attach(Topology& topo);

}  // namespace audit
}  // namespace mhrp::scenario
