// Topology: owns a simulated internetwork — the simulator, every node,
// every link — and installs routing state that models a *converged*
// standard IP routing system (shortest paths over the link graph), which
// is what the paper assumes underneath MHRP ("the standard IP routing
// algorithms will deliver the packet to M's home network", §1).
//
// Hosts do not get full tables: like real end systems they get a default
// route via a router on their LAN (mobile hosts re-point it as they
// move). Routers get complete shortest-path tables.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/mobile_host.hpp"
#include "node/host.hpp"
#include "node/router.hpp"
#include "routing/dijkstra.hpp"
#include "sim/executive.hpp"
#include "sim/sharded_executive.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mhrp::scenario {

class Topology;

/// RAII registration of a node-added hook. Mirrors sim::EventHandle's
/// {slot, generation} scheme: a handle for a hook that was already
/// removed (or that belongs to a reused slot) is simply inert — remove()
/// never invalidates someone else's registration. Destroying the handle
/// removes the hook; the handle must not outlive its Topology.
class [[nodiscard]] HookHandle {
 public:
  HookHandle() = default;
  HookHandle(HookHandle&& other) noexcept
      : topo_(std::exchange(other.topo_, nullptr)),
        slot_(other.slot_),
        generation_(other.generation_) {}
  HookHandle& operator=(HookHandle&& other) noexcept {
    if (this != &other) {
      remove();
      topo_ = std::exchange(other.topo_, nullptr);
      slot_ = other.slot_;
      generation_ = other.generation_;
    }
    return *this;
  }
  HookHandle(const HookHandle&) = delete;
  HookHandle& operator=(const HookHandle&) = delete;
  ~HookHandle() { remove(); }

  /// Unregister the hook. Idempotent; a moved-from or stale handle is a
  /// no-op.
  void remove();
  /// Whether this handle still names a live registration.
  [[nodiscard]] bool active() const;

 private:
  friend class Topology;
  HookHandle(Topology* topo, std::size_t slot, std::uint64_t generation)
      : topo_(topo), slot_(slot), generation_(generation) {}

  Topology* topo_ = nullptr;
  std::size_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

class Topology {
 public:
  /// `shards` == 0 (the default) runs on the single-threaded Simulator;
  /// `shards` >= 1 runs on a ShardedExecutive with that many worker
  /// threads. Nodes are placed on shard 0 unless add_router/add_host/
  /// add_mobile_host say otherwise (or assign_shard moves them before
  /// any of their events exist).
  explicit Topology(std::uint64_t seed = 1, std::uint32_t shards = 0)
      : rng_(seed) {
    if (shards == 0) {
      sim_ = std::make_unique<sim::Simulator>();
    } else {
      auto sharded = std::make_unique<sim::ShardedExecutive>(shards);
      sharded_ = sharded.get();
      sim_ = std::move(sharded);
    }
  }

  /// The driver executive: run()/run_for() here. Under sharding this is
  /// the ShardedExecutive itself; nodes hold per-shard views of it.
  [[nodiscard]] sim::Executive& sim() { return *sim_; }
  [[nodiscard]] const sim::Executive& sim() const { return *sim_; }
  /// The sharded executive, or nullptr when single-threaded — for knobs
  /// only it has (set_lookahead).
  [[nodiscard]] sim::ShardedExecutive* sharded_executive() {
    return sharded_;
  }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  // ---- Construction ----

  node::Router& add_router(const std::string& name, std::uint32_t shard = 0);
  node::Host& add_host(const std::string& name, std::uint32_t shard = 0);
  core::MobileHost& add_mobile_host(const std::string& name,
                                    net::IpAddress home_ip,
                                    int home_prefix_length,
                                    core::MobileHostConfig config,
                                    std::uint32_t shard = 0);
  /// Adopt an externally constructed node (ownership transfers).
  node::Node& adopt(std::unique_ptr<node::Node> node);

  net::Link& add_link(const std::string& name,
                      sim::Time latency = sim::millis(1),
                      std::uint64_t bandwidth_bps = 0);

  /// Create an interface on `node`, addressed `ip/prefix`, attached to
  /// `link`.
  net::Interface& connect(node::Node& node, net::Link& link,
                          net::IpAddress ip, int prefix_length,
                          const std::string& if_name = "");

  // ---- Partitioning ----

  [[nodiscard]] std::uint32_t shard_count() const {
    return sim_->shard_count();
  }
  /// Move `node` to `shard`. Only legal before the node has scheduled
  /// anything (timers, events) — i.e. during topology construction.
  void assign_shard(node::Node& node, std::uint32_t shard) {
    node.rebind_executive(executive_for(shard));
  }
  [[nodiscard]] std::uint32_t shard_of(node::Node& node) const {
    return node.sim().shard_id();
  }
  /// Links whose member interfaces span more than one shard — the edges
  /// the conservative protocol synchronizes across.
  [[nodiscard]] std::vector<const net::Link*> cross_shard_links() const;
  /// The minimum latency over cross_shard_links(): the largest sound
  /// lookahead for the sharded executive. Returns 0 when no link crosses
  /// shards (any lookahead is then sound).
  [[nodiscard]] sim::Time min_cross_shard_latency() const;

  // ---- Routing ----

  /// Compute shortest paths over the current link graph and install
  /// static routes: full tables on forwarding nodes, a default route via
  /// a LAN router on non-forwarding nodes. Mobile hosts are skipped
  /// entirely (their default route follows their registration).
  void install_static_routes();

  // ---- Lookup ----

  [[nodiscard]] node::Node* find(const std::string& name);
  [[nodiscard]] net::Link* find_link(const std::string& name);
  [[nodiscard]] const std::vector<std::unique_ptr<node::Node>>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<net::Link>>& links() const {
    return links_;
  }

  /// Shortest-path hop distance (link count) between two nodes in the
  /// current graph; -1 when disconnected. Benchmarks use this to report
  /// path stretch against the optimum.
  [[nodiscard]] int hop_distance(const node::Node& a, const node::Node& b);

  // ---- Observation ----

  using NodeAddedHook = std::function<void(node::Node&)>;

  /// Register a hook fired for every node added from now on (all
  /// construction paths: add_router/add_host/add_mobile_host/adopt).
  /// Observers like Tracer use this to cover nodes created after they
  /// attached; the returned RAII handle unregisters on destruction.
  HookHandle add_node_added_hook(NodeAddedHook hook);

 private:
  friend class HookHandle;

  struct HookSlot {
    NodeAddedHook hook;  // empty when the slot is free
    std::uint64_t generation = 0;
  };

  /// The executive a node placed on `shard` should schedule through: the
  /// Simulator itself single-threaded (shard must be 0), the shard's
  /// view under sharding.
  [[nodiscard]] sim::Executive& executive_for(std::uint32_t shard);

  void notify_node_added(node::Node& node);

  [[nodiscard]] routing::Graph build_graph() const;
  [[nodiscard]] int index_of(const node::Node& node) const;

  // Declared first so it is destroyed last: node/link destructors cancel
  // events through their executive views.
  std::unique_ptr<sim::Executive> sim_;
  sim::ShardedExecutive* sharded_ = nullptr;  // non-null iff shards >= 1
  util::Rng rng_;
  std::vector<std::unique_ptr<node::Node>> nodes_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::map<std::string, node::Node*> by_name_;
  std::map<std::string, net::Link*> link_by_name_;
  std::vector<bool> is_mobile_;  // parallel to nodes_
  std::vector<HookSlot> node_added_hooks_;
  std::vector<std::size_t> free_hook_slots_;
};

}  // namespace mhrp::scenario
