// Topology: owns a simulated internetwork — the simulator, every node,
// every link — and installs routing state that models a *converged*
// standard IP routing system (shortest paths over the link graph), which
// is what the paper assumes underneath MHRP ("the standard IP routing
// algorithms will deliver the packet to M's home network", §1).
//
// Hosts do not get full tables: like real end systems they get a default
// route via a router on their LAN (mobile hosts re-point it as they
// move). Routers get complete shortest-path tables.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mobile_host.hpp"
#include "node/host.hpp"
#include "node/router.hpp"
#include "routing/dijkstra.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mhrp::scenario {

class Topology {
 public:
  explicit Topology(std::uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const sim::Simulator& sim() const { return sim_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  // ---- Construction ----

  node::Router& add_router(const std::string& name);
  node::Host& add_host(const std::string& name);
  core::MobileHost& add_mobile_host(const std::string& name,
                                    net::IpAddress home_ip,
                                    int home_prefix_length,
                                    core::MobileHostConfig config);
  /// Adopt an externally constructed node (ownership transfers).
  node::Node& adopt(std::unique_ptr<node::Node> node);

  net::Link& add_link(const std::string& name,
                      sim::Time latency = sim::millis(1),
                      std::uint64_t bandwidth_bps = 0);

  /// Create an interface on `node`, addressed `ip/prefix`, attached to
  /// `link`.
  net::Interface& connect(node::Node& node, net::Link& link,
                          net::IpAddress ip, int prefix_length,
                          const std::string& if_name = "");

  // ---- Routing ----

  /// Compute shortest paths over the current link graph and install
  /// static routes: full tables on forwarding nodes, a default route via
  /// a LAN router on non-forwarding nodes. Mobile hosts are skipped
  /// entirely (their default route follows their registration).
  void install_static_routes();

  // ---- Lookup ----

  [[nodiscard]] node::Node* find(const std::string& name);
  [[nodiscard]] net::Link* find_link(const std::string& name);
  [[nodiscard]] const std::vector<std::unique_ptr<node::Node>>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<net::Link>>& links() const {
    return links_;
  }

  /// Shortest-path hop distance (link count) between two nodes in the
  /// current graph; -1 when disconnected. Benchmarks use this to report
  /// path stretch against the optimum.
  [[nodiscard]] int hop_distance(const node::Node& a, const node::Node& b);

  // ---- Observation ----

  using NodeAddedHook = std::function<void(node::Node&)>;

  /// Register a hook fired for every node added from now on (all
  /// construction paths: add_router/add_host/add_mobile_host/adopt).
  /// Returns a token for remove_node_added_hook. Observers like Tracer
  /// use this to cover nodes created after they attached.
  std::size_t add_node_added_hook(NodeAddedHook hook);
  /// Unregister; the token must come from add_node_added_hook. Safe to
  /// call once for an already-removed token.
  void remove_node_added_hook(std::size_t token);

 private:
  void notify_node_added(node::Node& node);

  [[nodiscard]] routing::Graph build_graph() const;
  [[nodiscard]] int index_of(const node::Node& node) const;

  sim::Simulator sim_;
  util::Rng rng_;
  std::vector<std::unique_ptr<node::Node>> nodes_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::map<std::string, node::Node*> by_name_;
  std::map<std::string, net::Link*> link_by_name_;
  std::vector<bool> is_mobile_;  // parallel to nodes_
  std::vector<NodeAddedHook> node_added_hooks_;  // removed slots are null
};

}  // namespace mhrp::scenario
