#include "scenario/mhrp_world.hpp"

#include <limits>
#include <sstream>

#include "scenario/audit_hooks.hpp"
#include "scenario/replay_digest.hpp"
#include "scenario/telemetry_hooks.hpp"

namespace mhrp::scenario {

MhrpWorld::MhrpWorld(MhrpWorldOptions opts)
    : topo(opts.protocol.seed), options(opts) {
  auto& backbone = topo.add_link("backbone", sim::millis(2));

  // Home site: router .1 on 10.1.0.0/24, backbone 10.0.0.1.
  home_router = &topo.add_router("HomeRouter");
  topo.connect(*home_router, backbone, net::IpAddress::of(10, 0, 0, 1), 24);
  home_lan = &topo.add_link("homeLan", sim::millis(1));
  net::Interface& ha_iface =
      topo.connect(*home_router, *home_lan, net::IpAddress::of(10, 1, 0, 1),
                   24);

  // Correspondent site: router on 10.200.0.0/24, backbone 10.0.0.2.
  auto& corr_router = topo.add_router("CorrRouter");
  topo.connect(corr_router, backbone, net::IpAddress::of(10, 0, 0, 2), 24);
  auto& corr_lan = topo.add_link("corrLan", sim::millis(1));
  topo.connect(corr_router, corr_lan, net::IpAddress::of(10, 200, 0, 1), 24);
  for (int c = 0; c < opts.correspondents; ++c) {
    auto& host = topo.add_host("C" + std::to_string(c));
    topo.connect(host, corr_lan,
                 net::IpAddress::of(10, 200, 0,
                                    static_cast<std::uint8_t>(10 + c)),
                 24);
    correspondents.push_back(&host);
  }

  // Foreign sites: router j on 10.(2+j).0.0/24, backbone 10.0.0.(10+j),
  // each with a wireless cell.
  std::vector<net::Interface*> fa_cell_ifaces;
  for (int j = 0; j < opts.foreign_sites; ++j) {
    auto& r = topo.add_router("FA" + std::to_string(j));
    topo.connect(r, backbone,
                 net::IpAddress::of(10, 0, 0,
                                    static_cast<std::uint8_t>(10 + j)),
                 24);
    auto& cell = topo.add_link("cell" + std::to_string(j), sim::millis(1));
    net::Interface& cell_iface =
        topo.connect(r, cell, fa_address(j), 24);
    fa_routers.push_back(&r);
    cells.push_back(&cell);
    fa_cell_ifaces.push_back(&cell_iface);
  }

  // Mobile hosts, homed on the home LAN (initially detached).
  for (int i = 0; i < opts.mobile_hosts; ++i) {
    core::MobileHostConfig config;
    config.home_agent = net::IpAddress::of(10, 1, 0, 1);
    config.update_min_interval = opts.protocol.update_min_interval;
    config.solicit_on_attach = opts.solicit_on_attach;
    mobiles.push_back(&topo.add_mobile_host("M" + std::to_string(i),
                                            mobile_address(i), 24, config));
  }

  for (const auto& node : topo.nodes()) {
    node->set_icmp_quote_limit(opts.protocol.icmp_quote_limit);
  }

  topo.install_static_routes();

  if (opts.protocol.routing == routing::dv::Mode::kDv) {
    // Jitter seeds come from a dedicated stream (not topo.rng()), so
    // enabling DV cannot shift any other seeded draw.
    util::Rng dv_seeds(opts.protocol.seed ^ 0x64767274ULL);
    for (const auto& node : topo.nodes()) {
      auto* router = dynamic_cast<node::Router*>(node.get());
      if (router == nullptr) continue;
      auto process = std::make_unique<routing::dv::DvProcess>(
          *router, opts.protocol.dv,
          dv_seeds.uniform(0, std::numeric_limits<std::uint64_t>::max() - 1));
      process->start();
      dv_processes.push_back(std::move(process));
    }
  }

  core::AgentConfig ha_config;
  ha_config.home_agent = true;
  ha_config.cache_agent = true;
  ha_config.advertisement_period = opts.protocol.advertisement_period;
  ha_config.max_list_length = opts.protocol.max_list_length;
  ha_config.forwarding_pointers = opts.protocol.forwarding_pointers;
  ha_config.update_min_interval = opts.protocol.update_min_interval;
  ha = std::make_unique<core::MhrpAgent>(*home_router, ha_config);
  ha->serve_on(ha_iface);
  if (opts.protocol.store.enabled) {
    // Attach the disk before provisioning so every row ever created is
    // in the log from the start.
    ha_store = std::make_unique<store::HomeStore>(topo.sim(),
                                                  opts.protocol.store);
    ha->attach_store(*ha_store);
  }
  for (int i = 0; i < opts.mobile_hosts; ++i) {
    ha->provision_mobile_host(mobile_address(i));
  }
  ha->start_advertising();

  for (int j = 0; j < opts.foreign_sites; ++j) {
    core::AgentConfig fa_config;
    fa_config.foreign_agent = true;
    fa_config.cache_agent = true;
    fa_config.advertisement_period = opts.protocol.advertisement_period;
    fa_config.max_list_length = opts.protocol.max_list_length;
    fa_config.forwarding_pointers = opts.protocol.forwarding_pointers;
    fa_config.update_min_interval = opts.protocol.update_min_interval;
    auto agent = std::make_unique<core::MhrpAgent>(*fa_routers[std::size_t(j)],
                                                   fa_config);
    agent->serve_on(*fa_cell_ifaces[std::size_t(j)]);
    agent->start_advertising();
    fas.push_back(std::move(agent));
  }

  if (opts.correspondents_are_cache_agents) {
    for (node::Host* host : correspondents) {
      core::AgentConfig ca_config;
      ca_config.cache_agent = true;
      ca_config.update_min_interval = opts.protocol.update_min_interval;
      corr_agents.push_back(std::make_unique<core::MhrpAgent>(*host, ca_config));
    }
  }

  audit::auto_attach(topo);
}

bool MhrpWorld::move_and_register(int i, int site, sim::Time limit) {
  core::MobileHost& m = *mobiles[std::size_t(i)];
  bool registered = false;
  m.on_registered = [&registered] { registered = true; };
  m.attach_to(site < 0 ? *home_lan : *cells[std::size_t(site)]);
  const sim::Time deadline = topo.sim().now() + limit;
  while (!registered && topo.sim().now() < deadline) {
    topo.sim().run_for(sim::millis(100));
  }
  m.on_registered = nullptr;
  return registered;
}

std::uint64_t MhrpWorld::total_updates_sent() const {
  std::uint64_t total = ha->stats().updates_sent;
  for (const auto& fa : fas) total += fa->stats().updates_sent;
  for (const auto& ca : corr_agents) total += ca->stats().updates_sent;
  for (const auto* m : mobiles) total += m->stats().updates_sent;
  return total;
}

std::size_t MhrpWorld::total_agent_state() const {
  std::size_t total = ha->home_database_size() + ha->cache().size();
  for (const auto& fa : fas) {
    total += fa->visiting_count() + fa->cache().size();
  }
  for (const auto& ca : corr_agents) total += ca->cache().size();
  return total;
}

std::string MhrpWorld::metrics_digest() const {
  // The registry is built on demand here (MhrpWorld is the small scripted
  // world; nothing polls it mid-run) — probes read the same stats structs
  // either way, so the digest matches ScaleWorld's structure.
  telemetry::MetricRegistry reg;
  bind_agent_probes(reg, "ha", *ha);
  bind_agent_aggregate_probes(reg, "fa", fas);
  bind_agent_aggregate_probes(reg, "ca", corr_agents);
  bind_mobile_probes(reg, "mobiles", mobiles);
  if (ha_store) bind_store_probes(reg, "store", *ha_store);

  std::ostringstream out;
  out << "mhrpworld f=" << options.foreign_sites
      << " m=" << options.mobile_hosts << " c=" << options.correspondents
      << " seed=" << options.protocol.seed << " now=" << topo.sim().now()
      << "\n";
  out << topology_digest(topo);
  out << reg.snapshot().to_text();
  return out.str();
}

}  // namespace mhrp::scenario
