// Deterministic run digests for the replay regression tests.
//
// A digest is a textual rendering of everything externally observable
// about a finished run — per-node counters, per-link traffic totals, and
// (for worlds that expose them) agent statistics. Two runs of the same
// seeded scenario must produce byte-identical digests; the
// deterministic-replay tests assert that to guard the event-queue and
// packet-path hot-path code against ordering drift. Digests deliberately
// exclude process-global identifiers (packet ids, flow ids, MAC
// addresses), which differ between two worlds built in one process.
#pragma once

#include <string>

namespace mhrp::scenario {

class Topology;

/// Node counters and link totals of `topo`, in construction order.
[[nodiscard]] std::string topology_digest(const Topology& topo);

}  // namespace mhrp::scenario
