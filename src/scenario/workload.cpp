#include "scenario/workload.hpp"

#include "net/udp.hpp"

namespace mhrp::scenario {

namespace {
std::uint64_t next_flow_id() {
  static std::uint64_t counter = 0;
  return ++counter;
}
}  // namespace

CbrFlow::CbrFlow(node::Host& src, net::IpAddress dst, std::uint16_t dst_port,
                 std::size_t payload_size, sim::Time interval)
    : src_(src),
      dst_(dst),
      dst_port_(dst_port),
      payload_(payload_size, 0x42),
      timer_(src.sim(), interval, [this] { tick(); },
             sim::EventCategory::kWorkload),
      flow_id_(next_flow_id()) {}

void CbrFlow::start() {
  tick();
  timer_.start();
}

void CbrFlow::stop() { timer_.stop(); }

void CbrFlow::tick() {
  ++sent_;
  if (emit_override) {
    emit_override(payload_);
    return;
  }
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.dst = dst_;
  net::Packet p(h, net::encode_udp({40000, dst_port_}, payload_));
  p.set_base_payload_size(p.payload().size());
  p.set_flow_id(flow_id_);
  src_.send_ip(std::move(p));
}

MovementSchedule::MovementSchedule(core::MobileHost& host,
                                   std::vector<net::Link*> cells,
                                   sim::Time mean_dwell, util::Rng rng,
                                   bool random_order)
    : host_(host),
      cells_(std::move(cells)),
      mean_dwell_(mean_dwell),
      rng_(rng),
      random_order_(random_order),
      timer_(host.sim(), [this] { move_next(); },
             sim::EventCategory::kMovement) {}

void MovementSchedule::start() { move_next(); }

void MovementSchedule::stop() { timer_.cancel(); }

void MovementSchedule::move_next() {
  if (cells_.empty()) return;
  net::Link* next = nullptr;
  if (random_order_ && cells_.size() > 1) {
    // Pick a cell other than the current one.
    do {
      next = cells_[rng_.index(cells_.size())];
    } while (next == host_.radio().link());
  } else {
    next = cells_[cursor_++ % cells_.size()];
  }
  ++moves_;
  host_.attach_to(*next);
  timer_.arm(sim::from_seconds(rng_.exponential(sim::to_seconds(mean_dwell_))));
}

}  // namespace mhrp::scenario
