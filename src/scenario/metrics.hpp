// Delivery metrics: attach a FlowRecorder to a receiving node and it
// tallies, per flow, how many packets arrived, their end-to-end latency,
// how many hops they took, and — the number every E1-style experiment
// reports — the per-packet mobility overhead in bytes, computed from the
// largest wire size the packet had on any link
// (max_wire_size - 20 - base_payload_size).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "node/node.hpp"

namespace mhrp::scenario {

/// Linear-interpolated percentile over an ALREADY-SORTED `values` (`p` in
/// [0, 100]). Empty input yields 0 — callers report the count alongside.
[[nodiscard]] inline double percentile_sorted(const std::vector<double>& values,
                                              double p) {
  if (values.empty()) return 0.0;
  const double rank =
      p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Linear-interpolated percentile over a copy of `values` (`p` in
/// [0, 100]). Empty input yields 0 — callers report the count alongside.
[[nodiscard]] inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

/// The summary every recovery metric is reported as (E-chaos, §5.2).
struct PercentileSummary {
  std::uint64_t count = 0;
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
};

[[nodiscard]] inline PercentileSummary summarize(std::vector<double> values) {
  PercentileSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  // One sort, then the sorted-input fast path — the old code re-copied
  // and re-sorted inside each percentile() call (four sorts per summary).
  std::sort(values.begin(), values.end());
  s.max = values.back();
  s.p50 = percentile_sorted(values, 50);
  s.p90 = percentile_sorted(values, 90);
  s.p99 = percentile_sorted(values, 99);
  return s;
}

struct Distribution {
  std::uint64_t count = 0;
  double sum = 0;
  // Zero until the first sample: an empty distribution must never leak
  // +/-inf sentinels into digests or JSON exports.
  double min = 0;
  double max = 0;

  void add(double v) {
    ++count;
    if (count == 1) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    sum += v;
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

struct FlowStats {
  std::uint64_t received = 0;
  Distribution latency_s;
  Distribution hops;
  Distribution overhead_bytes;
};

class FlowRecorder {
 public:
  /// Start recording deliveries at `receiver`. Chains any hook already
  /// installed (a Tracer, another recorder): the previous hook runs after
  /// this one, so attaching a recorder never silently disconnects other
  /// observers.
  explicit FlowRecorder(node::Node& receiver) {
    auto previous = std::move(receiver.on_deliver_hook);
    receiver.on_deliver_hook = [this, &receiver,
                                previous = std::move(previous)](
                                   const net::Packet& p) {
      record(receiver, p);
      if (previous) previous(p);
    };
  }

  [[nodiscard]] const FlowStats& flow(std::uint64_t flow_id) const {
    static const FlowStats kEmpty;
    auto it = flows_.find(flow_id);
    return it == flows_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] const FlowStats& total() const { return total_; }

  /// Restrict recording to packets matching `predicate` (the default
  /// skips multicast/broadcast chatter such as agent advertisements).
  void set_filter(std::function<bool(const net::Packet&)> predicate) {
    filter_ = std::move(predicate);
  }

 private:
  void record(node::Node& receiver, const net::Packet& p) {
    if (filter_) {
      if (!filter_(p)) return;
    } else if (p.header().dst.is_multicast() ||
               p.header().dst.is_broadcast()) {
      return;
    }
    FlowStats* stats[] = {&total_, &flows_[p.flow_id()]};
    const double latency =
        sim::to_seconds(receiver.sim().now() - p.created_at());
    const double overhead =
        p.max_wire_size() > 20 + p.base_payload_size()
            ? static_cast<double>(p.max_wire_size() - 20 -
                                  p.base_payload_size())
            : 0.0;
    for (FlowStats* s : stats) {
      ++s->received;
      s->latency_s.add(latency);
      s->hops.add(p.hop_count());
      s->overhead_bytes.add(overhead);
    }
  }

  std::map<std::uint64_t, FlowStats> flows_;
  FlowStats total_;
  std::function<bool(const net::Packet&)> filter_;
};

}  // namespace mhrp::scenario
