#include "scenario/topology.hpp"

#include <stdexcept>

namespace mhrp::scenario {

sim::Executive& Topology::executive_for(std::uint32_t shard) {
  if (sharded_ == nullptr) {
    if (shard != 0) {
      throw std::out_of_range("Topology: shard out of range (single-threaded)");
    }
    return *sim_;
  }
  return sharded_->shard_view(shard);
}

node::Router& Topology::add_router(const std::string& name,
                                   std::uint32_t shard) {
  auto router = std::make_unique<node::Router>(executive_for(shard), name);
  node::Router& ref = *router;
  nodes_.push_back(std::move(router));
  is_mobile_.push_back(false);
  by_name_[name] = &ref;
  notify_node_added(ref);
  return ref;
}

node::Host& Topology::add_host(const std::string& name,
                               std::uint32_t shard) {
  auto host = std::make_unique<node::Host>(executive_for(shard), name);
  node::Host& ref = *host;
  nodes_.push_back(std::move(host));
  is_mobile_.push_back(false);
  by_name_[name] = &ref;
  notify_node_added(ref);
  return ref;
}

core::MobileHost& Topology::add_mobile_host(const std::string& name,
                                            net::IpAddress home_ip,
                                            int home_prefix_length,
                                            core::MobileHostConfig config,
                                            std::uint32_t shard) {
  auto mh = std::make_unique<core::MobileHost>(executive_for(shard), name,
                                               home_ip, home_prefix_length,
                                               config);
  core::MobileHost& ref = *mh;
  nodes_.push_back(std::move(mh));
  is_mobile_.push_back(true);
  by_name_[name] = &ref;
  notify_node_added(ref);
  return ref;
}

node::Node& Topology::adopt(std::unique_ptr<node::Node> node) {
  node::Node& ref = *node;
  by_name_[node->name()] = node.get();
  nodes_.push_back(std::move(node));
  is_mobile_.push_back(false);
  notify_node_added(ref);
  return ref;
}

HookHandle Topology::add_node_added_hook(NodeAddedHook hook) {
  std::size_t slot;
  if (!free_hook_slots_.empty()) {
    slot = free_hook_slots_.back();
    free_hook_slots_.pop_back();
  } else {
    slot = node_added_hooks_.size();
    node_added_hooks_.emplace_back();
  }
  node_added_hooks_[slot].hook = std::move(hook);
  return HookHandle(this, slot, node_added_hooks_[slot].generation);
}

void HookHandle::remove() {
  if (topo_ == nullptr) return;
  Topology* topo = std::exchange(topo_, nullptr);
  if (slot_ >= topo->node_added_hooks_.size()) return;
  Topology::HookSlot& entry = topo->node_added_hooks_[slot_];
  if (entry.generation != generation_ || !entry.hook) return;
  entry.hook = nullptr;
  ++entry.generation;  // any other handle naming this slot is now stale
  topo->free_hook_slots_.push_back(slot_);
}

bool HookHandle::active() const {
  return topo_ != nullptr && slot_ < topo_->node_added_hooks_.size() &&
         topo_->node_added_hooks_[slot_].generation == generation_ &&
         static_cast<bool>(topo_->node_added_hooks_[slot_].hook);
}

void Topology::notify_node_added(node::Node& node) {
  for (auto& entry : node_added_hooks_) {
    if (entry.hook) entry.hook(node);
  }
}

net::Link& Topology::add_link(const std::string& name, sim::Time latency,
                              std::uint64_t bandwidth_bps) {
  auto link = std::make_unique<net::Link>(*sim_, name, latency, bandwidth_bps);
  net::Link& ref = *link;
  links_.push_back(std::move(link));
  link_by_name_[name] = &ref;
  return ref;
}

net::Interface& Topology::connect(node::Node& node, net::Link& link,
                                  net::IpAddress ip, int prefix_length,
                                  const std::string& if_name) {
  const std::string name =
      if_name.empty() ? "eth" + std::to_string(node.interfaces().size())
                      : if_name;
  net::Interface& iface = node.add_interface(name, ip, prefix_length);
  link.attach(iface);
  return iface;
}

int Topology::index_of(const node::Node& node) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].get() == &node) return static_cast<int>(i);
  }
  throw std::invalid_argument("node not in topology: " + node.name());
}

routing::Graph Topology::build_graph() const {
  routing::Graph graph(nodes_.size());
  // Nodes sharing a link are adjacent; cost 1 per link crossing.
  for (const auto& link : links_) {
    const auto& members = link->members();
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = 0; b < members.size(); ++b) {
        if (a == b) continue;
        // Map interfaces back to node indices via ownership scan.
        int ia = -1;
        int ib = -1;
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
          for (const auto& iface : nodes_[n]->interfaces()) {
            if (iface.get() == members[a]) ia = static_cast<int>(n);
            if (iface.get() == members[b]) ib = static_cast<int>(n);
          }
        }
        if (ia >= 0 && ib >= 0) {
          graph[static_cast<std::size_t>(ia)].push_back({ib, 1.0});
        }
      }
    }
  }
  return graph;
}

void Topology::install_static_routes() {
  const routing::Graph graph = build_graph();

  // Collect every prefix in the internetwork with a representative node.
  struct PrefixSite {
    net::Prefix prefix;
    int node_index;
  };
  std::vector<PrefixSite> sites;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    // Only routers originate subnet reachability — a host whose address
    // does not match its attachment point (a visiting mobile host) must
    // stay invisible to routing; making it reachable is the mobility
    // protocols' job, not the routing fabric's.
    if (!nodes_[n]->forwarding()) continue;
    for (const auto& iface : nodes_[n]->interfaces()) {
      sites.push_back({iface->prefix(), static_cast<int>(n)});
    }
  }

  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    node::Node& node = *nodes_[n];
    if (is_mobile_[n]) continue;  // mobile hosts route via registration

    if (!node.forwarding()) {
      // Plain host: default route via a forwarding neighbor on its LAN.
      for (const auto& iface : node.interfaces()) {
        if (!iface->attached()) continue;
        for (net::Interface* member : iface->link()->members()) {
          if (member == iface.get()) continue;
          for (const auto& other : nodes_) {
            if (!other->forwarding()) continue;
            for (const auto& other_iface : other->interfaces()) {
              if (other_iface.get() == member) {
                node.routing_table().install(
                    {net::Prefix(net::kUnspecified, 0), member->ip(),
                     iface.get(), 1, routing::RouteKind::kStatic});
                goto next_node;
              }
            }
          }
        }
      }
    next_node:
      continue;
    }

    // Router: full shortest-path table.
    const routing::ShortestPaths sp =
        routing::shortest_paths(graph, static_cast<int>(n));
    for (const PrefixSite& site : sites) {
      if (site.node_index == static_cast<int>(n)) continue;
      if (!sp.reachable(site.node_index)) continue;
      // Skip prefixes directly connected to us (connected route wins).
      bool connected = false;
      for (const auto& iface : node.interfaces()) {
        if (iface->prefix() == site.prefix) connected = true;
      }
      if (connected) continue;

      const int hop = sp.first_hop[static_cast<std::size_t>(site.node_index)];
      if (hop < 0) continue;
      // Find our interface sharing a link with `hop`, and the hop's
      // address on that link.
      node::Node& hop_node = *nodes_[static_cast<std::size_t>(hop)];
      net::Interface* out = nullptr;
      net::IpAddress via;
      for (const auto& iface : node.interfaces()) {
        if (!iface->attached()) continue;
        for (const auto& hop_iface : hop_node.interfaces()) {
          if (hop_iface->link() == iface->link()) {
            out = iface.get();
            via = hop_iface->ip();
          }
        }
      }
      if (out == nullptr) continue;
      node.routing_table().install(
          {site.prefix, via, out,
           static_cast<int>(sp.distance[static_cast<std::size_t>(
               site.node_index)]),
           routing::RouteKind::kStatic});
    }
  }
}

node::Node* Topology::find(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

net::Link* Topology::find_link(const std::string& name) {
  auto it = link_by_name_.find(name);
  return it == link_by_name_.end() ? nullptr : it->second;
}

int Topology::hop_distance(const node::Node& a, const node::Node& b) {
  const routing::Graph graph = build_graph();
  const auto sp = routing::shortest_paths(graph, index_of(a));
  const int target = index_of(b);
  if (!sp.reachable(target)) return -1;
  return static_cast<int>(sp.distance[static_cast<std::size_t>(target)]);
}

std::vector<const net::Link*> Topology::cross_shard_links() const {
  std::vector<const net::Link*> crossing;
  for (const auto& link : links_) {
    const auto& members = link->members();
    bool crosses = false;
    for (std::size_t i = 1; i < members.size() && !crosses; ++i) {
      crosses = members[i]->shard() != members[0]->shard();
    }
    if (crosses) crossing.push_back(link.get());
  }
  return crossing;
}

sim::Time Topology::min_cross_shard_latency() const {
  sim::Time min_latency = 0;
  bool any = false;
  for (const net::Link* link : cross_shard_links()) {
    if (!any || link->latency() < min_latency) {
      min_latency = link->latency();
      any = true;
    }
  }
  return any ? min_latency : 0;
}

}  // namespace mhrp::scenario
