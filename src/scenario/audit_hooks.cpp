#include "scenario/audit_hooks.hpp"

#include "scenario/figure1.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/topology.hpp"

namespace mhrp::scenario::audit {

void attach(analysis::PacketAuditor& auditor, Topology& topo) {
  for (const auto& link : topo.links()) auditor.attach_link(*link);
}

void attach(analysis::PacketAuditor& auditor, Figure1& world) {
  attach(auditor, world.topo);
  if (world.agent_r1) auditor.watch_cache(world.agent_r1->cache(), "R1 cache");
  if (world.ha) auditor.watch_cache(world.ha->cache(), "R2/HA cache");
  if (world.fa_r4) auditor.watch_cache(world.fa_r4->cache(), "R4/FA cache");
  if (world.fa_r5) auditor.watch_cache(world.fa_r5->cache(), "R5/FA cache");
  if (world.agent_s) auditor.watch_cache(world.agent_s->cache(), "S cache");
}

void attach(analysis::PacketAuditor& auditor, MhrpWorld& world) {
  attach(auditor, world.topo);
  if (world.ha) auditor.watch_cache(world.ha->cache(), "HA cache");
  for (std::size_t i = 0; i < world.fas.size(); ++i) {
    auditor.watch_cache(world.fas[i]->cache(),
                        "FA" + std::to_string(i) + " cache");
  }
  for (std::size_t i = 0; i < world.corr_agents.size(); ++i) {
    auditor.watch_cache(world.corr_agents[i]->cache(),
                        "C" + std::to_string(i) + " cache");
  }
}

bool audit_build() {
#ifdef MHRP_AUDIT
  return true;
#else
  return false;
#endif
}

analysis::PacketAuditor& global_auditor() {
  static analysis::PacketAuditor auditor;
  return auditor;
}

void auto_attach(Topology& topo) {
#ifdef MHRP_AUDIT
  attach(global_auditor(), topo);
#else
  (void)topo;
#endif
}

}  // namespace mhrp::scenario::audit
