#include "scenario/replay_digest.hpp"

#include <sstream>

#include "scenario/topology.hpp"

namespace mhrp::scenario {

std::string topology_digest(const Topology& topo) {
  std::ostringstream out;
  for (const auto& node : topo.nodes()) {
    const node::Node::Counters& c = node->counters();
    out << "node " << node->name() << " sent=" << c.ip_sent
        << " recv=" << c.ip_received << " local=" << c.delivered_local
        << " fwd=" << c.forwarded << " noroute=" << c.dropped_no_route
        << " ttl=" << c.dropped_ttl << " arp=" << c.dropped_arp_timeout
        << " icmperr=" << c.icmp_errors_sent
        << " slow=" << c.options_slow_path << "\n";
  }
  for (const auto& link : topo.links()) {
    out << "link " << link->name() << " frames=" << link->frames_carried()
        << " bytes=" << link->bytes_carried() << "\n";
  }
  return out.str();
}

}  // namespace mhrp::scenario
