// ScaleWorld: a seeded generator of large grid/tree internetworks with
// MHRP fully installed, built to exercise Johnson's §3/§7 scalability
// claims at populations far beyond the Figure-1 walkthrough: N backbone
// routers, F foreign-agent sites (each with a wireless cell), M mobile
// hosts roaming between cells on exponential dwell times, and a
// constant-bit-rate UDP workload from correspondent hosts to every
// mobile. Everything — topology shape, movement, traffic — is a pure
// function of the seed, so two worlds built from the same options behave
// byte-identically (the deterministic-replay regression test relies on
// this, and it is what makes large-scale benchmark runs comparable).
#pragma once

#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "faults/fault_plane.hpp"
#include "routing/dv/dv_process.hpp"
#include "scenario/metrics.hpp"
#include "store/home_store.hpp"
#include "scenario/protocol_options.hpp"
#include "scenario/telemetry_hooks.hpp"
#include "scenario/topology.hpp"
#include "scenario/workload.hpp"

namespace mhrp::scenario {

/// Seeded chaos riding on top of a ScaleWorld run: Poisson link outages
/// (cells and backbone circuits), foreign-agent crashes with reboot, and
/// loss bursts, all drawn at start() into one FaultSchedule and driven by
/// the world's FaultPlane. A disabled ChaosOptions costs nothing.
struct ChaosOptions {
  bool enabled = false;
  std::uint64_t fault_seed = 0xfa17;   // schedule draw, separate from topo
  sim::Time horizon = sim::seconds(60);  // faults are drawn over [0, horizon)
  double cell_outages_per_sec = 0.0;
  double backbone_outages_per_sec = 0.0;
  sim::Time mean_outage = sim::seconds(2);
  double fa_crashes_per_sec = 0.0;
  sim::Time mean_downtime = sim::seconds(2);
  bool preserve_persistent_state = true;  // reboot keeps the home database
  /// Home-agent crashes (the §2 durability experiment: each one power-
  /// cuts the HA's store disk, and the lost-binding series records how
  /// many acked registrations each recovery failed to bring back).
  double ha_crashes_per_sec = 0.0;
  double loss_bursts_per_sec = 0.0;
  double burst_loss = 0.3;
  sim::Time mean_burst = sim::seconds(1);
};

struct ScaleWorldOptions {
  enum class Backbone {
    kGrid,  // routers on a ceil(sqrt(N)) grid, links to right/down
    kTree,  // binary tree rooted at the home router
  };

  Backbone backbone = Backbone::kGrid;
  int routers = 16;         // N, >= 2 (router 0 is the home site)
  int foreign_agents = 4;   // F, 1 <= F <= min(N - 1, 250)
  int mobile_hosts = 8;     // M, <= 60000
  int correspondents = 2;   // CBR senders, round-robin over mobiles
  sim::Time link_latency = sim::millis(1);
  sim::Time mean_dwell = sim::seconds(5);  // per-cell dwell (exponential)
  sim::Time cbr_interval = sim::millis(200);
  std::size_t cbr_payload = 64;
  /// Executive sharding. 0 (default) = the single-threaded Simulator;
  /// >= 1 = a ShardedExecutive with that many worker threads. Router
  /// regions, their cells, and the mobiles roaming them are placed
  /// round-robin-free (contiguous region blocks) so every wireless cell
  /// is shard-local and only backbone circuits cross shards. Replay
  /// digests are byte-identical for a FIXED shard count; shards == 1
  /// matches the single-threaded digest exactly. Sharded runs refuse
  /// trace/profiler telemetry, chaos loss bursts, and the audit layer
  /// (DESIGN.md §13).
  int shards = 0;
  /// Movement partitioning: mobiles are split over this many regions and
  /// each roams only its region's cells. 0 = one region per shard (one
  /// global region when single-threaded). Must be a positive multiple of
  /// `shards`; pin it explicitly (e.g. 8) to compare digests across
  /// shard counts, since the region count changes where mobiles roam.
  int movement_regions = 0;
  /// Protocol knobs shared with every other scenario world.
  ProtocolOptions protocol;
  /// Fault injection (off by default; see ChaosOptions).
  ChaosOptions chaos;
  /// Observability (registry always on; trace/profiler off by default).
  TelemetryOptions telemetry;
};

/// Wall-clock-free results of one run_for() slice (all values are
/// simulation-level counts; the bench layers wall timing on top).
struct ScaleRunStats {
  std::uint64_t events_executed = 0;
  std::uint64_t frames_carried = 0;  // across every link
  std::uint64_t bytes_carried = 0;
  std::uint64_t packets_delivered = 0;  // CBR datagrams reaching a mobile
  std::uint64_t moves = 0;
  std::uint64_t registrations = 0;  // completed mobile registrations
};

class ScaleWorld {
 public:
  explicit ScaleWorld(ScaleWorldOptions options = ScaleWorldOptions());
  ~ScaleWorld();

  Topology topo;
  ScaleWorldOptions options;

  /// Metric registry (always bound — probes over every agent, the mobile
  /// population, the store, and the fault plane), plus the optional trace
  /// collector and event-loop profiler per options.telemetry. The
  /// registry holds only protocol-observable values, so its snapshot is
  /// byte-identical with tracing/profiling on or off.
  WorldTelemetry instruments;

  node::Router* home_router = nullptr;
  net::Link* home_lan = nullptr;
  std::vector<node::Router*> routers;     // all N backbone routers
  std::vector<node::Router*> fa_routers;  // the F hosting foreign agents
  std::vector<net::Link*> backbone_links;  // the /30 circuits, in build order
  std::vector<net::Link*> cells;
  std::vector<core::MobileHost*> mobiles;
  std::vector<node::Host*> correspondents;

  std::unique_ptr<core::MhrpAgent> ha;
  /// The HA's durable database, present when protocol.store.enabled.
  std::unique_ptr<store::HomeStore> ha_store;
  std::vector<std::unique_ptr<core::MhrpAgent>> fas;
  std::vector<std::unique_ptr<core::MhrpAgent>> corr_agents;
  /// One DV routing process per backbone router (aligned with
  /// `routers`), populated only under protocol.routing == Mode::kDv.
  /// Started at construction; their triggered/periodic timers live on
  /// each router's shard.
  std::vector<std::unique_ptr<routing::dv::DvProcess>> dv_processes;

  [[nodiscard]] net::IpAddress mobile_address(int i) const;

  /// Start roaming and traffic. Idempotent.
  void start();

  /// Advance the simulation by `duration` and return what happened in
  /// that slice (deltas, not totals).
  ScaleRunStats run_for(sim::Time duration);

  /// Completed handoff latencies (seconds of simulated time from
  /// attach_to() to registration-complete), in canonical (time, mobile)
  /// order — recorded per shard and merged on a shard-count-independent
  /// key, so the same measurements appear in the same order however many
  /// workers produced them.
  [[nodiscard]] const std::vector<double>& handoff_latencies() const;

  // ---- Chaos (populated only when options.chaos.enabled) ----

  /// The fault plane driving the run, or nullptr with chaos disabled.
  [[nodiscard]] faults::FaultPlane* fault_plane() {
    return fault_plane_.get();
  }
  /// Seconds from each FA-crash / cell-partition outage to the affected
  /// mobile's next completed registration, in canonical (time, mobile)
  /// order.
  [[nodiscard]] const std::vector<double>& recovery_times() const;
  /// CBR packets lost per recovered outage (expected minus received
  /// while the outage was open), aligned with recovery_times().
  [[nodiscard]] const std::vector<double>& outage_losses() const;
  /// Seconds each outage left the home agent forwarding toward a dead
  /// binding, measured from outage start to the HA's binding change.
  [[nodiscard]] const std::vector<double>& binding_staleness() const {
    return binding_staleness_;
  }
  /// Time-to-reconverge of the DV plane, one entry per link-fault epoch
  /// that produced route churn: seconds from the link fail/recover to
  /// the LAST DV route change observed anywhere before the next epoch
  /// (canonical (time, router) merge order, like every other series).
  /// Empty under static routing or with chaos disabled.
  [[nodiscard]] const std::vector<double>& convergence_times() const;
  /// One entry per HA crash: away-bindings present before the crash that
  /// recovery did not restore. All zeros under a durable sync policy;
  /// under kAsync this is the measured cost of acking early.
  [[nodiscard]] const std::vector<double>& ha_lost_bindings() const {
    return ha_lost_bindings_;
  }
  /// Seconds each HA crash+recovery took, store mount included.
  [[nodiscard]] const std::vector<double>& ha_recovery_times() const {
    return ha_recovery_times_;
  }

  /// Delivery statistics at the mobile hosts (per-flow and total).
  [[nodiscard]] const FlowRecorder& recorder(int mobile) const {
    return *recorders_[static_cast<std::size_t>(mobile)];
  }
  [[nodiscard]] std::uint64_t flow_id(int mobile) const {
    return flows_[static_cast<std::size_t>(mobile)]->flow_id();
  }

  /// Total agent control state (HA database rows + FA visiting entries +
  /// cache entries) — the §3 "scales linearly" quantity.
  [[nodiscard]] std::size_t total_agent_state() const;
  /// Control state at the busiest single node (§7: no node's burden grows
  /// with the whole internetwork's mobile population).
  [[nodiscard]] std::size_t busiest_node_state() const;

  /// Deterministic textual digest of everything observable after a run:
  /// node counters, link totals, the metric-registry snapshot (agent,
  /// mobile, store, and fault-plane probes plus the latency histograms),
  /// and the raw latency series. Two same-seed worlds driven identically
  /// must produce byte-identical digests (the replay regression test
  /// asserts exactly that), with telemetry collection on or off.
  /// Process-global identifiers (packet ids, flow ids, MAC addresses)
  /// are deliberately excluded.
  [[nodiscard]] std::string metrics_digest() const;

  /// The registry snapshot as a strict JSON document (schema
  /// "mhrp.scaleworld.metrics.v1": run parameters + every metric).
  /// Throws telemetry::NonFiniteJsonError if any value is non-finite.
  [[nodiscard]] std::string metrics_json() const;
  /// The registry snapshot as "name,kind,field,value" CSV rows.
  [[nodiscard]] std::string metrics_csv() const;

 private:
  /// One mobile's open outage, if any (start < 0 = none). The recovery
  /// clock closes at the next completed registration; the staleness
  /// clock closes at the HA's next binding change for that host.
  struct Outage {
    sim::Time recovery_start = -1;
    sim::Time staleness_start = -1;
    std::uint64_t received_at_start = 0;
  };

  /// One measurement in a per-shard series lane: simulated time, a
  /// shard-count-independent tiebreaker (the mobile index), the value.
  /// Each lane is written only by its own shard's worker; merging sorts
  /// on (t, idx), a canonical order no interleaving can perturb.
  struct SeriesEntry {
    sim::Time t = 0;
    std::uint32_t idx = 0;
    double v = 0.0;
  };
  using SeriesLanes = std::vector<std::vector<SeriesEntry>>;

  void arm_chaos();
  void bind_instruments();
  void note_fault(const faults::FaultEvent& event);
  void open_outages_for(net::IpAddress foreign_agent);
  /// Start mobile i's outage clocks. Must run on the mobile's shard.
  void open_outage_for_mobile(std::size_t i, sim::Time now);
  void close_recovery(std::size_t i);
  /// The calling shard's lane (the executive resolves the worker).
  [[nodiscard]] std::vector<SeriesEntry>& lane(SeriesLanes& lanes) const;
  void record_series(SeriesLanes& lanes, std::uint32_t idx, double v);
  [[nodiscard]] static std::vector<double> merge_lanes(
      const SeriesLanes& lanes);
  /// Rebuild the lane-backed registry histograms from the canonically
  /// merged series. Called before every snapshot; live recording from
  /// worker shards would race and its float-sum order would depend on
  /// the interleaving.
  void refresh_series_metrics() const;

  std::vector<std::unique_ptr<CbrFlow>> flows_;
  std::vector<std::unique_ptr<MovementSchedule>> schedules_;
  std::vector<std::unique_ptr<FlowRecorder>> recorders_;
  std::vector<sim::Time> attach_times_;  // per mobile, last attach_to()
  std::vector<std::uint32_t> mobile_shard_;  // per mobile
  std::vector<std::uint32_t> cell_shard_;    // per cell / foreign site
  std::vector<std::vector<net::Link*>> region_cells_;  // per movement region
  std::uint32_t corr_shard_ = 0;
  SeriesLanes handoff_lanes_;
  mutable std::vector<double> handoff_merged_;
  std::unique_ptr<faults::FaultPlane> fault_plane_;
  std::vector<Outage> outages_;  // per mobile, touched on its shard only
  SeriesLanes recovery_lanes_;
  SeriesLanes outage_loss_lanes_;
  mutable std::vector<double> recovery_merged_;
  mutable std::vector<double> outage_loss_merged_;
  /// DV route-change instants (entry value = seconds), one lane per
  /// shard, written from each router's on_route_change on its own shard.
  SeriesLanes route_change_lanes_;
  /// Link fail/recover instants, appended by note_fault (which runs on
  /// the fault plane's shard for link events — a single writer).
  std::vector<sim::Time> fault_epochs_;
  mutable std::vector<double> convergence_merged_;
  // HA-side series: written only from the home agent's shard (shard 0).
  std::vector<double> binding_staleness_;
  std::size_t ha_target_ = static_cast<std::size_t>(-1);  // fault-plane index
  std::vector<std::pair<net::IpAddress, net::IpAddress>> ha_precrash_bindings_;
  sim::Time ha_crashed_at_ = -1;
  std::vector<double> ha_lost_bindings_;
  std::vector<double> ha_recovery_times_;
  std::vector<net::IpAddress> ha_bindings_;      // per mobile, HA's view
  std::vector<sim::Time> binding_changed_at_;    // per mobile
  bool oracle_installed_ = false;
  // Registry-owned histograms mirroring the latency series above — the
  // O(1)-record replacement for sorting the raw vectors at report time.
  // Recorded unconditionally (always-on callbacks), so the snapshot is
  // identical whether tracing/profiling is enabled.
  telemetry::Histogram* handoff_latency_h_ = nullptr;
  telemetry::Histogram* recovery_time_h_ = nullptr;
  telemetry::Histogram* outage_loss_h_ = nullptr;
  telemetry::Histogram* binding_staleness_h_ = nullptr;
  telemetry::Histogram* ha_lost_bindings_h_ = nullptr;
  telemetry::Histogram* ha_recovery_h_ = nullptr;
  telemetry::Histogram* convergence_h_ = nullptr;
  std::uint64_t events_executed_ = 0;
  ScaleRunStats last_totals_;
  bool started_ = false;
};

}  // namespace mhrp::scenario
