// ScaleWorld: a seeded generator of large grid/tree internetworks with
// MHRP fully installed, built to exercise Johnson's §3/§7 scalability
// claims at populations far beyond the Figure-1 walkthrough: N backbone
// routers, F foreign-agent sites (each with a wireless cell), M mobile
// hosts roaming between cells on exponential dwell times, and a
// constant-bit-rate UDP workload from correspondent hosts to every
// mobile. Everything — topology shape, movement, traffic — is a pure
// function of the seed, so two worlds built from the same options behave
// byte-identically (the deterministic-replay regression test relies on
// this, and it is what makes large-scale benchmark runs comparable).
#pragma once

#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "scenario/metrics.hpp"
#include "scenario/topology.hpp"
#include "scenario/workload.hpp"

namespace mhrp::scenario {

struct ScaleWorldOptions {
  enum class Backbone {
    kGrid,  // routers on a ceil(sqrt(N)) grid, links to right/down
    kTree,  // binary tree rooted at the home router
  };

  Backbone backbone = Backbone::kGrid;
  int routers = 16;         // N, >= 2 (router 0 is the home site)
  int foreign_agents = 4;   // F, 1 <= F <= min(N - 1, 250)
  int mobile_hosts = 8;     // M, <= 60000
  int correspondents = 2;   // CBR senders, round-robin over mobiles
  sim::Time link_latency = sim::millis(1);
  sim::Time advertisement_period = sim::seconds(1);
  sim::Time mean_dwell = sim::seconds(5);  // per-cell dwell (exponential)
  sim::Time cbr_interval = sim::millis(200);
  std::size_t cbr_payload = 64;
  sim::Time update_min_interval = sim::millis(100);
  std::size_t max_list_length = 8;
  std::uint64_t seed = 1;
};

/// Wall-clock-free results of one run_for() slice (all values are
/// simulation-level counts; the bench layers wall timing on top).
struct ScaleRunStats {
  std::uint64_t events_executed = 0;
  std::uint64_t frames_carried = 0;  // across every link
  std::uint64_t bytes_carried = 0;
  std::uint64_t packets_delivered = 0;  // CBR datagrams reaching a mobile
  std::uint64_t moves = 0;
  std::uint64_t registrations = 0;  // completed mobile registrations
};

class ScaleWorld {
 public:
  explicit ScaleWorld(ScaleWorldOptions options = ScaleWorldOptions());
  ~ScaleWorld();

  Topology topo;
  ScaleWorldOptions options;

  node::Router* home_router = nullptr;
  net::Link* home_lan = nullptr;
  std::vector<node::Router*> routers;     // all N backbone routers
  std::vector<node::Router*> fa_routers;  // the F hosting foreign agents
  std::vector<net::Link*> cells;
  std::vector<core::MobileHost*> mobiles;
  std::vector<node::Host*> correspondents;

  std::unique_ptr<core::MhrpAgent> ha;
  std::vector<std::unique_ptr<core::MhrpAgent>> fas;
  std::vector<std::unique_ptr<core::MhrpAgent>> corr_agents;

  [[nodiscard]] net::IpAddress mobile_address(int i) const;

  /// Start roaming and traffic. Idempotent.
  void start();

  /// Advance the simulation by `duration` and return what happened in
  /// that slice (deltas, not totals).
  ScaleRunStats run_for(sim::Time duration);

  /// Completed handoff latencies (seconds of simulated time from
  /// attach_to() to registration-complete), in completion order.
  [[nodiscard]] const std::vector<double>& handoff_latencies() const {
    return handoff_latencies_;
  }

  /// Delivery statistics at the mobile hosts (per-flow and total).
  [[nodiscard]] const FlowRecorder& recorder(int mobile) const {
    return *recorders_[static_cast<std::size_t>(mobile)];
  }
  [[nodiscard]] std::uint64_t flow_id(int mobile) const {
    return flows_[static_cast<std::size_t>(mobile)]->flow_id();
  }

  /// Total agent control state (HA database rows + FA visiting entries +
  /// cache entries) — the §3 "scales linearly" quantity.
  [[nodiscard]] std::size_t total_agent_state() const;
  /// Control state at the busiest single node (§7: no node's burden grows
  /// with the whole internetwork's mobile population).
  [[nodiscard]] std::size_t busiest_node_state() const;

  /// Deterministic textual digest of everything observable after a run:
  /// node counters, link totals, agent stats, handoff latencies, and
  /// delivery counts. Two same-seed worlds driven identically must
  /// produce byte-identical digests (the replay regression test asserts
  /// exactly that). Process-global identifiers (packet ids, flow ids,
  /// MAC addresses) are deliberately excluded.
  [[nodiscard]] std::string metrics_digest() const;

 private:
  std::vector<std::unique_ptr<CbrFlow>> flows_;
  std::vector<std::unique_ptr<MovementSchedule>> schedules_;
  std::vector<std::unique_ptr<FlowRecorder>> recorders_;
  std::vector<sim::Time> attach_times_;  // per mobile, last attach_to()
  std::vector<double> handoff_latencies_;
  std::uint64_t events_executed_ = 0;
  ScaleRunStats last_totals_;
  bool started_ = false;
};

}  // namespace mhrp::scenario
