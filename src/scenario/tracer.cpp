#include "scenario/tracer.hpp"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/encapsulation.hpp"
#include "net/icmp.hpp"

namespace mhrp::scenario {

namespace {

const char* proto_name(std::uint8_t proto) {
  switch (static_cast<net::IpProto>(proto)) {
    case net::IpProto::kIcmp:
      return "ICMP";
    case net::IpProto::kIpInIp:
      return "IPIP";
    case net::IpProto::kTcp:
      return "TCP";
    case net::IpProto::kUdp:
      return "UDP";
    case net::IpProto::kMhrp:
      return "MHRP";
    case net::IpProto::kVip:
      return "VIP";
    case net::IpProto::kIptp:
      return "IPTP";
  }
  return "?";
}

std::string describe(const net::Packet& packet) {
  std::ostringstream os;
  os << proto_name(packet.header().protocol) << " "
     << packet.header().src.to_string() << " -> "
     << packet.header().dst.to_string() << " (" << packet.wire_size()
     << "B, ttl " << int(packet.header().ttl) << ")";
  if (core::is_mhrp(packet)) {
    try {
      core::MhrpHeader h = core::read_mhrp_header(packet);
      os << " [tunnel for " << h.mobile_host.to_string() << ", orig proto "
         << proto_name(h.orig_protocol) << ", list";
      if (h.previous_sources.empty()) {
        os << " empty";
      } else {
        for (net::IpAddress a : h.previous_sources) {
          os << ' ' << a.to_string();
        }
      }
      os << ']';
    } catch (const util::CodecError&) {
      os << " [corrupt MHRP header]";
    }
  } else if (packet.header().protocol == net::to_u8(net::IpProto::kIcmp)) {
    try {
      auto msg = net::decode_icmp(packet.payload());
      if (const auto* u = std::get_if<net::IcmpLocationUpdate>(&msg)) {
        os << " [location update: " << u->mobile_host.to_string() << " @ "
           << (u->invalidate ? std::string("invalidate")
                             : u->foreign_agent.to_string())
           << ']';
      } else if (std::holds_alternative<net::IcmpAgentAdvertisement>(msg)) {
        os << " [agent advertisement]";
      } else if (std::holds_alternative<net::IcmpUnreachable>(msg)) {
        os << " [unreachable]";
      }
    } catch (const util::CodecError&) {
    }
  }
  return os.str();
}

}  // namespace

Tracer::Tracer(Topology& topo, std::ostream* out)
    : topo_(topo), out_(out != nullptr ? out : &std::clog) {
  // Fail fast instead of interleaving: the tracer writes one stream from
  // every node's hooks, which under a sharded executive would be written
  // concurrently by several workers (garbled lines, nondeterministic
  // order). Same policy as ShardedExecutive::set_profiler.
  if (topo_.sharded_executive() != nullptr) {
    throw std::logic_error(
        "Tracer: tracing requires a single-threaded world (shards == 0); "
        "rerun the scenario unsharded to trace it (DESIGN.md §13)");
  }
  for (const auto& node : topo_.nodes()) attach(*node);
  // Nodes created after the tracer must be covered too.
  hook_ = topo_.add_node_added_hook(
      [this](node::Node& node) { attach(node); });
}

// The hooks installed on nodes capture `this`, but they live exactly as
// long as the nodes inside topo_ — a Tracer outliving its topology is
// already UB (topo_ dangles). The node-added hook, however, would fire
// into a dead Tracer if more nodes are added after it is destroyed; the
// RAII HookHandle member withdraws it.
Tracer::~Tracer() = default;

bool Tracer::enabled_by_env() {
  const char* value = std::getenv("MHRP_TRACE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

void Tracer::attach(node::Node& node) {
  auto previous_deliver = node.on_deliver_hook;
  node.on_deliver_hook = [this, &node,
                          previous_deliver](const net::Packet& p) {
    print("recv", node, p);
    if (previous_deliver) previous_deliver(p);
  };
  auto previous_forward = node.on_forward_hook;
  node.on_forward_hook = [this, &node, previous_forward](
                             const net::Packet& p, net::Interface& out) {
    print("fwd ", node, p);
    if (previous_forward) previous_forward(p, out);
  };
}

void Tracer::print(const char* verb, const node::Node& node,
                   const net::Packet& packet) {
  // Skip the periodic advertisement chatter unless it is the story.
  ++events_;
  (*out_) << std::fixed << std::setprecision(4)
          << sim::to_seconds(topo_.sim().now()) << "s  " << verb << "  "
          << std::setw(12) << std::left << node.name() << ' '
          << describe(packet) << '\n';
}

}  // namespace mhrp::scenario
