// A parameterized internetwork with MHRP fully installed: one home site
// (home agent router), F foreign sites (foreign agent routers with
// wireless cells), one correspondent site, M mobile hosts, and C
// correspondent hosts (each a cache agent). Property tests sweep its
// parameters; bench_scalability, bench_handoff, and bench_cache_convergence
// are built on it.
#pragma once

#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "routing/dv/dv_process.hpp"
#include "scenario/protocol_options.hpp"
#include "scenario/topology.hpp"

namespace mhrp::scenario {

struct MhrpWorldOptions {
  int foreign_sites = 3;
  int mobile_hosts = 1;
  int correspondents = 1;
  bool correspondents_are_cache_agents = true;
  /// §3: a mobile host "may wait to hear the next periodic advertisement
  /// message, or may optionally multicast an agent solicitation".
  bool solicit_on_attach = true;
  /// Protocol knobs shared with every other scenario world.
  ProtocolOptions protocol;
};

class MhrpWorld {
 public:
  explicit MhrpWorld(MhrpWorldOptions options = MhrpWorldOptions());

  Topology topo;
  MhrpWorldOptions options;

  node::Router* home_router = nullptr;  // also the home agent
  net::Link* home_lan = nullptr;
  std::vector<node::Router*> fa_routers;
  std::vector<net::Link*> cells;  // wireless cell of each foreign site
  std::vector<core::MobileHost*> mobiles;
  std::vector<node::Host*> correspondents;

  std::unique_ptr<core::MhrpAgent> ha;
  /// The HA's durable database, present when protocol.store.enabled.
  std::unique_ptr<store::HomeStore> ha_store;
  std::vector<std::unique_ptr<core::MhrpAgent>> fas;
  std::vector<std::unique_ptr<core::MhrpAgent>> corr_agents;
  /// One DV routing process per router, populated only under
  /// protocol.routing == Mode::kDv (static routes stay as the fallback
  /// tier). Started at construction.
  std::vector<std::unique_ptr<routing::dv::DvProcess>> dv_processes;

  [[nodiscard]] net::IpAddress mobile_address(int i) const {
    return net::IpAddress::of(10, 1, 0, static_cast<std::uint8_t>(100 + i));
  }
  [[nodiscard]] net::IpAddress fa_address(int site) const {
    return net::IpAddress::of(10, static_cast<std::uint8_t>(2 + site), 0, 1);
  }

  /// Attach mobile `i` to foreign cell `site` (or home when site < 0)
  /// and run until its registration completes. Returns success.
  bool move_and_register(int i, int site, sim::Time limit = sim::seconds(30));

  /// Total location-update messages sent by every agent in the world.
  [[nodiscard]] std::uint64_t total_updates_sent() const;
  /// Deterministic textual digest (topology counters plus a
  /// metric-registry snapshot over every agent, the mobiles, and the
  /// store) — the same replay contract as ScaleWorld::metrics_digest.
  [[nodiscard]] std::string metrics_digest() const;
  /// Total agent control state (HA database rows + FA visiting entries +
  /// cache entries), for the scalability experiment.
  [[nodiscard]] std::size_t total_agent_state() const;
};

}  // namespace mhrp::scenario
