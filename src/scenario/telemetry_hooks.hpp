// Scenario-level telemetry wiring: one WorldTelemetry bundle per world
// (registry always on, trace collector and event-loop profiler optional),
// plus the probe binders that connect the registry to the stats structs
// the protocol layers already maintain.
//
// Determinism contract: the registry holds only protocol-observable
// values (probes over AgentStats / MobileHostStats / HomeStoreStats /
// FaultPlaneStats and histograms recorded in always-on callbacks), so a
// snapshot is byte-identical whether or not tracing or profiling is
// enabled. Wall-clock profiler data and the trace collector's own
// recorded/dropped counters must never be registered here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/mobile_host.hpp"
#include "faults/fault_plane.hpp"
#include "routing/dv/dv_process.hpp"
#include "sim/profiler.hpp"
#include "store/home_store.hpp"
#include "telemetry/metric_registry.hpp"
#include "telemetry/trace.hpp"

namespace mhrp::scenario {

/// Per-world telemetry knobs. The metric registry is always available
/// (snapshotting is pull-based and costs nothing until asked); trace and
/// profiler default off so the hot path pays only null-pointer checks.
struct TelemetryOptions {
  bool trace = false;
  std::uint64_t trace_sample_every = 1;  // packet events; 1 = keep all
  std::size_t trace_max_events = std::size_t(1) << 20;
  bool profiler = false;
};

/// The bundle a world owns: registry (always), trace collector and
/// event-loop profiler (only when asked for — accessors return nullptr
/// otherwise, matching the instrumentation sites' null checks).
class WorldTelemetry {
 public:
  explicit WorldTelemetry(const TelemetryOptions& options = {});

  WorldTelemetry(const WorldTelemetry&) = delete;
  WorldTelemetry& operator=(const WorldTelemetry&) = delete;

  telemetry::MetricRegistry registry;

  [[nodiscard]] telemetry::TraceCollector* trace() { return trace_.get(); }
  [[nodiscard]] const telemetry::TraceCollector* trace() const {
    return trace_.get();
  }
  [[nodiscard]] sim::EventLoopProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const sim::EventLoopProfiler* profiler() const {
    return profiler_.get();
  }

 private:
  std::unique_ptr<telemetry::TraceCollector> trace_;
  std::unique_ptr<sim::EventLoopProfiler> profiler_;
};

/// Register probes over one agent's stats under `prefix` (e.g. "ha").
/// The agent must outlive the registry.
void bind_agent_probes(telemetry::MetricRegistry& registry,
                       const std::string& prefix,
                       const core::MhrpAgent& agent);

/// Register probes summing the stats of every agent in `agents` under
/// `prefix` (e.g. "fa" for the foreign-agent population). The vector and
/// its agents must outlive the registry.
void bind_agent_aggregate_probes(
    telemetry::MetricRegistry& registry, const std::string& prefix,
    const std::vector<std::unique_ptr<core::MhrpAgent>>& agents);

/// Register probes summing every mobile host's stats under `prefix`.
void bind_mobile_probes(telemetry::MetricRegistry& registry,
                        const std::string& prefix,
                        const std::vector<core::MobileHost*>& mobiles);

/// Register probes over the home store (and its WAL) under `prefix`.
void bind_store_probes(telemetry::MetricRegistry& registry,
                       const std::string& prefix,
                       const store::HomeStore& store);

/// Register probes over the fault plane's counters under `prefix`.
void bind_fault_probes(telemetry::MetricRegistry& registry,
                       const std::string& prefix,
                       const faults::FaultPlane& plane);

/// Register probes summing every DV routing process's counters under
/// `prefix` (e.g. "dv"). The vector and its processes must outlive the
/// registry.
void bind_dv_probes(
    telemetry::MetricRegistry& registry, const std::string& prefix,
    const std::vector<std::unique_ptr<routing::dv::DvProcess>>& processes);

}  // namespace mhrp::scenario
