#include "scenario/scale_world.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "analysis/packet_auditor.hpp"
#include "scenario/audit_hooks.hpp"
#include "scenario/replay_digest.hpp"
#include "telemetry/json_writer.hpp"

namespace mhrp::scenario {

namespace {

// Address plan (all disjoint):
//   10.1.0.0/16      home LAN; HA is 10.1.0.1, mobiles from 10.1.1.0
//   10.200.0.0/24    correspondent LAN on the last router
//   172.16.0.0/16    backbone point-to-point /30s, one per link
//   192.168.j.0/24   wireless cell of foreign site j; FA is .1
constexpr std::uint32_t kHomeLanBase = 0x0A010000;    // 10.1.0.0
constexpr std::uint32_t kMobileBase = 0x0A010100;     // 10.1.1.0
constexpr std::uint32_t kCorrLanBase = 0x0AC80000;    // 10.200.0.0
constexpr std::uint32_t kBackboneBase = 0xAC100000;   // 172.16.0.0
constexpr std::uint32_t kCellBase = 0xC0A80000;       // 192.168.0.0

ScaleWorldOptions validate(ScaleWorldOptions o) {
  if (o.routers < 2) throw std::invalid_argument("ScaleWorld: routers < 2");
  if (o.foreign_agents < 1 || o.foreign_agents > std::min(o.routers - 1, 250)) {
    throw std::invalid_argument("ScaleWorld: foreign_agents out of range");
  }
  if (o.mobile_hosts < 0 || o.mobile_hosts > 60000) {
    throw std::invalid_argument("ScaleWorld: mobile_hosts out of range");
  }
  if (o.correspondents < 1 || o.correspondents > 200) {
    throw std::invalid_argument("ScaleWorld: correspondents out of range");
  }
  if (o.shards < 0 || o.shards > 64) {
    throw std::invalid_argument("ScaleWorld: shards out of range");
  }
  if (o.movement_regions == 0) o.movement_regions = std::max(1, o.shards);
  if (o.movement_regions < 1 ||
      (o.shards > 0 && o.movement_regions % o.shards != 0)) {
    throw std::invalid_argument(
        "ScaleWorld: movement_regions must be a positive multiple of shards");
  }
  if (o.movement_regions > o.foreign_agents ||
      o.movement_regions > o.routers) {
    throw std::invalid_argument(
        "ScaleWorld: more movement regions than cells/routers");
  }
  if (o.shards > 0) {
    // See DESIGN.md §13: trace and the profiler interleave wall-clock
    // observations across workers; loss bursts draw from one shared RNG
    // on links transmitted from several shards.
    if (o.telemetry.trace || o.telemetry.profiler) {
      throw std::invalid_argument(
          "ScaleWorld: trace/profiler telemetry requires shards == 0");
    }
    if (o.chaos.loss_bursts_per_sec > 0) {
      throw std::invalid_argument(
          "ScaleWorld: chaos loss bursts require shards == 0");
    }
  }
  return o;
}

}  // namespace

ScaleWorld::ScaleWorld(ScaleWorldOptions opts)
    : topo(opts.protocol.seed,
           static_cast<std::uint32_t>(std::max(0, opts.shards))),
      options(validate(opts)),
      instruments(options.telemetry) {
  const int n = options.routers;
  const int regions = options.movement_regions;

  // Placement: routers are cut into `regions` contiguous blocks, regions
  // map evenly onto shards (movement_regions % shards == 0), and every
  // cell, mobile, and correspondent lives on its hosting region's shard.
  // Router 0 (the home site) falls in region 0 -> shard 0; the last
  // router (the correspondent site) falls in the last region -> the last
  // shard. Only backbone circuits ever cross shards.
  auto region_of_router = [n, regions](int r) { return (r * regions) / n; };
  auto shard_of_region = [this, regions](int g) {
    return options.shards == 0
               ? 0u
               : static_cast<std::uint32_t>((g * options.shards) / regions);
  };

  routers.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    routers.push_back(&topo.add_router("R" + std::to_string(r),
                                       shard_of_region(region_of_router(r))));
  }
  home_router = routers.front();

  // Backbone: point-to-point /30 circuits between adjacent routers.
  int link_no = 0;
  auto connect_pair = [&](int a, int b) {
    auto& link = topo.add_link("bb" + std::to_string(link_no),
                               options.link_latency);
    const std::uint32_t subnet =
        kBackboneBase + static_cast<std::uint32_t>(link_no) * 4;
    topo.connect(*routers[static_cast<std::size_t>(a)], link,
                 net::IpAddress(subnet + 1), 30);
    topo.connect(*routers[static_cast<std::size_t>(b)], link,
                 net::IpAddress(subnet + 2), 30);
    backbone_links.push_back(&link);
    ++link_no;
  };
  if (options.backbone == ScaleWorldOptions::Backbone::kGrid) {
    const int width =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
    for (int r = 0; r < n; ++r) {
      if ((r + 1) % width != 0 && r + 1 < n) connect_pair(r, r + 1);
      if (r + width < n) connect_pair(r, r + width);
    }
  } else {
    for (int r = 1; r < n; ++r) connect_pair((r - 1) / 2, r);
  }

  // Home site on router 0.
  home_lan = &topo.add_link("homeLan", options.link_latency);
  net::Interface& ha_iface = topo.connect(
      *home_router, *home_lan, net::IpAddress(kHomeLanBase + 1), 16);

  // Correspondent site on the last router.
  auto& corr_lan = topo.add_link("corrLan", options.link_latency);
  topo.connect(*routers.back(), corr_lan, net::IpAddress(kCorrLanBase + 1),
               24);
  corr_shard_ = shard_of_region(region_of_router(n - 1));
  for (int c = 0; c < options.correspondents; ++c) {
    auto& host = topo.add_host("C" + std::to_string(c), corr_shard_);
    topo.connect(host, corr_lan,
                 net::IpAddress(kCorrLanBase + 10 + static_cast<std::uint32_t>(c)),
                 24);
    correspondents.push_back(&host);
  }

  // Foreign sites: F routers spread evenly over the backbone (router 0 is
  // the home site and never hosts a foreign agent), each with a cell.
  region_cells_.resize(static_cast<std::size_t>(regions));
  std::vector<net::Interface*> fa_cell_ifaces;
  for (int j = 0; j < options.foreign_agents; ++j) {
    const int idx = 1 + (j * (n - 1)) / options.foreign_agents;
    node::Router& r = *routers[static_cast<std::size_t>(idx)];
    auto& cell = topo.add_link("cell" + std::to_string(j),
                               options.link_latency);
    net::Interface& cell_iface = topo.connect(
        r, cell,
        net::IpAddress(kCellBase + static_cast<std::uint32_t>(j) * 256 + 1),
        24);
    fa_routers.push_back(&r);
    cells.push_back(&cell);
    fa_cell_ifaces.push_back(&cell_iface);
    cell_shard_.push_back(shard_of_region(region_of_router(idx)));
    region_cells_[static_cast<std::size_t>(region_of_router(idx))].push_back(
        &cell);
  }
  for (int g = 0; g < regions; ++g) {
    if (region_cells_[static_cast<std::size_t>(g)].empty()) {
      throw std::invalid_argument(
          "ScaleWorld: movement region without a cell; lower "
          "movement_regions");
    }
  }

  // Mobile hosts, homed on the home LAN, initially detached. Mobile i
  // roams region i % movement_regions and lives on that region's shard.
  for (int i = 0; i < options.mobile_hosts; ++i) {
    core::MobileHostConfig config;
    config.home_agent = net::IpAddress(kHomeLanBase + 1);
    config.update_min_interval = options.protocol.update_min_interval;
    const std::uint32_t shard = shard_of_region(i % regions);
    mobile_shard_.push_back(shard);
    mobiles.push_back(&topo.add_mobile_host(
        "M" + std::to_string(i), mobile_address(i), 16, config, shard));
  }

  for (const auto& node : topo.nodes()) {
    node->set_icmp_quote_limit(options.protocol.icmp_quote_limit);
  }

  topo.install_static_routes();

  if (options.protocol.routing == routing::dv::Mode::kDv) {
    // Per-process jitter seeds come from a dedicated stream so turning
    // DV on cannot perturb the movement/workload draws from topo.rng().
    util::Rng dv_seeds(options.protocol.seed ^ 0x64767274ULL);
    route_change_lanes_.assign(static_cast<std::size_t>(topo.shard_count()),
                               {});
    dv_processes.reserve(routers.size());
    for (std::size_t r = 0; r < routers.size(); ++r) {
      auto process = std::make_unique<routing::dv::DvProcess>(
          *routers[r], options.protocol.dv,
          dv_seeds.uniform(0, std::numeric_limits<std::uint64_t>::max() - 1));
      // Route-change instants feed the convergence series; the hook
      // fires on the router's own shard, so each lane has one writer.
      process->on_route_change = [this, r](const net::Prefix&, int) {
        record_series(route_change_lanes_, static_cast<std::uint32_t>(r),
                      sim::to_seconds(topo.sim().now()));
      };
      // The counting-to-infinity detector files an audit violation; the
      // audit layer is a single-threaded instrument (like the packet
      // auditor attached below), so sharded runs keep only the counter.
      if (options.shards == 0) {
        process->on_counting_to_infinity = [this, r](const net::Prefix& prefix,
                                                     int metric) {
          analysis::PacketAuditor& auditor = audit::global_auditor();
          if (!auditor.registry().enabled(
                  analysis::InvariantId::kCountingToInfinity)) {
            return;
          }
          auditor.report().add(
              {analysis::InvariantId::kCountingToInfinity, 0, topo.sim().now(),
               routers[r]->name(),
               "metric for " + prefix.to_string() +
                   " rose repeatedly from the same next hop (now " +
                   std::to_string(metric) + ")"});
        };
      }
      process->start();
      dv_processes.push_back(std::move(process));
    }
  }

  core::AgentConfig ha_config;
  ha_config.home_agent = true;
  ha_config.cache_agent = true;
  ha_config.advertisement_period = options.protocol.advertisement_period;
  ha_config.max_list_length = options.protocol.max_list_length;
  ha_config.forwarding_pointers = options.protocol.forwarding_pointers;
  ha_config.update_min_interval = options.protocol.update_min_interval;
  ha = std::make_unique<core::MhrpAgent>(*home_router, ha_config);
  ha->serve_on(ha_iface);
  if (options.protocol.store.enabled) {
    // Attach the disk before provisioning so every row ever created is
    // in the log from the start.
    ha_store = std::make_unique<store::HomeStore>(home_router->sim(),
                                                  options.protocol.store);
    ha->attach_store(*ha_store);
  }
  for (int i = 0; i < options.mobile_hosts; ++i) {
    ha->provision_mobile_host(mobile_address(i));
  }
  ha->start_advertising();

  for (int j = 0; j < options.foreign_agents; ++j) {
    core::AgentConfig fa_config;
    fa_config.foreign_agent = true;
    fa_config.cache_agent = true;
    fa_config.advertisement_period = options.protocol.advertisement_period;
    fa_config.max_list_length = options.protocol.max_list_length;
    fa_config.forwarding_pointers = options.protocol.forwarding_pointers;
    fa_config.update_min_interval = options.protocol.update_min_interval;
    auto agent = std::make_unique<core::MhrpAgent>(
        *fa_routers[static_cast<std::size_t>(j)], fa_config);
    agent->serve_on(*fa_cell_ifaces[static_cast<std::size_t>(j)]);
    agent->start_advertising();
    fas.push_back(std::move(agent));
  }

  // Correspondents cache locations for their own traffic (§2: any node
  // talking to mobile hosts "should generally also function as a cache
  // agent").
  for (node::Host* host : correspondents) {
    core::AgentConfig ca_config;
    ca_config.cache_agent = true;
    ca_config.update_min_interval = options.protocol.update_min_interval;
    corr_agents.push_back(std::make_unique<core::MhrpAgent>(*host, ca_config));
  }

  // The audit layer's global observer reads every link from every shard;
  // it stays a single-threaded instrument.
  if (options.shards == 0) audit::auto_attach(topo);

  if (sim::ShardedExecutive* sharded = topo.sharded_executive()) {
    // Lookahead = the narrowest latency any cross-shard frame pays, the
    // widest window the placement can fund (DESIGN.md §13).
    const sim::Time lookahead = topo.min_cross_shard_latency();
    if (lookahead > 0) sharded->set_lookahead(lookahead);
  }

  bind_instruments();
  if (telemetry::TraceCollector* trace = instruments.trace()) {
    ha->set_trace(trace);
    for (auto& fa : fas) fa->set_trace(trace);
    for (auto& ca : corr_agents) ca->set_trace(trace);
    for (core::MobileHost* m : mobiles) m->set_trace(trace);
    if (ha_store) ha_store->set_trace(trace);
  }
  if (instruments.profiler() != nullptr) {
    topo.sim().set_profiler(instruments.profiler());
  }
}

void ScaleWorld::bind_instruments() {
  telemetry::MetricRegistry& reg = instruments.registry;
  bind_agent_probes(reg, "ha", *ha);
  bind_agent_aggregate_probes(reg, "fa", fas);
  bind_agent_aggregate_probes(reg, "ca", corr_agents);
  bind_mobile_probes(reg, "mobiles", mobiles);
  if (ha_store) bind_store_probes(reg, "store", *ha_store);
  reg.probe("mobiles.delivered", [this] {
    std::uint64_t total = 0;
    for (const auto& r : recorders_) total += r->total().received;
    return static_cast<double>(total);
  });
  reg.probe("world.agent_state_total",
            [this] { return static_cast<double>(total_agent_state()); });
  reg.probe("world.agent_state_busiest",
            [this] { return static_cast<double>(busiest_node_state()); });
  if (!dv_processes.empty()) bind_dv_probes(reg, "dv", dv_processes);
  handoff_latency_h_ = &reg.histogram("handoff.latency_s");
  recovery_time_h_ = &reg.histogram("recovery.time_s");
  outage_loss_h_ = &reg.histogram("outage.loss_pkts");
  binding_staleness_h_ = &reg.histogram("binding.staleness_s");
  ha_lost_bindings_h_ = &reg.histogram("ha.lost_bindings");
  ha_recovery_h_ = &reg.histogram("ha.recovery_s");
  convergence_h_ = &reg.histogram("routing.convergence_s");
}

ScaleWorld::~ScaleWorld() {
  // The binding oracle captures `this`; the process-global auditor
  // outlives the world.
  if (oracle_installed_) audit::global_auditor().set_binding_oracle(nullptr);
  // `instruments` (declared after `topo`) is destroyed first; the
  // simulator must not keep a pointer into it.
  topo.sim().set_profiler(nullptr);
}

net::IpAddress ScaleWorld::mobile_address(int i) const {
  return net::IpAddress(kMobileBase + static_cast<std::uint32_t>(i));
}

void ScaleWorld::start() {
  if (started_) return;
  started_ = true;

  attach_times_.assign(mobiles.size(), sim::Time(-1));
  const auto lanes = static_cast<std::size_t>(topo.shard_count());
  handoff_lanes_.assign(lanes, {});
  recovery_lanes_.assign(lanes, {});
  outage_loss_lanes_.assign(lanes, {});
  for (std::size_t i = 0; i < mobiles.size(); ++i) {
    core::MobileHost* m = mobiles[i];
    m->on_attached = [this, i] { attach_times_[i] = topo.sim().now(); };
    m->on_registered = [this, i] {
      close_recovery(i);
      if (attach_times_[i] < 0) return;
      const double latency =
          sim::to_seconds(topo.sim().now() - attach_times_[i]);
      record_series(handoff_lanes_, static_cast<std::uint32_t>(i), latency);
      if (telemetry::TraceCollector* trace = instruments.trace()) {
        trace->span(telemetry::TraceCategory::kProtocol, "handoff.rebind",
                    attach_times_[i], topo.sim().now(), "mobile",
                    static_cast<double>(i));
      }
      attach_times_[i] = -1;
    };

    // Per-mobile movement, seeded from the world RNG in construction
    // order (deterministic across identically-built worlds).
    schedules_.push_back(std::make_unique<MovementSchedule>(
        *m, region_cells_[static_cast<std::size_t>(
                static_cast<int>(i) % options.movement_regions)],
        options.mean_dwell, topo.rng().fork()));
    recorders_.push_back(std::make_unique<FlowRecorder>(*m));

    flows_.push_back(std::make_unique<CbrFlow>(
        *correspondents[i % correspondents.size()], mobile_address(int(i)),
        static_cast<std::uint16_t>(4000 + i % 1000), options.cbr_payload,
        options.cbr_interval));
  }

  // Stagger starts across one advertisement period so a million-host
  // world does not schedule every first move at the same instant.
  const sim::Time spread =
      std::max<sim::Time>(options.protocol.advertisement_period, 1);
  for (std::size_t i = 0; i < mobiles.size(); ++i) {
    const sim::Time offset =
        spread * static_cast<sim::Time>(i) /
        static_cast<sim::Time>(std::max<std::size_t>(mobiles.size(), 1));
    // Two posts, not one event: the movement schedule must start on the
    // mobile's shard and the CBR flow on its correspondent's shard.
    const sim::Time when = topo.sim().now() + offset;
    topo.sim().post(
        mobile_shard_[i], when, [this, i] { schedules_[i]->start(); },
        sim::EventCategory::kMovement);
    topo.sim().post(
        corr_shard_, when, [this, i] { flows_[i]->start(); },
        sim::EventCategory::kMovement);
  }

  arm_chaos();
}

void ScaleWorld::arm_chaos() {
  const ChaosOptions& c = options.chaos;
  if (!c.enabled) return;

  // The schedule draw and the plane's own impairment draws come from
  // distinct streams off one seed, so enabling loss bursts cannot shift
  // which links fail.
  fault_plane_ = std::make_unique<faults::FaultPlane>(
      topo.sim(), c.fault_seed ^ 0x696d706169724dULL);
  for (net::Link* cell : cells) fault_plane_->add_link(*cell);
  for (net::Link* bb : backbone_links) fault_plane_->add_link(*bb);
  for (std::size_t j = 0; j < fas.size(); ++j) {
    fault_plane_->add_node(*fa_routers[j], fas[j].get());
  }
  // The HA registers after every FA so FA node indices stay 0..F-1 (the
  // index contract existing schedules are written against).
  ha_target_ = fault_plane_->add_node(*home_router, ha.get());

  util::Rng draw(c.fault_seed);
  faults::FaultSchedule schedule;
  if (c.cell_outages_per_sec > 0) {
    schedule.append_poisson_link_outages(draw, c.horizon,
                                         c.cell_outages_per_sec, c.mean_outage,
                                         0, cells.size());
  }
  if (c.backbone_outages_per_sec > 0 && !backbone_links.empty()) {
    schedule.append_poisson_link_outages(
        draw, c.horizon, c.backbone_outages_per_sec, c.mean_outage,
        cells.size(), backbone_links.size());
  }
  if (c.fa_crashes_per_sec > 0) {
    schedule.append_poisson_node_crashes(
        draw, c.horizon, c.fa_crashes_per_sec, c.mean_downtime, 0, fas.size(),
        c.preserve_persistent_state);
  }
  if (c.loss_bursts_per_sec > 0) {
    net::LinkImpairments burst;
    burst.loss = c.burst_loss;
    schedule.append_poisson_impairment_bursts(
        draw, c.horizon, c.loss_bursts_per_sec, c.mean_burst, burst, 0,
        cells.size() + backbone_links.size());
  }
  if (c.ha_crashes_per_sec > 0) {
    // Drawn last so enabling HA crashes cannot shift the draws above.
    schedule.append_poisson_node_crashes(draw, c.horizon, c.ha_crashes_per_sec,
                                         c.mean_downtime, ha_target_, 1,
                                         c.preserve_persistent_state);
  }
  fault_plane_->load(schedule);
  fault_plane_->on_fault = [this](const faults::FaultEvent& e) {
    note_fault(e);
  };
  if (instruments.trace() != nullptr) {
    fault_plane_->set_trace(instruments.trace());
  }
  bind_fault_probes(instruments.registry, "faults", *fault_plane_);

  outages_.assign(mobiles.size(), Outage{});
  ha_bindings_.assign(mobiles.size(), net::IpAddress());
  binding_changed_at_.assign(mobiles.size(), 0);
  // Staleness bookkeeping and the binding oracle read per-mobile outage
  // state from the HA's shard; sharded runs skip both (the auditor is
  // not attached there either), so binding_staleness_ stays empty.
  if (options.shards != 0) return;
  ha->on_binding_changed = [this](net::IpAddress mobile, net::IpAddress fa) {
    const std::uint32_t raw = mobile.raw();
    if (raw < kMobileBase || raw >= kMobileBase + mobiles.size()) return;
    const auto i = static_cast<std::size_t>(raw - kMobileBase);
    ha_bindings_[i] = fa;
    binding_changed_at_[i] = topo.sim().now();
    if (outages_[i].staleness_start >= 0) {
      const double staleness =
          sim::to_seconds(topo.sim().now() - outages_[i].staleness_start);
      binding_staleness_.push_back(staleness);
      binding_staleness_h_->record(staleness);
      outages_[i].staleness_start = -1;
    }
  };

  // §5.2/§6.3 invariant: past the repair window, the home agent must not
  // keep tunneling toward a superseded binding. Only the HA's tunnels
  // are constrained — stale cache agents and forwarding pointers repair
  // lazily by design.
  const net::IpAddress ha_addr(kHomeLanBase + 1);
  audit::global_auditor().set_binding_oracle(
      [this, ha_addr](net::IpAddress src, net::IpAddress mobile,
                      net::IpAddress dst, sim::Time now) {
        constexpr sim::Time kRepairWindow = sim::seconds(5);
        if (src != ha_addr) return true;
        const std::uint32_t raw = mobile.raw();
        if (raw < kMobileBase || raw >= kMobileBase + mobiles.size()) {
          return true;
        }
        const auto i = static_cast<std::size_t>(raw - kMobileBase);
        if (ha_bindings_[i].is_unspecified()) return true;
        if (dst == ha_bindings_[i]) return true;
        return now - binding_changed_at_[i] <= kRepairWindow;
      });
  oracle_installed_ = true;
}

void ScaleWorld::note_fault(const faults::FaultEvent& event) {
  using faults::FaultKind;
  // Each link fail/recover opens a convergence epoch: the DV plane's
  // route churn that follows, up to the next epoch, is this fault's
  // reconvergence. Link events always execute on the fault plane's own
  // shard, so the epoch list has a single writer.
  if (!dv_processes.empty() && (event.kind == FaultKind::kLinkFail ||
                                event.kind == FaultKind::kLinkRecover)) {
    fault_epochs_.push_back(topo.sim().now());
  }
  // The home agent is node target ha_target_ (registered after the FAs).
  // Its crash is observed *at the crash* — on_fault fires after the
  // event applies, so at kNodeCrash the agent's map still holds the
  // pre-crash view while the disk cache is already gone; by kNodeReboot
  // the map has been rebuilt from store recovery and the difference is
  // exactly what the crash cost. Poisson crash windows can overlap: each
  // crash schedules its own reboot, so a burst of crashes yields a burst
  // of reboots of which only the FIRST ends the outage — the rest hit an
  // already-running agent after registrations have resumed, and diffing
  // against the stale snapshot would count superseded bindings as lost.
  // ha_crashed_at_ doubles as the down flag: only the outage-opening
  // crash captures, only the outage-ending reboot compares.
  if (event.target == ha_target_ && event.kind == FaultKind::kNodeCrash) {
    if (ha_crashed_at_ >= 0) return;  // already down
    ha_precrash_bindings_ = ha->home_bindings();
    ha_crashed_at_ = topo.sim().now();
    return;
  }
  if (event.target == ha_target_ && event.kind == FaultKind::kNodeReboot) {
    if (ha_crashed_at_ < 0) return;  // spurious reboot, HA already up
    std::size_t lost = 0;
    const sim::Time now = topo.sim().now();
    for (const auto& [mobile_host, fa] : ha_precrash_bindings_) {
      const auto recovered = ha->home_binding(mobile_host);
      if (recovered.has_value() && *recovered == fa) continue;
      if (fa.is_unspecified()) continue;  // "at home" lost = provisioning gap
      ++lost;
      // The orphaned mobile's traffic blackholes until it re-registers;
      // run its recovery clock like any other outage.
      const std::uint32_t raw = mobile_host.raw();
      if (raw >= kMobileBase && raw < kMobileBase + mobiles.size()) {
        const auto i = static_cast<std::size_t>(raw - kMobileBase);
        if (mobile_shard_[i] == topo.sim().shard_id()) {
          open_outage_for_mobile(i, now);
        } else {
          // The mobile's outage clock lives on its shard; hop there at
          // the earliest legal cross-shard time (now + lookahead).
          const sim::Time w = topo.sharded_executive()->lookahead();
          topo.sim().post(
              mobile_shard_[i], now + w,
              [this, i] { open_outage_for_mobile(i, topo.sim().now()); },
              sim::EventCategory::kFaultInjection);
        }
      }
    }
    ha_lost_bindings_.push_back(static_cast<double>(lost));
    ha_lost_bindings_h_->record(static_cast<double>(lost));
    const double downtime = sim::to_seconds(now - ha_crashed_at_);
    ha_recovery_times_.push_back(downtime);
    ha_recovery_h_->record(downtime);
    ha_crashed_at_ = -1;
    return;
  }
  // A crashed foreign agent (node target j = FA j) or a partitioned cell
  // (link targets 0..F-1 are the cells) orphans every mobile registered
  // there; backbone faults have no single victim set, so only the
  // aggregate plane stats record them.
  if (event.kind == FaultKind::kNodeCrash ||
      (event.kind == FaultKind::kLinkFail && event.target < cells.size())) {
    const std::size_t site = event.target;
    const net::IpAddress agent(
        kCellBase + static_cast<std::uint32_t>(site) * 256 + 1);
    // FA crashes already execute on the site's shard; cell link faults
    // execute on the plane's shard (shard 0), so hop when they differ.
    if (options.shards == 0 || cell_shard_[site] == topo.sim().shard_id()) {
      open_outages_for(agent);
    } else {
      const sim::Time w = topo.sharded_executive()->lookahead();
      topo.sim().post(
          cell_shard_[site], topo.sim().now() + w,
          [this, agent] { open_outages_for(agent); },
          sim::EventCategory::kFaultInjection);
    }
  }
}

void ScaleWorld::open_outages_for(net::IpAddress foreign_agent) {
  const sim::Time now = topo.sim().now();
  // Runs on the orphaned cell's shard, and every mobile that can be
  // registered there lives on that shard too (mobiles roam only their
  // own region's cells). The filter is a no-op serial and keeps worker
  // shards off foreign mobiles' state sharded.
  const std::uint32_t self = topo.sim().shard_id();
  for (std::size_t i = 0; i < mobiles.size(); ++i) {
    if (mobile_shard_[i] != self) continue;
    if (mobiles[i]->state() != core::MobileHost::State::kForeign) continue;
    if (mobiles[i]->current_agent() != foreign_agent) continue;
    open_outage_for_mobile(i, now);
  }
}

void ScaleWorld::open_outage_for_mobile(std::size_t i, sim::Time now) {
  Outage& o = outages_[i];
  if (o.recovery_start >= 0) return;  // already inside an outage
  o.recovery_start = now;
  o.received_at_start = recorders_[i]->total().received;
  if (o.staleness_start < 0) o.staleness_start = now;
}

void ScaleWorld::close_recovery(std::size_t i) {
  if (i >= outages_.size()) return;
  Outage& o = outages_[i];
  if (o.recovery_start < 0) return;
  const double elapsed =
      sim::to_seconds(topo.sim().now() - o.recovery_start);
  record_series(recovery_lanes_, static_cast<std::uint32_t>(i), elapsed);
  const double expected = elapsed / sim::to_seconds(options.cbr_interval);
  const double received = static_cast<double>(
      recorders_[i]->total().received - o.received_at_start);
  const double loss = std::max(0.0, expected - received);
  record_series(outage_loss_lanes_, static_cast<std::uint32_t>(i), loss);
  o.recovery_start = -1;
}

ScaleRunStats ScaleWorld::run_for(sim::Time duration) {
  start();
  events_executed_ += topo.sim().run_for(duration);

  ScaleRunStats totals;
  totals.events_executed = events_executed_;
  for (const auto& link : topo.links()) {
    totals.frames_carried += link->frames_carried();
    totals.bytes_carried += link->bytes_carried();
  }
  for (std::size_t i = 0; i < mobiles.size(); ++i) {
    totals.packets_delivered += recorders_[i]->total().received;
    totals.moves += mobiles[i]->stats().moves;
    totals.registrations += mobiles[i]->stats().registrations_completed;
  }

  ScaleRunStats delta;
  delta.events_executed = totals.events_executed - last_totals_.events_executed;
  delta.frames_carried = totals.frames_carried - last_totals_.frames_carried;
  delta.bytes_carried = totals.bytes_carried - last_totals_.bytes_carried;
  delta.packets_delivered =
      totals.packets_delivered - last_totals_.packets_delivered;
  delta.moves = totals.moves - last_totals_.moves;
  delta.registrations = totals.registrations - last_totals_.registrations;
  last_totals_ = totals;
  return delta;
}

std::size_t ScaleWorld::total_agent_state() const {
  std::size_t total = ha->home_database_size() + ha->cache().size();
  for (const auto& fa : fas) total += fa->visiting_count() + fa->cache().size();
  for (const auto& ca : corr_agents) total += ca->cache().size();
  return total;
}

std::size_t ScaleWorld::busiest_node_state() const {
  std::size_t busiest = ha->home_database_size() + ha->cache().size();
  for (const auto& fa : fas) {
    busiest = std::max(busiest, fa->visiting_count() + fa->cache().size());
  }
  for (const auto& ca : corr_agents) busiest = std::max(busiest, ca->cache().size());
  return busiest;
}

std::vector<ScaleWorld::SeriesEntry>& ScaleWorld::lane(
    SeriesLanes& lanes) const {
  return lanes[topo.sim().shard_id()];
}

void ScaleWorld::record_series(SeriesLanes& lanes, std::uint32_t idx,
                               double v) {
  lane(lanes).push_back({topo.sim().now(), idx, v});
}

std::vector<double> ScaleWorld::merge_lanes(const SeriesLanes& lanes) {
  std::vector<SeriesEntry> all;
  std::size_t total = 0;
  for (const auto& l : lanes) total += l.size();
  all.reserve(total);
  for (const auto& l : lanes) all.insert(all.end(), l.begin(), l.end());
  // (time, mobile) is a total order over each series — one entry per
  // mobile per event time — so the merged view is canonical: the same
  // protocol history renders identically at every shard count.
  std::stable_sort(all.begin(), all.end(),
                   [](const SeriesEntry& a, const SeriesEntry& b) {
                     return a.t != b.t ? a.t < b.t : a.idx < b.idx;
                   });
  std::vector<double> out;
  out.reserve(all.size());
  for (const SeriesEntry& e : all) out.push_back(e.v);
  return out;
}

const std::vector<double>& ScaleWorld::handoff_latencies() const {
  handoff_merged_ = merge_lanes(handoff_lanes_);
  return handoff_merged_;
}

const std::vector<double>& ScaleWorld::recovery_times() const {
  recovery_merged_ = merge_lanes(recovery_lanes_);
  return recovery_merged_;
}

const std::vector<double>& ScaleWorld::outage_losses() const {
  outage_loss_merged_ = merge_lanes(outage_loss_lanes_);
  return outage_loss_merged_;
}

const std::vector<double>& ScaleWorld::convergence_times() const {
  convergence_merged_.clear();
  if (fault_epochs_.empty()) return convergence_merged_;
  // Route-change entries carry their own instant as the value, so the
  // canonical (time, router) merge yields the change instants in
  // ascending order.
  const std::vector<double> changes = merge_lanes(route_change_lanes_);
  for (std::size_t k = 0; k < fault_epochs_.size(); ++k) {
    const double from = sim::to_seconds(fault_epochs_[k]);
    const double until = k + 1 < fault_epochs_.size()
                             ? sim::to_seconds(fault_epochs_[k + 1])
                             : std::numeric_limits<double>::infinity();
    if (until <= from) continue;  // coincident epochs: one window
    // Last route change inside [from, until) closes this epoch's
    // reconvergence; an epoch with no churn (the fault changed nothing
    // the plane routes on) contributes no sample.
    auto lo = std::lower_bound(changes.begin(), changes.end(), from);
    auto hi = std::lower_bound(changes.begin(), changes.end(), until);
    if (lo == hi) continue;
    convergence_merged_.push_back(*(hi - 1) - from);
  }
  return convergence_merged_;
}

void ScaleWorld::refresh_series_metrics() const {
  handoff_latency_h_->reset();
  for (double v : handoff_latencies()) handoff_latency_h_->record(v);
  recovery_time_h_->reset();
  for (double v : recovery_times()) recovery_time_h_->record(v);
  outage_loss_h_->reset();
  for (double v : outage_losses()) outage_loss_h_->record(v);
  convergence_h_->reset();
  for (double v : convergence_times()) convergence_h_->record(v);
}

std::string ScaleWorld::metrics_digest() const {
  refresh_series_metrics();
  std::ostringstream out;
  out << "scaleworld n=" << options.routers << " f=" << options.foreign_agents
      << " m=" << options.mobile_hosts << " seed=" << options.protocol.seed
      << " now=" << topo.sim().now() << " events=" << events_executed_ << "\n";
  out << topology_digest(topo);

  // One line per registered metric (sorted by name): the agent, mobile,
  // store, and fault-plane probes plus the latency histograms. Probes
  // read the same stats structs the old hand-built lines printed, so the
  // digest still captures every protocol-observable counter — now
  // through the registry, which holds no wall-clock or trace-dependent
  // values (telemetry on/off cannot change a byte here).
  out << instruments.registry.snapshot().to_text();

  if (ha_store) {
    out << "store policy=" << to_string(ha_store->policy()) << "\n";
  }

  char buf[32];
  auto series = [&out, &buf](const char* tag, const std::vector<double>& v) {
    out << tag << " n=" << v.size();
    for (double x : v) {
      std::snprintf(buf, sizeof buf, " %.9e", x);
      out << buf;
    }
    out << "\n";
  };
  series("handoffs", handoff_latencies());

  if (fault_plane_) {
    out << fault_plane_->digest();
    series("recovery", recovery_times());
    series("outage_loss", outage_losses());
    series("staleness", binding_staleness_);
    series("ha_lost_bindings", ha_lost_bindings_);
    series("ha_recovery", ha_recovery_times_);
  }
  if (!dv_processes.empty()) series("convergence", convergence_times());
  return out.str();
}

std::string ScaleWorld::metrics_json() const {
  refresh_series_metrics();
  std::ostringstream out;
  telemetry::JsonWriter json(out);
  json.begin_object();
  json.key("schema");
  json.value("mhrp.scaleworld.metrics.v1");
  json.key("params");
  json.begin_object();
  json.key("backbone");
  json.value(options.backbone == ScaleWorldOptions::Backbone::kGrid ? "grid"
                                                                    : "tree");
  json.key("routers");
  json.value(options.routers);
  json.key("foreign_agents");
  json.value(options.foreign_agents);
  json.key("mobile_hosts");
  json.value(options.mobile_hosts);
  json.key("correspondents");
  json.value(options.correspondents);
  json.key("seed");
  json.value(options.protocol.seed);
  json.key("chaos");
  json.value(options.chaos.enabled);
  json.key("routing");
  json.value(options.protocol.routing == routing::dv::Mode::kDv ? "dv"
                                                                : "static");
  json.end_object();
  json.key("now_us");
  json.value(topo.sim().now());
  json.key("events_executed");
  json.value(events_executed_);
  json.key("metrics");
  instruments.registry.snapshot().write_json(json);
  json.end_object();
  return out.str();
}

std::string ScaleWorld::metrics_csv() const {
  refresh_series_metrics();
  return instruments.registry.snapshot().to_csv();
}

}  // namespace mhrp::scenario
