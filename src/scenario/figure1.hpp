// The paper's Figure 1 internetwork, with MHRP installed:
//
//              ┌────────── backbone (10.0.0.0/24) ──────────┐
//             R1 (.1)            R2 (.2)                R3 (.3)
//              │                  │                       │
//        net A 10.1/24      net B 10.2/24           net C 10.3/24
//          S (.10)          M's home net             R4 (.4)  R5 (.5)
//                           (HA = R2)                 │        │
//                                             net D 10.4/24  net E 10.5/24
//                                             (wireless, FA) (wireless, FA)
//
// M is a mobile host with home address 10.2.0.77 on network B. R4 and R5
// are foreign agents on the wireless networks D and E (R5/E extends the
// figure to support the §6.3 walkthrough, where M moves from R4 to a new
// foreign agent R5). R2 is M's home agent. R1 and S may act as cache
// agents. Every integration test and several benchmarks run on this
// world.
#pragma once

#include <memory>

#include "core/agent.hpp"
#include "scenario/topology.hpp"

namespace mhrp::scenario {

struct Figure1Options {
  sim::Time advertisement_period = sim::seconds(1);
  std::size_t max_list_length = 8;
  bool forwarding_pointers = true;
  bool s_is_cache_agent = true;
  bool r1_is_cache_agent = true;
  sim::Time update_min_interval = sim::millis(100);
  /// ICMP error quote limit applied to every node (0 = full packet, which
  /// §4.5 needs for complete error reverse-tunneling).
  std::size_t icmp_quote_limit = 28;
  /// §5.2 options on the foreign agents.
  bool fa_verify_recovery_with_arp = false;
  bool fa_reregister_broadcast_on_reboot = false;
};

struct Figure1 {
  explicit Figure1(Figure1Options options = Figure1Options());

  Topology topo;

  node::Router* r1 = nullptr;
  node::Router* r2 = nullptr;  // home agent
  node::Router* r3 = nullptr;
  node::Router* r4 = nullptr;  // foreign agent, network D
  node::Router* r5 = nullptr;  // foreign agent, network E
  node::Host* s = nullptr;
  core::MobileHost* m = nullptr;

  net::Link* backbone = nullptr;
  net::Link* net_a = nullptr;
  net::Link* net_b = nullptr;
  net::Link* net_c = nullptr;
  net::Link* net_d = nullptr;
  net::Link* net_e = nullptr;

  std::unique_ptr<core::MhrpAgent> agent_r1;  // cache agent (optional)
  std::unique_ptr<core::MhrpAgent> ha;        // R2: home + cache agent
  std::unique_ptr<core::MhrpAgent> fa_r4;     // foreign + cache agent
  std::unique_ptr<core::MhrpAgent> fa_r5;     // foreign + cache agent
  std::unique_ptr<core::MhrpAgent> agent_s;   // S as cache agent (optional)

  static constexpr const char* kMAddress = "10.2.0.77";
  [[nodiscard]] net::IpAddress m_address() const {
    return net::IpAddress::parse(kMAddress);
  }

  /// Attach M to a cell and run the simulation until its registration
  /// round completes (or `limit` elapses). Returns true on success.
  bool move_and_register(net::Link& cell, sim::Time limit = sim::seconds(30));

  /// Convenience movements from the paper's walkthroughs.
  bool register_at_d() { return move_and_register(*net_d); }
  bool register_at_e() { return move_and_register(*net_e); }
  bool register_at_home() { return move_and_register(*net_b); }
};

}  // namespace mhrp::scenario
