// The MHRP protocol knobs every scenario world exposes, factored into
// one struct so MhrpWorldOptions and ScaleWorldOptions cannot drift:
// both embed a ProtocolOptions and feed the same fields into the same
// AgentConfig / MobileHostConfig slots. Topology shape, population, and
// workload stay in the per-world option structs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "routing/dv/dv_options.hpp"
#include "sim/time.hpp"
#include "store/store_options.hpp"

namespace mhrp::scenario {

struct ProtocolOptions {
  /// §3: period of the agents' multicast advertisement messages.
  sim::Time advertisement_period = sim::seconds(1);
  /// §4.3 rate limit on location-update messages per (target, binding).
  sim::Time update_min_interval = sim::millis(100);
  /// §4.4 previous-source list cap (entries) before the overflow flush.
  std::size_t max_list_length = 8;
  /// §5.2: foreign agents keep forwarding pointers after a host departs.
  bool forwarding_pointers = true;
  /// Octets of the offending datagram quoted in ICMP errors (§4.5 cares
  /// that the quote reaches the original sender through the tunnel).
  std::size_t icmp_quote_limit = 28;
  /// Master seed: topology construction order, movement, workload.
  std::uint64_t seed = 1;
  /// §2 durable home-agent database (src/store). Disabled by default:
  /// the legacy model keeps the database in memory across reboots.
  /// Enabling it gives every home agent a SimDisk-backed WAL whose sync
  /// policy decides when registration acks may leave.
  store::StoreOptions store;
  /// Intra-domain routing plane. kStatic (default) installs converged
  /// shortest paths once at build time; kDv runs a routing::dv::DvProcess
  /// on every router (static routes stay installed as the fallback tier,
  /// so forwarding works while DV converges — and reconverges after a
  /// fault instead of blackholing).
  routing::dv::Mode routing = routing::dv::Mode::kStatic;
  /// Timer/behavior knobs for the DV plane (ignored under kStatic).
  routing::dv::DvOptions dv;
};

}  // namespace mhrp::scenario
