#include "scenario/figure1.hpp"

#include "scenario/audit_hooks.hpp"

namespace mhrp::scenario {

namespace {
net::IpAddress ip(const char* text) { return net::IpAddress::parse(text); }
}  // namespace

Figure1::Figure1(Figure1Options options) {
  backbone = &topo.add_link("backbone", sim::millis(2));
  net_a = &topo.add_link("netA", sim::millis(1));
  net_b = &topo.add_link("netB", sim::millis(1));
  net_c = &topo.add_link("netC", sim::millis(1));
  net_d = &topo.add_link("netD", sim::millis(1));
  net_e = &topo.add_link("netE", sim::millis(1));

  r1 = &topo.add_router("R1");
  r2 = &topo.add_router("R2");
  r3 = &topo.add_router("R3");
  r4 = &topo.add_router("R4");
  r5 = &topo.add_router("R5");
  s = &topo.add_host("S");

  topo.connect(*r1, *backbone, ip("10.0.0.1"), 24);
  topo.connect(*r2, *backbone, ip("10.0.0.2"), 24);
  topo.connect(*r3, *backbone, ip("10.0.0.3"), 24);

  topo.connect(*r1, *net_a, ip("10.1.0.1"), 24);
  topo.connect(*s, *net_a, ip("10.1.0.10"), 24);

  net::Interface& r2_home = topo.connect(*r2, *net_b, ip("10.2.0.1"), 24);

  topo.connect(*r3, *net_c, ip("10.3.0.1"), 24);
  topo.connect(*r4, *net_c, ip("10.3.0.4"), 24);
  topo.connect(*r5, *net_c, ip("10.3.0.5"), 24);

  net::Interface& r4_cell = topo.connect(*r4, *net_d, ip("10.4.0.1"), 24);
  net::Interface& r5_cell = topo.connect(*r5, *net_e, ip("10.5.0.1"), 24);

  core::MobileHostConfig m_config;
  // M registers with R2's address *on its home network* — that is the
  // agent address R2 advertises on network B.
  m_config.home_agent = ip("10.2.0.1");
  m_config.update_min_interval = options.update_min_interval;
  m = &topo.add_mobile_host("M", m_address(), 24, m_config);

  for (const auto& node : topo.nodes()) {
    node->set_icmp_quote_limit(options.icmp_quote_limit);
  }

  topo.install_static_routes();

  core::AgentConfig ha_config;
  ha_config.home_agent = true;
  ha_config.cache_agent = true;
  ha_config.advertisement_period = options.advertisement_period;
  ha_config.max_list_length = options.max_list_length;
  ha_config.forwarding_pointers = options.forwarding_pointers;
  ha_config.update_min_interval = options.update_min_interval;
  ha = std::make_unique<core::MhrpAgent>(*r2, ha_config);
  ha->serve_on(r2_home);
  ha->provision_mobile_host(m_address());
  ha->start_advertising();

  core::AgentConfig fa_config;
  fa_config.foreign_agent = true;
  fa_config.cache_agent = true;
  fa_config.advertisement_period = options.advertisement_period;
  fa_config.max_list_length = options.max_list_length;
  fa_config.forwarding_pointers = options.forwarding_pointers;
  fa_config.update_min_interval = options.update_min_interval;
  fa_config.verify_recovery_with_arp = options.fa_verify_recovery_with_arp;
  fa_config.reregister_broadcast_on_reboot =
      options.fa_reregister_broadcast_on_reboot;
  fa_r4 = std::make_unique<core::MhrpAgent>(*r4, fa_config);
  fa_r4->serve_on(r4_cell);
  fa_r4->start_advertising();
  fa_r5 = std::make_unique<core::MhrpAgent>(*r5, fa_config);
  fa_r5->serve_on(r5_cell);
  fa_r5->start_advertising();

  if (options.r1_is_cache_agent) {
    core::AgentConfig ca_config;
    ca_config.cache_agent = true;
    ca_config.update_min_interval = options.update_min_interval;
    agent_r1 = std::make_unique<core::MhrpAgent>(*r1, ca_config);
  }
  if (options.s_is_cache_agent) {
    core::AgentConfig ca_config;
    ca_config.cache_agent = true;
    ca_config.update_min_interval = options.update_min_interval;
    agent_s = std::make_unique<core::MhrpAgent>(*s, ca_config);
  }

  audit::auto_attach(topo);
}

bool Figure1::move_and_register(net::Link& cell, sim::Time limit) {
  bool registered = false;
  m->on_registered = [&registered] { registered = true; };
  m->attach_to(cell);
  const sim::Time deadline = topo.sim().now() + limit;
  while (!registered && topo.sim().now() < deadline) {
    topo.sim().run_for(sim::millis(100));
  }
  m->on_registered = nullptr;
  return registered;
}

}  // namespace mhrp::scenario
