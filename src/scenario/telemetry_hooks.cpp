#include "scenario/telemetry_hooks.hpp"

namespace mhrp::scenario {

WorldTelemetry::WorldTelemetry(const TelemetryOptions& options) {
  if (options.trace) {
    telemetry::TraceCollector::Options trace_opts;
    trace_opts.sample_every = options.trace_sample_every;
    trace_opts.max_events = options.trace_max_events;
    trace_ = std::make_unique<telemetry::TraceCollector>(trace_opts);
  }
  if (options.profiler) {
    profiler_ = std::make_unique<sim::EventLoopProfiler>();
  }
}

namespace {

// All probes return double; the registry evaluates them at snapshot
// time, so nothing here touches the hot path.
double u(std::uint64_t v) { return static_cast<double>(v); }

}  // namespace

void bind_agent_probes(telemetry::MetricRegistry& registry,
                       const std::string& prefix,
                       const core::MhrpAgent& agent) {
  const core::MhrpAgent* a = &agent;
  registry.probe(prefix + ".registrations",
                 [a] { return u(a->stats().registrations); });
  registry.probe(prefix + ".intercepted_home",
                 [a] { return u(a->stats().intercepted_home); });
  registry.probe(prefix + ".tunnels_built",
                 [a] { return u(a->stats().tunnels_built); });
  registry.probe(prefix + ".retunnels",
                 [a] { return u(a->stats().retunnels); });
  registry.probe(prefix + ".tunneled_to_home",
                 [a] { return u(a->stats().tunneled_to_home); });
  registry.probe(prefix + ".delivered_to_visitor",
                 [a] { return u(a->stats().delivered_to_visitor); });
  registry.probe(prefix + ".updates_sent",
                 [a] { return u(a->stats().updates_sent); });
  registry.probe(prefix + ".updates_received",
                 [a] { return u(a->stats().updates_received); });
  registry.probe(prefix + ".loops_detected",
                 [a] { return u(a->stats().loops_detected); });
  registry.probe(prefix + ".list_overflows",
                 [a] { return u(a->stats().list_overflows); });
  registry.probe(prefix + ".packets_examined",
                 [a] { return u(a->stats().packets_examined); });
  registry.probe(prefix + ".errors_reversed",
                 [a] { return u(a->stats().errors_reversed); });
  registry.probe(prefix + ".errors_terminated",
                 [a] { return u(a->stats().errors_terminated); });
  registry.probe(prefix + ".recovery_readds",
                 [a] { return u(a->stats().recovery_readds); });
  registry.probe(prefix + ".dropped_disconnected",
                 [a] { return u(a->stats().dropped_disconnected); });
  registry.probe(prefix + ".discarded_for_recovery",
                 [a] { return u(a->stats().discarded_for_recovery); });
  registry.probe(prefix + ".bindings_logged",
                 [a] { return u(a->stats().bindings_logged); });
  registry.probe(prefix + ".acks_deferred",
                 [a] { return u(a->stats().acks_deferred); });
  registry.probe(prefix + ".acks_released",
                 [a] { return u(a->stats().acks_released); });
  registry.probe(prefix + ".acks_dropped_on_crash",
                 [a] { return u(a->stats().acks_dropped_on_crash); });
  registry.probe(prefix + ".cache_entries",
                 [a] { return u(a->cache().size()); });
  registry.probe(prefix + ".home_database_size",
                 [a] { return u(a->home_database_size()); });
  registry.probe(prefix + ".visiting_entries",
                 [a] { return u(a->visiting_count()); });
}

void bind_agent_aggregate_probes(
    telemetry::MetricRegistry& registry, const std::string& prefix,
    const std::vector<std::unique_ptr<core::MhrpAgent>>& agents) {
  const auto* v = &agents;
  const auto sum = [v](std::uint64_t core::AgentStats::* field) {
    std::uint64_t total = 0;
    for (const auto& agent : *v) total += agent->stats().*field;
    return u(total);
  };
  registry.probe(prefix + ".count", [v] { return u(v->size()); });
  registry.probe(prefix + ".registrations", [sum] {
    return sum(&core::AgentStats::registrations);
  });
  registry.probe(prefix + ".tunnels_built", [sum] {
    return sum(&core::AgentStats::tunnels_built);
  });
  registry.probe(prefix + ".retunnels",
                 [sum] { return sum(&core::AgentStats::retunnels); });
  registry.probe(prefix + ".delivered_to_visitor", [sum] {
    return sum(&core::AgentStats::delivered_to_visitor);
  });
  registry.probe(prefix + ".updates_sent",
                 [sum] { return sum(&core::AgentStats::updates_sent); });
  registry.probe(prefix + ".updates_received", [sum] {
    return sum(&core::AgentStats::updates_received);
  });
  registry.probe(prefix + ".loops_detected",
                 [sum] { return sum(&core::AgentStats::loops_detected); });
  registry.probe(prefix + ".packets_examined", [sum] {
    return sum(&core::AgentStats::packets_examined);
  });
  registry.probe(prefix + ".cache_entries", [v] {
    std::size_t total = 0;
    for (const auto& agent : *v) total += agent->cache().size();
    return static_cast<double>(total);
  });
  registry.probe(prefix + ".visiting_entries", [v] {
    std::size_t total = 0;
    for (const auto& agent : *v) total += agent->visiting_count();
    return static_cast<double>(total);
  });
}

void bind_mobile_probes(telemetry::MetricRegistry& registry,
                        const std::string& prefix,
                        const std::vector<core::MobileHost*>& mobiles) {
  const auto* v = &mobiles;
  const auto sum = [v](std::uint64_t core::MobileHostStats::* field) {
    std::uint64_t total = 0;
    for (const core::MobileHost* m : *v) total += m->stats().*field;
    return u(total);
  };
  registry.probe(prefix + ".count", [v] { return u(v->size()); });
  registry.probe(prefix + ".moves",
                 [sum] { return sum(&core::MobileHostStats::moves); });
  registry.probe(prefix + ".registrations_completed", [sum] {
    return sum(&core::MobileHostStats::registrations_completed);
  });
  registry.probe(prefix + ".registration_retransmits", [sum] {
    return sum(&core::MobileHostStats::registration_retransmits);
  });
  registry.probe(prefix + ".registrations_abandoned", [sum] {
    return sum(&core::MobileHostStats::registrations_abandoned);
  });
  registry.probe(prefix + ".advertisements_heard", [sum] {
    return sum(&core::MobileHostStats::advertisements_heard);
  });
  registry.probe(prefix + ".solicitations_sent", [sum] {
    return sum(&core::MobileHostStats::solicitations_sent);
  });
  registry.probe(prefix + ".tunneled_received", [sum] {
    return sum(&core::MobileHostStats::tunneled_received);
  });
  registry.probe(prefix + ".updates_sent",
                 [sum] { return sum(&core::MobileHostStats::updates_sent); });
}

void bind_store_probes(telemetry::MetricRegistry& registry,
                       const std::string& prefix,
                       const store::HomeStore& store) {
  const store::HomeStore* s = &store;
  registry.probe(prefix + ".logged", [s] { return u(s->stats().logged); });
  registry.probe(prefix + ".acks_immediate",
                 [s] { return u(s->stats().acks_immediate); });
  registry.probe(prefix + ".acks_deferred",
                 [s] { return u(s->stats().acks_deferred); });
  registry.probe(prefix + ".interval_syncs",
                 [s] { return u(s->stats().interval_syncs); });
  registry.probe(prefix + ".crashes", [s] { return u(s->stats().crashes); });
  registry.probe(prefix + ".recoveries",
                 [s] { return u(s->stats().recoveries); });
  registry.probe(prefix + ".wal_appends",
                 [s] { return u(s->wal().stats().appends); });
  registry.probe(prefix + ".wal_bytes_appended",
                 [s] { return u(s->wal().stats().bytes_appended); });
  registry.probe(prefix + ".wal_syncs",
                 [s] { return u(s->wal().stats().syncs); });
  registry.probe(prefix + ".wal_snapshots",
                 [s] { return u(s->wal().stats().snapshots); });
  registry.probe(prefix + ".last_lsn", [s] { return u(s->last_lsn()); });
  registry.probe(prefix + ".durable_lsn", [s] { return u(s->durable_lsn()); });
}

void bind_fault_probes(telemetry::MetricRegistry& registry,
                       const std::string& prefix,
                       const faults::FaultPlane& plane) {
  const faults::FaultPlane* p = &plane;
  registry.probe(prefix + ".link_failures",
                 [p] { return u(p->stats().link_failures); });
  registry.probe(prefix + ".link_recoveries",
                 [p] { return u(p->stats().link_recoveries); });
  registry.probe(prefix + ".impairment_bursts",
                 [p] { return u(p->stats().impairment_bursts); });
  registry.probe(prefix + ".impairments_cleared",
                 [p] { return u(p->stats().impairments_cleared); });
  registry.probe(prefix + ".node_crashes",
                 [p] { return u(p->stats().node_crashes); });
  registry.probe(prefix + ".node_reboots",
                 [p] { return u(p->stats().node_reboots); });
  registry.probe(prefix + ".drop_windows_opened",
                 [p] { return u(p->stats().drop_windows_opened); });
  registry.probe(prefix + ".drop_windows_closed",
                 [p] { return u(p->stats().drop_windows_closed); });
  registry.probe(prefix + ".messages_dropped",
                 [p] { return u(p->stats().messages_dropped); });
  registry.probe(prefix + ".disk_error_windows",
                 [p] { return u(p->stats().disk_error_windows); });
}

void bind_dv_probes(
    telemetry::MetricRegistry& registry, const std::string& prefix,
    const std::vector<std::unique_ptr<routing::dv::DvProcess>>& processes) {
  const auto* ps = &processes;
  auto sum = [ps](std::uint64_t routing::dv::DvStats::*field) {
    std::uint64_t total = 0;
    for (const auto& p : *ps) total += p->stats().*field;
    return static_cast<double>(total);
  };
  using S = routing::dv::DvStats;
  registry.probe(prefix + ".updates_sent",
                 [sum] { return sum(&S::updates_sent); });
  registry.probe(prefix + ".updates_received",
                 [sum] { return sum(&S::updates_received); });
  registry.probe(prefix + ".periodic_rounds",
                 [sum] { return sum(&S::periodic_rounds); });
  registry.probe(prefix + ".triggered_updates",
                 [sum] { return sum(&S::triggered_updates); });
  registry.probe(prefix + ".route_changes",
                 [sum] { return sum(&S::route_changes); });
  registry.probe(prefix + ".routes_withdrawn",
                 [sum] { return sum(&S::routes_withdrawn); });
  registry.probe(prefix + ".routes_expired",
                 [sum] { return sum(&S::routes_expired); });
  registry.probe(prefix + ".poisons_received",
                 [sum] { return sum(&S::poisons_received); });
  registry.probe(prefix + ".counting_to_infinity",
                 [sum] { return sum(&S::counting_to_infinity); });
  registry.probe(prefix + ".malformed_updates",
                 [sum] { return sum(&S::malformed_updates); });
}

}  // namespace mhrp::scenario
