#include "node/dv_routing.hpp"

#include "util/byte_buffer.hpp"

namespace mhrp::node {

namespace {
// Update entry wire format: prefix address (4), prefix length (1),
// metric (1).
constexpr std::size_t kEntrySize = 6;
}  // namespace

DistanceVector::DistanceVector(Node& node, Config config)
    : node_(node),
      config_(config),
      timer_(node.sim(), config.update_period, [this] { send_updates(); }) {
  node_.bind_udp(kPort, [this](const net::UdpDatagram& d,
                               const net::IpHeader& h, net::Interface& i) {
    on_update(d, h, i);
  });
}

void DistanceVector::start() {
  send_updates();
  timer_.start();
}

void DistanceVector::stop() { timer_.stop(); }

void DistanceVector::advertise_host_route(net::IpAddress addr, bool enabled) {
  if (enabled) {
    host_routes_.insert(addr);
    withdrawing_.erase(addr);
  } else if (host_routes_.erase(addr) > 0) {
    // Poison the route for a few rounds so neighbors flush immediately.
    withdrawing_[addr] = 3;
  }
  send_updates();
}

std::vector<std::uint8_t> DistanceVector::encode_table(
    const net::Interface& out_iface) const {
  util::ByteWriter w;
  std::size_t count = 0;
  const std::size_t count_at = w.size();
  w.u16(0);  // patched below

  auto emit = [&](const net::Prefix& prefix, int metric) {
    w.u32(prefix.address().raw());
    w.u8(static_cast<std::uint8_t>(prefix.length()));
    w.u8(static_cast<std::uint8_t>(metric > kInfinity ? kInfinity : metric));
    ++count;
  };

  // Connected subnets, metric 0 at the origin.
  for (const auto& iface : node_.interfaces()) {
    emit(iface->prefix(), 0);
  }
  // Locally originated host routes (paper §3 mechanism).
  for (net::IpAddress addr : host_routes_) {
    emit(net::Prefix::host(addr), 0);
  }
  // Poisoned withdrawals.
  for (const auto& [addr, rounds] : withdrawing_) {
    emit(net::Prefix::host(addr), kInfinity);
  }
  // Learned routes, with split horizon.
  for (const auto& [prefix, learned] : learned_) {
    if (config_.split_horizon && learned.iface == &out_iface) continue;
    emit(prefix, learned.metric);
  }

  w.patch_u16(count_at, static_cast<std::uint16_t>(count));
  return w.take();
}

void DistanceVector::send_updates() {
  expire_stale();
  for (auto it = withdrawing_.begin(); it != withdrawing_.end();) {
    if (--it->second <= 0) {
      it = withdrawing_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& iface : node_.interfaces()) {
    if (!iface->attached()) continue;
    auto body = encode_table(*iface);
    node_.send_udp_broadcast(*iface, kPort, kPort, body);
    ++updates_sent_;
  }
}

void DistanceVector::on_update(const net::UdpDatagram& datagram,
                               const net::IpHeader& header,
                               net::Interface& iface) {
  if (node_.owns_address(header.src)) return;  // our own broadcast
  ++updates_received_;
  util::ByteReader r(datagram.data);
  std::uint16_t count = 0;
  try {
    count = r.u16();
  } catch (const util::CodecError&) {
    return;
  }
  bool changed = false;
  for (std::uint16_t i = 0; i < count; ++i) {
    net::Prefix prefix;
    int metric = 0;
    try {
      net::IpAddress addr(r.u32());
      int length = r.u8();
      metric = r.u8();
      if (length > 32) continue;
      prefix = net::Prefix(addr, length);
    } catch (const util::CodecError&) {
      return;
    }
    const int candidate = std::min(metric + 1, kInfinity);

    // Never override our own connected subnets or originated routes.
    bool connected = false;
    for (const auto& own : node_.interfaces()) {
      if (own->prefix() == prefix) connected = true;
    }
    if (connected || (prefix.is_host_route() &&
                      host_routes_.contains(prefix.address()))) {
      continue;
    }

    auto it = learned_.find(prefix);
    const bool from_current_next_hop =
        it != learned_.end() && it->second.from == header.src;
    if (it == learned_.end() || candidate < it->second.metric ||
        from_current_next_hop) {
      if (candidate >= kInfinity) {
        if (it != learned_.end() && from_current_next_hop) {
          learned_.erase(it);
          node_.routing_table().remove(prefix);
          // Pass the poison along so withdrawal floods the domain instead
          // of waiting out each hop's route lifetime.
          if (prefix.is_host_route()) {
            withdrawing_[prefix.address()] = 3;
          }
          changed = true;
        }
        continue;
      }
      Learned l{candidate, header.src, &iface, node_.sim().now()};
      const bool metric_changed =
          it == learned_.end() || it->second.metric != candidate ||
          it->second.from != header.src;
      learned_[prefix] = l;
      node_.routing_table().install({prefix, header.src, &iface, candidate,
                                     prefix.is_host_route()
                                         ? routing::RouteKind::kHostSpecific
                                         : routing::RouteKind::kDynamic});
      changed = changed || metric_changed;
    }
  }
  // Triggered updates on change accelerate convergence.
  if (changed) send_updates();
}

void DistanceVector::expire_stale() {
  const sim::Time now = node_.sim().now();
  for (auto it = learned_.begin(); it != learned_.end();) {
    if (now - it->second.heard_at > config_.route_lifetime) {
      node_.routing_table().remove(it->first);
      it = learned_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mhrp::node
