// Node: a host or router with a small but faithful IP stack.
//
// The pieces MHRP leans on are all here:
//  * ARP with proxy entries (the home agent answers for absent mobile
//    hosts, paper §2) and gratuitous replies (cache poisoning at
//    disconnect, cache repair at return);
//  * a forwarding path with interceptor hooks — how home agents intercept
//    packets for their mobile hosts and how cache agents "examine each
//    packet that [they forward]" (paper §4.3);
//  * ICMP generation with a configurable error-quote length, because
//    §4.5's error reverse-tunneling behaves differently when only
//    IP-header+8 bytes of the offending packet are quoted;
//  * per-protocol and per-UDP-port demux so the MHRP module and the five
//    baseline protocols plug in without modifying the stack.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/arp.hpp"
#include "net/frame.hpp"
#include "net/icmp.hpp"
#include "net/interface.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/protocols.hpp"
#include "net/udp.hpp"
#include "routing/routing_table.hpp"
#include "sim/executive.hpp"

namespace mhrp::node {

/// What a forward-path interceptor did with a packet.
enum class Intercept {
  kContinue,  // not mine; forward normally
  kConsumed,  // interceptor took the packet (tunneled, delivered, dropped)
};

class Node : public net::FrameSink {
 public:
  using ProtocolHandler =
      std::function<void(net::Packet&, net::Interface&)>;
  /// Returns true when the message was consumed.
  using IcmpHandler = std::function<bool(const net::IcmpMessage&,
                                         const net::IpHeader&,
                                         net::Interface&)>;
  using UdpHandler = std::function<void(const net::UdpDatagram&,
                                        const net::IpHeader&,
                                        net::Interface&)>;
  using Interceptor = std::function<Intercept(net::Packet&, net::Interface&)>;
  /// May rewrite a locally originated packet (header and payload) before
  /// the routing lookup — how a sending host that is also a cache agent
  /// builds the MHRP header itself (paper §4.1).
  using EgressHook = std::function<void(net::Packet&)>;

  Node(sim::Executive& sim, std::string name);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] sim::Executive& sim() { return *sim_; }
  /// Rebind this node to another executive (a shard view). Only legal
  /// before the node has armed timers or scheduled events — i.e. at
  /// topology-construction time (Topology::assign_shard). Re-pins any
  /// already-added interfaces to the new executive's shard.
  void rebind_executive(sim::Executive& sim) {
    sim_ = &sim;
    for (auto& iface : interfaces_) iface->set_shard(sim.shard_id());
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- Interfaces & addressing ----

  net::Interface& add_interface(const std::string& if_name, net::IpAddress ip,
                                int prefix_length);
  [[nodiscard]] net::Interface* interface_named(const std::string& if_name);
  [[nodiscard]] const std::vector<std::unique_ptr<net::Interface>>&
  interfaces() const {
    return interfaces_;
  }
  [[nodiscard]] bool owns_address(net::IpAddress addr) const;
  /// The address of the first interface (the node's canonical identity).
  [[nodiscard]] net::IpAddress primary_address() const;

  /// Extra addresses this node answers for, beyond interface addresses —
  /// e.g. the temporary address of a mobile host serving as its own
  /// foreign agent (paper §2).
  void add_address_alias(net::IpAddress addr) { aliases_.insert(addr); }
  void remove_address_alias(net::IpAddress addr) { aliases_.erase(addr); }

  void join_multicast(net::IpAddress group) { multicast_groups_.insert(group); }

  // ---- Routing ----

  [[nodiscard]] routing::RoutingTable& routing_table() { return table_; }
  void set_forwarding(bool enabled) { forwarding_ = enabled; }
  [[nodiscard]] bool forwarding() const { return forwarding_; }
  /// Whether this router emits ICMP redirects when it forwards a packet
  /// back out its arrival interface (hosts then learn host routes).
  void set_send_redirects(bool enabled) { send_redirects_ = enabled; }

  // ---- Sending ----

  /// Route, ARP-resolve, and transmit an IP datagram. Fills in the source
  /// address (primary) and creation timestamp when unset. Packets for an
  /// address this node owns are delivered locally.
  void send_ip(net::Packet packet);

  /// Transmit on a specific interface to a link-local destination —
  /// broadcast, multicast, or a neighbor — bypassing the routing table.
  void send_ip_on(net::Interface& iface, net::Packet packet,
                  net::IpAddress link_dst);

  void send_udp(net::IpAddress dst, std::uint16_t src_port,
                std::uint16_t dst_port, std::span<const std::uint8_t> data);

  /// Subnet-broadcast a UDP datagram on one interface.
  void send_udp_broadcast(net::Interface& iface, std::uint16_t src_port,
                          std::uint16_t dst_port,
                          std::span<const std::uint8_t> data);

  void send_icmp(net::IpAddress dst, const net::IcmpMessage& msg);
  void send_icmp_on(net::Interface& iface, net::IpAddress link_dst,
                    const net::IcmpMessage& msg);

  // ---- Demux registration ----

  void set_protocol_handler(net::IpProto proto, ProtocolHandler handler) {
    protocol_handlers_[net::to_u8(proto)] = std::move(handler);
  }
  void add_icmp_handler(IcmpHandler handler) {
    icmp_handlers_.push_back(std::move(handler));
  }
  void bind_udp(std::uint16_t port, UdpHandler handler) {
    udp_ports_[port] = std::move(handler);
  }
  void unbind_udp(std::uint16_t port) { udp_ports_.erase(port); }

  /// Interceptors run, in registration order, on every packet that
  /// reaches this node's IP layer but is not addressed to it (the
  /// forwarding path), before the routing lookup.
  void add_interceptor(Interceptor interceptor) {
    interceptors_.push_back(std::move(interceptor));
  }

  /// Egress hooks run, in order, inside send_ip() after the source
  /// address is filled in and before routing.
  void add_egress_hook(EgressHook hook) {
    egress_hooks_.push_back(std::move(hook));
  }

  /// Local interceptors run on packets addressed to this node, before
  /// protocol demux — e.g. loose-source-route processing, where a packet
  /// addressed to this hop must be rewritten and re-emitted rather than
  /// delivered.
  void add_local_interceptor(Interceptor interceptor) {
    local_interceptors_.push_back(std::move(interceptor));
  }

  // ---- ARP ----

  [[nodiscard]] net::ArpTable& arp_table(net::Interface& iface);
  /// Answer ARP requests for `addr` on `iface` with this node's MAC
  /// (proxy ARP — the home agent's interception hook, paper §2).
  void add_proxy_arp(net::Interface& iface, net::IpAddress addr);
  void remove_proxy_arp(net::Interface& iface, net::IpAddress addr);
  [[nodiscard]] bool has_proxy_arp(net::Interface& iface,
                                   net::IpAddress addr) const;
  /// Broadcast an unsolicited ARP reply binding ip→mac, updating every
  /// cache on the segment (paper §2). Retransmitted `repeats` times for
  /// reliability, as the paper suggests.
  void send_gratuitous_arp(net::Interface& iface, net::IpAddress ip,
                           net::MacAddress mac, int repeats = 2);

  // ---- ICMP policy ----

  /// Maximum bytes of the offending datagram quoted in ICMP errors.
  /// Default 28 (IP header + 8); 0 means quote the entire datagram
  /// (RFC 1122 allows it; §4.5 discusses both regimes).
  void set_icmp_quote_limit(std::size_t bytes) { icmp_quote_limit_ = bytes; }
  [[nodiscard]] std::size_t icmp_quote_limit() const {
    return icmp_quote_limit_;
  }

  /// Generate an ICMP error about `offending` and send it to its source.
  /// Never generates errors about ICMP errors (RFC 1122).
  void send_icmp_error(const net::Packet& offending,
                       const net::IcmpMessage& prototype);

  // ---- Lifecycle (the fault plane's injection points) ----

  /// Crash the node: both the receive and the send path go silent, so
  /// timers that fire while down emit nothing, and all volatile
  /// link-layer state (ARP caches, packets queued on resolution) is
  /// lost, as in a power failure. Routing tables, interfaces, and demux
  /// registrations survive — they model configuration, not RAM.
  /// Idempotent.
  void fail();
  /// Power the node back up. Idempotent. Protocol modules layered on the
  /// node (e.g. core::MhrpAgent) re-initialize their own volatile state
  /// separately.
  void recover();
  [[nodiscard]] bool is_up() const { return up_; }

  /// Fired from fail()/recover() with the new state — the node-side
  /// mirror of net::LinkObserver::on_state_changed.
  std::function<void(bool up)> on_state_changed;

  /// Fired when the link attached to one of this node's interfaces
  /// changes carrier state (fault plane fail/recover). The routing::dv
  /// process chains itself here to withdraw routes learned through a
  /// dead link and re-advertise on recovery.
  std::function<void(net::Interface& iface, bool up)> on_interface_state;

  // ---- Counters & hooks ----

  struct Counters {
    std::uint64_t ip_sent = 0;
    std::uint64_t ip_received = 0;      // frames handed up that carried IP
    std::uint64_t delivered_local = 0;  // datagrams demuxed on this node
    std::uint64_t forwarded = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_ttl = 0;
    std::uint64_t dropped_arp_timeout = 0;
    std::uint64_t icmp_errors_sent = 0;
    std::uint64_t options_slow_path = 0;  // forwarded datagrams carrying IP options
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  Counters& mutable_counters() { return counters_; }

  /// Metrics hooks (scenario layer). Null by default.
  std::function<void(const net::Packet&)> on_deliver_hook;
  std::function<void(const net::Packet&, net::Interface&)> on_forward_hook;

  // ---- FrameSink ----
  void on_frame(net::Interface& iface, net::Frame frame) override;
  void on_link_state(net::Interface& iface, bool up) override {
    if (on_interface_state) on_interface_state(iface, up);
  }

 private:
  struct PendingArp {
    std::vector<std::pair<net::Packet, net::IpAddress>> queue;
    int attempts = 0;
    sim::EventHandle retry;
  };
  struct InterfaceState {
    net::ArpTable arp;
    std::set<net::IpAddress> proxied;
    std::map<net::IpAddress, PendingArp> pending;
  };

  void handle_arp(net::Interface& iface, const net::ArpMessage& msg);
  void handle_ip(net::Interface& iface, net::Packet packet);
  void deliver_local(net::Packet& packet, net::Interface& iface);
  void handle_icmp(net::Packet& packet, net::Interface& iface);
  void handle_udp(net::Packet& packet, net::Interface& iface);
  void forward(net::Packet packet, net::Interface& in_iface);
  /// ARP-resolve `next_hop` on `iface` and emit the frame (queues and
  /// issues an ARP request on a miss).
  void transmit(net::Interface& iface, net::Packet packet,
                net::IpAddress next_hop);
  void arp_retry(net::Interface& iface, net::IpAddress next_hop);
  InterfaceState& state_of(net::Interface& iface);

  sim::Executive* sim_;
  std::string name_;
  std::vector<std::unique_ptr<net::Interface>> interfaces_;
  std::unordered_map<const net::Interface*, InterfaceState> iface_state_;
  routing::RoutingTable table_;
  bool up_ = true;
  bool forwarding_ = false;
  bool send_redirects_ = false;
  std::set<net::IpAddress> multicast_groups_;
  std::set<net::IpAddress> aliases_;
  std::vector<EgressHook> egress_hooks_;
  std::unordered_map<std::uint8_t, ProtocolHandler> protocol_handlers_;
  std::vector<IcmpHandler> icmp_handlers_;
  std::map<std::uint16_t, UdpHandler> udp_ports_;
  std::vector<Interceptor> interceptors_;
  std::vector<Interceptor> local_interceptors_;
  std::size_t icmp_quote_limit_ = 28;
  Counters counters_;

  static constexpr int kArpMaxAttempts = 3;
  static constexpr sim::Time kArpRetryDelay = sim::millis(500);
  static constexpr std::size_t kArpQueueLimit = 16;
};

}  // namespace mhrp::node
