#include "node/node.hpp"

#include <cassert>

#include "util/log.hpp"

namespace mhrp::node {

using net::Frame;
using net::IcmpMessage;
using net::Interface;
using net::IpAddress;
using net::IpProto;
using net::Packet;

Node::Node(sim::Executive& sim, std::string name)
    : sim_(&sim), name_(std::move(name)) {}

// ---- Interfaces & addressing ----

Interface& Node::add_interface(const std::string& if_name, IpAddress ip,
                               int prefix_length) {
  auto iface = std::make_unique<Interface>(*this, if_name);
  iface->configure(ip, prefix_length);
  iface->set_shard(sim_->shard_id());
  interfaces_.push_back(std::move(iface));
  Interface& ref = *interfaces_.back();
  iface_state_.try_emplace(&ref);
  // Directly connected subnet route.
  table_.install({ref.prefix(), net::kUnspecified, &ref, 0,
                  routing::RouteKind::kConnected});
  return ref;
}

Interface* Node::interface_named(const std::string& if_name) {
  for (auto& iface : interfaces_) {
    if (iface->name() == if_name) return iface.get();
  }
  return nullptr;
}

bool Node::owns_address(IpAddress addr) const {
  for (const auto& iface : interfaces_) {
    if (iface->ip() == addr) return true;
  }
  return aliases_.contains(addr);
}

IpAddress Node::primary_address() const {
  return interfaces_.empty() ? net::kUnspecified : interfaces_.front()->ip();
}

Node::InterfaceState& Node::state_of(Interface& iface) {
  return iface_state_[&iface];
}

net::ArpTable& Node::arp_table(Interface& iface) { return state_of(iface).arp; }

// ---- Lifecycle ----

void Node::fail() {
  if (!up_) return;
  up_ = false;
  // A crash loses all volatile link-layer state: ARP caches and the
  // packets (and retry timers) queued awaiting resolution. Walk the
  // interfaces in attachment order, not the pointer-keyed state map,
  // so teardown order never depends on allocation addresses.
  for (auto& iface : interfaces_) {
    auto it = iface_state_.find(iface.get());
    if (it == iface_state_.end()) continue;
    InterfaceState& st = it->second;
    st.arp.clear();
    for (auto& [next_hop, pending] : st.pending) {
      (void)next_hop;
      sim_->cancel(pending.retry);
    }
    st.pending.clear();
  }
  if (on_state_changed) on_state_changed(false);
}

void Node::recover() {
  if (up_) return;
  up_ = true;
  if (on_state_changed) on_state_changed(true);
}

// ---- Sending ----

void Node::send_ip(Packet packet) {
  if (!up_) return;
  if (packet.header().src.is_unspecified()) {
    packet.header().src = primary_address();
  }
  if (packet.created_at() == 0) packet.set_created_at(sim_->now());
  ++counters_.ip_sent;

  for (auto& hook : egress_hooks_) hook(packet);

  const IpAddress dst = packet.header().dst;
  if (owns_address(dst)) {
    // Loopback delivery, decoupled from the caller's stack frame.
    if (interfaces_.empty()) return;
    (void)sim_->after(
        0,
        [this, packet = std::move(packet)]() mutable {
          deliver_local(packet, *interfaces_.front());
        },
        sim::EventCategory::kLocalDelivery);
    return;
  }
  if (dst.is_broadcast() || dst.is_multicast()) {
    for (auto& iface : interfaces_) {
      if (iface->attached()) {
        send_ip_on(*iface, std::move(packet), dst);
        return;
      }
    }
    return;
  }

  const routing::Route* route = table_.lookup(dst);
  if (route == nullptr || route->iface == nullptr) {
    ++counters_.dropped_no_route;
    return;
  }
  const IpAddress next_hop =
      route->next_hop.is_unspecified() ? dst : route->next_hop;
  transmit(*route->iface, std::move(packet), next_hop);
}

void Node::send_ip_on(Interface& iface, Packet packet, IpAddress link_dst) {
  if (!up_) return;
  if (packet.header().src.is_unspecified()) packet.header().src = iface.ip();
  if (packet.created_at() == 0) packet.set_created_at(sim_->now());
  ++counters_.ip_sent;

  if (link_dst.is_broadcast() || link_dst.is_multicast() ||
      link_dst == iface.prefix().broadcast()) {
    Frame frame{iface.mac(), net::kMacBroadcast, std::move(packet)};
    iface.send(std::move(frame));
    return;
  }
  transmit(iface, std::move(packet), link_dst);
}

void Node::send_udp(IpAddress dst, std::uint16_t src_port,
                    std::uint16_t dst_port,
                    std::span<const std::uint8_t> data) {
  net::IpHeader h;
  h.protocol = net::to_u8(IpProto::kUdp);
  h.dst = dst;
  Packet p(h, net::encode_udp({src_port, dst_port}, data));
  p.set_base_payload_size(p.payload().size());
  send_ip(std::move(p));
}

void Node::send_udp_broadcast(Interface& iface, std::uint16_t src_port,
                              std::uint16_t dst_port,
                              std::span<const std::uint8_t> data) {
  net::IpHeader h;
  h.protocol = net::to_u8(IpProto::kUdp);
  h.dst = iface.prefix().broadcast();
  h.src = iface.ip();
  h.ttl = 1;
  Packet p(h, net::encode_udp({src_port, dst_port}, data));
  p.set_base_payload_size(p.payload().size());
  send_ip_on(iface, std::move(p), h.dst);
}

void Node::send_icmp(IpAddress dst, const IcmpMessage& msg) {
  net::IpHeader h;
  h.protocol = net::to_u8(IpProto::kIcmp);
  h.dst = dst;
  Packet p(h, net::encode_icmp(msg));
  p.set_base_payload_size(p.payload().size());
  send_ip(std::move(p));
}

void Node::send_icmp_on(Interface& iface, IpAddress link_dst,
                        const IcmpMessage& msg) {
  net::IpHeader h;
  h.protocol = net::to_u8(IpProto::kIcmp);
  h.dst = link_dst;
  h.src = iface.ip();
  if (link_dst.is_multicast() || link_dst.is_broadcast()) h.ttl = 1;
  Packet p(h, net::encode_icmp(msg));
  p.set_base_payload_size(p.payload().size());
  send_ip_on(iface, std::move(p), link_dst);
}

// ---- ARP ----

void Node::add_proxy_arp(Interface& iface, IpAddress addr) {
  state_of(iface).proxied.insert(addr);
}

void Node::remove_proxy_arp(Interface& iface, IpAddress addr) {
  state_of(iface).proxied.erase(addr);
}

bool Node::has_proxy_arp(Interface& iface, IpAddress addr) const {
  auto it = iface_state_.find(&iface);
  return it != iface_state_.end() && it->second.proxied.contains(addr);
}

void Node::send_gratuitous_arp(Interface& iface, IpAddress ip,
                               net::MacAddress mac, int repeats) {
  net::ArpMessage reply;
  reply.op = net::ArpMessage::Op::kReply;
  reply.sender_mac = mac;
  reply.sender_ip = ip;
  reply.target_mac = net::kMacBroadcast;
  reply.target_ip = ip;
  for (int i = 0; i <= repeats; ++i) {
    (void)sim_->after(
        sim::millis(100) * i,
        [this, &iface, reply] {
          // The interface may have detached in the meantime; send() handles
          // it. A node that crashed before the repeat fires stays silent.
          if (!up_) return;
          iface.send(Frame{iface.mac(), net::kMacBroadcast, reply});
        },
        sim::EventCategory::kArp);
  }
}

void Node::handle_arp(Interface& iface, const net::ArpMessage& msg) {
  InterfaceState& st = state_of(iface);
  if (!msg.sender_ip.is_unspecified()) {
    st.arp.learn(msg.sender_ip, msg.sender_mac);
    // Flush any packets queued awaiting this resolution.
    auto pending = st.pending.find(msg.sender_ip);
    if (pending != st.pending.end()) {
      auto queue = std::move(pending->second.queue);
      sim_->cancel(pending->second.retry);
      st.pending.erase(pending);
      for (auto& [packet, next_hop] : queue) {
        transmit(iface, std::move(packet), next_hop);
      }
    }
  }
  if (msg.op == net::ArpMessage::Op::kRequest) {
    // Answer for the interface's own address, any alias this node holds
    // (e.g. a mobile host's temporary address), or proxied addresses.
    const bool mine = iface.ip() == msg.target_ip ||
                      aliases_.contains(msg.target_ip);
    const bool proxied = st.proxied.contains(msg.target_ip);
    if (mine || proxied) {
      net::ArpMessage reply;
      reply.op = net::ArpMessage::Op::kReply;
      reply.sender_mac = iface.mac();
      reply.sender_ip = msg.target_ip;
      reply.target_mac = msg.sender_mac;
      reply.target_ip = msg.sender_ip;
      iface.send(Frame{iface.mac(), msg.sender_mac, reply});
    }
  }
}

void Node::transmit(Interface& iface, Packet packet, IpAddress next_hop) {
  if (!iface.attached()) return;
  InterfaceState& st = state_of(iface);
  if (auto mac = st.arp.lookup(next_hop)) {
    iface.send(Frame{iface.mac(), *mac, std::move(packet)});
    return;
  }
  // Queue and resolve.
  PendingArp& pending = st.pending[next_hop];
  if (pending.queue.size() >= kArpQueueLimit) {
    return;  // tail drop, like a real ARP queue
  }
  pending.queue.emplace_back(std::move(packet), next_hop);
  if (pending.queue.size() == 1) {
    pending.attempts = 0;
    net::ArpMessage req;
    req.op = net::ArpMessage::Op::kRequest;
    req.sender_mac = iface.mac();
    req.sender_ip = iface.ip();
    req.target_ip = next_hop;
    iface.send(Frame{iface.mac(), net::kMacBroadcast, req});
    pending.retry = sim_->after(
        kArpRetryDelay,
        [this, &iface, next_hop] { arp_retry(iface, next_hop); },
        sim::EventCategory::kArp);
  }
}

void Node::arp_retry(Interface& iface, IpAddress next_hop) {
  InterfaceState& st = state_of(iface);
  auto it = st.pending.find(next_hop);
  if (it == st.pending.end()) return;
  PendingArp& pending = it->second;
  if (++pending.attempts >= kArpMaxAttempts) {
    // Resolution failed: drop the queue, report unreachability upstream.
    auto queue = std::move(pending.queue);
    st.pending.erase(it);
    for (auto& [packet, hop] : queue) {
      ++counters_.dropped_arp_timeout;
      send_icmp_error(packet,
                      net::IcmpUnreachable{net::UnreachCode::kHostUnreachable, {}});
    }
    return;
  }
  net::ArpMessage req;
  req.op = net::ArpMessage::Op::kRequest;
  req.sender_mac = iface.mac();
  req.sender_ip = iface.ip();
  req.target_ip = next_hop;
  iface.send(Frame{iface.mac(), net::kMacBroadcast, req});
  pending.retry = sim_->after(
      kArpRetryDelay,
      [this, &iface, next_hop] { arp_retry(iface, next_hop); },
      sim::EventCategory::kArp);
}

// ---- Receive path ----

void Node::on_frame(Interface& iface, Frame frame) {
  if (!up_) return;  // a crashed node hears nothing
  if (frame.is_arp()) {
    handle_arp(iface, frame.arp());
    return;
  }
  ++counters_.ip_received;
  Packet packet = std::move(frame.packet());
  packet.count_hop();
  handle_ip(iface, std::move(packet));
}

void Node::handle_ip(Interface& iface, Packet packet) {
  const IpAddress dst = packet.header().dst;
  const bool local = owns_address(dst) || dst.is_broadcast() ||
                     dst == iface.prefix().broadcast() ||
                     (dst.is_multicast() && multicast_groups_.contains(dst));
  if (local) {
    deliver_local(packet, iface);
    return;
  }
  if (dst.is_multicast()) return;  // not subscribed

  for (auto& interceptor : interceptors_) {
    if (interceptor(packet, iface) == Intercept::kConsumed) return;
  }
  if (forwarding_) {
    forward(std::move(packet), iface);
  }
  // Hosts silently drop traffic that is not for them.
}

void Node::forward(Packet packet, Interface& in_iface) {
  if (packet.header().ttl <= 1) {
    ++counters_.dropped_ttl;
    send_icmp_error(packet, net::IcmpTimeExceeded{});
    return;
  }
  --packet.header().ttl;

  if (packet.header().has_options()) {
    // Paper §7: option-bearing packets leave the router fast path.
    ++counters_.options_slow_path;
  }

  const IpAddress dst = packet.header().dst;
  const routing::Route* route = table_.lookup(dst);
  if (route == nullptr || route->iface == nullptr) {
    ++counters_.dropped_no_route;
    send_icmp_error(packet,
                    net::IcmpUnreachable{net::UnreachCode::kNetUnreachable, {}});
    return;
  }
  const IpAddress next_hop =
      route->next_hop.is_unspecified() ? dst : route->next_hop;

  if (send_redirects_ && route->iface == &in_iface &&
      in_iface.prefix().contains(packet.header().src)) {
    send_icmp_error(packet, net::IcmpRedirect{next_hop, {}});
  }

  ++counters_.forwarded;
  if (on_forward_hook) on_forward_hook(packet, *route->iface);
  transmit(*route->iface, std::move(packet), next_hop);
}

void Node::deliver_local(Packet& packet, Interface& iface) {
  for (auto& interceptor : local_interceptors_) {
    if (interceptor(packet, iface) == Intercept::kConsumed) return;
  }
  ++counters_.delivered_local;
  if (on_deliver_hook) on_deliver_hook(packet);

  const auto proto = packet.header().protocol;
  if (proto == net::to_u8(IpProto::kIcmp)) {
    handle_icmp(packet, iface);
    return;
  }
  if (proto == net::to_u8(IpProto::kUdp)) {
    handle_udp(packet, iface);
    return;
  }
  auto handler = protocol_handlers_.find(proto);
  if (handler != protocol_handlers_.end()) {
    handler->second(packet, iface);
    return;
  }
  if (!packet.header().dst.is_broadcast() &&
      !packet.header().dst.is_multicast()) {
    send_icmp_error(packet, net::IcmpUnreachable{
                                net::UnreachCode::kProtocolUnreachable, {}});
  }
}

void Node::handle_icmp(Packet& packet, Interface& iface) {
  IcmpMessage msg;
  try {
    msg = net::decode_icmp(packet.payload());
  } catch (const util::CodecError&) {
    return;  // corrupt ICMP is dropped
  }

  for (auto& handler : icmp_handlers_) {
    if (handler(msg, packet.header(), iface)) return;
  }

  if (auto* echo = std::get_if<net::IcmpEcho>(&msg)) {
    if (echo->is_request && !packet.header().dst.is_broadcast() &&
        !packet.header().dst.is_multicast()) {
      net::IcmpEcho reply = *echo;
      reply.is_request = false;
      net::IpHeader h;
      h.protocol = net::to_u8(IpProto::kIcmp);
      h.dst = packet.header().src;
      // Reply from the address the request targeted — for a mobile host
      // that is its home address regardless of where it roams.
      h.src = owns_address(packet.header().dst) ? packet.header().dst
                                                : primary_address();
      Packet p(h, net::encode_icmp(reply));
      p.set_base_payload_size(p.payload().size());
      p.set_flow_id(packet.flow_id());
      send_ip(std::move(p));
    }
    return;
  }
  // All other unconsumed ICMP — including location updates on nodes that
  // do not implement MHRP — is silently discarded (RFC 1122; paper §4.3).
}

void Node::handle_udp(Packet& packet, Interface& iface) {
  net::UdpDatagram datagram;
  try {
    datagram = net::decode_udp(packet.payload());
  } catch (const util::CodecError&) {
    return;
  }
  auto it = udp_ports_.find(datagram.header.dst_port);
  if (it != udp_ports_.end()) {
    it->second(datagram, packet.header(), iface);
    return;
  }
  if (owns_address(packet.header().dst)) {
    send_icmp_error(packet, net::IcmpUnreachable{
                                net::UnreachCode::kPortUnreachable, {}});
  }
}

void Node::send_icmp_error(const Packet& offending,
                           const IcmpMessage& prototype) {
  const IpAddress src = offending.header().src;
  if (src.is_unspecified() || src.is_broadcast() || src.is_multicast()) return;
  if (offending.header().dst.is_broadcast() ||
      offending.header().dst.is_multicast()) {
    return;
  }
  // Never generate errors about ICMP errors (RFC 1122).
  if (offending.header().protocol == net::to_u8(IpProto::kIcmp) &&
      !offending.payload().empty()) {
    const std::uint8_t type = offending.payload().front();
    if (type == 3 || type == 5 || type == 11 || type == 12) return;
  }

  std::vector<std::uint8_t> quoted =
      icmp_quote_limit_ == 0 ? offending.serialize()
                             : offending.serialize_prefix(icmp_quote_limit_);

  IcmpMessage msg = prototype;
  std::visit(
      [&quoted](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::IcmpUnreachable> ||
                      std::is_same_v<T, net::IcmpTimeExceeded> ||
                      std::is_same_v<T, net::IcmpRedirect>) {
          m.quoted = std::move(quoted);
        }
      },
      msg);

  ++counters_.icmp_errors_sent;
  send_icmp(src, msg);
}

}  // namespace mhrp::node
