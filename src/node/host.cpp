#include "node/host.hpp"

namespace mhrp::node {

namespace {
std::uint16_t next_ident() {
  static std::uint16_t counter = 0;
  return ++counter;
}
}  // namespace

Host::Host(sim::Executive& sim, std::string name)
    : Node(sim, std::move(name)), ping_ident_(next_ident()) {
  add_icmp_handler([this](const net::IcmpMessage& msg,
                          const net::IpHeader& header, net::Interface& iface) {
    return on_icmp(msg, header, iface);
  });
}

std::uint16_t Host::ping(net::IpAddress dst, PingCallback callback,
                         std::size_t payload_size, sim::Time timeout) {
  const std::uint16_t seq = next_ping_seq_++;
  net::IcmpEcho echo;
  echo.is_request = true;
  echo.ident = ping_ident_;
  echo.sequence = seq;
  echo.data.assign(payload_size, 0xA5);

  PendingPing pending;
  pending.callback = std::move(callback);
  pending.sent_at = sim().now();
  pending.timeout = sim().after(timeout, [this, seq] {
    auto it = pending_pings_.find(seq);
    if (it == pending_pings_.end()) return;
    PingCallback cb = std::move(it->second.callback);
    pending_pings_.erase(it);
    cb(PingResult{false, 0, seq});
  });
  pending_pings_.emplace(seq, std::move(pending));

  send_icmp(dst, echo);
  return seq;
}

bool Host::on_icmp(const net::IcmpMessage& msg, const net::IpHeader& header,
                   net::Interface& iface) {
  (void)header;
  (void)iface;
  const auto* echo = std::get_if<net::IcmpEcho>(&msg);
  if (echo == nullptr || echo->is_request || echo->ident != ping_ident_) {
    return false;
  }
  auto it = pending_pings_.find(echo->sequence);
  if (it == pending_pings_.end()) return true;  // late duplicate
  sim().cancel(it->second.timeout);
  PingCallback cb = std::move(it->second.callback);
  const sim::Time rtt = sim().now() - it->second.sent_at;
  pending_pings_.erase(it);
  cb(PingResult{true, rtt, echo->sequence});
  return true;
}

void Host::start_udp_echo(std::uint16_t port) {
  bind_udp(port, [this, port](const net::UdpDatagram& datagram,
                              const net::IpHeader& header, net::Interface&) {
    send_udp(header.src, port, datagram.header.src_port, datagram.data);
  });
}

void Host::udp_send(net::IpAddress dst, std::uint16_t dst_port,
                    std::span<const std::uint8_t> data) {
  if (++next_ephemeral_port_ == 0) next_ephemeral_port_ = 49152;
  send_udp(dst, next_ephemeral_port_, dst_port, data);
}

}  // namespace mhrp::node
