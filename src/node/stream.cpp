#include "node/stream.hpp"

#include <algorithm>

#include "util/checksum.hpp"

namespace mhrp::node {

using net::IpAddress;
using net::Packet;

namespace {

constexpr std::uint8_t kFlagSyn = 0x02;
constexpr std::uint8_t kFlagAck = 0x10;
constexpr std::uint8_t kFlagFin = 0x01;

// Per-node port demux: Node offers a single handler slot per IP
// protocol, so the first socket on a node installs a dispatcher and all
// sockets register here. Sockets deregister on destruction.
struct NodeDemux {
  std::map<std::uint16_t, StreamSocket*> ports;
};
std::map<Node*, NodeDemux>& registry() {
  static std::map<Node*, NodeDemux> instance;
  return instance;
}

}  // namespace

std::vector<std::uint8_t> StreamHeader::encode(
    std::span<const std::uint8_t> data) const {
  util::ByteWriter w(kSize + data.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  std::uint16_t offset_flags = (5u << 12);  // data offset 5 words
  if (syn) offset_flags |= kFlagSyn;
  if (ack_flag) offset_flags |= kFlagAck;
  if (fin) offset_flags |= kFlagFin;
  w.u16(offset_flags);
  w.u16(window);
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.bytes(data);
  w.patch_u16(16, util::internet_checksum(w.view()));
  return w.take();
}

StreamHeader StreamHeader::decode(std::span<const std::uint8_t> wire,
                                  std::vector<std::uint8_t>* data) {
  if (wire.size() < kSize) throw util::CodecError("stream segment < 20B");
  if (!util::checksum_ok(wire)) {
    throw util::CodecError("stream checksum mismatch");
  }
  util::ByteReader r(wire);
  StreamHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  std::uint16_t offset_flags = r.u16();
  h.syn = (offset_flags & kFlagSyn) != 0;
  h.ack_flag = (offset_flags & kFlagAck) != 0;
  h.fin = (offset_flags & kFlagFin) != 0;
  h.window = r.u16();
  r.skip(4);  // checksum + urgent
  if (data != nullptr) *data = r.bytes(r.remaining());
  return h;
}

StreamSocket::StreamSocket(Host& host, std::uint16_t local_port)
    : host_(host),
      local_port_(local_port),
      rto_(host.sim(), [this] { on_timeout(); }) {
  NodeDemux& demux = registry()[&host_];
  if (demux.ports.empty()) {
    host_.set_protocol_handler(
        net::IpProto::kTcp, [node = &host_](Packet& p, net::Interface& in) {
          auto it = registry().find(node);
          if (it == registry().end()) return;
          std::vector<std::uint8_t> data;
          StreamHeader h;
          try {
            h = StreamHeader::decode(p.payload(), &data);
          } catch (const util::CodecError&) {
            return;
          }
          auto port = it->second.ports.find(h.dst_port);
          if (port == it->second.ports.end()) return;
          port->second->handle_segment(h, std::move(data), p.header().src);
          (void)in;
        });
  }
  demux.ports[local_port_] = this;
}

StreamSocket::~StreamSocket() {
  auto it = registry().find(&host_);
  if (it != registry().end()) {
    it->second.ports.erase(local_port_);
    if (it->second.ports.empty()) registry().erase(it);
  }
}

void StreamSocket::listen() { state_ = State::kListen; }

void StreamSocket::connect(IpAddress peer, std::uint16_t peer_port) {
  peer_ = peer;
  peer_port_ = peer_port;
  state_ = State::kSynSent;
  send_control(/*syn=*/true, /*fin=*/false, /*ack=*/false);
  rto_.arm(config_.retransmit_timeout);
}

std::size_t StreamSocket::send(std::span<const std::uint8_t> data) {
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished) pump();
  return data.size();
}

void StreamSocket::close() {
  fin_queued_ = true;
  if (state_ == State::kEstablished) {
    pump();
  }
}

void StreamSocket::pump() {
  bool sent_any = false;
  while (in_flight_.size() < config_.window_segments) {
    if (!send_buffer_.empty()) {
      Segment segment;
      segment.seq = next_seq_;
      const std::size_t n =
          std::min(config_.segment_size, send_buffer_.size());
      segment.data.assign(send_buffer_.begin(),
                          send_buffer_.begin() + std::ptrdiff_t(n));
      send_buffer_.erase(send_buffer_.begin(),
                         send_buffer_.begin() + std::ptrdiff_t(n));
      next_seq_ += static_cast<std::uint32_t>(n);
      transmit_segment(segment);
      in_flight_.push_back(std::move(segment));
      sent_any = true;
      continue;
    }
    if (fin_queued_) {
      Segment fin;
      fin.seq = next_seq_;
      fin.fin = true;
      next_seq_ += 1;  // FIN occupies one sequence slot
      transmit_segment(fin);
      in_flight_.push_back(std::move(fin));
      fin_queued_ = false;
      state_ = State::kFinWait;
      sent_any = true;
    }
    break;
  }
  if (sent_any && !rto_.armed()) rto_.arm(config_.retransmit_timeout);
}

void StreamSocket::transmit_segment(const Segment& segment) {
  StreamHeader h;
  h.src_port = local_port_;
  h.dst_port = peer_port_;
  h.seq = segment.seq;
  h.ack = expected_seq_;
  h.ack_flag = true;
  h.fin = segment.fin;
  h.window = static_cast<std::uint16_t>(config_.window_segments);

  net::IpHeader ip;
  ip.protocol = net::to_u8(net::IpProto::kTcp);
  ip.dst = peer_;
  Packet p(ip, h.encode(segment.data));
  p.set_base_payload_size(p.payload().size());
  host_.send_ip(std::move(p));
}

void StreamSocket::send_control(bool syn, bool fin, bool ack) {
  StreamHeader h;
  h.src_port = local_port_;
  h.dst_port = peer_port_;
  h.seq = syn ? 0 : next_seq_;
  h.ack = expected_seq_;
  h.syn = syn;
  h.fin = fin;
  h.ack_flag = ack;
  h.window = static_cast<std::uint16_t>(config_.window_segments);

  net::IpHeader ip;
  ip.protocol = net::to_u8(net::IpProto::kTcp);
  ip.dst = peer_;
  Packet p(ip, h.encode({}));
  p.set_base_payload_size(p.payload().size());
  host_.send_ip(std::move(p));
}

void StreamSocket::handle_segment(const StreamHeader& header,
                                  std::vector<std::uint8_t> data,
                                  IpAddress src) {
  switch (state_) {
    case State::kClosed:
      return;
    case State::kListen: {
      if (!header.syn) return;
      peer_ = src;
      peer_port_ = header.src_port;
      expected_seq_ = 1;  // peer's SYN consumed seq 0
      state_ = State::kEstablished;
      send_control(/*syn=*/true, /*fin=*/false, /*ack=*/true);  // SYN-ACK
      if (on_connected) on_connected();
      return;
    }
    case State::kSynSent: {
      if (!(header.syn && header.ack_flag)) return;
      expected_seq_ = 1;
      state_ = State::kEstablished;
      rto_.cancel();
      retries_ = 0;
      if (on_connected) on_connected();
      pump();
      return;
    }
    case State::kEstablished:
    case State::kFinWait:
    case State::kClosedByPeer:
      break;
  }

  // A retransmitted SYN means our SYN-ACK was lost: answer it again.
  if (header.syn && !header.ack_flag) {
    send_control(/*syn=*/true, /*fin=*/false, /*ack=*/true);
    return;
  }

  // ---- Ack processing (sender side) ----
  if (header.ack_flag) {
    bool progress = false;
    while (!in_flight_.empty()) {
      const Segment& front = in_flight_.front();
      const std::uint32_t end =
          front.seq + (front.fin ? 1u
                                 : static_cast<std::uint32_t>(front.data.size()));
      if (header.ack < end) break;
      bytes_acked_ += front.data.size();
      if (front.fin) {
        state_ = State::kClosed;
        rto_.cancel();
        if (on_closed) on_closed();
      }
      in_flight_.pop_front();
      progress = true;
    }
    if (progress) {
      retries_ = 0;
      rto_.cancel();
      if (!in_flight_.empty()) rto_.arm(config_.retransmit_timeout);
      if (state_ == State::kEstablished || state_ == State::kFinWait) {
        pump();
      }
    }
  }

  // ---- Data / FIN (receiver side) ----
  const bool carries = !data.empty() || header.fin;
  if (!carries) return;

  if (header.seq == expected_seq_) {
    if (!data.empty()) {
      expected_seq_ += static_cast<std::uint32_t>(data.size());
      bytes_received_ += data.size();
      if (on_data) on_data(data);
    }
    if (header.fin) {
      expected_seq_ += 1;
      peer_fin_seen_ = true;
      if (state_ == State::kEstablished) state_ = State::kClosedByPeer;
      if (on_closed) on_closed();
    }
    deliver_in_order();
  } else if (header.seq > expected_seq_ && !data.empty()) {
    out_of_order_.emplace(header.seq, std::move(data));
  }
  // Duplicates fall through: the ack below repairs the sender's view.
  send_control(/*syn=*/false, /*fin=*/false, /*ack=*/true);
}

void StreamSocket::deliver_in_order() {
  auto it = out_of_order_.find(expected_seq_);
  while (it != out_of_order_.end()) {
    auto data = std::move(it->second);
    out_of_order_.erase(it);
    expected_seq_ += static_cast<std::uint32_t>(data.size());
    bytes_received_ += data.size();
    if (on_data) on_data(data);
    it = out_of_order_.find(expected_seq_);
  }
}

void StreamSocket::on_timeout() {
  if (state_ == State::kSynSent) {
    if (++retries_ > config_.max_retries) {
      state_ = State::kClosed;
      if (on_closed) on_closed();
      return;
    }
    send_control(/*syn=*/true, /*fin=*/false, /*ack=*/false);
    rto_.arm(config_.retransmit_timeout);
    return;
  }
  if (in_flight_.empty()) return;
  if (++retries_ > config_.max_retries) {
    state_ = State::kClosed;
    if (on_closed) on_closed();
    return;
  }
  // Go-back-N: resend everything outstanding.
  for (const Segment& segment : in_flight_) {
    ++retransmissions_;
    transmit_segment(segment);
  }
  rto_.arm(config_.retransmit_timeout);
}

}  // namespace mhrp::node
