// A minimal reliable byte-stream transport ("TCP-lite") riding the
// simulated IP stack: SYN/SYN-ACK handshake, cumulative acknowledgments,
// go-back-N retransmission, FIN teardown, 20-byte TCP-shaped header.
//
// Its purpose in this reproduction is the paper's headline benefit made
// concrete: because MHRP keeps the mobile host's address constant,
// transport connections identified by (addr, port) pairs survive
// movement — "currently running network applications must usually be
// restarted" (paper §1) is exactly what this transport shows NOT
// happening. The transport itself knows nothing about mobility.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "node/host.hpp"
#include "sim/timer.hpp"

namespace mhrp::node {

/// The 20-octet segment header (TCP-shaped).
struct StreamHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  std::uint16_t window = 0;

  static constexpr std::size_t kSize = 20;

  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> data) const;
  /// Decodes the header; `data` receives the payload bytes. Validates
  /// the checksum. Throws util::CodecError.
  static StreamHeader decode(std::span<const std::uint8_t> wire,
                             std::vector<std::uint8_t>* data);
};

/// One endpoint of a reliable stream. Active side calls connect();
/// passive side calls listen() and accepts the first SYN.
class StreamSocket {
 public:
  enum class State {
    kClosed,
    kListen,
    kSynSent,
    kEstablished,
    kFinWait,   // we sent FIN, awaiting its ack
    kClosedByPeer,
  };

  struct Config {
    std::size_t segment_size = 512;
    std::size_t window_segments = 8;
    sim::Time retransmit_timeout = sim::millis(800);
    int max_retries = 12;
  };

  StreamSocket(Host& host, std::uint16_t local_port);
  ~StreamSocket();

  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  void set_config(const Config& config) { config_ = config; }

  /// Passive open: accept the first incoming SYN on the local port.
  void listen();

  /// Active open.
  void connect(net::IpAddress peer, std::uint16_t peer_port);

  /// Queue bytes for reliable in-order delivery. Returns the number of
  /// bytes accepted (all of them; the send buffer is unbounded here).
  std::size_t send(std::span<const std::uint8_t> data);

  /// Send FIN after everything queued has been delivered.
  void close();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const {
    return state_ == State::kEstablished;
  }
  /// Bytes acknowledged by the peer so far.
  [[nodiscard]] std::uint64_t bytes_acked() const { return bytes_acked_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }

  /// In-order application data.
  std::function<void(std::span<const std::uint8_t>)> on_data;
  std::function<void()> on_connected;
  std::function<void()> on_closed;

 private:
  struct Segment {
    std::uint32_t seq = 0;
    std::vector<std::uint8_t> data;
    bool fin = false;
  };

  void on_packet(net::Packet& packet, net::Interface& iface);
  void handle_segment(const StreamHeader& header,
                      std::vector<std::uint8_t> data, net::IpAddress src);
  void pump();  // move queued bytes into the window
  void transmit_segment(const Segment& segment);
  void send_control(bool syn, bool fin, bool ack);
  void on_timeout();
  void deliver_in_order();

  Host& host_;
  std::uint16_t local_port_;
  net::IpAddress peer_;
  std::uint16_t peer_port_ = 0;
  Config config_;
  State state_ = State::kClosed;

  // Send side.
  std::deque<std::uint8_t> send_buffer_;
  std::deque<Segment> in_flight_;
  std::uint32_t next_seq_ = 1;   // seq of the next NEW segment
  bool fin_queued_ = false;
  std::uint64_t bytes_acked_ = 0;
  std::uint64_t retransmissions_ = 0;
  int retries_ = 0;
  sim::OneShotTimer rto_;

  // Receive side.
  std::uint32_t expected_seq_ = 1;
  std::map<std::uint32_t, std::vector<std::uint8_t>> out_of_order_;
  std::uint64_t bytes_received_ = 0;
  bool peer_fin_seen_ = false;
};

}  // namespace mhrp::node
