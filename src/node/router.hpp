// Router: a Node with packet forwarding enabled. Routers in the paper's
// Figure 1 (R1..R4) are these, optionally augmented with MHRP agent roles
// from src/core.
#pragma once

#include "node/node.hpp"

namespace mhrp::node {

class Router : public Node {
 public:
  Router(sim::Executive& sim, std::string name)
      : Node(sim, std::move(name)) {
    set_forwarding(true);
  }
};

}  // namespace mhrp::node
