// Host: a Node with end-system conveniences — ICMP ping with RTT
// callbacks and UDP request/response helpers. Workloads in the scenario
// layer and the examples drive traffic through this API.
#pragma once

#include <functional>
#include <map>

#include "node/node.hpp"

namespace mhrp::node {

class Host : public Node {
 public:
  Host(sim::Executive& sim, std::string name);

  /// Result of one ping attempt.
  struct PingResult {
    bool replied = false;
    sim::Time rtt = 0;
    std::uint16_t sequence = 0;
  };
  using PingCallback = std::function<void(const PingResult&)>;

  /// Send an ICMP echo request; `callback` fires on the reply or after
  /// `timeout` with replied=false. Returns the sequence number used.
  std::uint16_t ping(net::IpAddress dst, PingCallback callback,
                     std::size_t payload_size = 32,
                     sim::Time timeout = sim::seconds(5));

  /// Run a UDP echo responder on `port`.
  void start_udp_echo(std::uint16_t port);

  /// Fire-and-forget datagram from an ephemeral port.
  void udp_send(net::IpAddress dst, std::uint16_t dst_port,
                std::span<const std::uint8_t> data);

 private:
  struct PendingPing {
    PingCallback callback;
    sim::Time sent_at = 0;
    sim::EventHandle timeout;
  };

  bool on_icmp(const net::IcmpMessage& msg, const net::IpHeader& header,
               net::Interface& iface);

  std::uint16_t ping_ident_;
  std::uint16_t next_ping_seq_ = 1;
  std::uint16_t next_ephemeral_port_ = 49152;
  std::map<std::uint16_t, PendingPing> pending_pings_;  // by sequence
};

}  // namespace mhrp::node
