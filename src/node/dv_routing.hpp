// A small RIP-like distance-vector routing service.
//
// Two purposes in this reproduction: (1) it gives the substrate a live,
// convergent routing protocol instead of only statically installed routes;
// (2) it implements the host-specific-route alternative of paper §3 — a
// home agent may advertise a /32 for a disconnected mobile host so one
// agent can cover a whole routing domain, withdrawing it when the host
// returns. Such routes are kept inside the domain (they are never
// summarized here, mirroring the paper's "would not be propagated outside
// that routing domain").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "node/node.hpp"
#include "sim/timer.hpp"

namespace mhrp::node {

/// Tunables for the distance-vector service.
struct DvConfig {
  sim::Time update_period = sim::seconds(10);
  sim::Time route_lifetime = sim::seconds(30);
  bool split_horizon = true;
};

class DistanceVector {
 public:
  static constexpr std::uint16_t kPort = 520;
  static constexpr int kInfinity = 16;

  using Config = DvConfig;

  explicit DistanceVector(Node& node, Config config = Config());

  /// Begin periodic advertisement (first update goes out immediately).
  void start();
  void stop();

  /// Advertise (or withdraw) a host-specific /32 route for `addr`,
  /// originating at this node with metric 0 (paper §3).
  void advertise_host_route(net::IpAddress addr, bool enabled);

  /// Send one update on every interface now (tests use this to step
  /// convergence deterministically).
  void send_updates();

  [[nodiscard]] std::uint64_t updates_sent() const { return updates_sent_; }
  [[nodiscard]] std::uint64_t updates_received() const {
    return updates_received_;
  }

 private:
  struct Learned {
    int metric = kInfinity;
    net::IpAddress from;           // advertising neighbor
    net::Interface* iface = nullptr;
    sim::Time heard_at = 0;
  };

  void on_update(const net::UdpDatagram& datagram, const net::IpHeader& header,
                 net::Interface& iface);
  void expire_stale();
  [[nodiscard]] std::vector<std::uint8_t> encode_table(
      const net::Interface& out_iface) const;

  Node& node_;
  Config config_;
  sim::PeriodicTimer timer_;
  std::map<net::Prefix, Learned> learned_;
  std::set<net::IpAddress> host_routes_;  // locally originated /32s
  // Recently withdrawn host routes, poisoned (metric = infinity) for a
  // few update rounds so neighbors flush immediately instead of waiting
  // for expiry. Value = remaining rounds.
  std::map<net::IpAddress, int> withdrawing_;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t updates_received_ = 0;
};

}  // namespace mhrp::node
