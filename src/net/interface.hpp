// A network interface: the attachment point between a node and a link.
//
// Mobility is modeled faithfully at this layer: when a mobile host moves,
// its (wireless) interface detaches from one Link and attaches to another
// — nothing about its IP address changes, which is the whole point of the
// paper.
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"

namespace mhrp::net {

class Link;

/// Receives frames delivered to an interface. Implemented by node::Node.
class FrameSink {
 public:
  virtual void on_frame(class Interface& iface, Frame frame) = 0;

  /// The attached link of `iface` transitioned up or down (fault plane).
  /// Default: ignore — carrier-sensing consumers (the DV routing
  /// process, via node::Node::on_interface_state) override the node's
  /// forwarding of this.
  virtual void on_link_state(class Interface& iface, bool up) {
    (void)iface;
    (void)up;
  }

 protected:
  ~FrameSink() = default;
};

class Interface {
 public:
  /// Creates an interface with a globally unique MAC address.
  Interface(FrameSink& sink, std::string name);

  Interface(const Interface&) = delete;
  Interface& operator=(const Interface&) = delete;
  ~Interface();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MacAddress mac() const { return mac_; }

  void configure(IpAddress ip, int prefix_length) {
    ip_ = ip;
    prefix_length_ = prefix_length;
  }

  [[nodiscard]] IpAddress ip() const { return ip_; }
  [[nodiscard]] Prefix prefix() const { return Prefix(ip_, prefix_length_); }
  [[nodiscard]] int prefix_length() const { return prefix_length_; }

  [[nodiscard]] Link* link() const { return link_; }
  [[nodiscard]] bool attached() const { return link_ != nullptr; }

  /// The executive shard of the owning node (0 single-threaded). Links
  /// use this to decide whether a delivery is shard-local or must travel
  /// as a cross-shard message. Set by Node::add_interface.
  [[nodiscard]] std::uint32_t shard() const { return shard_; }
  void set_shard(std::uint32_t shard) { shard_ = shard; }

  /// Transmit a frame onto the attached link. Dropped silently when
  /// detached (a radio out of range of any cell).
  void send(Frame frame);

  /// Called by the link to hand a received frame to the owning node.
  void deliver(Frame frame) { sink_.on_frame(*this, std::move(frame)); }

  /// Called by the link (on this interface's shard) when its carrier
  /// changes; forwards to the owning node.
  void notify_link_state(bool up) { sink_.on_link_state(*this, up); }

 private:
  friend class Link;  // maintains link_ on attach/detach

  FrameSink& sink_;
  std::string name_;
  MacAddress mac_;
  IpAddress ip_;
  int prefix_length_ = 24;
  Link* link_ = nullptr;
  std::uint32_t shard_ = 0;
};

}  // namespace mhrp::net
