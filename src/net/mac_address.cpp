#include "net/mac_address.hpp"

#include <cstdio>
#include <ostream>

namespace mhrp::net {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((raw_ >> 40) & 0xFF),
                static_cast<unsigned>((raw_ >> 32) & 0xFF),
                static_cast<unsigned>((raw_ >> 24) & 0xFF),
                static_cast<unsigned>((raw_ >> 16) & 0xFF),
                static_cast<unsigned>((raw_ >> 8) & 0xFF),
                static_cast<unsigned>(raw_ & 0xFF));
  return buf;
}

std::ostream& operator<<(std::ostream& os, MacAddress mac) {
  return os << mac.to_string();
}

}  // namespace mhrp::net
