// Link-layer (Ethernet-style) addresses. Needed because MHRP's home-agent
// interception works at this layer: the home agent answers ARP for absent
// mobile hosts with its own MAC (proxy ARP) and repairs neighbor caches
// with gratuitous ARP replies (paper §2).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace mhrp::net {

/// A 48-bit hardware address stored in the low bits of a u64.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint64_t raw)
      : raw_(raw & 0xFFFFFFFFFFFFull) {}

  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }
  [[nodiscard]] constexpr bool is_broadcast() const {
    return raw_ == 0xFFFFFFFFFFFFull;
  }
  [[nodiscard]] constexpr bool is_unspecified() const { return raw_ == 0; }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::uint64_t raw_ = 0;
};

inline constexpr MacAddress kMacBroadcast{0xFFFFFFFFFFFFull};

std::ostream& operator<<(std::ostream& os, MacAddress mac);

}  // namespace mhrp::net

template <>
struct std::hash<mhrp::net::MacAddress> {
  std::size_t operator()(const mhrp::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>()(m.raw());
  }
};
