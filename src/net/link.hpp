// A Link is a broadcast domain (LAN segment, wireless cell, or a
// point-to-point circuit, which is just a two-member domain). Frames are
// delivered after propagation latency plus serialization delay, with
// optional stochastic impairments; delivery is by destination MAC, or to
// every member for the broadcast address.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/interface.hpp"
#include "sim/executive.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"

namespace mhrp::net {

class Link;

/// Stochastic wire impairments applied to every frame a link carries,
/// drawn from one seeded RNG so a run is exactly reproducible. The draw
/// order per transmitted frame — loss, jitter, reorder, duplicate — is
/// part of the deterministic-replay contract.
struct LinkImpairments {
  /// Independent per-frame drop probability.
  double loss = 0.0;
  /// Fixed extra one-way delay added to every frame.
  sim::Time extra_delay = 0;
  /// Uniform extra delay in [0, jitter], drawn per frame.
  sim::Time jitter = 0;
  /// Probability a carried frame is delivered twice.
  double duplicate = 0.0;
  /// Probability a frame is held back by reorder_hold, letting frames
  /// sent after it arrive first.
  double reorder = 0.0;
  sim::Time reorder_hold = sim::millis(10);

  [[nodiscard]] bool any() const {
    return loss > 0.0 || extra_delay > 0 || jitter > 0 || duplicate > 0.0 ||
           reorder > 0.0;
  }
};

/// Observes every frame a Link actually carries (after the up/loss
/// checks), at the moment of transmission. The audit layer
/// (analysis::PacketAuditor) attaches through this to validate wire
/// invariants at every hop; `now` is the simulated transmission time.
class LinkObserver {
 public:
  LinkObserver() = default;
  LinkObserver(const LinkObserver&) = default;
  LinkObserver& operator=(const LinkObserver&) = default;
  LinkObserver(LinkObserver&&) = default;
  LinkObserver& operator=(LinkObserver&&) = default;
  virtual ~LinkObserver() = default;
  virtual void on_transmit(const Link& link, const Frame& frame,
                           sim::Time now) = 0;
  /// The link failed (`up` false) or recovered (`up` true) — the
  /// lifecycle events the fault plane injects.
  virtual void on_state_changed(const Link& link, bool up, sim::Time now) {
    (void)link;
    (void)up;
    (void)now;
  }
  /// The link stopped observing through this observer — it was destroyed
  /// or another observer replaced this one. `link` may be mid-destruction;
  /// only its address may be used.
  virtual void on_detached(Link& link) { (void)link; }
};

class Link {
 public:
  /// `bandwidth_bps` of 0 means infinite (no serialization delay). `sim`
  /// is the DRIVER executive (for a sharded run, the ShardedExecutive
  /// itself, not a shard view): a backbone link is transmitted onto from
  /// both endpoint shards, and the driver routes each call through the
  /// calling shard's clock and queue. A delivery whose receiving
  /// interface lives on another shard travels as a cross-shard post().
  Link(sim::Executive& sim, std::string name, sim::Time latency,
       std::uint64_t bandwidth_bps = 0);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;
  ~Link();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Time latency() const { return latency_; }

  /// Attach an interface to this link; detaches it from any previous
  /// link first (this is how a mobile host changes cells).
  void attach(Interface& iface);
  void detach(Interface& iface);
  [[nodiscard]] bool has_member(const Interface& iface) const;
  [[nodiscard]] const std::vector<Interface*>& members() const {
    return members_;
  }

  // ---- Lifecycle (the fault plane's injection points) ----

  /// Take the link down: a cut circuit or a partition. Frames sent while
  /// down are lost, and frames already in flight die at arrival — nothing
  /// is delivered through a down link. Idempotent.
  void fail();
  /// Bring the link back up. Idempotent.
  void recover();
  [[nodiscard]] bool is_up() const {
    return up_.load(std::memory_order_relaxed);
  }

  /// Install a stochastic impairment model. `rng` must outlive this link
  /// or be released with clear_impairments() first.
  void set_impairments(const LinkImpairments& impairments, util::Rng& rng);
  /// Remove the impairment model (and the link's reference to its RNG).
  void clear_impairments();
  [[nodiscard]] const LinkImpairments& impairments() const {
    return impairments_;
  }

  /// Transmit from `from` (which must be attached). Schedules delivery to
  /// the matching member(s) after the link delay.
  MHRP_HOT_PATH void transmit(const Interface& from, Frame frame);

  /// Install (or, with nullptr, remove) the transmission observer. A
  /// replaced observer, and the observer of a link being destroyed, get
  /// an on_detached() callback, so observers never hold dangling links.
  void set_observer(LinkObserver* observer) {
    if (observer_ != nullptr && observer_ != observer) {
      observer_->on_detached(*this);
    }
    observer_ = observer;
  }
  [[nodiscard]] LinkObserver* observer() const { return observer_; }

  // Traffic counters for metrics. Relaxed atomics: a backbone link is
  // transmitted onto from both endpoint shards concurrently, and counters
  // are only ever read for reporting (snapshots happen quiesced).
  [[nodiscard]] std::uint64_t frames_carried() const {
    return frames_carried_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_carried() const {
    return bytes_carried_.load(std::memory_order_relaxed);
  }
  /// Frames lost to a down link: sent while down, or in flight when it
  /// failed ("packets lost per outage" feeds on this).
  [[nodiscard]] std::uint64_t frames_dropped_down() const {
    return frames_dropped_down_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_dropped_loss() const {
    return frames_dropped_loss_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_duplicated() const {
    return frames_duplicated_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] MHRP_HOT_PATH sim::Time delay_for(
      std::size_t frame_bytes) const;
  MHRP_HOT_PATH void schedule_delivery(Interface* member, Frame frame,
                                       sim::Time delay);
  void notify_members(bool up);

  sim::Executive& sim_;
  std::string name_;
  sim::Time latency_;
  std::uint64_t bandwidth_bps_;
  // Membership is setup-time for cross-shard links; only shard-local
  // links (wireless cells) may attach/detach mid-run. The scenario layer
  // owns that invariant (DESIGN.md §13).
  std::vector<Interface*> members_;
  LinkImpairments impairments_;
  util::Rng* rng_ = nullptr;
  LinkObserver* observer_ = nullptr;
  std::atomic<bool> up_{true};
  std::atomic<std::uint64_t> frames_carried_{0};
  std::atomic<std::uint64_t> bytes_carried_{0};
  std::atomic<std::uint64_t> frames_dropped_down_{0};
  std::atomic<std::uint64_t> frames_dropped_loss_{0};
  std::atomic<std::uint64_t> frames_duplicated_{0};
};

}  // namespace mhrp::net
