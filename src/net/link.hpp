// A Link is a broadcast domain (LAN segment, wireless cell, or a
// point-to-point circuit, which is just a two-member domain). Frames are
// delivered after propagation latency plus serialization delay, with
// optional loss; delivery is by destination MAC, or to every member for
// the broadcast address.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/interface.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mhrp::net {

class Link;

/// Observes every frame a Link actually carries (after the up/loss
/// checks), at the moment of transmission. The audit layer
/// (analysis::PacketAuditor) attaches through this to validate wire
/// invariants at every hop; `now` is the simulated transmission time.
class LinkObserver {
 public:
  LinkObserver() = default;
  LinkObserver(const LinkObserver&) = default;
  LinkObserver& operator=(const LinkObserver&) = default;
  LinkObserver(LinkObserver&&) = default;
  LinkObserver& operator=(LinkObserver&&) = default;
  virtual ~LinkObserver() = default;
  virtual void on_transmit(const Link& link, const Frame& frame,
                           sim::Time now) = 0;
  /// The link stopped observing through this observer — it was destroyed
  /// or another observer replaced this one. `link` may be mid-destruction;
  /// only its address may be used.
  virtual void on_detached(Link& link) { (void)link; }
};

class Link {
 public:
  /// `bandwidth_bps` of 0 means infinite (no serialization delay).
  Link(sim::Simulator& sim, std::string name, sim::Time latency,
       std::uint64_t bandwidth_bps = 0);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;
  ~Link();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Time latency() const { return latency_; }

  /// Attach an interface to this link; detaches it from any previous
  /// link first (this is how a mobile host changes cells).
  void attach(Interface& iface);
  void detach(Interface& iface);
  [[nodiscard]] bool has_member(const Interface& iface) const;
  [[nodiscard]] const std::vector<Interface*>& members() const {
    return members_;
  }

  /// Independent per-frame drop probability, drawn from `rng`, which must
  /// outlive this link (or be cleared with clear_loss() first).
  void set_loss(double probability, util::Rng& rng) {
    loss_probability_ = probability;
    rng_ = &rng;
  }

  /// Remove the loss model (and the link's reference to its RNG).
  void clear_loss() {
    loss_probability_ = 0.0;
    rng_ = nullptr;
  }

  /// Administratively disable/enable the link (models a down circuit,
  /// used by the robustness experiments). Frames sent while down are lost.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool is_up() const { return up_; }

  /// Transmit from `from` (which must be attached). Schedules delivery to
  /// the matching member(s) after the link delay.
  void transmit(const Interface& from, Frame frame);

  /// Install (or, with nullptr, remove) the transmission observer. A
  /// replaced observer, and the observer of a link being destroyed, get
  /// an on_detached() callback, so observers never hold dangling links.
  void set_observer(LinkObserver* observer) {
    if (observer_ != nullptr && observer_ != observer) {
      observer_->on_detached(*this);
    }
    observer_ = observer;
  }
  [[nodiscard]] LinkObserver* observer() const { return observer_; }

  // Traffic counters for metrics.
  [[nodiscard]] std::uint64_t frames_carried() const { return frames_carried_; }
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_carried_; }

 private:
  [[nodiscard]] sim::Time delay_for(std::size_t frame_bytes) const;

  sim::Simulator& sim_;
  std::string name_;
  sim::Time latency_;
  std::uint64_t bandwidth_bps_;
  std::vector<Interface*> members_;
  double loss_probability_ = 0.0;
  util::Rng* rng_ = nullptr;
  LinkObserver* observer_ = nullptr;
  bool up_ = true;
  std::uint64_t frames_carried_ = 0;
  std::uint64_t bytes_carried_ = 0;
};

}  // namespace mhrp::net
