#include "net/interface.hpp"

#include "net/link.hpp"

namespace mhrp::net {

namespace {
MacAddress next_mac() {
  static std::uint64_t counter = 0;
  // Locally administered unicast OUI 02:00:00.
  return MacAddress(0x020000000000ull | ++counter);
}
}  // namespace

Interface::Interface(FrameSink& sink, std::string name)
    : sink_(sink), name_(std::move(name)), mac_(next_mac()) {}

Interface::~Interface() {
  if (link_ != nullptr) link_->detach(*this);
}

void Interface::send(Frame frame) {
  if (link_ != nullptr) link_->transmit(*this, std::move(frame));
}

}  // namespace mhrp::net
