// UDP header codec (RFC 768). The registration/control messages of MHRP
// and of the baseline protocols, the distance-vector routing updates, and
// the benchmark workloads all ride on this.
#pragma once

#include <cstdint>
#include <vector>

#include "util/byte_buffer.hpp"

namespace mhrp::net {

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  static constexpr std::size_t kSize = 8;

  bool operator==(const UdpHeader&) const = default;
};

/// Encode a UDP datagram: 8-byte header followed by `data`. The checksum
/// is computed over the datagram body (the simulator does not model the
/// IPv4 pseudo-header; corruption never occurs in-sim, and the field is
/// optional in real UDP/IPv4).
[[nodiscard]] std::vector<std::uint8_t> encode_udp(
    const UdpHeader& header, std::span<const std::uint8_t> data);

/// Decode; returns the header and positions `payload` at the data bytes.
struct UdpDatagram {
  UdpHeader header;
  std::vector<std::uint8_t> data;
};
[[nodiscard]] UdpDatagram decode_udp(std::span<const std::uint8_t> wire);

}  // namespace mhrp::net
