#include "net/ip_header.hpp"

#include "util/checksum.hpp"

namespace mhrp::net {

IpOption make_lsrr_option(const std::vector<IpAddress>& route,
                          std::size_t pointer_index) {
  IpOption opt;
  opt.kind = IpOptionKind::kLooseSourceRoute;
  // RFC 791 LSRR data layout after (type, length): pointer octet, then the
  // route list. Pointer is relative to the start of the option and is at
  // minimum 4 (first route slot).
  opt.data.reserve(1 + route.size() * 4);
  opt.data.push_back(static_cast<std::uint8_t>(4 + pointer_index * 4));
  for (IpAddress a : route) {
    opt.data.push_back(static_cast<std::uint8_t>(a.raw() >> 24));
    opt.data.push_back(static_cast<std::uint8_t>(a.raw() >> 16));
    opt.data.push_back(static_cast<std::uint8_t>(a.raw() >> 8));
    opt.data.push_back(static_cast<std::uint8_t>(a.raw()));
  }
  return opt;
}

LsrrView parse_lsrr_option(const IpOption& option) {
  if (option.kind != IpOptionKind::kLooseSourceRoute || option.data.empty() ||
      (option.data.size() - 1) % 4 != 0) {
    throw util::CodecError("malformed LSRR option");
  }
  LsrrView view;
  std::uint8_t pointer = option.data[0];
  if (pointer < 4 || (pointer - 4) % 4 != 0) {
    throw util::CodecError("malformed LSRR pointer");
  }
  view.pointer_index = static_cast<std::size_t>(pointer - 4) / 4;
  for (std::size_t i = 1; i + 3 < option.data.size(); i += 4) {
    view.route.emplace_back((std::uint32_t(option.data[i]) << 24) |
                            (std::uint32_t(option.data[i + 1]) << 16) |
                            (std::uint32_t(option.data[i + 2]) << 8) |
                            std::uint32_t(option.data[i + 3]));
  }
  return view;
}

std::size_t IpHeader::encoded_size() const {
  std::size_t opts = 0;
  for (const auto& o : options) opts += o.encoded_size();
  return 20 + (opts + 3) / 4 * 4;  // options padded to 32-bit words
}

void IpHeader::encode(util::ByteWriter& w, std::size_t payload_size) const {
  const std::size_t header_size = encoded_size();
  const std::size_t total = header_size + payload_size;
  if (total > 0xFFFF) throw util::CodecError("IP datagram too long");
  const std::size_t start = w.size();

  w.u8(static_cast<std::uint8_t>((4u << 4) | (header_size / 4)));
  w.u8(tos);
  w.u16(static_cast<std::uint16_t>(total));
  w.u16(identification);
  std::uint16_t frag = fragment_offset & 0x1FFF;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  w.u16(frag);
  w.u8(ttl);
  w.u8(protocol);
  const std::size_t checksum_at = w.size();
  w.u16(0);  // checksum placeholder
  w.u32(src.raw());
  w.u32(dst.raw());

  std::size_t opts_written = 0;
  for (const auto& o : options) {
    w.u8(static_cast<std::uint8_t>(o.kind));
    if (o.encoded_size() > 1) {
      w.u8(static_cast<std::uint8_t>(o.encoded_size()));
      w.bytes(o.data);
    }
    opts_written += o.encoded_size();
  }
  // Pad options region to the 4-byte boundary declared in IHL.
  w.zeros(header_size - 20 - opts_written);

  w.patch_u16(checksum_at,
              util::internet_checksum(w.view().subspan(start, header_size)));
}

IpHeader IpHeader::decode(util::ByteReader& reader, std::size_t* total_length) {
  const std::size_t start = reader.position();
  std::uint8_t ver_ihl = reader.u8();
  if ((ver_ihl >> 4) != 4) throw util::CodecError("not IPv4");
  const std::size_t header_size = static_cast<std::size_t>(ver_ihl & 0x0F) * 4;
  if (header_size < 20) throw util::CodecError("IHL too small");

  IpHeader h;
  h.tos = reader.u8();
  std::uint16_t total = reader.u16();
  if (total < header_size) throw util::CodecError("IP total length < header");
  if (total_length != nullptr) *total_length = total;
  h.identification = reader.u16();
  std::uint16_t frag = reader.u16();
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1FFF;
  h.ttl = reader.u8();
  h.protocol = reader.u8();
  reader.skip(2);  // checksum, verified below over the whole header
  h.src = IpAddress(reader.u32());
  h.dst = IpAddress(reader.u32());

  std::size_t opts_remaining = header_size - 20;
  while (opts_remaining > 0) {
    auto kind = static_cast<IpOptionKind>(reader.u8());
    --opts_remaining;
    if (kind == IpOptionKind::kEndOfList) {
      reader.skip(opts_remaining);  // rest is padding
      opts_remaining = 0;
      break;
    }
    if (kind == IpOptionKind::kNoOperation) continue;
    if (opts_remaining < 1) throw util::CodecError("truncated IP option");
    std::uint8_t len = reader.u8();
    --opts_remaining;
    if (len < 2 || static_cast<std::size_t>(len - 2) > opts_remaining) {
      throw util::CodecError("bad IP option length");
    }
    IpOption o;
    o.kind = kind;
    o.data = reader.bytes(len - 2);
    opts_remaining -= len - 2;
    h.options.push_back(std::move(o));
  }

  // Verify the header checksum over the full encoded header.
  // reader.position() is now start + header_size.
  // (We re-slice from the underlying buffer via rest()'s complement.)
  // ByteReader does not expose the base span directly, so checksum
  // verification happens in Packet::deserialize which holds the buffer.
  (void)start;
  return h;
}

const IpOption* IpHeader::find_option(IpOptionKind kind) const {
  for (const auto& o : options) {
    if (o.kind == kind) return &o;
  }
  return nullptr;
}

IpOption* IpHeader::find_option(IpOptionKind kind) {
  for (auto& o : options) {
    if (o.kind == kind) return &o;
  }
  return nullptr;
}

}  // namespace mhrp::net
