#include "net/icmp.hpp"

#include "util/checksum.hpp"

namespace mhrp::net {

namespace {

// Flag bits in the location update "code"-adjacent body word.
constexpr std::uint32_t kLocUpdateInvalidate = 0x1;

// Agent advertisement flag bits.
constexpr std::uint32_t kAdvHomeAgent = 0x1;
constexpr std::uint32_t kAdvForeignAgent = 0x2;

struct Encoder {
  util::ByteWriter w;

  void begin(IcmpType type, std::uint8_t code) {
    w.u8(static_cast<std::uint8_t>(type));
    w.u8(code);
    w.u16(0);  // checksum patched at the end
  }

  std::vector<std::uint8_t> finish() {
    w.patch_u16(2, util::internet_checksum(w.view()));
    return w.take();
  }
};

}  // namespace

std::vector<std::uint8_t> encode_icmp(const IcmpMessage& msg) {
  Encoder e;
  std::visit(
      [&e](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, IcmpEcho>) {
          e.begin(m.is_request ? IcmpType::kEchoRequest : IcmpType::kEchoReply,
                  0);
          e.w.u16(m.ident);
          e.w.u16(m.sequence);
          e.w.bytes(m.data);
        } else if constexpr (std::is_same_v<T, IcmpUnreachable>) {
          e.begin(IcmpType::kDestUnreachable,
                  static_cast<std::uint8_t>(m.code));
          e.w.u32(0);  // unused
          e.w.bytes(m.quoted);
        } else if constexpr (std::is_same_v<T, IcmpTimeExceeded>) {
          e.begin(IcmpType::kTimeExceeded, 0);
          e.w.u32(0);
          e.w.bytes(m.quoted);
        } else if constexpr (std::is_same_v<T, IcmpRedirect>) {
          e.begin(IcmpType::kRedirect, 1 /* redirect for host */);
          e.w.u32(m.gateway.raw());
          e.w.bytes(m.quoted);
        } else if constexpr (std::is_same_v<T, IcmpAgentAdvertisement>) {
          e.begin(IcmpType::kAgentAdvertisement, 0);
          e.w.u8(1);   // number of addresses
          e.w.u8(3);   // address entry size in 32-bit words (addr + flags + seq)
          e.w.u16(m.lifetime_s);
          e.w.u32(m.agent.raw());
          std::uint32_t flags = 0;
          if (m.offers_home_agent) flags |= kAdvHomeAgent;
          if (m.offers_foreign_agent) flags |= kAdvForeignAgent;
          e.w.u32(flags);
          e.w.u16(m.sequence);
          e.w.u16(0);  // reserved
        } else if constexpr (std::is_same_v<T, IcmpAgentSolicitation>) {
          e.begin(IcmpType::kAgentSolicitation, 0);
          e.w.u32(0);  // reserved
        } else if constexpr (std::is_same_v<T, IcmpLocationUpdate>) {
          e.begin(IcmpType::kLocationUpdate, 0);
          e.w.u32(m.invalidate ? kLocUpdateInvalidate : 0);
          e.w.u32(m.mobile_host.raw());
          e.w.u32(m.foreign_agent.raw());
        } else if constexpr (std::is_same_v<T, IcmpUnknown>) {
          e.begin(static_cast<IcmpType>(m.type), m.code);
          e.w.bytes(m.body);
        }
      },
      msg);
  return e.finish();
}

IcmpMessage decode_icmp(std::span<const std::uint8_t> wire) {
  if (wire.size() < 4) throw util::CodecError("ICMP shorter than 4B");
  if (!util::checksum_ok(wire)) {
    throw util::CodecError("ICMP checksum mismatch");
  }
  util::ByteReader r(wire);
  auto type = static_cast<IcmpType>(r.u8());
  std::uint8_t code = r.u8();
  r.skip(2);  // checksum already verified

  switch (type) {
    case IcmpType::kEchoRequest:
    case IcmpType::kEchoReply: {
      IcmpEcho m;
      m.is_request = type == IcmpType::kEchoRequest;
      m.ident = r.u16();
      m.sequence = r.u16();
      m.data = r.bytes(r.remaining());
      return m;
    }
    case IcmpType::kDestUnreachable: {
      IcmpUnreachable m;
      m.code = static_cast<UnreachCode>(code);
      r.skip(4);
      m.quoted = r.bytes(r.remaining());
      return m;
    }
    case IcmpType::kTimeExceeded: {
      IcmpTimeExceeded m;
      r.skip(4);
      m.quoted = r.bytes(r.remaining());
      return m;
    }
    case IcmpType::kRedirect: {
      IcmpRedirect m;
      m.gateway = IpAddress(r.u32());
      m.quoted = r.bytes(r.remaining());
      return m;
    }
    case IcmpType::kAgentAdvertisement: {
      IcmpAgentAdvertisement m;
      std::uint8_t num = r.u8();
      std::uint8_t entry_size = r.u8();
      if (num != 1 || entry_size != 3) {
        throw util::CodecError("unsupported agent advertisement shape");
      }
      m.lifetime_s = r.u16();
      m.agent = IpAddress(r.u32());
      std::uint32_t flags = r.u32();
      m.offers_home_agent = (flags & kAdvHomeAgent) != 0;
      m.offers_foreign_agent = (flags & kAdvForeignAgent) != 0;
      m.sequence = r.u16();
      r.skip(2);
      return m;
    }
    case IcmpType::kAgentSolicitation: {
      r.skip(4);
      return IcmpAgentSolicitation{};
    }
    case IcmpType::kLocationUpdate: {
      IcmpLocationUpdate m;
      std::uint32_t flags = r.u32();
      m.invalidate = (flags & kLocUpdateInvalidate) != 0;
      m.mobile_host = IpAddress(r.u32());
      m.foreign_agent = IpAddress(r.u32());
      return m;
    }
    default: {
      IcmpUnknown m;
      m.type = static_cast<std::uint8_t>(type);
      m.code = code;
      m.body = r.bytes(r.remaining());
      return m;
    }
  }
}

IcmpType icmp_type_of(const IcmpMessage& msg) {
  return std::visit(
      [](const auto& m) -> IcmpType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, IcmpEcho>) {
          return m.is_request ? IcmpType::kEchoRequest : IcmpType::kEchoReply;
        } else if constexpr (std::is_same_v<T, IcmpUnreachable>) {
          return IcmpType::kDestUnreachable;
        } else if constexpr (std::is_same_v<T, IcmpTimeExceeded>) {
          return IcmpType::kTimeExceeded;
        } else if constexpr (std::is_same_v<T, IcmpRedirect>) {
          return IcmpType::kRedirect;
        } else if constexpr (std::is_same_v<T, IcmpAgentAdvertisement>) {
          return IcmpType::kAgentAdvertisement;
        } else if constexpr (std::is_same_v<T, IcmpAgentSolicitation>) {
          return IcmpType::kAgentSolicitation;
        } else if constexpr (std::is_same_v<T, IcmpLocationUpdate>) {
          return IcmpType::kLocationUpdate;
        } else {
          return static_cast<IcmpType>(m.type);
        }
      },
      msg);
}

}  // namespace mhrp::net
