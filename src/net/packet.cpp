#include "net/packet.hpp"

#include <algorithm>
#include <atomic>

#include "util/checksum.hpp"

namespace mhrp::net {

// Atomic: packets are constructed concurrently by shard workers under
// the sharded executive. Ids are process-unique debugging labels, never
// part of a replay digest, so cross-shard assignment order is free to
// vary between runs.
std::uint64_t Packet::next_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::vector<std::uint8_t> Packet::serialize() const {
  util::ByteWriter w(wire_size());
  serialize_into(w);
  return w.take();
}

void Packet::serialize_into(util::ByteWriter& w) const {
  header_.encode(w, payload_.size());
  w.bytes(payload_);
}

std::vector<std::uint8_t> Packet::serialize_prefix(std::size_t max_bytes) const {
  util::ByteWriter w(std::min(max_bytes, wire_size()));
  header_.encode(w, payload_.size());
  if (w.size() < max_bytes) {
    const std::size_t room = max_bytes - w.size();
    w.bytes(std::span(payload_).first(std::min(payload_.size(), room)));
  }
  w.truncate(max_bytes);  // header alone may exceed a tiny limit
  return w.take();
}

Packet Packet::deserialize(std::span<const std::uint8_t> wire) {
  if (wire.size() < 20) throw util::CodecError("datagram shorter than 20B");
  const std::size_t header_size = static_cast<std::size_t>(wire[0] & 0x0F) * 4;
  if (header_size < 20 || header_size > wire.size()) {
    throw util::CodecError("bad IHL");
  }
  if (!util::checksum_ok(wire.subspan(0, header_size))) {
    throw util::CodecError("IP header checksum mismatch");
  }
  util::ByteReader r(wire);
  std::size_t total_length = 0;
  IpHeader h = IpHeader::decode(r, &total_length);
  if (total_length > wire.size()) throw util::CodecError("truncated datagram");
  Packet p(std::move(h));
  p.payload() = r.bytes(total_length - header_size);
  return p;
}

}  // namespace mhrp::net
