// The IPv4 header, encoded byte-exactly (RFC 791), including IP options.
//
// Options matter to this reproduction: the IBM baseline (paper §7) carries
// a Loose Source Route and Record (LSRR) option in every packet, and the
// paper's scalability argument is that option-bearing packets fall off the
// router fast path. Exact option encoding lets bench_overhead and
// bench_lsrr_slowpath measure, not assert, those costs.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip_address.hpp"
#include "net/protocols.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::net {

/// IP option kinds used in the reproduction.
enum class IpOptionKind : std::uint8_t {
  kEndOfList = 0,
  kNoOperation = 1,
  kLooseSourceRoute = 131,  // LSRR, used by the IBM baseline
};

/// One IP option. Single-octet options (EOL, NOP) have empty data and
/// encode as one byte; all others encode as kind, length, data.
struct IpOption {
  IpOptionKind kind = IpOptionKind::kNoOperation;
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::size_t encoded_size() const {
    return (kind == IpOptionKind::kEndOfList ||
            kind == IpOptionKind::kNoOperation)
               ? 1
               : 2 + data.size();
  }

  bool operator==(const IpOption&) const = default;
};

/// Builds an LSRR option whose route list has room for `slots` addresses,
/// with `filled` of them already set. The pointer field starts at the
/// first unfilled slot, per RFC 791.
[[nodiscard]] IpOption make_lsrr_option(const std::vector<IpAddress>& route,
                                        std::size_t pointer_index = 0);

/// Parsed view of an LSRR option: the recorded route and the index of the
/// next slot the pointer designates.
struct LsrrView {
  std::vector<IpAddress> route;
  std::size_t pointer_index = 0;
};
[[nodiscard]] LsrrView parse_lsrr_option(const IpOption& option);

/// The IPv4 header. Total length and header checksum are computed during
/// encoding; decoding validates the checksum and header length.
struct IpHeader {
  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-octet units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = to_u8(IpProto::kUdp);
  IpAddress src;
  IpAddress dst;
  std::vector<IpOption> options;

  /// Header size on the wire: 20 bytes plus options padded to a multiple
  /// of 4 (the IHL unit).
  [[nodiscard]] std::size_t encoded_size() const;

  /// Append the header (with computed checksum) for a datagram whose
  /// payload is `payload_size` bytes long.
  void encode(util::ByteWriter& w, std::size_t payload_size) const;

  /// Decode and verify a header; on return `reader` is positioned at the
  /// first payload byte and `total_length` holds the datagram length from
  /// the header. Throws util::CodecError on malformed input.
  static IpHeader decode(util::ByteReader& reader, std::size_t* total_length);

  [[nodiscard]] bool has_options() const { return !options.empty(); }

  /// The first option of the given kind, or nullptr.
  [[nodiscard]] const IpOption* find_option(IpOptionKind kind) const;
  [[nodiscard]] IpOption* find_option(IpOptionKind kind);

  bool operator==(const IpHeader&) const = default;
};

}  // namespace mhrp::net
