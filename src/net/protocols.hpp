// IP protocol numbers used across the reproduction. Real IANA numbers are
// used where they exist; the experimental protocols take numbers from the
// historical experimentation range.
#pragma once

#include <cstdint>

namespace mhrp::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kIpInIp = 4,   // Columbia IPIP tunneling (baseline, paper §7)
  kTcp = 6,
  kUdp = 17,
  kMhrp = 99,    // the paper's encapsulation protocol (§4.1)
  kVip = 98,     // Sony Virtual IP (baseline, §7)
  kIptp = 97,    // Matsushita Internet Packet Transmission Protocol (§7)
};

constexpr std::uint8_t to_u8(IpProto p) { return static_cast<std::uint8_t>(p); }

constexpr IpProto ip_proto_from_u8(std::uint8_t v) {
  return static_cast<IpProto>(v);
}

}  // namespace mhrp::net
