#include "net/udp.hpp"

#include "util/checksum.hpp"

namespace mhrp::net {

std::vector<std::uint8_t> encode_udp(const UdpHeader& header,
                                     std::span<const std::uint8_t> data) {
  util::ByteWriter w(UdpHeader::kSize + data.size());
  w.u16(header.src_port);
  w.u16(header.dst_port);
  const std::size_t total = UdpHeader::kSize + data.size();
  if (total > 0xFFFF) throw util::CodecError("UDP datagram too long");
  w.u16(static_cast<std::uint16_t>(total));
  w.u16(0);  // checksum placeholder
  w.bytes(data);
  w.patch_u16(6, util::internet_checksum(w.view()));
  return w.take();
}

UdpDatagram decode_udp(std::span<const std::uint8_t> wire) {
  if (wire.size() < UdpHeader::kSize) {
    throw util::CodecError("UDP shorter than 8B");
  }
  if (!util::checksum_ok(wire)) throw util::CodecError("UDP checksum mismatch");
  util::ByteReader r(wire);
  UdpDatagram d;
  d.header.src_port = r.u16();
  d.header.dst_port = r.u16();
  std::uint16_t length = r.u16();
  if (length < UdpHeader::kSize || length > wire.size()) {
    throw util::CodecError("bad UDP length");
  }
  r.skip(2);  // checksum
  d.data = r.bytes(length - UdpHeader::kSize);
  return d;
}

}  // namespace mhrp::net
