#include "net/ip_address.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mhrp::net {

IpAddress IpAddress::parse(const std::string& text) {
  std::uint32_t raw = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (pos <= text.size() && octets < 4) {
    std::size_t dot = text.find('.', pos);
    std::string part = text.substr(pos, dot == std::string::npos
                                            ? std::string::npos
                                            : dot - pos);
    if (part.empty() || part.size() > 3 ||
        part.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("bad IPv4 address: " + text);
    }
    int value = std::stoi(part);
    if (value > 255) throw std::invalid_argument("bad IPv4 octet: " + text);
    raw = (raw << 8) | static_cast<std::uint32_t>(value);
    ++octets;
    if (dot == std::string::npos) {
      pos = text.size() + 1;
    } else {
      pos = dot + 1;
    }
  }
  if (octets != 4 || pos != text.size() + 1) {
    throw std::invalid_argument("bad IPv4 address: " + text);
  }
  return IpAddress(raw);
}

std::string IpAddress::to_string() const {
  std::ostringstream os;
  os << ((raw_ >> 24) & 0xFF) << '.' << ((raw_ >> 16) & 0xFF) << '.'
     << ((raw_ >> 8) & 0xFF) << '.' << (raw_ & 0xFF);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, IpAddress addr) {
  return os << addr.to_string();
}

Prefix Prefix::parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("prefix missing '/': " + text);
  }
  IpAddress addr = IpAddress::parse(text.substr(0, slash));
  int length = std::stoi(text.substr(slash + 1));
  if (length < 0 || length > 32) {
    throw std::invalid_argument("bad prefix length: " + text);
  }
  return Prefix(addr, length);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& p) {
  return os << p.to_string();
}

}  // namespace mhrp::net
