#include "net/link.hpp"

#include <algorithm>

namespace mhrp::net {

Link::Link(sim::Executive& sim, std::string name, sim::Time latency,
           std::uint64_t bandwidth_bps)
    : sim_(sim),
      name_(std::move(name)),
      latency_(latency),
      bandwidth_bps_(bandwidth_bps) {}

Link::~Link() {
  if (observer_ != nullptr) observer_->on_detached(*this);
  for (Interface* iface : members_) iface->link_ = nullptr;
}

void Link::attach(Interface& iface) {
  if (iface.link_ == this) return;
  if (iface.link_ != nullptr) iface.link_->detach(iface);
  members_.push_back(&iface);
  iface.link_ = this;
}

void Link::detach(Interface& iface) {
  auto it = std::find(members_.begin(), members_.end(), &iface);
  if (it != members_.end()) {
    members_.erase(it);
    iface.link_ = nullptr;
  }
}

bool Link::has_member(const Interface& iface) const {
  return iface.link_ == this;
}

void Link::fail() {
  if (!up_.exchange(false, std::memory_order_relaxed)) return;
  if (observer_ != nullptr) observer_->on_state_changed(*this, false, sim_.now());
  notify_members(false);
}

void Link::recover() {
  if (up_.exchange(true, std::memory_order_relaxed)) return;
  if (observer_ != nullptr) observer_->on_state_changed(*this, true, sim_.now());
  notify_members(true);
}

// Carrier-state notification: each member node learns that its attached
// link flapped, so a routing process can withdraw (and later
// re-advertise) routes instead of timing them out in silence. A member
// on a foreign shard hears about it one lookahead later, like any other
// cross-shard signal — which is also its physical propagation budget.
void Link::notify_members(bool up) {
  for (Interface* member : members_) {
    const auto target = member->shard();
    if (target == sim_.shard_id()) {
      member->notify_link_state(up);
    } else {
      sim_.post(target, sim_.now() + sim_.lookahead(),
                [member, up] { member->notify_link_state(up); },
                sim::EventCategory::kFaultInjection);
    }
  }
}

void Link::set_impairments(const LinkImpairments& impairments, util::Rng& rng) {
  impairments_ = impairments;
  rng_ = &rng;
}

void Link::clear_impairments() {
  impairments_ = LinkImpairments{};
  rng_ = nullptr;
}

MHRP_HOT_PATH sim::Time Link::delay_for(std::size_t frame_bytes) const {
  sim::Time delay = latency_;
  if (bandwidth_bps_ > 0) {
    delay += static_cast<sim::Time>(frame_bytes * 8 * 1'000'000ull /
                                    bandwidth_bps_);
  }
  return delay;
}

// Delivery re-checks the link state and membership when the frame
// "arrives": a link that failed mid-flight must deliver nothing (the
// no-delivery-through-a-down-link invariant), and an interface that
// detached mid-flight (a radio that left the cell) must not hear it —
// otherwise a mobile host could receive a stale agent advertisement from
// the cell it just left and register with an unreachable agent.
//
// A member on another shard receives its frame as a cross-shard post()
// to its own shard — the link's latency is what funds the executive's
// lookahead, so the post always lands at or beyond the window boundary.
MHRP_HOT_PATH void Link::schedule_delivery(Interface* member, Frame frame,
                                           sim::Time delay) {
  auto deliver = [this, member, frame = std::move(frame)]() mutable {
    if (!is_up()) {
      frames_dropped_down_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (has_member(*member)) member->deliver(std::move(frame));
  };
  const auto target = member->shard();
  if (target == sim_.shard_id()) {
    (void)sim_.after(delay, std::move(deliver),
                     sim::EventCategory::kLinkDelivery);
  } else {
    sim_.post(target, sim_.now() + delay, std::move(deliver),
              sim::EventCategory::kLinkDelivery);
  }
}

MHRP_HOT_PATH void Link::transmit(const Interface& from, Frame frame) {
  if (!is_up()) {
    frames_dropped_down_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Impairment draw order (loss, jitter, reorder, duplicate) is fixed:
  // it is part of the deterministic-replay contract. (Impairments share
  // one RNG, so an impaired link must be shard-local; the scenario layer
  // enforces that.)
  if (rng_ != nullptr && impairments_.loss > 0.0 &&
      rng_->chance(impairments_.loss)) {
    frames_dropped_loss_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  frames_carried_.fetch_add(1, std::memory_order_relaxed);
  bytes_carried_.fetch_add(frame.wire_size(), std::memory_order_relaxed);
  if (observer_ != nullptr) observer_->on_transmit(*this, frame, sim_.now());
  if (frame.is_ip()) {
    frame.packet().note_wire_crossing(frame.packet().wire_size());
  }
  sim::Time delay = delay_for(frame.wire_size()) + impairments_.extra_delay;
  bool duplicate = false;
  if (rng_ != nullptr) {
    if (impairments_.jitter > 0) {
      delay += static_cast<sim::Time>(
          rng_->uniform(0, static_cast<std::uint64_t>(impairments_.jitter)));
    }
    if (impairments_.reorder > 0.0 && rng_->chance(impairments_.reorder)) {
      delay += impairments_.reorder_hold;
    }
    duplicate =
        impairments_.duplicate > 0.0 && rng_->chance(impairments_.duplicate);
  }
  if (duplicate) frames_duplicated_.fetch_add(1, std::memory_order_relaxed);

  if (frame.dst.is_broadcast()) {
    // Every other member gets its own copy of the frame, except the last
    // recipient, which takes the original by move — on a two-member
    // segment (every point-to-point circuit) broadcast then copies
    // nothing at all.
    std::size_t last = members_.size();
    for (std::size_t i = members_.size(); i-- > 0;) {
      if (members_[i] != &from) {
        last = i;
        break;
      }
    }
    if (last == members_.size()) return;  // nobody else to hear it
    for (std::size_t i = 0; i <= last; ++i) {
      Interface* member = members_[i];
      if (member == &from) continue;
      if (duplicate) {
        schedule_delivery(member, frame, delay + latency_);
      }
      Frame copy = i == last ? std::move(frame) : frame;
      schedule_delivery(member, std::move(copy), delay);
    }
    return;
  }

  for (Interface* member : members_) {
    if (member == &from) continue;
    if (member->mac() == frame.dst) {
      if (duplicate) {
        schedule_delivery(member, frame, delay + latency_);
      }
      schedule_delivery(member, std::move(frame), delay);
      return;
    }
  }
  // No member owns the destination MAC: the frame vanishes, as on a real
  // segment (e.g. a mobile host that silently left the cell).
}

}  // namespace mhrp::net
