// ICMP message model and byte-exact codec.
//
// MHRP defines its "location update" as a *new ICMP type* (paper §4.3),
// chosen for its kinship with ICMP redirect and for backward
// compatibility: hosts that do not implement MHRP silently discard ICMP
// messages of unknown type (RFC 1122), which this codec models by
// decoding unrecognized types into IcmpUnknown rather than failing.
//
// Agent discovery (paper §3) is modeled after ICMP router discovery
// (RFC 1256): periodic multicast advertisements plus solicitations, with
// an MHRP extension carrying home-agent / foreign-agent capability flags.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/ip_address.hpp"
#include "util/byte_buffer.hpp"

namespace mhrp::net {

/// ICMP type numbers. Real values where assigned; kLocationUpdate is the
/// paper's new type, given a then-unassigned number.
enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kRedirect = 5,
  kEchoRequest = 8,
  kAgentAdvertisement = 9,   // router advertisement + MHRP agent extension
  kAgentSolicitation = 10,   // router solicitation
  kTimeExceeded = 11,
  kLocationUpdate = 40,      // MHRP (paper §4.3)
};

/// Codes for kDestUnreachable.
enum class UnreachCode : std::uint8_t {
  kNetUnreachable = 0,
  kHostUnreachable = 1,
  kProtocolUnreachable = 2,
  kPortUnreachable = 3,
};

struct IcmpEcho {
  bool is_request = true;
  std::uint16_t ident = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const IcmpEcho&) const = default;
};

/// Destination unreachable / time exceeded quote the offending datagram.
/// RFC 792 requires at least the IP header + 8 payload bytes; RFC 1122
/// permits more (up to the whole datagram). MHRP's error reverse-tunneling
/// (paper §4.5) behaves differently depending on how much was quoted, so
/// the quote length is a parameter at generation time.
struct IcmpUnreachable {
  UnreachCode code = UnreachCode::kHostUnreachable;
  std::vector<std::uint8_t> quoted;
  bool operator==(const IcmpUnreachable&) const = default;
};

struct IcmpTimeExceeded {
  std::vector<std::uint8_t> quoted;
  bool operator==(const IcmpTimeExceeded&) const = default;
};

struct IcmpRedirect {
  IpAddress gateway;
  std::vector<std::uint8_t> quoted;
  bool operator==(const IcmpRedirect&) const = default;
};

/// Periodic multicast from home/foreign agents (paper §3). `agent` is the
/// address mobile hosts should register with on this network.
struct IcmpAgentAdvertisement {
  IpAddress agent;
  bool offers_home_agent = false;
  bool offers_foreign_agent = false;
  std::uint16_t lifetime_s = 0;  // advertisement validity
  std::uint16_t sequence = 0;
  bool operator==(const IcmpAgentAdvertisement&) const = default;
};

struct IcmpAgentSolicitation {
  bool operator==(const IcmpAgentSolicitation&) const = default;
};

/// The paper's new message (§4.3): "the IP address of the mobile host and
/// the IP address of the foreign agent currently serving the mobile
/// host." A foreign agent of 0 means the host is at home and cache
/// entries for it should be deleted (paper §6.3); an update listing the
/// mobile host with no live binding (sent during loop dissolution, §5.3)
/// sets `invalidate`.
struct IcmpLocationUpdate {
  IpAddress mobile_host;
  IpAddress foreign_agent;
  bool invalidate = false;  // delete-your-entry form (loop dissolution)
  bool operator==(const IcmpLocationUpdate&) const = default;
};

/// Any ICMP message whose type this node does not understand. Hosts must
/// silently discard these (RFC 1122) — exactly the property the paper
/// leans on for incremental deployment.
struct IcmpUnknown {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::vector<std::uint8_t> body;
  bool operator==(const IcmpUnknown&) const = default;
};

using IcmpMessage =
    std::variant<IcmpEcho, IcmpUnreachable, IcmpTimeExceeded, IcmpRedirect,
                 IcmpAgentAdvertisement, IcmpAgentSolicitation,
                 IcmpLocationUpdate, IcmpUnknown>;

/// Encode to the ICMP wire format (type, code, checksum, body) with a
/// valid checksum.
[[nodiscard]] std::vector<std::uint8_t> encode_icmp(const IcmpMessage& msg);

/// Decode; validates the ICMP checksum and per-type body lengths. Unknown
/// types come back as IcmpUnknown. Throws util::CodecError on corruption.
[[nodiscard]] IcmpMessage decode_icmp(std::span<const std::uint8_t> wire);

/// The wire type byte of an encoded message (for tests and tracing).
[[nodiscard]] IcmpType icmp_type_of(const IcmpMessage& msg);

}  // namespace mhrp::net
