// Link-layer frame: what actually crosses a Link. Carries either an IP
// datagram or an ARP message. Framing overhead is a constant (Ethernet II
// header) applied uniformly when computing transmission delay.
#pragma once

#include <variant>

#include "net/arp.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"

namespace mhrp::net {

struct Frame {
  MacAddress src;
  MacAddress dst;
  std::variant<Packet, ArpMessage> body;

  static constexpr std::size_t kHeaderSize = 14;

  [[nodiscard]] bool is_ip() const {
    return std::holds_alternative<Packet>(body);
  }
  [[nodiscard]] bool is_arp() const {
    return std::holds_alternative<ArpMessage>(body);
  }

  [[nodiscard]] const Packet& packet() const { return std::get<Packet>(body); }
  [[nodiscard]] Packet& packet() { return std::get<Packet>(body); }
  [[nodiscard]] const ArpMessage& arp() const {
    return std::get<ArpMessage>(body);
  }

  /// Frame size on the wire, used for serialization delay.
  [[nodiscard]] std::size_t wire_size() const {
    return kHeaderSize +
           (is_ip() ? packet().wire_size() : ArpMessage::kWireSize);
  }
};

}  // namespace mhrp::net
