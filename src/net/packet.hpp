// The unit of work in the simulated internetwork: an IP datagram plus
// simulation-only metadata (identity, timestamps, hop counts) that never
// appears on the wire. `serialize()`/`deserialize()` round-trip the exact
// RFC 791 byte layout; `wire_size()` is what every overhead benchmark
// reports.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip_header.hpp"
#include "sim/time.hpp"

namespace mhrp::net {

class Packet {
 public:
  Packet() : id_(next_id()) {}
  explicit Packet(IpHeader header, std::vector<std::uint8_t> payload = {})
      : header_(std::move(header)), payload_(std::move(payload)), id_(next_id()) {}

  IpHeader& header() { return header_; }
  [[nodiscard]] const IpHeader& header() const { return header_; }

  std::vector<std::uint8_t>& payload() { return payload_; }
  [[nodiscard]] const std::vector<std::uint8_t>& payload() const {
    return payload_;
  }

  /// Exact size of the datagram on the wire (IP header incl. options +
  /// payload). Link-layer framing is excluded — it is identical for every
  /// protocol compared and would cancel out of every comparison.
  [[nodiscard]] std::size_t wire_size() const {
    return header_.encoded_size() + payload_.size();
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Append the full wire encoding to `w` (which callers may reuse across
  /// packets to amortize buffer allocations).
  void serialize_into(util::ByteWriter& w) const;

  /// The first min(max_bytes, wire_size()) octets of the wire encoding,
  /// without materializing the rest — what an ICMP error quotes when the
  /// node's quote limit is shorter than the datagram. The header still
  /// records the original total length, exactly as a truncated quote of
  /// the real datagram would.
  [[nodiscard]] std::vector<std::uint8_t> serialize_prefix(
      std::size_t max_bytes) const;

  /// Parse a datagram, validating version, lengths, and header checksum.
  static Packet deserialize(std::span<const std::uint8_t> wire);

  // ---- Simulation metadata (not on the wire) ----

  /// Unique per-construction id; copies made for broadcast delivery share
  /// the id of their original, which lets metrics correlate them.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  [[nodiscard]] sim::Time created_at() const { return created_at_; }
  void set_created_at(sim::Time t) { created_at_ = t; }

  /// Number of links this datagram has crossed so far.
  [[nodiscard]] int hop_count() const { return hop_count_; }
  void count_hop() { ++hop_count_; }

  /// Workload tag used by metrics to group packets into flows.
  [[nodiscard]] std::uint64_t flow_id() const { return flow_id_; }
  void set_flow_id(std::uint64_t f) { flow_id_ = f; }

  /// Size of the application payload before any headers were added.
  /// Metrics subtract this (plus one base IP header) from `wire_size()`
  /// to obtain per-packet mobility overhead in bytes.
  [[nodiscard]] std::size_t base_payload_size() const {
    return base_payload_size_;
  }
  void set_base_payload_size(std::size_t n) { base_payload_size_ = n; }

  /// Largest datagram size this packet had on any link it crossed —
  /// recorded by Link::transmit. For a tunneled packet this captures the
  /// fully encapsulated size even though the receiver sees it
  /// decapsulated; `max_wire_size() - 20 - base_payload_size()` is the
  /// per-packet mobility overhead every E1-style benchmark reports.
  [[nodiscard]] std::size_t max_wire_size() const { return max_wire_size_; }
  /// Total bytes this packet (in all its encapsulations) put on the wire.
  [[nodiscard]] std::uint64_t total_wire_bytes() const {
    return total_wire_bytes_;
  }
  void note_wire_crossing(std::size_t datagram_bytes) {
    if (datagram_bytes > max_wire_size_) max_wire_size_ = datagram_bytes;
    total_wire_bytes_ += datagram_bytes;
  }

 private:
  static std::uint64_t next_id();

  IpHeader header_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t id_ = 0;
  sim::Time created_at_ = 0;
  int hop_count_ = 0;
  std::uint64_t flow_id_ = 0;
  std::size_t base_payload_size_ = 0;
  std::size_t max_wire_size_ = 0;
  std::uint64_t total_wire_bytes_ = 0;
};

}  // namespace mhrp::net
