// IPv4 addresses and prefixes.
//
// MHRP's whole premise rests on hierarchical IP addressing: an address is
// (network number, host number) and normal routing delivers on the network
// part alone (paper §1). Prefix captures the network part; the home
// network of a mobile host is `Prefix::containing(home_address)`.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace mhrp::net {

/// An IPv4 address. A plain value type; 0.0.0.0 doubles as "unspecified"
/// and as MHRP's special "foreign agent address zero" meaning the mobile
/// host is at home (paper §3).
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t raw) : raw_(raw) {}

  /// Build from dotted-quad octets, e.g. IpAddress::of(10, 0, 1, 5).
  static constexpr IpAddress of(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                std::uint8_t d) {
    return IpAddress((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                     (std::uint32_t(c) << 8) | std::uint32_t(d));
  }

  /// Parse "a.b.c.d"; throws std::invalid_argument on malformed input.
  static IpAddress parse(const std::string& text);

  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return raw_ == 0; }
  [[nodiscard]] constexpr bool is_broadcast() const {
    return raw_ == 0xFFFFFFFF;
  }
  /// 224.0.0.0/4 — used by agent discovery multicast (paper §3).
  [[nodiscard]] constexpr bool is_multicast() const {
    return (raw_ & 0xF0000000) == 0xE0000000;
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t raw_ = 0;
};

std::ostream& operator<<(std::ostream& os, IpAddress addr);

/// Well-known addresses.
inline constexpr IpAddress kUnspecified{};
inline constexpr IpAddress kBroadcast{0xFFFFFFFF};
/// Multicast group agents advertise to (modeled after the ICMP router
/// discovery all-systems group).
inline constexpr IpAddress kAllAgentsGroup = IpAddress::of(224, 0, 0, 11);

/// A network prefix: address plus mask length. Identifies an IP network;
/// longest-prefix match over these drives every routing decision.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Canonicalizes: host bits of `addr` below `length` are cleared.
  constexpr Prefix(IpAddress addr, int length)
      : addr_(IpAddress(addr.raw() & mask_for(length))), length_(length) {}

  /// The /32 host prefix for one address (host-specific routes, §3).
  static constexpr Prefix host(IpAddress addr) { return Prefix(addr, 32); }

  /// Parse "a.b.c.d/len".
  static Prefix parse(const std::string& text);

  [[nodiscard]] constexpr IpAddress address() const { return addr_; }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return mask_for(length_);
  }

  [[nodiscard]] constexpr bool contains(IpAddress a) const {
    return (a.raw() & mask()) == addr_.raw();
  }

  [[nodiscard]] constexpr bool is_host_route() const { return length_ == 32; }

  /// The subnet-local broadcast address for this prefix.
  [[nodiscard]] constexpr IpAddress broadcast() const {
    return IpAddress(addr_.raw() | ~mask());
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  static constexpr std::uint32_t mask_for(int length) {
    return length <= 0 ? 0 : (length >= 32 ? 0xFFFFFFFF : ~((1u << (32 - length)) - 1));
  }

  IpAddress addr_;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& p);

}  // namespace mhrp::net

template <>
struct std::hash<mhrp::net::IpAddress> {
  std::size_t operator()(const mhrp::net::IpAddress& a) const noexcept {
    return std::hash<std::uint32_t>()(a.raw());
  }
};
