// ARP (RFC 826) model: message format, per-interface resolution table.
//
// ARP is load-bearing in MHRP (paper §2): the home agent intercepts
// packets for absent mobile hosts by answering ARP queries with its own
// hardware address (proxy ARP, RFC 925) and by broadcasting unsolicited
// "gratuitous" ARP replies to rewrite neighbors' caches at disconnection;
// the returning mobile host broadcasts its own gratuitous reply to take
// its address back.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"

namespace mhrp::net {

struct ArpMessage {
  enum class Op : std::uint8_t { kRequest = 1, kReply = 2 };

  Op op = Op::kRequest;
  MacAddress sender_mac;
  IpAddress sender_ip;
  MacAddress target_mac;  // unspecified in requests
  IpAddress target_ip;

  /// Ethernet/IPv4 ARP packet size on the wire.
  static constexpr std::size_t kWireSize = 28;

  bool operator==(const ArpMessage&) const = default;
};

/// Per-interface IP → MAC cache. Learns from any ARP message that crosses
/// the segment (standard opportunistic learning), which is precisely the
/// channel gratuitous ARP exploits.
class ArpTable {
 public:
  void learn(IpAddress ip, MacAddress mac) { entries_[ip] = mac; }
  void forget(IpAddress ip) { entries_.erase(ip); }
  void clear() { entries_.clear(); }

  [[nodiscard]] std::optional<MacAddress> lookup(IpAddress ip) const {
    auto it = entries_.find(ip);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<IpAddress, MacAddress> entries_;
};

}  // namespace mhrp::net
