// Scenario-harness tests: the topology builder's static routing, link
// behavior (latency, loss, down, mid-flight detach), workload
// generators, and the metrics recorder — the instruments every benchmark
// trusts.
#include <gtest/gtest.h>

#include <sstream>

#include "net/udp.hpp"
#include "scenario/metrics.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/topology.hpp"
#include "scenario/tracer.hpp"
#include "scenario/workload.hpp"

namespace mhrp {
namespace {

using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

TEST(TopologyRouting, StaticRoutesReachEveryRouterPrefix) {
  // Triangle of routers with stub LANs; every router must route to every
  // stub.
  Topology topo;
  auto& ab = topo.add_link("ab", sim::millis(1));
  auto& bc = topo.add_link("bc", sim::millis(1));
  auto& ca = topo.add_link("ca", sim::millis(1));
  auto& a = topo.add_router("A");
  auto& b = topo.add_router("B");
  auto& c = topo.add_router("C");
  topo.connect(a, ab, ip("10.0.1.1"), 24);
  topo.connect(b, ab, ip("10.0.1.2"), 24);
  topo.connect(b, bc, ip("10.0.2.1"), 24);
  topo.connect(c, bc, ip("10.0.2.2"), 24);
  topo.connect(c, ca, ip("10.0.3.1"), 24);
  topo.connect(a, ca, ip("10.0.3.2"), 24);
  auto& stub_a = topo.add_link("stubA", sim::millis(1));
  auto& stub_b = topo.add_link("stubB", sim::millis(1));
  auto& stub_c = topo.add_link("stubC", sim::millis(1));
  topo.connect(a, stub_a, ip("10.1.0.1"), 24);
  topo.connect(b, stub_b, ip("10.2.0.1"), 24);
  topo.connect(c, stub_c, ip("10.3.0.1"), 24);
  topo.install_static_routes();

  for (auto* r : {&a, &b, &c}) {
    for (const char* dst : {"10.1.0.9", "10.2.0.9", "10.3.0.9"}) {
      EXPECT_NE(r->routing_table().lookup(ip(dst)), nullptr)
          << r->name() << " -> " << dst;
    }
  }
  // Direct neighbors are one hop; the triangle keeps everything at 1.
  EXPECT_EQ(topo.hop_distance(a, b), 1);
  EXPECT_EQ(topo.hop_distance(a, c), 1);
}

TEST(TopologyRouting, HostsGetDefaultViaLanRouter) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& far_lan = topo.add_link("far", sim::millis(1));
  auto& r = topo.add_router("R");
  auto& h = topo.add_host("H");
  topo.connect(r, lan, ip("10.1.0.1"), 24);
  topo.connect(r, far_lan, ip("10.2.0.1"), 24);
  topo.connect(h, lan, ip("10.1.0.10"), 24);
  topo.install_static_routes();
  const auto* route = h.routing_table().lookup(ip("10.2.0.55"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, ip("10.1.0.1"));
}

TEST(TopologyRouting, HostPrefixesDoNotLeakIntoRouting) {
  // A host whose address is foreign to its attachment point (a visiting
  // mobile) must be invisible to the routing fabric.
  Topology topo;
  auto& lan1 = topo.add_link("lan1", sim::millis(1));
  auto& lan2 = topo.add_link("lan2", sim::millis(1));
  auto& r = topo.add_router("R");
  topo.connect(r, lan1, ip("10.1.0.1"), 24);
  topo.connect(r, lan2, ip("10.2.0.1"), 24);
  auto& visitor = topo.add_host("V");
  topo.connect(visitor, lan2, ip("172.16.0.9"), 24);  // off-subnet address
  topo.install_static_routes();
  EXPECT_EQ(r.routing_table().lookup(ip("172.16.0.9")), nullptr);
}

TEST(Links, LatencyIsApplied) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(7));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();
  // Warm ARP first.
  bool warm = false;
  a.ping(ip("10.1.0.11"),
         [&](const node::Host::PingResult& r) { warm = r.replied; });
  topo.sim().run_for(sim::seconds(5));
  ASSERT_TRUE(warm);
  sim::Time rtt = 0;
  a.ping(ip("10.1.0.11"), [&](const node::Host::PingResult& r) {
    rtt = r.rtt;
  });
  topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(rtt, sim::millis(14));  // 7 ms each way
}

TEST(Links, SerializationDelayFollowsBandwidth) {
  Topology topo;
  // 1 Mbit/s: a ~1000-byte frame costs ~8 ms on top of latency.
  auto& lan = topo.add_link("slow", sim::millis(1), 1'000'000);
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();
  bool warm = false;
  a.ping(ip("10.1.0.11"),
         [&](const node::Host::PingResult& r) { warm = r.replied; }, 16);
  topo.sim().run_for(sim::seconds(5));
  ASSERT_TRUE(warm);
  sim::Time rtt = 0;
  a.ping(ip("10.1.0.11"),
         [&](const node::Host::PingResult& r) { rtt = r.rtt; },
         /*payload=*/958);  // 958 + 8 ICMP + 20 IP + 14 frame = 1000 B
  topo.sim().run_for(sim::seconds(5));
  EXPECT_GT(rtt, sim::millis(17));
  EXPECT_LT(rtt, sim::millis(19));
}

TEST(Links, DownLinkDropsSilently) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();
  lan.fail();
  bool replied = true;
  a.ping(ip("10.1.0.11"),
         [&](const node::Host::PingResult& r) { replied = r.replied; }, 16,
         sim::seconds(3));
  topo.sim().run_for(sim::seconds(10));
  EXPECT_FALSE(replied);
  EXPECT_EQ(lan.frames_carried(), 0u);
}

TEST(Links, LossProbabilityDropsSomeFrames) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();
  util::Rng rng(7);
  lan.set_impairments(net::LinkImpairments{.loss = 0.5}, rng);
  int replies = 0;
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    a.ping(ip("10.1.0.11"), [&](const node::Host::PingResult& r) {
      ++done;
      if (r.replied) ++replies;
    }, 16, sim::seconds(2));
    topo.sim().run_for(sim::millis(200));
  }
  topo.sim().run_for(sim::seconds(10));
  EXPECT_EQ(done, 40);
  EXPECT_GT(replies, 0);
  EXPECT_LT(replies, 40);
}

TEST(Links, ClearImpairmentsReleasesTheCallerRng) {
  // set_impairments() borrows the caller's RNG by reference;
  // clear_impairments() must drop that reference so the RNG may die
  // before the link. (Under the ASan CI config a stale reference here is
  // a use-after-scope.)
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();
  int replies = 0;
  auto count = [&](const node::Host::PingResult& r) {
    if (r.replied) ++replies;
  };
  {
    util::Rng rng(99);
    lan.set_impairments(net::LinkImpairments{.loss = 1.0},
                        rng);  // certain loss while the model is armed
    a.ping(ip("10.1.0.11"), count, 16, sim::seconds(2));
    topo.sim().run_for(sim::seconds(5));
    EXPECT_EQ(replies, 0);
    lan.clear_impairments();
  }  // rng destroyed; the link must not have kept a pointer to it
  a.ping(ip("10.1.0.11"), count, 16, sim::seconds(2));
  topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(replies, 1);
}

TEST(Links, MidFlightDetachSuppressesDelivery) {
  // A frame en route to an interface that detached must vanish — the
  // radio left the cell.
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(5));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  net::Interface& bi = topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();
  // Pre-seed ARP so the datagram goes straight out.
  a.arp_table(*a.interfaces().front()).learn(ip("10.1.0.11"), bi.mac());
  std::vector<std::uint8_t> data{1};
  int delivered = 0;
  b.bind_udp(9, [&](const net::UdpDatagram&, const net::IpHeader&,
                    net::Interface&) { ++delivered; });
  a.send_udp(ip("10.1.0.11"), 9, 9, data);
  // Detach B while the frame is in flight (5 ms latency).
  topo.sim().run_for(sim::millis(1));
  lan.detach(bi);
  topo.sim().run_for(sim::seconds(1));
  EXPECT_EQ(delivered, 0);
}

TEST(Workload, CbrFlowPacesAndTags) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();

  scenario::FlowRecorder recorder(b);
  int received = 0;
  b.bind_udp(9000, [&](const net::UdpDatagram& d, const net::IpHeader&,
                       net::Interface&) {
    ++received;
    EXPECT_EQ(d.data.size(), 100u);
  });
  scenario::CbrFlow flow(a, ip("10.1.0.11"), 9000, 100, sim::millis(10));
  flow.start();
  topo.sim().run_for(sim::seconds(1));
  flow.stop();
  topo.sim().run_for(sim::seconds(1));
  EXPECT_EQ(flow.sent(), 101u);  // t=0 plus every 10 ms
  EXPECT_EQ(received, 101);
  EXPECT_EQ(recorder.flow(flow.flow_id()).received, 101u);
  // Plain LAN delivery: zero mobility overhead, 1 hop.
  EXPECT_EQ(recorder.flow(flow.flow_id()).overhead_bytes.max, 0.0);
  EXPECT_EQ(recorder.flow(flow.flow_id()).hops.max, 1.0);
}

TEST(Workload, MovementScheduleVisitsCells) {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 3;
  scenario::MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));
  scenario::MovementSchedule walk(
      *w.mobiles[0], {w.cells[0], w.cells[1], w.cells[2]}, sim::seconds(3),
      w.topo.rng().fork(), /*random_order=*/false);
  walk.start();
  w.topo.sim().run_for(sim::seconds(30));
  walk.stop();
  EXPECT_GE(walk.moves(), 5u);
  // The host is attached to one of the scheduled cells and registered.
  EXPECT_NE(w.mobiles[0]->radio().link(), nullptr);
}

TEST(Metrics, DistributionTracksMinMeanMax) {
  scenario::Distribution d;
  d.add(2.0);
  d.add(4.0);
  d.add(9.0);
  EXPECT_EQ(d.count, 3u);
  EXPECT_EQ(d.min, 2.0);
  EXPECT_EQ(d.max, 9.0);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Metrics, EmptyDistributionReportsZeros) {
  // Regression: min/max used to start at +/-inf, which leaked into
  // digests and broke strict JSON exports for flows with no samples.
  scenario::Distribution d;
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.min, 0.0);
  EXPECT_EQ(d.max, 0.0);
  EXPECT_EQ(d.mean(), 0.0);
}

TEST(Metrics, DistributionFirstSampleSetsBothExtremes) {
  scenario::Distribution d;
  d.add(-3.5);
  EXPECT_EQ(d.min, -3.5);
  EXPECT_EQ(d.max, -3.5);
}

TEST(Metrics, SummarizeMatchesPercentileOnUnsortedInput) {
  // The single-sort fast path must agree with the public percentile()
  // (which sorts a copy) on unsorted input.
  const std::vector<double> raw = {9.0, 1.0, 4.0, 7.5, 2.0, 8.0, 3.0};
  const scenario::PercentileSummary s = scenario::summarize(raw);
  EXPECT_EQ(s.count, raw.size());
  EXPECT_DOUBLE_EQ(s.p50, scenario::percentile(raw, 50));
  EXPECT_DOUBLE_EQ(s.p90, scenario::percentile(raw, 90));
  EXPECT_DOUBLE_EQ(s.p99, scenario::percentile(raw, 99));
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Metrics, SummarizeEmptyIsAllZeros) {
  const scenario::PercentileSummary s = scenario::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Metrics, RecorderFiltersMulticastByDefault) {
  scenario::MhrpWorldOptions options;
  scenario::MhrpWorld w(options);
  scenario::FlowRecorder recorder(*w.mobiles[0]);
  ASSERT_TRUE(w.move_and_register(0, 0));
  w.topo.sim().run_for(sim::seconds(5));
  // Plenty of agent advertisements were delivered, none recorded.
  for (std::uint64_t i = 0; i < recorder.total().received; ++i) {
    // Any recorded packet must have been unicast (checked via hop>0).
  }
  // The only unicast deliveries so far are the registration acks.
  EXPECT_LE(recorder.total().received, 4u);
}

// Two hosts on one LAN; A sends one UDP datagram to B's bound port.
struct HookWorld {
  Topology topo;
  node::Host* a;
  node::Host* b;

  HookWorld() {
    auto& lan = topo.add_link("lan", sim::millis(1));
    a = &topo.add_host("A");
    b = &topo.add_host("B");
    topo.connect(*a, lan, ip("10.0.0.1"), 24);
    topo.connect(*b, lan, ip("10.0.0.2"), 24);
    topo.install_static_routes();
    b->bind_udp(7, [](const net::UdpDatagram&, const net::IpHeader&,
                      net::Interface&) {});
  }

  void send_one() {
    static constexpr unsigned char payload[] = {1, 2, 3};
    a->send_udp(ip("10.0.0.2"), 40001, 7, payload);
    topo.sim().run_for(sim::seconds(1));
  }
};

TEST(HookChaining, RecorderThenTracerBothObserve) {
  HookWorld w;
  scenario::FlowRecorder recorder(*w.b);
  std::ostringstream sink;
  scenario::Tracer tracer(w.topo, &sink);
  w.send_one();
  EXPECT_GE(recorder.total().received, 1u);
  EXPECT_GT(tracer.events(), 0u);
}

TEST(HookChaining, TracerThenRecorderBothObserve) {
  // Regression: FlowRecorder used to overwrite on_deliver_hook, silently
  // disconnecting a Tracer attached first. Both observers must see the
  // delivery regardless of attachment order.
  HookWorld w;
  std::ostringstream sink;
  scenario::Tracer tracer(w.topo, &sink);
  scenario::FlowRecorder recorder(*w.b);
  w.send_one();
  EXPECT_GE(recorder.total().received, 1u);
  EXPECT_GT(tracer.events(), 0u);
  EXPECT_NE(sink.str().find("recv"), std::string::npos);
}

TEST(HookChaining, TracerCoversNodesAddedAfterConstruction) {
  // Regression: the tracer only attached to nodes present at
  // construction — a node added afterwards was silently untraced.
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  topo.connect(a, lan, ip("10.0.0.1"), 24);

  std::ostringstream sink;
  scenario::Tracer tracer(topo, &sink);  // B does not exist yet

  auto& b = topo.add_host("B");
  topo.connect(b, lan, ip("10.0.0.2"), 24);
  topo.install_static_routes();
  b.bind_udp(7, [](const net::UdpDatagram&, const net::IpHeader&,
                   net::Interface&) {});
  static constexpr unsigned char payload[] = {1, 2, 3};
  a.send_udp(ip("10.0.0.2"), 40001, 7, payload);
  topo.sim().run_for(sim::seconds(1));

  EXPECT_GT(tracer.events(), 0u);
  EXPECT_NE(sink.str().find("recv"), std::string::npos);
  EXPECT_NE(sink.str().find("B"), std::string::npos);
}

TEST(MhrpWorldHarness, HelpersReportConsistentState) {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 2;
  options.mobile_hosts = 2;
  scenario::MhrpWorld w(options);
  EXPECT_EQ(w.total_agent_state(), 2u);  // two provisioned DB rows
  ASSERT_TRUE(w.move_and_register(0, 0));
  ASSERT_TRUE(w.move_and_register(1, 1));
  // Two DB rows + two visiting entries (+ any caches).
  EXPECT_GE(w.total_agent_state(), 4u);
  EXPECT_EQ(w.fa_address(0), ip("10.2.0.1"));
  EXPECT_EQ(w.mobile_address(1), ip("10.1.0.101"));
}

}  // namespace
}  // namespace mhrp
