// Integration tests for the DV routing plane wired through ScaleWorld:
// a scripted backbone fault must reroute traffic before the fault plane
// heals the link (the paper's premise that "the standard IP routing
// algorithms" adapt underneath MHRP), DV-enabled runs must keep the
// byte-identical replay contract, and the sharded executive must carry
// DV timers and cross-shard link-state notifications without perturbing
// one digest byte at a fixed shard count.
#include <gtest/gtest.h>

#include <string>

#include "faults/fault_schedule.hpp"
#include "scenario/scale_world.hpp"

namespace mhrp::scenario {
namespace {

ScaleWorldOptions dv_scale_options(int routers, bool dv) {
  ScaleWorldOptions opt;
  opt.routers = routers;
  opt.foreign_agents = 12;
  opt.mobile_hosts = 24;
  opt.correspondents = 4;
  opt.mean_dwell = sim::seconds(2);
  opt.protocol.seed = 7;
  if (dv) opt.protocol.routing = routing::dv::Mode::kDv;
  // Chaos enabled with every rate zero: the schedule is empty but the
  // fault plane is armed, so the test can script events by hand.
  opt.chaos.enabled = true;
  opt.chaos.fault_seed = 0xc4a05;
  return opt;
}

/// Warm a world up, fail the R0-R1 backbone circuit for `outage`
/// seconds, and return what was delivered while the link was down.
ScaleRunStats run_scripted_outage(ScaleWorld& world, sim::Time outage) {
  world.start();
  world.run_for(sim::seconds(6));  // discovery, bindings, DV convergence

  faults::FaultEvent fail;
  fail.at = world.topo.sim().now();
  fail.kind = faults::FaultKind::kLinkFail;
  // Link targets register cells first, then backbone circuits in build
  // order; cells.size() is bb0, the R0-R1 circuit next to the home
  // agent, which carries the HA's tunnels toward FA0 (hosted on R1).
  fail.target = world.cells.size();
  fail.duration = outage;
  world.fault_plane()->apply(fail);
  return world.run_for(outage);
}

TEST(DvScaleWorld, ScriptedBackboneFaultReconvergesBeforeRecovery) {
  // The PR's acceptance scenario: in a 200-router grid with DV enabled,
  // failing the circuit between the home router and FA0's router must
  // (a) produce a reconvergence measurement well inside the outage and
  // (b) keep tunnel traffic flowing over the alternate grid path while
  // the static-routing twin blackholes until the fault plane heals it.
  const sim::Time outage = sim::seconds(8);
  ScaleWorld dv(dv_scale_options(200, true));
  const ScaleRunStats dv_during = run_scripted_outage(dv, outage);
  ScaleWorld st(dv_scale_options(200, false));
  const ScaleRunStats st_during = run_scripted_outage(st, outage);

  // Let the post-recovery churn settle so the second epoch closes too.
  dv.run_for(sim::seconds(2));

  const auto& conv = dv.convergence_times();
  ASSERT_FALSE(conv.empty());
  // Reconverged (last route change of the outage epoch) well before the
  // fault plane healed the link: triggered updates, not the 10s
  // periodic timer, carry the withdrawal.
  EXPECT_LT(conv.front(), sim::to_seconds(outage) / 2);
  EXPECT_EQ(dv.fault_plane()->stats().link_failures, 1u);
  EXPECT_EQ(dv.fault_plane()->stats().link_recoveries, 1u);

  // Traffic rerouted: the DV world out-delivers its static twin during
  // the outage (both worlds draw identical movement and workload).
  EXPECT_GT(dv_during.packets_delivered, st_during.packets_delivered);
  EXPECT_GT(st_during.packets_delivered, 0u);  // other cells unaffected

  // The static world records no convergence series at all.
  EXPECT_TRUE(st.convergence_times().empty());
}

TEST(DvReplay, ChaosRunSameSeedIsByteIdentical) {
  // Seeded Poisson chaos with DV enabled: link fail/recover epochs,
  // triggered-update jitter, and timeout sweeps all ride the same seeded
  // streams, so two runs must agree byte for byte — convergence series
  // included (it is part of the digest).
  auto run = [] {
    ScaleWorldOptions opt = dv_scale_options(36, true);
    opt.chaos.horizon = sim::seconds(10);
    opt.chaos.cell_outages_per_sec = 0.3;
    opt.chaos.backbone_outages_per_sec = 0.15;
    opt.chaos.mean_outage = sim::seconds(2);
    ScaleWorld world(opt);
    world.start();
    (void)world.run_for(sim::seconds(10));
    return std::make_pair(world.metrics_digest(),
                          world.convergence_times().size());
  };
  const auto first = run();
  const auto second = run();
  ASSERT_FALSE(first.first.empty());
  EXPECT_EQ(first.first, second.first);
  EXPECT_GT(first.second, 0u);  // the chaos actually produced epochs
}

TEST(DvReplay, EnablingDvChangesRoutingNotMovement) {
  // The DV jitter stream is forked off the seed separately from
  // topo.rng(), so switching routing planes must leave the movement and
  // workload schedule untouched (same moves, same registrations).
  ScaleWorld st(dv_scale_options(36, false));
  ScaleWorld dv(dv_scale_options(36, true));
  st.start();
  dv.start();
  const ScaleRunStats s = st.run_for(sim::seconds(10));
  const ScaleRunStats d = dv.run_for(sim::seconds(10));
  EXPECT_EQ(s.moves, d.moves);
  EXPECT_EQ(s.registrations, d.registrations);
  EXPECT_GT(d.registrations, 0u);
  // DV broadcasts are real traffic: the digest legitimately differs.
  EXPECT_NE(st.metrics_digest(), dv.metrics_digest());
}

ScaleWorldOptions dv_sharded_options(int shards) {
  ScaleWorldOptions opt = dv_scale_options(36, true);
  opt.chaos.enabled = false;
  opt.shards = shards;
  opt.movement_regions = 4;
  return opt;
}

std::string run_digest(const ScaleWorldOptions& opt, sim::Time duration) {
  ScaleWorld world(opt);
  world.start();
  (void)world.run_for(duration);
  return world.metrics_digest();
}

TEST(DvSharded, OneShardMatchesSingleThreadedByteForByte) {
  // DV under the executive redesign's acceptance bar: periodic timers on
  // every router's shard, triggered updates, and UDP broadcasts crossing
  // shard boundaries change nothing at one shard.
  const std::string serial =
      run_digest(dv_sharded_options(0), sim::seconds(10));
  const std::string sharded =
      run_digest(dv_sharded_options(1), sim::seconds(10));
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, sharded);
}

TEST(DvSharded, FixedShardCountIsDeterministic) {
  // Four workers, DV broadcasts crossing region boundaries both ways,
  // plus scripted cross-shard link faults (bb circuits are the only
  // links whose members live on different shards).
  ScaleWorldOptions opt = dv_sharded_options(4);
  opt.chaos.enabled = true;
  opt.chaos.fault_seed = 0xc4a05;
  opt.chaos.horizon = sim::seconds(10);
  opt.chaos.backbone_outages_per_sec = 0.2;
  opt.chaos.mean_outage = sim::seconds(2);
  const std::string first = run_digest(opt, sim::seconds(10));
  const std::string second = run_digest(opt, sim::seconds(10));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace mhrp::scenario
