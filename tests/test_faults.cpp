// The deterministic fault-injection plane: registration backoff policy,
// seeded FaultSchedule generation, scripted FaultPlane events driven
// through the node/link lifecycle API, targeted message-drop windows,
// and byte-identical replay of a 200-router ScaleWorld with chaos on.
#include <gtest/gtest.h>

#include <string>

#include "core/mobile_host.hpp"
#include "faults/fault_plane.hpp"
#include "faults/fault_schedule.hpp"
#include "scenario/audit_hooks.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/scale_world.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using scenario::MhrpWorld;
using scenario::MhrpWorldOptions;
using scenario::ScaleWorld;
using scenario::ScaleWorldOptions;
using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

// ---- Registration backoff policy ----

core::MobileHostConfig backoff_config(double jitter) {
  core::MobileHostConfig c;
  c.registration_retry = sim::millis(500);
  c.backoff_factor = 2.0;
  c.registration_retry_max = sim::seconds(8);
  c.retry_jitter = jitter;
  return c;
}

TEST(RegistrationBackoff, DoublesUntilTheCap) {
  const core::MobileHostConfig c = backoff_config(0.0);
  util::Rng rng(1);
  EXPECT_EQ(registration_backoff_delay(c, 0, rng), sim::millis(500));
  EXPECT_EQ(registration_backoff_delay(c, 1, rng), sim::seconds(1));
  EXPECT_EQ(registration_backoff_delay(c, 2, rng), sim::seconds(2));
  EXPECT_EQ(registration_backoff_delay(c, 3, rng), sim::seconds(4));
  EXPECT_EQ(registration_backoff_delay(c, 4, rng), sim::seconds(8));
  EXPECT_EQ(registration_backoff_delay(c, 5, rng), sim::seconds(8));
  EXPECT_EQ(registration_backoff_delay(c, 50, rng), sim::seconds(8));
}

TEST(RegistrationBackoff, JitterStaysInsideTheConfiguredBand) {
  const core::MobileHostConfig plain = backoff_config(0.0);
  const core::MobileHostConfig jittered = backoff_config(0.1);
  util::Rng plain_rng(7);
  util::Rng rng(7);
  bool saw_difference = false;
  for (int attempt = 0; attempt <= 10; ++attempt) {
    const sim::Time base =
        registration_backoff_delay(plain, attempt, plain_rng);
    for (int draw = 0; draw < 50; ++draw) {
      const sim::Time d = registration_backoff_delay(jittered, attempt, rng);
      EXPECT_GE(d, static_cast<sim::Time>(
                       0.899 * static_cast<double>(base)));
      EXPECT_LE(d, static_cast<sim::Time>(
                       1.101 * static_cast<double>(base)));
      if (d != base) saw_difference = true;
    }
  }
  EXPECT_TRUE(saw_difference);  // jitter must actually be applied
}

TEST(RegistrationBackoff, GivingUpCountsAsAbandoned) {
  // The home agent's router is crashed before the mobile ever attaches:
  // the foreign agent answers the Connect, the home registration never
  // completes, and after the configured attempts the host abandons the
  // round. The retry schedule is tightened so the give-up lands well
  // inside the advertised agent lifetime (15s), which would otherwise
  // restart discovery first.
  Topology topo;
  auto& backbone = topo.add_link("backbone", sim::millis(2));
  auto& home_router = topo.add_router("HomeRouter");
  topo.connect(home_router, backbone, ip("10.0.0.1"), 24);
  auto& home_lan = topo.add_link("homeLan", sim::millis(1));
  topo.connect(home_router, home_lan, ip("10.1.0.1"), 24);

  auto& fa_router = topo.add_router("FA");
  topo.connect(fa_router, backbone, ip("10.0.0.2"), 24);
  auto& cell = topo.add_link("cell", sim::millis(1));
  net::Interface& cell_iface =
      topo.connect(fa_router, cell, ip("10.2.0.1"), 24);

  core::MobileHostConfig m_config;
  m_config.home_agent = ip("10.1.0.1");
  m_config.registration_retry = sim::millis(200);
  m_config.registration_retry_max = sim::seconds(1);
  auto& m = topo.add_mobile_host("M", ip("10.1.0.77"), 24, m_config);
  topo.install_static_routes();

  core::AgentConfig fa_config;
  fa_config.foreign_agent = true;
  core::MhrpAgent fa(fa_router, fa_config);
  fa.serve_on(cell_iface);
  fa.start_advertising();

  home_router.fail();
  m.attach_to(cell);
  topo.sim().run_for(sim::seconds(12));

  EXPECT_GE(m.stats().registrations_abandoned, 1u);
  EXPECT_EQ(m.stats().registrations_completed, 0u);
  EXPECT_GE(m.stats().registration_retransmits, 3u);
}

// ---- FaultSchedule ----

TEST(FaultSchedule, PoissonDrawsAreSeedDeterministic) {
  auto build = [](std::uint64_t seed) {
    util::Rng rng(seed);
    faults::FaultSchedule s;
    s.append_poisson_link_outages(rng, sim::seconds(120), 0.5,
                                  sim::seconds(2), 0, 8);
    s.append_poisson_node_crashes(rng, sim::seconds(120), 0.2,
                                  sim::seconds(3), 0, 4, false);
    net::LinkImpairments burst;
    burst.loss = 0.4;
    s.append_poisson_impairment_bursts(rng, sim::seconds(120), 0.3,
                                       sim::seconds(1), burst, 0, 8);
    return s;
  };
  const faults::FaultSchedule a = build(42);
  const faults::FaultSchedule b = build(42);
  const faults::FaultSchedule c = build(43);
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

// ---- FaultPlane scripted events ----

TEST(FaultPlane, ScriptedLinkOutageAutoHeals) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();

  faults::FaultPlane plane(topo.sim(), 1);
  plane.add_link(lan);
  faults::FaultSchedule s;
  faults::FaultEvent outage;
  outage.at = sim::seconds(1);
  outage.kind = faults::FaultKind::kLinkFail;
  outage.target = 0;
  outage.duration = sim::seconds(2);
  s.add(outage);
  plane.load(s);

  bool during = true;
  bool after = false;
  (void)topo.sim().after(sim::millis(1500), [&] {
    EXPECT_FALSE(lan.is_up());
    a.ping(ip("10.1.0.11"),
           [&](const node::Host::PingResult& r) { during = r.replied; }, 16,
           sim::seconds(1));
  });
  (void)topo.sim().after(sim::seconds(4), [&] {
    EXPECT_TRUE(lan.is_up());
    a.ping(ip("10.1.0.11"),
           [&](const node::Host::PingResult& r) { after = r.replied; });
  });
  topo.sim().run_for(sim::seconds(8));

  EXPECT_FALSE(during);
  EXPECT_TRUE(after);
  EXPECT_EQ(plane.stats().link_failures, 1u);
  EXPECT_EQ(plane.stats().link_recoveries, 1u);
  EXPECT_GT(lan.frames_dropped_down(), 0u);
}

TEST(FaultPlane, RegistrationDropWindowBlocksThenReleases) {
  MhrpWorldOptions options;
  options.foreign_sites = 1;
  MhrpWorld w(options);

  faults::FaultPlane plane(w.topo.sim(), 1);
  plane.add_node(*w.home_router, w.ha.get());
  faults::FaultEvent window;
  window.at = 0;
  window.kind = faults::FaultKind::kDropRegistration;
  window.target = 0;
  window.duration = sim::seconds(5);
  plane.apply(window);

  // While the window is open, home registrations die at the home router.
  EXPECT_FALSE(w.move_and_register(0, 0, sim::seconds(4)));
  EXPECT_GT(plane.stats().messages_dropped, 0u);

  // Past the window (the plane closes it automatically), a fresh attach
  // registers normally.
  w.topo.sim().run_for(sim::seconds(3));
  EXPECT_TRUE(w.move_and_register(0, 0));
  EXPECT_EQ(plane.stats().drop_windows_opened, 1u);
  EXPECT_EQ(plane.stats().drop_windows_closed, 1u);
}

TEST(FaultPlane, NodeCrashLosesVolatileStateAndRebootRestoresService) {
  MhrpWorldOptions options;
  options.foreign_sites = 1;
  MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));
  ASSERT_TRUE(w.fas[0]->is_visiting(w.mobile_address(0)));

  faults::FaultPlane plane(w.topo.sim(), 1);
  std::size_t fa_node = plane.add_node(*w.fa_routers[0], w.fas[0].get());
  faults::FaultEvent crash;
  crash.at = 0;
  crash.kind = faults::FaultKind::kNodeCrash;
  crash.target = fa_node;
  crash.duration = sim::seconds(2);
  plane.apply(crash);
  EXPECT_FALSE(w.fa_routers[0]->is_up());

  w.topo.sim().run_for(sim::seconds(3));
  EXPECT_TRUE(w.fa_routers[0]->is_up());
  // The §5.2 reboot dropped the visiting list; data-path recovery or
  // re-registration rebuilds it.
  EXPECT_EQ(plane.stats().node_crashes, 1u);
  EXPECT_EQ(plane.stats().node_reboots, 1u);
  ASSERT_TRUE(w.move_and_register(0, 0));
  EXPECT_TRUE(w.fas[0]->is_visiting(w.mobile_address(0)));
}

// ---- Chaos replay determinism ----

ScaleWorldOptions chaos_options() {
  ScaleWorldOptions o;
  o.routers = 200;
  o.foreign_agents = 24;
  o.mobile_hosts = 40;
  o.correspondents = 4;
  o.protocol.seed = 5;
  o.chaos.enabled = true;
  o.chaos.fault_seed = 0xc4a05;
  o.chaos.horizon = sim::seconds(30);
  o.chaos.cell_outages_per_sec = 0.2;
  o.chaos.backbone_outages_per_sec = 0.1;
  o.chaos.mean_outage = sim::seconds(2);
  o.chaos.fa_crashes_per_sec = 0.1;
  o.chaos.mean_downtime = sim::seconds(2);
  o.chaos.loss_bursts_per_sec = 0.2;
  o.chaos.burst_loss = 0.3;
  return o;
}

std::string run_chaos(const ScaleWorldOptions& o, sim::Time duration) {
  ScaleWorld w(o);
  w.start();
  w.run_for(duration);
  return w.metrics_digest();
}

TEST(ChaosReplay, SameSeedAndScheduleReplayByteIdenticallyAt200Routers) {
  const ScaleWorldOptions o = chaos_options();
  const std::string first = run_chaos(o, sim::seconds(30));
  const std::string second = run_chaos(o, sim::seconds(30));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("faultplane"), std::string::npos);
  EXPECT_NE(first.find("recovery"), std::string::npos);
}

TEST(ChaosReplay, FaultsFireAndRecoveryMetricsAccumulate) {
  ScaleWorld w(chaos_options());
  w.start();
  w.run_for(sim::seconds(30));

  ASSERT_NE(w.fault_plane(), nullptr);
  const faults::FaultPlaneStats& s = w.fault_plane()->stats();
  EXPECT_GT(s.link_failures + s.node_crashes + s.impairment_bursts, 0u);
  // Heals scheduled past the run window have not fired yet; they can
  // only trail, never lead.
  EXPECT_LE(s.link_recoveries, s.link_failures);
  EXPECT_LE(s.node_reboots, s.node_crashes);
  EXPECT_GT(s.link_recoveries + s.node_reboots, 0u);
  EXPECT_EQ(w.recovery_times().size(), w.outage_losses().size());
  for (double r : w.recovery_times()) EXPECT_GT(r, 0.0);
  for (double l : w.outage_losses()) EXPECT_GE(l, 0.0);

  // In audit builds the whole chaotic run was under wire audit: no frame
  // crossed a down link and no stale binding outlived the repair window.
  if (scenario::audit::audit_build()) {
    const analysis::AuditReport& report =
        scenario::audit::global_auditor().report();
    EXPECT_TRUE(report.clean()) << report.to_string();
  }
}

}  // namespace
}  // namespace mhrp
