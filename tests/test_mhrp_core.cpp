// Unit tests for the paper's core mechanics in isolation: the MHRP
// header codec (Fig. 3), the §4.1 encapsulation transform, the §4.4
// re-tunnel transform with list overflow, the §5.3 loop check, the
// location cache, and the §4.3 update rate limiter.
#include <gtest/gtest.h>

#include "core/encapsulation.hpp"
#include "core/location_cache.hpp"
#include "core/mhrp_header.hpp"
#include "core/rate_limiter.hpp"
#include "net/udp.hpp"

namespace mhrp::core {
namespace {

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

net::Packet make_udp_packet(net::IpAddress src, net::IpAddress dst) {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = src;
  h.dst = dst;
  std::vector<std::uint8_t> data{1, 2, 3, 4};
  net::Packet p(h, net::encode_udp({111, 222}, data));
  p.set_base_payload_size(p.payload().size());
  return p;
}

// ---- Header codec (Figure 3) ----

TEST(MhrpHeader, SenderBuiltIsEightOctets) {
  MhrpHeader h;
  h.orig_protocol = 17;
  h.mobile_host = ip("10.2.0.77");
  EXPECT_EQ(h.encoded_size(), 8u);
}

TEST(MhrpHeader, EachListEntryAddsFourOctets) {
  MhrpHeader h;
  h.previous_sources = {ip("1.1.1.1")};
  EXPECT_EQ(h.encoded_size(), 12u);
  h.previous_sources.push_back(ip("2.2.2.2"));
  EXPECT_EQ(h.encoded_size(), 16u);
}

TEST(MhrpHeader, RoundTripsWithChecksum) {
  MhrpHeader h;
  h.orig_protocol = 6;
  h.mobile_host = ip("10.2.0.77");
  h.previous_sources = {ip("10.1.0.10"), ip("10.4.0.1")};
  util::ByteWriter w;
  h.encode(w);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 16u);

  util::ByteReader r(bytes);
  EXPECT_EQ(MhrpHeader::decode(r), h);
}

TEST(MhrpHeader, DecodeRejectsCorruption) {
  MhrpHeader h;
  h.mobile_host = ip("10.2.0.77");
  util::ByteWriter w;
  h.encode(w);
  auto bytes = w.take();
  bytes[5] ^= 0x40;
  util::ByteReader r(bytes);
  EXPECT_THROW(MhrpHeader::decode(r), util::CodecError);
}

TEST(MhrpHeader, DecodeRejectsTruncatedList) {
  MhrpHeader h;
  h.mobile_host = ip("10.2.0.77");
  h.previous_sources = {ip("1.1.1.1")};
  util::ByteWriter w;
  h.encode(w);
  auto bytes = w.take();
  bytes.resize(10);  // cut into the list
  util::ByteReader r(bytes);
  EXPECT_THROW(MhrpHeader::decode(r), util::CodecError);
}

// ---- §4.1 encapsulation ----

TEST(Encapsulation, SenderBuiltLeavesSourceAndListAlone) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  const std::size_t before = p.wire_size();
  encapsulate(p, ip("10.4.0.1"), /*builder=*/ip("10.1.0.10"));

  EXPECT_TRUE(is_mhrp(p));
  EXPECT_EQ(p.header().src, ip("10.1.0.10"));
  EXPECT_EQ(p.header().dst, ip("10.4.0.1"));
  auto h = read_mhrp_header(p);
  EXPECT_EQ(h.orig_protocol, net::to_u8(net::IpProto::kUdp));
  EXPECT_EQ(h.mobile_host, ip("10.2.0.77"));
  EXPECT_TRUE(h.previous_sources.empty());
  // "normally adds only 8 bytes" (§7).
  EXPECT_EQ(p.wire_size(), before + 8);
}

TEST(Encapsulation, AgentBuiltRecordsOriginalSender) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  const std::size_t before = p.wire_size();
  encapsulate(p, ip("10.4.0.1"), /*builder=*/ip("10.2.0.1"));  // home agent

  EXPECT_EQ(p.header().src, ip("10.2.0.1"));
  auto h = read_mhrp_header(p);
  ASSERT_EQ(h.previous_sources.size(), 1u);
  EXPECT_EQ(h.previous_sources[0], ip("10.1.0.10"));
  // "(or 12 bytes)" (§7).
  EXPECT_EQ(p.wire_size(), before + 12);
}

TEST(Encapsulation, DecapsulationReconstructsOriginalExactly) {
  auto original = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  const auto original_header = original.header();
  const auto original_payload = original.payload();

  auto p = original;
  encapsulate(p, ip("10.4.0.1"), ip("10.2.0.1"));
  MhrpHeader removed = decapsulate(p);
  EXPECT_EQ(p.header(), original_header);
  EXPECT_EQ(p.payload(), original_payload);
  EXPECT_EQ(removed.mobile_host, ip("10.2.0.77"));
}

TEST(Encapsulation, SenderBuiltDecapsulationKeepsSenderSource) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  encapsulate(p, ip("10.4.0.1"), ip("10.1.0.10"));
  decapsulate(p);
  EXPECT_EQ(p.header().src, ip("10.1.0.10"));
  EXPECT_EQ(p.header().dst, ip("10.2.0.77"));
}

// ---- §4.4 re-tunneling ----

TEST(Retunnel, AppendsSourceAndRewritesAddresses) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  encapsulate(p, ip("10.4.0.1"), ip("10.2.0.1"));  // HA built: list=[S]
  const std::size_t before = p.wire_size();

  // Old FA 10.4.0.1 re-tunnels to the new FA 10.5.0.1.
  auto r = retunnel(p, ip("10.4.0.1"), ip("10.5.0.1"), 8);
  EXPECT_FALSE(r.loop_detected);
  EXPECT_FALSE(r.list_overflowed);
  EXPECT_EQ(p.header().src, ip("10.4.0.1"));
  EXPECT_EQ(p.header().dst, ip("10.5.0.1"));
  auto h = read_mhrp_header(p);
  ASSERT_EQ(h.previous_sources.size(), 2u);
  EXPECT_EQ(h.previous_sources[0], ip("10.1.0.10"));
  EXPECT_EQ(h.previous_sources[1], ip("10.2.0.1"));
  // "The size of the MHRP header in the packet thus is increased by 4
  // bytes" (§4.4).
  EXPECT_EQ(p.wire_size(), before + 4);
}

TEST(Retunnel, OverflowFlushesTruncatesAndRestarts) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  encapsulate(p, ip("10.0.0.1"), ip("9.9.9.1"));  // list=[S]
  auto r1 = retunnel(p, ip("10.0.0.1"), ip("10.0.0.2"), 2);
  ASSERT_FALSE(r1.list_overflowed);  // list=[S, 9.9.9.1]

  auto r2 = retunnel(p, ip("10.0.0.2"), ip("10.0.0.3"), 2);
  EXPECT_TRUE(r2.list_overflowed);
  ASSERT_EQ(r2.flushed.size(), 2u);
  EXPECT_EQ(r2.flushed[0], ip("10.1.0.10"));
  EXPECT_EQ(r2.flushed[1], ip("9.9.9.1"));
  auto h = read_mhrp_header(p);
  // "The new address is added to the list as the single entry" (§4.4).
  ASSERT_EQ(h.previous_sources.size(), 1u);
  EXPECT_EQ(h.previous_sources[0], ip("10.0.0.1"));
}

TEST(Retunnel, ZeroMaxMeansUnbounded) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  encapsulate(p, ip("10.0.0.1"), ip("9.9.9.1"));
  for (int i = 0; i < 20; ++i) {
    auto r = retunnel(p, net::IpAddress::of(10, 0, 1, std::uint8_t(i)),
                      net::IpAddress::of(10, 0, 1, std::uint8_t(i + 1)), 0);
    ASSERT_FALSE(r.list_overflowed);
  }
  EXPECT_EQ(read_mhrp_header(p).previous_sources.size(), 21u);
}

TEST(Retunnel, DetectsOwnAddressInList) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  encapsulate(p, ip("10.0.0.1"), ip("9.9.9.1"));
  (void)retunnel(p, ip("10.0.0.1"), ip("10.0.0.2"), 8);
  (void)retunnel(p, ip("10.0.0.2"), ip("10.0.0.1"), 8);
  // Back at 10.0.0.1, whose address is in the list: one full pass done.
  auto r = retunnel(p, ip("10.0.0.1"), ip("10.0.0.2"), 8);
  EXPECT_TRUE(r.loop_detected);
  // The packet must be untouched on detection.
  EXPECT_EQ(p.header().src, ip("10.0.0.2"));
  // Stale members: everyone in the list plus the incoming tunnel head.
  EXPECT_GE(r.stale_members.size(), 3u);
}

TEST(Retunnel, TransportBytesSurviveManyHops) {
  auto p = make_udp_packet(ip("10.1.0.10"), ip("10.2.0.77"));
  const auto transport = p.payload();
  encapsulate(p, ip("10.0.0.1"), ip("9.9.9.1"));
  for (int i = 1; i <= 5; ++i) {
    (void)retunnel(p, net::IpAddress::of(10, 0, 0, std::uint8_t(i)),
                   net::IpAddress::of(10, 0, 0, std::uint8_t(i + 1)), 3);
  }
  decapsulate(p);
  EXPECT_EQ(p.payload(), transport);
}

// ---- Location cache ----

TEST(LocationCache, UpdateLookupInvalidate) {
  LocationCache cache(4);
  cache.update(ip("10.2.0.77"), ip("10.4.0.1"));
  EXPECT_EQ(cache.lookup(ip("10.2.0.77")).value(), ip("10.4.0.1"));
  cache.update(ip("10.2.0.77"), ip("10.5.0.1"));
  EXPECT_EQ(cache.lookup(ip("10.2.0.77")).value(), ip("10.5.0.1"));
  cache.invalidate(ip("10.2.0.77"));
  EXPECT_FALSE(cache.lookup(ip("10.2.0.77")).has_value());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LocationCache, ZeroForeignAgentDeletes) {
  // §6.3: an update naming agent 0 means "at home, drop your entry".
  LocationCache cache(4);
  cache.update(ip("10.2.0.77"), ip("10.4.0.1"));
  cache.update(ip("10.2.0.77"), net::kUnspecified);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LocationCache, LruEvictionPrefersStaleEntries) {
  LocationCache cache(2);
  cache.update(ip("10.2.0.1"), ip("10.4.0.1"));
  cache.update(ip("10.2.0.2"), ip("10.4.0.1"));
  (void)cache.lookup(ip("10.2.0.1"));  // touch 1 → 2 is now LRU
  cache.update(ip("10.2.0.3"), ip("10.4.0.1"));
  EXPECT_TRUE(cache.peek(ip("10.2.0.1")).has_value());
  EXPECT_FALSE(cache.peek(ip("10.2.0.2")).has_value());
  EXPECT_TRUE(cache.peek(ip("10.2.0.3")).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LocationCache, PeekDoesNotPromote) {
  LocationCache cache(2);
  cache.update(ip("10.2.0.1"), ip("10.4.0.1"));
  cache.update(ip("10.2.0.2"), ip("10.4.0.1"));
  (void)cache.peek(ip("10.2.0.1"));  // no promotion
  cache.update(ip("10.2.0.3"), ip("10.4.0.1"));
  EXPECT_FALSE(cache.peek(ip("10.2.0.1")).has_value());
}

// ---- §4.3 rate limiter ----

TEST(RateLimiter, SuppressesWithinInterval) {
  UpdateRateLimiter limiter(sim::seconds(1));
  EXPECT_TRUE(limiter.allow(ip("10.1.0.10"), 0));
  EXPECT_FALSE(limiter.allow(ip("10.1.0.10"), sim::millis(500)));
  EXPECT_TRUE(limiter.allow(ip("10.1.0.10"), sim::seconds(2)));
  EXPECT_EQ(limiter.suppressed(), 1u);
}

TEST(RateLimiter, PerDestinationIndependence) {
  UpdateRateLimiter limiter(sim::seconds(1));
  EXPECT_TRUE(limiter.allow(ip("10.1.0.10"), 0));
  EXPECT_TRUE(limiter.allow(ip("10.1.0.11"), 0));
}

TEST(RateLimiter, LruBoundedCapacity) {
  UpdateRateLimiter limiter(sim::seconds(1), 2);
  EXPECT_TRUE(limiter.allow(ip("10.0.0.1"), 0));
  EXPECT_TRUE(limiter.allow(ip("10.0.0.2"), 1));
  EXPECT_TRUE(limiter.allow(ip("10.0.0.3"), 2));  // evicts 10.0.0.1
  EXPECT_EQ(limiter.size(), 2u);
  // 10.0.0.1 was evicted, so it is allowed again immediately.
  EXPECT_TRUE(limiter.allow(ip("10.0.0.1"), 3));
}

TEST(RateLimiter, EvictionFollowsRecencyNotInsertionOrder) {
  // At capacity, the evicted entry must be the LEAST RECENTLY USED — a
  // successful re-send refreshes recency, so insertion order alone must
  // not decide who gets dropped.
  UpdateRateLimiter limiter(sim::seconds(1), 2);
  EXPECT_TRUE(limiter.allow(ip("10.0.0.1"), 0));
  EXPECT_TRUE(limiter.allow(ip("10.0.0.2"), sim::millis(1)));
  // Refresh .1 after its interval: now .2 is the LRU entry.
  EXPECT_TRUE(limiter.allow(ip("10.0.0.1"), sim::seconds(2)));
  // Inserting .3 at capacity evicts .2, not the older-inserted .1.
  EXPECT_TRUE(limiter.allow(ip("10.0.0.3"), sim::seconds(2)));
  EXPECT_EQ(limiter.size(), 2u);
  // .1 survived with its refreshed timestamp: still suppressed.
  EXPECT_FALSE(limiter.allow(ip("10.0.0.1"), sim::seconds(2) + 1));
  // .2's history is gone: allowed again immediately despite the interval.
  EXPECT_TRUE(limiter.allow(ip("10.0.0.2"), sim::seconds(2) + 2));
}

TEST(RateLimiter, SuppressedLookupDoesNotRefreshRecency) {
  // A suppressed attempt is not a send; it must not promote the entry
  // ahead of destinations that actually sent more recently.
  UpdateRateLimiter limiter(sim::seconds(10), 2);
  EXPECT_TRUE(limiter.allow(ip("10.0.0.1"), 0));
  EXPECT_TRUE(limiter.allow(ip("10.0.0.2"), 1));
  EXPECT_FALSE(limiter.allow(ip("10.0.0.1"), 2));  // suppressed, no refresh
  EXPECT_TRUE(limiter.allow(ip("10.0.0.3"), 3));   // evicts .1 (LRU send)
  // .2 survived the eviction: still suppressed inside its interval.
  EXPECT_FALSE(limiter.allow(ip("10.0.0.2"), 4));
  // .1's history is gone: allowed again despite the 10s interval.
  EXPECT_TRUE(limiter.allow(ip("10.0.0.1"), 5));
}

}  // namespace
}  // namespace mhrp::core
