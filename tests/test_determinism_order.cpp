// Regression tests for the mhrp-lint determinism rules (DESIGN.md §12):
// every observable emission that walks an unordered container must come
// out in sorted key order, byte-identical regardless of insertion order.
// Each test builds the same logical state through two different insertion
// sequences and pins the exact output bytes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/cache_inspector.hpp"
#include "core/location_cache.hpp"
#include "routing/routing_table.hpp"

namespace mhrp {
namespace {

using analysis::CacheInspector;
using core::LocationCache;
using routing::Route;
using routing::RouteKind;
using routing::RoutingTable;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

Route route(const char* prefix, const char* via, int metric) {
  return {net::Prefix::parse(prefix), ip(via), nullptr, metric,
          RouteKind::kStatic};
}

// The same six routes, installed in two unrelated orders. The /16 bucket
// holds four entries, enough that libstdc++'s unordered_map would emit
// them in hash order without the sorted-bucket fix.
std::vector<Route> kRoutesA() {
  return {route("10.3.0.0/16", "9.0.0.3", 3), route("10.1.0.0/16", "9.0.0.1", 1),
          route("10.0.0.0/8", "9.0.0.9", 9), route("10.2.0.0/16", "9.0.0.2", 2),
          route("10.0.0.0/16", "9.0.0.0", 4), route("11.0.0.0/8", "9.0.0.8", 8)};
}

std::vector<Route> kRoutesB() {
  auto r = kRoutesA();
  return {r[5], r[2], r[4], r[0], r[3], r[1]};
}

const char kExpectedTable[] =
    "10.0.0.0/16 via 9.0.0.0 metric 4\n"
    "10.1.0.0/16 via 9.0.0.1 metric 1\n"
    "10.2.0.0/16 via 9.0.0.2 metric 2\n"
    "10.3.0.0/16 via 9.0.0.3 metric 3\n"
    "10.0.0.0/8 via 9.0.0.9 metric 9\n"
    "11.0.0.0/8 via 9.0.0.8 metric 8\n";

TEST(DeterministicOrder, RoutingTableToStringIsInsertOrderInvariant) {
  RoutingTable a;
  for (const auto& r : kRoutesA()) a.install(r);
  RoutingTable b;
  for (const auto& r : kRoutesB()) b.install(r);

  EXPECT_EQ(a.to_string(), kExpectedTable);
  EXPECT_EQ(b.to_string(), kExpectedTable);
}

TEST(DeterministicOrder, RoutingTableRoutesIsInsertOrderInvariant) {
  RoutingTable a;
  for (const auto& r : kRoutesA()) a.install(r);
  RoutingTable b;
  for (const auto& r : kRoutesB()) b.install(r);

  const auto ra = a.routes();
  const auto rb = b.routes();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].prefix, rb[i].prefix) << "position " << i;
    EXPECT_EQ(ra[i].next_hop, rb[i].next_hop) << "position " << i;
  }
  // routes() feeds DV advertisements: within a prefix length the
  // addresses must come out ascending.
  EXPECT_EQ(ra[0].prefix, net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(ra[1].prefix, net::Prefix::parse("11.0.0.0/8"));
  EXPECT_EQ(ra[2].prefix, net::Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(ra[3].prefix, net::Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(ra[4].prefix, net::Prefix::parse("10.2.0.0/16"));
  EXPECT_EQ(ra[5].prefix, net::Prefix::parse("10.3.0.0/16"));
}

// Fill a cache through `order`, then cross-link two entries so the audit
// has two mismatches to report; the detail string must not depend on the
// map's iteration order.
std::string crossed_audit_detail(const std::vector<int>& order) {
  LocationCache cache(16);
  for (int i : order) {
    cache.update(net::IpAddress::of(10, 0, 0, static_cast<std::uint8_t>(i)),
                 net::IpAddress::of(192, 168, 0, 1));
  }
  CacheInspector::corrupt_with_crossed_links_for_test(
      cache, net::IpAddress::of(10, 0, 0, 2), net::IpAddress::of(10, 0, 0, 6));
  const auto findings = CacheInspector::check(cache);
  EXPECT_FALSE(findings.coherent);
  return findings.detail;
}

TEST(DeterministicOrder, CacheAuditDetailIsInsertOrderInvariant) {
  const std::string a = crossed_audit_detail({1, 2, 3, 4, 5, 6, 7, 8});
  const std::string b = crossed_audit_detail({8, 6, 4, 2, 7, 5, 3, 1});

  const char expected[] =
      "map slot for 10.0.0.2 points at LRU node for 10.0.0.6; "
      "map slot for 10.0.0.6 points at LRU node for 10.0.0.2; ";
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
}

}  // namespace
}  // namespace mhrp
