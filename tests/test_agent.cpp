// Agent-level unit tests: behaviors of MhrpAgent not already pinned by
// the Figure-1 integration suite — advertisement content, solicitation
// replies, registration sequencing, the detached sentinel, rate limiting
// at the agent boundary, role gating, and crash semantics.
#include <gtest/gtest.h>

#include "core/agent.hpp"
#include "core/registration.hpp"
#include "net/udp.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using core::AgentConfig;
using core::MhrpAgent;
using core::RegKind;
using core::RegMessage;
using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

// One LAN with an agent router and a listening host.
struct AgentLan {
  Topology topo;
  node::Router* router;
  node::Host* listener;
  net::Interface* lan_iface;
  std::unique_ptr<MhrpAgent> agent;

  explicit AgentLan(AgentConfig config) {
    auto& lan = topo.add_link("lan", sim::millis(1));
    router = &topo.add_router("R");
    listener = &topo.add_host("L");
    lan_iface = &topo.connect(*router, lan, ip("10.1.0.1"), 24);
    topo.connect(*listener, lan, ip("10.1.0.50"), 24);
    listener->join_multicast(net::kAllAgentsGroup);
    topo.install_static_routes();
    agent = std::make_unique<MhrpAgent>(*router, config);
    agent->serve_on(*lan_iface);
  }
};

TEST(Agent, AdvertisementCarriesRoleFlagsAndAgentAddress) {
  AgentConfig config;
  config.home_agent = true;
  config.foreign_agent = true;
  AgentLan w(config);

  std::vector<net::IcmpAgentAdvertisement> heard;
  w.listener->add_icmp_handler([&](const net::IcmpMessage& m,
                                   const net::IpHeader&, net::Interface&) {
    if (const auto* adv = std::get_if<net::IcmpAgentAdvertisement>(&m)) {
      heard.push_back(*adv);
      return true;
    }
    return false;
  });
  w.agent->start_advertising();
  w.topo.sim().run_for(sim::seconds(12));
  ASSERT_GE(heard.size(), 2u);
  EXPECT_EQ(heard[0].agent, ip("10.1.0.1"));
  EXPECT_TRUE(heard[0].offers_home_agent);
  EXPECT_TRUE(heard[0].offers_foreign_agent);
  // Sequence numbers advance.
  EXPECT_GT(heard[1].sequence, heard[0].sequence);
}

TEST(Agent, SolicitationDrawsImmediateAdvertisement) {
  AgentConfig config;
  config.foreign_agent = true;
  config.advertisement_period = sim::seconds(3600);  // periodic silenced
  AgentLan w(config);

  int advertisements = 0;
  w.listener->add_icmp_handler([&](const net::IcmpMessage& m,
                                   const net::IpHeader&, net::Interface&) {
    if (std::holds_alternative<net::IcmpAgentAdvertisement>(m)) {
      ++advertisements;
      return true;
    }
    return false;
  });
  w.listener->send_icmp_on(*w.listener->interfaces().front().get(),
                           net::kAllAgentsGroup,
                           net::IcmpAgentSolicitation{});
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(advertisements, 1);
}

TEST(Agent, ConnectRegistersVisitorAndAcks) {
  AgentConfig config;
  config.foreign_agent = true;
  AgentLan w(config);
  const net::IpAddress mh = ip("10.9.0.77");

  RegMessage connect{RegKind::kConnect, mh, net::kUnspecified, 5};
  auto bytes = connect.encode();
  // Impersonate the mobile host from the listener (its ack goes there).
  std::vector<RegMessage> acks;
  w.listener->bind_udp(core::kRegistrationPort,
                       [&](const net::UdpDatagram& d, const net::IpHeader&,
                           net::Interface&) {
                         acks.push_back(RegMessage::decode(d.data));
                       });
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = w.listener->primary_address();
  h.dst = ip("10.1.0.1");
  w.listener->send_ip_on(
      *w.listener->interfaces().front().get(),
      net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                      core::kRegistrationPort},
                                     bytes)),
      ip("10.1.0.1"));
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_TRUE(w.agent->is_visiting(mh));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].kind, RegKind::kConnectAck);
  EXPECT_EQ(acks[0].sequence, 5u);
}

TEST(Agent, StaleSequencesAreIgnored) {
  AgentConfig config;
  config.foreign_agent = true;
  AgentLan w(config);
  const net::IpAddress mh = ip("10.9.0.77");

  auto send_reg = [&](RegKind kind, std::uint32_t seq, net::IpAddress fa) {
    RegMessage m{kind, mh, fa, seq};
    auto bytes = m.encode();
    net::IpHeader h;
    h.protocol = net::to_u8(net::IpProto::kUdp);
    h.src = w.listener->primary_address();
    h.dst = ip("10.1.0.1");
    w.listener->send_ip_on(
        *w.listener->interfaces().front().get(),
        net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                        core::kRegistrationPort},
                                       bytes)),
        ip("10.1.0.1"));
    w.topo.sim().run_for(sim::seconds(1));
  };

  send_reg(RegKind::kConnect, 10, net::kUnspecified);
  ASSERT_TRUE(w.agent->is_visiting(mh));
  // A stale (reordered) disconnect from an earlier move must not erase
  // the newer registration.
  send_reg(RegKind::kDisconnect, 4, ip("10.8.0.1"));
  EXPECT_TRUE(w.agent->is_visiting(mh));
  // A current one does.
  send_reg(RegKind::kDisconnect, 11, ip("10.8.0.1"));
  EXPECT_FALSE(w.agent->is_visiting(mh));
  // …and leaves a forwarding pointer.
  ASSERT_TRUE(w.agent->cache().peek(mh).has_value());
  EXPECT_EQ(*w.agent->cache().peek(mh), ip("10.8.0.1"));
}

TEST(Agent, DisconnectNamingThisAgentIsRejected) {
  AgentConfig config;
  config.foreign_agent = true;
  AgentLan w(config);
  const net::IpAddress mh = ip("10.9.0.77");
  RegMessage connect{RegKind::kConnect, mh, net::kUnspecified, 1};
  auto bytes = connect.encode();
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = w.listener->primary_address();
  h.dst = ip("10.1.0.1");
  w.listener->send_ip_on(
      *w.listener->interfaces().front().get(),
      net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                      core::kRegistrationPort},
                                     bytes)),
      ip("10.1.0.1"));
  w.topo.sim().run_for(sim::seconds(1));
  ASSERT_TRUE(w.agent->is_visiting(mh));

  // A (bounced/stale) disconnect claiming the new FA is this very agent.
  RegMessage bogus{RegKind::kDisconnect, mh, ip("10.1.0.1"), 2};
  auto bogus_bytes = bogus.encode();
  net::IpHeader h2 = h;
  w.listener->send_ip_on(
      *w.listener->interfaces().front().get(),
      net::Packet(h2, net::encode_udp({core::kRegistrationPort,
                                       core::kRegistrationPort},
                                      bogus_bytes)),
      ip("10.1.0.1"));
  w.topo.sim().run_for(sim::seconds(1));
  EXPECT_TRUE(w.agent->is_visiting(mh));
}

TEST(Agent, HomeRegisterOutsideServedPrefixIgnored) {
  AgentConfig config;
  config.home_agent = true;
  AgentLan w(config);
  // 172.16/12 is not a served network here.
  RegMessage reg{RegKind::kHomeRegister, ip("172.16.0.9"), ip("10.8.0.1"), 1};
  auto bytes = reg.encode();
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = w.listener->primary_address();
  h.dst = ip("10.1.0.1");
  w.listener->send_ip_on(
      *w.listener->interfaces().front().get(),
      net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                      core::kRegistrationPort},
                                     bytes)),
      ip("10.1.0.1"));
  w.topo.sim().run_for(sim::seconds(1));
  EXPECT_FALSE(w.agent->home_binding(ip("172.16.0.9")).has_value());
  EXPECT_EQ(w.agent->home_database_size(), 0u);
}

TEST(Agent, HomeRegisterAutoProvisionsOwnPrefixHosts) {
  AgentConfig config;
  config.home_agent = true;
  AgentLan w(config);
  RegMessage reg{RegKind::kHomeRegister, ip("10.1.0.77"), ip("10.8.0.1"), 1};
  auto bytes = reg.encode();
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = w.listener->primary_address();
  h.dst = ip("10.1.0.1");
  w.listener->send_ip_on(
      *w.listener->interfaces().front().get(),
      net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                      core::kRegistrationPort},
                                     bytes)),
      ip("10.1.0.1"));
  w.topo.sim().run_for(sim::seconds(1));
  auto binding = w.agent->home_binding(ip("10.1.0.77"));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(*binding, ip("10.8.0.1"));
  // Proxy ARP active for the away host.
  EXPECT_TRUE(w.router->has_proxy_arp(
      *w.router->interface_named("eth0"), ip("10.1.0.77")));
}

TEST(Agent, CrashPreservesHomeDatabaseAndClearsCache) {
  AgentConfig config;
  config.home_agent = true;
  config.foreign_agent = true;
  AgentLan w(config);
  w.agent->provision_mobile_host(ip("10.1.0.77"));
  w.agent->cache().update(ip("10.9.0.5"), ip("10.8.0.1"));
  ASSERT_EQ(w.agent->cache().size(), 1u);

  w.agent->reboot();
  // "The database … should also be recorded on disk to survive any
  // crashes" (§2): rows persist; the volatile cache does not.
  EXPECT_EQ(w.agent->home_database_size(), 1u);
  EXPECT_EQ(w.agent->cache().size(), 0u);
  EXPECT_EQ(w.agent->visiting_count(), 0u);
}

TEST(Agent, LocationUpdateRateLimiterSuppressesBursts) {
  AgentConfig config;
  config.update_min_interval = sim::seconds(1);
  AgentLan w(config);
  int updates = 0;
  w.listener->add_icmp_handler([&](const net::IcmpMessage& m,
                                   const net::IpHeader&, net::Interface&) {
    if (std::holds_alternative<net::IcmpLocationUpdate>(m)) ++updates;
    return false;
  });
  for (int i = 0; i < 10; ++i) {
    w.agent->send_location_update(ip("10.1.0.50"), ip("10.9.0.77"),
                                  ip("10.8.0.1"));
  }
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(updates, 1);  // nine suppressed
  EXPECT_EQ(w.agent->rate_limiter().suppressed(), 9u);
}

TEST(Agent, NonCacheAgentIgnoresLocationUpdates) {
  AgentConfig config;
  config.cache_agent = false;
  AgentLan w(config);
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kIcmp);
  h.src = w.listener->primary_address();
  h.dst = ip("10.1.0.1");
  w.listener->send_ip_on(
      *w.listener->interfaces().front().get(),
      net::Packet(h, net::encode_icmp(net::IcmpLocationUpdate{
                         ip("10.9.0.77"), ip("10.8.0.1"), false})),
      ip("10.1.0.1"));
  w.topo.sim().run_for(sim::seconds(1));
  EXPECT_EQ(w.agent->cache().size(), 0u);
  EXPECT_EQ(w.agent->stats().updates_received, 1u);
}

TEST(Agent, ExamineForwardedPacketsToggleDisablesRouterCaching) {
  // §4.3: "Routers should thus support a configuration option to enable
  // or disable the capability to become a cache agent, avoiding the
  // overhead of examining each packet forwarded."
  Topology topo;
  auto& lan1 = topo.add_link("lan1", sim::millis(1));
  auto& lan2 = topo.add_link("lan2", sim::millis(1));
  auto& r = topo.add_router("R");
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  topo.connect(r, lan1, ip("10.1.0.1"), 24);
  topo.connect(r, lan2, ip("10.2.0.1"), 24);
  topo.connect(a, lan1, ip("10.1.0.10"), 24);
  topo.connect(b, lan2, ip("10.2.0.10"), 24);
  topo.install_static_routes();

  AgentConfig config;
  config.examine_forwarded_packets = false;
  MhrpAgent agent(r, config);

  // A location update forwarded through R must NOT be cached.
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kIcmp);
  h.dst = ip("10.2.0.10");
  a.send_ip(net::Packet(h, net::encode_icmp(net::IcmpLocationUpdate{
                               ip("10.9.0.77"), ip("10.8.0.1"), false})));
  topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(agent.cache().size(), 0u);
  EXPECT_EQ(agent.stats().packets_examined, 0u);
}

TEST(Agent, DetachedSentinelProducesHostUnreachable) {
  Topology topo;
  auto& lan1 = topo.add_link("lan1", sim::millis(1));
  auto& lan2 = topo.add_link("lan2", sim::millis(1));
  auto& r = topo.add_router("R");
  auto& a = topo.add_host("A");
  topo.connect(r, lan1, ip("10.1.0.1"), 24);
  net::Interface& home_iface = *r.interfaces().front();
  topo.connect(r, lan2, ip("10.2.0.1"), 24);
  topo.connect(a, lan2, ip("10.2.0.10"), 24);
  topo.install_static_routes();

  AgentConfig config;
  config.home_agent = true;
  MhrpAgent ha(r, config);
  ha.serve_on(home_iface);
  ha.provision_mobile_host(ip("10.1.0.77"));

  // Register the detached sentinel, as a graceful disconnect does.
  RegMessage reg{RegKind::kHomeRegister, ip("10.1.0.77"),
                 MhrpAgent::kDetachedSentinel, 1};
  auto bytes = reg.encode();
  a.send_udp(ip("10.1.0.1"), core::kRegistrationPort, core::kRegistrationPort,
             bytes);
  topo.sim().run_for(sim::seconds(1));

  bool unreachable = false;
  a.add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                         net::Interface&) {
    unreachable = unreachable || std::holds_alternative<net::IcmpUnreachable>(m);
    return false;
  });
  std::vector<std::uint8_t> data{1};
  a.send_udp(ip("10.1.0.77"), 1, 2, data);
  topo.sim().run_for(sim::seconds(2));
  EXPECT_TRUE(unreachable);
  EXPECT_GE(ha.stats().dropped_disconnected, 1u);
}

}  // namespace
}  // namespace mhrp
