// Unit tests for the audit layer: each invariant catches the violation it
// names, and clean traffic is never flagged.
#include <gtest/gtest.h>

#include "analysis/cache_inspector.hpp"
#include "analysis/packet_auditor.hpp"
#include "core/encapsulation.hpp"
#include "core/location_cache.hpp"
#include "net/icmp.hpp"
#include "net/packet.hpp"

namespace mhrp {
namespace {

using analysis::CacheInspector;
using analysis::InvariantId;
using analysis::InvariantRegistry;
using analysis::PacketAuditor;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

net::Packet make_udp_packet() {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = ip("10.1.0.10");
  h.dst = ip("10.2.0.77");
  h.ttl = 64;
  return net::Packet(h, std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8});
}

/// A packet tunneled by an agent (not the original sender): 12-octet
/// MHRP header, one previous-source entry.
net::Packet make_mhrp_packet() {
  net::Packet p = make_udp_packet();
  core::encapsulate(p, /*foreign_agent=*/ip("10.4.0.1"),
                    /*builder=*/ip("10.2.0.1"));
  return p;
}

/// Rewrite the packet's MHRP previous-source list to exactly `sources`
/// (correctly checksummed — these tests target the semantic invariants,
/// not the codec).
void set_previous_sources(net::Packet& p,
                          std::vector<net::IpAddress> sources) {
  core::MhrpHeader h = core::read_mhrp_header(p);
  h.previous_sources = std::move(sources);
  core::write_mhrp_header(p, h);
}

TEST(PacketAuditor, CleanTrafficIsNotFlagged) {
  PacketAuditor auditor;
  net::Packet udp = make_udp_packet();
  net::Packet mhrp = make_mhrp_packet();
  // Several hops: TTL decrements, list untouched — all invariants hold.
  for (int hop = 0; hop < 4; ++hop) {
    auditor.audit_packet(udp);
    auditor.audit_packet(mhrp);
    --udp.header().ttl;
    --mhrp.header().ttl;
  }
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().to_string();
  EXPECT_EQ(auditor.report().packets_audited, 8u);
  EXPECT_EQ(auditor.report().mhrp_packets_audited, 4u);
}

TEST(PacketAuditor, MhrpChecksumCorruptionIsFlagged) {
  PacketAuditor auditor;
  net::Packet p = make_mhrp_packet();
  p.payload()[4] ^= 0xFF;  // corrupt the mobile-host field under the checksum
  auditor.audit_packet(p);
  EXPECT_EQ(auditor.report().count(InvariantId::kMhrpHeaderChecksum), 1u);
  ASSERT_NE(auditor.report().first(InvariantId::kMhrpHeaderChecksum), nullptr);
  EXPECT_EQ(auditor.report().first(InvariantId::kMhrpHeaderChecksum)->packet_id,
            p.id());
}

TEST(PacketAuditor, DuplicatePreviousSourceIsFlagged) {
  PacketAuditor auditor;
  net::Packet p = make_mhrp_packet();
  // §5.3's loop-contraction rule guarantees this never happens; build it
  // by hand to prove the auditor would see it.
  set_previous_sources(p, {ip("10.1.0.10"), ip("10.3.0.4"), ip("10.1.0.10")});
  // Suppress the co-occurring size finding (a 3-entry first observation).
  auditor.registry().set_enabled(InvariantId::kMhrpHeaderSize, false);
  auditor.audit_packet(p);
  EXPECT_EQ(auditor.report().count(InvariantId::kMhrpNoDuplicateSources), 1u);
  EXPECT_EQ(auditor.report().total_violations(), 1u);
}

TEST(PacketAuditor, FreshlyBuiltOversizedHeaderIsFlagged) {
  PacketAuditor auditor;
  net::Packet p = make_mhrp_packet();
  set_previous_sources(p, {ip("10.1.0.10"), ip("10.3.0.4")});
  auditor.audit_packet(p);  // first observation: must be 8 or 12 octets
  EXPECT_EQ(auditor.report().count(InvariantId::kMhrpHeaderSize), 1u);
}

TEST(PacketAuditor, SenderAndAgentBuiltSizesAreAccepted) {
  PacketAuditor auditor;
  net::Packet sender_built = make_udp_packet();
  core::encapsulate(sender_built, ip("10.4.0.1"),
                    /*builder=*/sender_built.header().src);
  EXPECT_EQ(core::read_mhrp_header(sender_built).encoded_size(), 8u);
  auditor.audit_packet(sender_built);

  net::Packet agent_built = make_mhrp_packet();
  EXPECT_EQ(core::read_mhrp_header(agent_built).encoded_size(), 12u);
  auditor.audit_packet(agent_built);

  EXPECT_TRUE(auditor.report().clean()) << auditor.report().to_string();
}

TEST(PacketAuditor, ListGrowingByTwoInOneHopIsFlagged) {
  PacketAuditor auditor;
  net::Packet p = make_mhrp_packet();
  auditor.audit_packet(p);  // baseline: one entry
  --p.header().ttl;
  set_previous_sources(
      p, {ip("10.1.0.10"), ip("10.3.0.4"), ip("10.3.0.5")});  // +2 entries
  auditor.audit_packet(p);
  EXPECT_EQ(auditor.report().count(InvariantId::kMhrpListGrowth), 1u);
}

TEST(PacketAuditor, RetunnelAppendAndOverflowFlushAreAccepted) {
  PacketAuditor auditor;
  net::Packet p = make_mhrp_packet();
  auditor.audit_packet(p);
  // Re-tunnels append one address per hop (§4.4)...
  std::vector<net::IpAddress> list = {ip("10.1.0.10")};
  for (int hop = 0; hop < 3; ++hop) {
    list.push_back(net::IpAddress::of(10, 3, 0, static_cast<std::uint8_t>(hop)));
    set_previous_sources(p, list);
    --p.header().ttl;
    auditor.audit_packet(p);
  }
  // ...until the overflow flush resets the list to the single new entry.
  set_previous_sources(p, {ip("10.9.0.1")});
  --p.header().ttl;
  auditor.audit_packet(p);
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().to_string();
}

TEST(PacketAuditor, TtlIncreaseIsFlagged) {
  PacketAuditor auditor;
  net::Packet p = make_udp_packet();
  p.header().ttl = 10;
  auditor.audit_packet(p);
  p.header().ttl = 12;
  auditor.audit_packet(p);
  EXPECT_EQ(auditor.report().count(InvariantId::kTtlMonotone), 1u);
}

TEST(PacketAuditor, IcmpCorruptionIsFlagged) {
  PacketAuditor auditor;
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kIcmp);
  h.src = ip("10.1.0.10");
  h.dst = ip("10.2.0.77");
  net::IcmpEcho echo;
  echo.ident = 7;
  echo.sequence = 1;
  net::Packet p(h, net::encode_icmp(echo));
  auditor.audit_packet(p);
  EXPECT_TRUE(auditor.report().clean());

  net::Packet corrupted(h, net::encode_icmp(echo));
  corrupted.payload()[5] ^= 0x01;
  auditor.audit_packet(corrupted);
  EXPECT_EQ(auditor.report().count(InvariantId::kIcmpChecksum), 1u);
}

TEST(PacketAuditor, CoherentCachePassesAudit) {
  core::LocationCache cache(4);
  cache.update(ip("10.2.0.77"), ip("10.4.0.1"));
  cache.update(ip("10.2.0.78"), ip("10.5.0.1"));
  (void)cache.lookup(ip("10.2.0.77"));
  cache.invalidate(ip("10.2.0.78"));
  for (int i = 0; i < 10; ++i) {
    cache.update(net::IpAddress::of(10, 2, 0, static_cast<std::uint8_t>(i)),
                 ip("10.4.0.1"));
  }

  PacketAuditor auditor;
  auditor.watch_cache(cache, "test cache");
  auditor.audit_caches();
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().to_string();
  EXPECT_EQ(auditor.report().cache_audits, 1u);
}

TEST(PacketAuditor, CorruptedCacheIsFlagged) {
  core::LocationCache cache(4);
  cache.update(ip("10.2.0.77"), ip("10.4.0.1"));
  CacheInspector::corrupt_with_orphan_entry_for_test(cache);

  PacketAuditor auditor;
  auditor.watch_cache(cache, "corrupted cache");
  auditor.audit_caches();
  EXPECT_EQ(auditor.report().count(InvariantId::kCacheCoherence), 1u);
  ASSERT_NE(auditor.report().first(InvariantId::kCacheCoherence), nullptr);
  EXPECT_EQ(auditor.report().first(InvariantId::kCacheCoherence)->where,
            "corrupted cache");
}

TEST(PacketAuditor, DisabledInvariantIsNotReported) {
  PacketAuditor auditor;
  auditor.registry().set_enabled(InvariantId::kTtlMonotone, false);
  net::Packet p = make_udp_packet();
  p.header().ttl = 10;
  auditor.audit_packet(p);
  p.header().ttl = 12;
  auditor.audit_packet(p);
  EXPECT_TRUE(auditor.report().clean());
}

TEST(PacketAuditor, EnableOnlyFocusesTheRegistry) {
  InvariantRegistry registry;
  registry.enable_only(InvariantId::kMhrpListGrowth);
  EXPECT_TRUE(registry.enabled(InvariantId::kMhrpListGrowth));
  EXPECT_FALSE(registry.enabled(InvariantId::kTtlMonotone));
  EXPECT_FALSE(registry.enabled(InvariantId::kCacheCoherence));
}

TEST(AuditReport, RendersCountsAndFirstOffender) {
  PacketAuditor auditor;
  net::Packet p = make_mhrp_packet();
  p.payload()[4] ^= 0xFF;
  auditor.audit_packet(p);
  auditor.audit_packet(p);  // same corruption twice

  const std::string rendered = auditor.report().to_string();
  EXPECT_NE(rendered.find("mhrp-header-checksum"), std::string::npos);
  EXPECT_NE(rendered.find("§4.1"), std::string::npos);
  EXPECT_NE(rendered.find("x2"), std::string::npos);
  EXPECT_NE(rendered.find("first offender"), std::string::npos);

  auditor.report().reset();
  EXPECT_TRUE(auditor.report().clean());
  EXPECT_EQ(auditor.report().packets_audited, 0u);
}

TEST(InvariantRegistry, CatalogueCoversEveryInvariant) {
  EXPECT_EQ(InvariantRegistry::all().size(), analysis::kInvariantCount);
  for (const auto& info : InvariantRegistry::all()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.paper_ref.empty());
    EXPECT_FALSE(info.statement.empty());
    EXPECT_EQ(&InvariantRegistry::info(info.id), &info);
  }
}

}  // namespace
}  // namespace mhrp
