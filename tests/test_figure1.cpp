// Integration tests replaying the paper's §6 walkthroughs on the Figure 1
// internetwork.
#include <gtest/gtest.h>

#include "scenario/figure1.hpp"
#include "scenario/metrics.hpp"

namespace mhrp {
namespace {

using scenario::Figure1;
using scenario::Figure1Options;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

TEST(Figure1, MobileHostRegistersAtForeignNetworkD) {
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  EXPECT_EQ(w.m->state(), core::MobileHost::State::kForeign);
  EXPECT_EQ(w.m->current_agent(), ip("10.4.0.1"));
  EXPECT_TRUE(w.fa_r4->is_visiting(w.m_address()));
  // The home agent's database points at R4's cell address.
  auto binding = w.ha->home_binding(w.m_address());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(*binding, ip("10.4.0.1"));
}

TEST(Figure1, InitialPacketInterceptedTunneledAndDelivered) {
  // §6.1: S pings M; the packet routes to B, R2 intercepts, tunnels to
  // R4, R4 delivers; the echo reply comes back; R2 sends S a location
  // update so S caches M's location.
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  bool replied = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { replied = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(replied);
  EXPECT_GE(w.ha->stats().intercepted_home, 1u);
  EXPECT_GE(w.ha->stats().tunnels_built, 1u);
  EXPECT_GE(w.fa_r4->stats().delivered_to_visitor, 1u);
  // §6.1: "R2 also returns a location update message to S."
  EXPECT_GE(w.ha->stats().updates_sent, 1u);
  auto cached = w.agent_s->cache().peek(w.m_address());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, ip("10.4.0.1"));
}

TEST(Figure1, SubsequentPacketsTunnelDirectlyFromSender) {
  // §6.2: once S caches M's location it builds the MHRP header itself
  // (8 octets) and the home agent is no longer involved.
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  bool first = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { first = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(first);

  const auto interceptions_before = w.ha->stats().intercepted_home;
  const auto sender_tunnels_before = w.agent_s->stats().tunnels_built;
  bool second = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { second = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(second);
  EXPECT_EQ(w.ha->stats().intercepted_home, interceptions_before);
  EXPECT_GT(w.agent_s->stats().tunnels_built, sender_tunnels_before);
}

TEST(Figure1, SenderBuiltHeaderAddsEightBytes) {
  // §4.1/§7: sender-built MHRP header = 8 octets; the first (HA-built)
  // tunnel = 12.
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  scenario::FlowRecorder recorder(*w.m);

  bool done = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult&) { done = true; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(done);
  // First packet: built by the home agent → 12 bytes of overhead.
  EXPECT_EQ(recorder.total().overhead_bytes.max, 12.0);

  done = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult&) { done = true; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(done);
  // Second packet: sender-built → 8 bytes.
  EXPECT_EQ(recorder.total().overhead_bytes.min, 8.0);
}

TEST(Figure1, MoveToNewForeignAgentHealsThroughForwardingPointer) {
  // §6.3 first case: M moves R4→R5; R4 keeps a forwarding pointer; S's
  // next (stale) packet is re-tunneled by R4 to R5 and still arrives;
  // R5 then updates S directly.
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  bool warm = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { warm = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(warm);
  ASSERT_EQ(*w.agent_s->cache().peek(w.m_address()), ip("10.4.0.1"));

  ASSERT_TRUE(w.register_at_e());
  EXPECT_FALSE(w.fa_r4->is_visiting(w.m_address()));
  EXPECT_TRUE(w.fa_r5->is_visiting(w.m_address()));
  // §2: the old FA cached the new location as a forwarding pointer.
  ASSERT_TRUE(w.fa_r4->cache().peek(w.m_address()).has_value());
  EXPECT_EQ(*w.fa_r4->cache().peek(w.m_address()), ip("10.5.0.1"));

  const auto retunnels_before = w.fa_r4->stats().retunnels;
  bool after_move = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { after_move = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(after_move);
  EXPECT_GT(w.fa_r4->stats().retunnels, retunnels_before);
  // S's stale entry was repaired to point at R5.
  EXPECT_EQ(*w.agent_s->cache().peek(w.m_address()), ip("10.5.0.1"));
}

TEST(Figure1, MoveWithoutForwardingPointerFallsBackToHomeAgent) {
  // §6.3 second case: R4 has no cached location → it tunnels to M's home
  // address; the home agent re-tunnels to R5 and updates both S and R4.
  Figure1Options options;
  options.forwarding_pointers = false;
  Figure1 w(options);
  ASSERT_TRUE(w.register_at_d());
  bool warm = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { warm = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(warm);

  ASSERT_TRUE(w.register_at_e());
  // With forwarding pointers disabled the Disconnect leaves no pointer;
  // R4 may still learn M's new location incidentally (a location update
  // drawn by its own routed Disconnect-ack). Model the paper's stated
  // condition — "that cache entry has subsequently been reused for some
  // other mobile host" — by dropping whatever R4 knows.
  w.fa_r4->cache().invalidate(w.m_address());

  const auto home_tunnels_before = w.fa_r4->stats().tunneled_to_home;
  bool after_move = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { after_move = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(after_move);
  EXPECT_GT(w.fa_r4->stats().tunneled_to_home, home_tunnels_before);
  // Both S and R4 now point directly at R5.
  EXPECT_EQ(*w.agent_s->cache().peek(w.m_address()), ip("10.5.0.1"));
  EXPECT_EQ(*w.fa_r4->cache().peek(w.m_address()), ip("10.5.0.1"));
}

TEST(Figure1, ReturningHomeDeletesCachesAndRestoresPlainRouting) {
  // §6.3 third case: M returns home, registers FA address zero; S's next
  // packet takes the stale tunnel, reaches M at home, and M tells S to
  // delete its entry; packets after that use plain IP with zero overhead.
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  bool warm = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { warm = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(warm);

  ASSERT_TRUE(w.register_at_home());
  EXPECT_EQ(w.m->state(), core::MobileHost::State::kHome);
  auto binding = w.ha->home_binding(w.m_address());
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(binding->is_unspecified());  // "foreign agent address zero"
  // §6.3: returning home leaves no forwarding pointer at R4.
  EXPECT_FALSE(w.fa_r4->cache().peek(w.m_address()).has_value());

  bool after = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { after = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(after);
  // M's location update told S to delete its entry.
  EXPECT_FALSE(w.agent_s->cache().peek(w.m_address()).has_value());

  // And the next packet is plain IP end to end: no MHRP overhead at all.
  scenario::FlowRecorder recorder(*w.m);
  bool plain = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { plain = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(plain);
  EXPECT_EQ(recorder.total().overhead_bytes.max, 0.0);
}

TEST(Figure1, RouterCacheAgentTunnelsForNonMhrpHosts) {
  // §6.2: a LAN of hosts that do not implement MHRP is covered by a cache
  // agent in their first-hop router (R1): it examines forwarded packets
  // and tunnels those destined to cached mobile hosts.
  Figure1Options options;
  options.s_is_cache_agent = false;  // S is a plain host
  Figure1 w(options);
  ASSERT_TRUE(w.register_at_d());

  bool first = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { first = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(first);
  // R1 saw the location update R2 sent toward S and cached it (§4.3).
  ASSERT_TRUE(w.agent_r1->cache().peek(w.m_address()).has_value());

  const auto r1_tunnels_before = w.agent_r1->stats().tunnels_built;
  const auto interceptions_before = w.ha->stats().intercepted_home;
  bool second = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { second = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(second);
  EXPECT_GT(w.agent_r1->stats().tunnels_built, r1_tunnels_before);
  EXPECT_EQ(w.ha->stats().intercepted_home, interceptions_before);
}

TEST(Figure1, MobileToStationaryTrafficIsPlainIp) {
  // M sends to S: normal IP routing, no tunneling anywhere.
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  scenario::FlowRecorder recorder(*w.s);
  bool replied = false;
  static_cast<node::Host*>(w.m)->ping(
      ip("10.1.0.10"),
      [&](const node::Host::PingResult& r) { replied = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(replied);
  EXPECT_EQ(recorder.total().overhead_bytes.max, 0.0);
}

TEST(Figure1, HomeAgentProxyArpsForAwayHostOnHomeLan) {
  // A host on network B itself pings M while M is away: the HA's proxy
  // ARP captures the frames and the tunnel delivers them.
  Figure1 w;
  auto& local = w.topo.add_host("L");
  w.topo.connect(local, *w.net_b, ip("10.2.0.50"), 24);
  local.routing_table().install({net::Prefix(net::kUnspecified, 0),
                                 ip("10.2.0.1"),
                                 local.interfaces().front().get(), 1,
                                 routing::RouteKind::kStatic});
  ASSERT_TRUE(w.register_at_d());
  bool replied = false;
  local.ping(w.m_address(),
             [&](const node::Host::PingResult& r) { replied = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(replied);
  EXPECT_GE(w.ha->stats().intercepted_home, 1u);
}

TEST(Figure1, GracefulDisconnectYieldsHostUnreachable) {
  // §3 planned disconnection: after M goes offline, the HA answers for it
  // with host unreachable instead of black-holing.
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  w.m->disconnect_gracefully();
  w.topo.sim().run_for(sim::seconds(10));
  auto binding = w.ha->home_binding(w.m_address());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(*binding, core::MhrpAgent::kDetachedSentinel);

  bool unreachable = false;
  w.s->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    unreachable =
        unreachable || std::holds_alternative<net::IcmpUnreachable>(m);
    return false;
  });
  std::vector<std::uint8_t> data{1};
  w.s->send_udp(w.m_address(), 1, 2, data);
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(unreachable);
}

}  // namespace
}  // namespace mhrp
