// Unit tests: byte serialization and the Internet checksum.
#include <gtest/gtest.h>

#include "util/byte_buffer.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace mhrp::util {
namespace {

TEST(ByteBuffer, RoundTripsIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 15u);

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, BigEndianOnTheWire) {
  ByteWriter w;
  w.u16(0x0102);
  auto bytes = w.take();
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x02);
}

TEST(ByteBuffer, ReaderThrowsOnTruncation) {
  std::vector<std::uint8_t> three{1, 2, 3};
  ByteReader r(three);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_THROW((void)r.u16(), CodecError);
}

TEST(ByteBuffer, PatchU16OverwritesInPlace) {
  ByteWriter w;
  w.u16(0);
  w.u32(42);
  w.patch_u16(0, 0xBEEF);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 42u);
}

TEST(ByteBuffer, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u8(1);
  EXPECT_THROW(w.patch_u16(0, 7), CodecError);
}

TEST(ByteBuffer, SkipAndRest) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  ByteReader r(data);
  r.skip(2);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.rest().size(), 3u);
  EXPECT_EQ(r.rest()[0], 3);
  EXPECT_THROW(r.skip(4), CodecError);
}

TEST(Checksum, Rfc1071Example) {
  // Classic worked example from RFC 1071 §3.
  std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ones_complement_sum(data), 0xddf2);
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, VerifiesAfterEmbedding) {
  std::vector<std::uint8_t> data{0x45, 0x00, 0x00, 0x1c, 0x00, 0x00,
                                 0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
                                 0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00,
                                 0x00, 0x02};
  std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_TRUE(checksum_ok(data));
  data[12] ^= 0xFF;  // corrupt a byte
  EXPECT_FALSE(checksum_ok(data));
}

TEST(Checksum, OddLengthPadsWithZero) {
  std::vector<std::uint8_t> odd{0x12, 0x34, 0x56};
  std::vector<std::uint8_t> even{0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(ones_complement_sum(odd), ones_complement_sum(even));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ExponentialHasRoughlyTheRequestedMean) {
  Rng rng(7);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng b(42);
  (void)b.fork();
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform(0, 1'000'000) != b.uniform(0, 1'000'000)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace mhrp::util
