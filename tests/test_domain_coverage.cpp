// §3 domain-coverage deployment: ONE home agent serves a whole
// DV-routed domain. The mobile host's home subnet has no agent of its
// own; while the host roams, the agent injects a /32 that pulls the
// domain's traffic for that host to itself for interception and
// tunneling; on return, the route is withdrawn and plain subnet routing
// resumes.
#include <gtest/gtest.h>

#include "core/domain_coverage.hpp"
#include "core/registration.hpp"
#include "net/udp.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

// Domain: R1 (agent) — R2 — R3, DV-routed.
//   R1: agentLan 10.1/24          (the home agent lives here)
//   R2: corrLan  10.2/24          (the correspondent)
//   R3: homeLan  10.3/24 + cell 10.4/24 (the mobile host's home subnet,
//       with NO agent, and a foreign-agent cell)
struct DomainWorld {
  Topology topo;
  node::Router* r1;
  node::Router* r2;
  node::Router* r3;
  node::Host* corr;
  node::Host* mobile;  // a plain host standing in for the mobile side
  net::Link* home_lan;
  net::Link* cell;
  std::unique_ptr<routing::dv::DvProcess> dv1, dv2, dv3;
  std::unique_ptr<core::MhrpAgent> ha;
  std::unique_ptr<core::MhrpAgent> fa;
  std::unique_ptr<core::DomainCoverage> coverage;

  static constexpr const char* kMobile = "10.3.0.77";

  DomainWorld() {
    auto& lan_a = topo.add_link("lanA", sim::millis(1));
    auto& lan_b = topo.add_link("lanB", sim::millis(1));
    r1 = &topo.add_router("R1");
    r2 = &topo.add_router("R2");
    r3 = &topo.add_router("R3");
    topo.connect(*r1, lan_a, ip("10.0.1.1"), 24);
    topo.connect(*r2, lan_a, ip("10.0.1.2"), 24);
    topo.connect(*r2, lan_b, ip("10.0.2.1"), 24);
    topo.connect(*r3, lan_b, ip("10.0.2.2"), 24);

    auto& agent_lan = topo.add_link("agentLan", sim::millis(1));
    topo.connect(*r1, agent_lan, ip("10.1.0.1"), 24);
    auto& corr_lan = topo.add_link("corrLan", sim::millis(1));
    topo.connect(*r2, corr_lan, ip("10.2.0.1"), 24);
    home_lan = &topo.add_link("homeLan", sim::millis(1));
    topo.connect(*r3, *home_lan, ip("10.3.0.1"), 24);
    cell = &topo.add_link("cell", sim::millis(1));
    net::Interface& cell_iface =
        topo.connect(*r3, *cell, ip("10.4.0.1"), 24);

    corr = &topo.add_host("C");
    topo.connect(*corr, corr_lan, ip("10.2.0.10"), 24);
    mobile = &topo.add_host("M");
    topo.connect(*mobile, *home_lan, ip(kMobile), 24);
    topo.install_static_routes();  // host default routes
    // The routers learn everything through DV instead of static tables.
    for (auto* r : {r1, r2, r3}) {
      r->routing_table().remove_kind(routing::RouteKind::kStatic);
    }
    routing::dv::DvOptions dv_config;
    dv_config.update_period = sim::seconds(1);
    dv1 = std::make_unique<routing::dv::DvProcess>(*r1, dv_config, 1);
    dv2 = std::make_unique<routing::dv::DvProcess>(*r2, dv_config, 2);
    dv3 = std::make_unique<routing::dv::DvProcess>(*r3, dv_config, 3);
    dv1->start();
    dv2->start();
    dv3->start();

    core::AgentConfig ha_config;
    ha_config.home_agent = true;
    ha = std::make_unique<core::MhrpAgent>(*r1, ha_config);
    ha->provision_mobile_host(ip(kMobile));  // not on any served subnet
    coverage = std::make_unique<core::DomainCoverage>(*ha, *dv1);

    core::AgentConfig fa_config;
    fa_config.foreign_agent = true;
    fa = std::make_unique<core::MhrpAgent>(*r3, fa_config);
    fa->serve_on(cell_iface);

    topo.sim().run_for(sim::seconds(10));  // DV convergence
  }

  // Registration messages as the mobile side would send them.
  void register_binding(net::IpAddress fa_addr, std::uint32_t seq) {
    core::RegMessage m{core::RegKind::kHomeRegister, ip(kMobile), fa_addr,
                       seq};
    auto bytes = m.encode();
    mobile->send_udp(ip("10.1.0.1"), core::kRegistrationPort,
                     core::kRegistrationPort, bytes);
    topo.sim().run_for(sim::seconds(15));  // include DV propagation
  }
};

TEST(DomainCoverage, AtHomePlainRoutingNoHostRoute) {
  DomainWorld w;
  bool ok = false;
  w.corr->ping(ip(DomainWorld::kMobile),
               [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ha->stats().intercepted_home, 0u);
  EXPECT_EQ(w.r2->routing_table().find(
                net::Prefix::host(ip(DomainWorld::kMobile))),
            nullptr);
}

TEST(DomainCoverage, AwayHostRouteDrawsTrafficToAgentForTunneling) {
  DomainWorld w;
  // The host "moves" to the cell: attach there, register with the FA by
  // message, and register the binding with the domain home agent.
  w.cell->attach(*w.mobile->interfaces().front());
  w.mobile->arp_table(*w.mobile->interfaces().front()).clear();
  w.mobile->routing_table().remove(
      net::Prefix(ip(DomainWorld::kMobile), 24));
  w.mobile->routing_table().install({net::Prefix(net::kUnspecified, 0),
                                     ip("10.4.0.1"),
                                     w.mobile->interfaces().front().get(), 1,
                                     routing::RouteKind::kStatic});
  core::RegMessage connect{core::RegKind::kConnect,
                           ip(DomainWorld::kMobile), net::kUnspecified, 1};
  auto bytes = connect.encode();
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = ip(DomainWorld::kMobile);
  h.dst = ip("10.4.0.1");
  w.mobile->send_ip_on(
      *w.mobile->interfaces().front().get(),
      net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                      core::kRegistrationPort},
                                     bytes)),
      ip("10.4.0.1"));
  w.topo.sim().run_for(sim::seconds(2));
  ASSERT_TRUE(w.fa->is_visiting(ip(DomainWorld::kMobile)));
  w.register_binding(ip("10.4.0.1"), 1);

  EXPECT_EQ(w.coverage->routes_advertised(), 1u);
  // The /32 propagated through the domain.
  const auto* at_r2 = w.r2->routing_table().find(
      net::Prefix::host(ip(DomainWorld::kMobile)));
  ASSERT_NE(at_r2, nullptr);
  EXPECT_EQ(at_r2->kind, routing::RouteKind::kHostSpecific);

  // Correspondent traffic is pulled to R1, intercepted, and tunneled.
  bool ok = false;
  w.corr->ping(ip(DomainWorld::kMobile),
               [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_GE(w.ha->stats().intercepted_home, 1u);
  EXPECT_GE(w.ha->stats().tunnels_built, 1u);
  EXPECT_GE(w.fa->stats().delivered_to_visitor, 1u);
}

TEST(DomainCoverage, ReturnHomeWithdrawsTheRoute) {
  DomainWorld w;
  // Away…
  w.register_binding(ip("10.4.0.1"), 1);
  ASSERT_NE(w.r2->routing_table().find(
                net::Prefix::host(ip(DomainWorld::kMobile))),
            nullptr);
  // …and home again (FA address zero, §3).
  w.register_binding(net::kUnspecified, 2);
  EXPECT_EQ(w.coverage->routes_withdrawn(), 1u);
  w.topo.sim().run_for(sim::seconds(20));
  EXPECT_EQ(w.r2->routing_table().find(
                net::Prefix::host(ip(DomainWorld::kMobile))),
            nullptr);

  // (The away-phase ack was tunneled; what matters is that no NEW
  // tunnels are built once the host is home.)
  const auto tunnels_before = w.ha->stats().tunnels_built;
  bool ok = false;
  w.corr->ping(ip(DomainWorld::kMobile),
               [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ha->stats().tunnels_built, tunnels_before);
}

}  // namespace
}  // namespace mhrp
