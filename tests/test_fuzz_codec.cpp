// Fuzz-style corpus tests for the wire codecs. A seeded byte-mutation
// loop (util::Rng, so every run replays identically) drives random
// corruption, truncation, and extension over a corpus of valid frames
// through the three parsers untrusted bytes reach:
//
//   * net::Packet::deserialize      (RFC 791 datagrams, incl. options)
//   * core::MhrpHeader::decode      (paper Figure 3)
//   * net::decode_icmp              (incl. the §4.3 location update)
//
// Every outcome must be either a successful parse or util::CodecError —
// never a crash, an uncaught std exception, or (under ASan/UBSan, which
// the CI matrix runs this suite under) undefined behavior. On rejection
// the caller's output object must be exactly as it was before the call.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/mhrp_header.hpp"
#include "net/icmp.hpp"
#include "net/packet.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"

namespace mhrp {
namespace {

constexpr int kMutationsPerFrame = 400;

/// Corrupt 1-4 random bytes; occasionally truncate or extend instead.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& frame,
                                 util::Rng& rng) {
  std::vector<std::uint8_t> out = frame;
  const std::uint64_t kind = rng.uniform(0, 9);
  if (kind == 0 && !out.empty()) {  // truncate to a random prefix
    out.resize(rng.index(out.size()));
  } else if (kind == 1) {  // append random garbage
    const std::uint64_t extra = rng.uniform(1, 16);
    for (std::uint64_t i = 0; i < extra; ++i) {
      out.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
    }
  } else if (!out.empty()) {  // flip random bytes in place
    const std::uint64_t edits = rng.uniform(1, 4);
    for (std::uint64_t i = 0; i < edits; ++i) {
      out[rng.index(out.size())] =
          static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
  }
  return out;
}

// ---- Corpus builders ----

net::Packet make_udp_packet(std::size_t payload_size) {
  net::IpHeader h;
  h.src = net::IpAddress::of(10, 1, 0, 100);
  h.dst = net::IpAddress::of(10, 3, 0, 9);
  h.ttl = 32;
  std::vector<std::uint8_t> payload(payload_size);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  return net::Packet(h, std::move(payload));
}

net::Packet make_lsrr_packet() {
  net::Packet p = make_udp_packet(24);
  p.header().options.push_back(net::make_lsrr_option(
      {net::IpAddress::of(10, 2, 0, 1), net::IpAddress::of(10, 4, 0, 1)}, 0));
  return p;
}

std::vector<core::MhrpHeader> mhrp_corpus() {
  std::vector<core::MhrpHeader> corpus;
  core::MhrpHeader plain;
  plain.orig_protocol = 17;
  plain.mobile_host = net::IpAddress::of(10, 1, 0, 100);
  corpus.push_back(plain);

  core::MhrpHeader one = plain;
  one.previous_sources = {net::IpAddress::of(10, 200, 0, 10)};
  corpus.push_back(one);

  core::MhrpHeader full = plain;
  for (int i = 0; i < 8; ++i) {
    full.previous_sources.push_back(
        net::IpAddress::of(10, static_cast<std::uint8_t>(2 + i), 0, 1));
  }
  corpus.push_back(full);
  return corpus;
}

std::vector<net::IcmpMessage> icmp_corpus() {
  std::vector<net::IcmpMessage> corpus;
  corpus.reserve(7);
  net::IcmpEcho echo{true, 7, 3, {1, 2, 3, 4, 5, 6, 7, 8}};
  corpus.emplace_back(echo);
  net::IcmpUnreachable unreach{net::UnreachCode::kHostUnreachable,
                               std::vector<std::uint8_t>(28, 0xAB)};
  corpus.emplace_back(unreach);
  net::IcmpAgentAdvertisement adv{net::IpAddress::of(10, 2, 0, 1), false,
                                  true, 3, 19};
  corpus.emplace_back(adv);
  corpus.emplace_back(net::IcmpAgentSolicitation{});
  net::IcmpLocationUpdate bind{net::IpAddress::of(10, 1, 0, 100),
                               net::IpAddress::of(10, 2, 0, 1), false};
  corpus.emplace_back(bind);
  net::IcmpLocationUpdate home{net::IpAddress::of(10, 1, 0, 101),
                               net::IpAddress(0), true};
  corpus.emplace_back(home);
  net::IcmpLocationUpdate dissolve{net::IpAddress::of(10, 1, 0, 102),
                                   net::IpAddress::of(10, 5, 0, 1), true};
  corpus.emplace_back(dissolve);
  return corpus;
}

/// A recognizable sentinel: rejected parses must leave this untouched.
core::MhrpHeader sentinel_mhrp() {
  core::MhrpHeader s;
  s.orig_protocol = 0xEE;
  s.mobile_host = net::IpAddress::of(192, 0, 2, 1);
  s.previous_sources = {net::IpAddress::of(192, 0, 2, 2)};
  return s;
}

// ---- Fuzz loops ----

TEST(FuzzCodec, PacketDeserializeNeverCrashes) {
  util::Rng rng(0xF0220001);
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(make_udp_packet(0).serialize());
  corpus.push_back(make_udp_packet(8).serialize());
  corpus.push_back(make_udp_packet(512).serialize());
  corpus.push_back(make_lsrr_packet().serialize());

  const net::Packet pristine = make_udp_packet(8);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (const auto& frame : corpus) {
    for (int i = 0; i < kMutationsPerFrame; ++i) {
      const std::vector<std::uint8_t> fuzzed = mutate(frame, rng);
      net::Packet out = pristine;  // sentinel with a known header
      try {
        out = net::Packet::deserialize(fuzzed);
        ++accepted;
      } catch (const util::CodecError&) {
        ++rejected;
        // Rejection must not have partially mutated the output.
        EXPECT_EQ(out.header(), pristine.header());
        EXPECT_EQ(out.payload(), pristine.payload());
      }
    }
  }
  // The corpus is built from valid frames, so some mutations (e.g. in the
  // payload, which the IP header checksum does not cover) must still
  // parse, and corruption of the checksummed header must be caught.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzCodec, PacketHeaderSingleBitFlipsAreAllRejected) {
  // The internet checksum detects every single-bit error, so *no* flip
  // inside the checksummed IP header may survive deserialization.
  const std::vector<std::uint8_t> frame = make_udp_packet(16).serialize();
  const std::size_t header_bytes = 20;
  for (std::size_t byte = 0; byte < header_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> fuzzed = frame;
      fuzzed[byte] = static_cast<std::uint8_t>(fuzzed[byte] ^ (1u << bit));
      EXPECT_THROW((void)net::Packet::deserialize(fuzzed), util::CodecError)
          << "bit " << bit << " of byte " << byte << " survived";
    }
  }
}

TEST(FuzzCodec, MhrpHeaderDecodeNeverCrashes) {
  util::Rng rng(0xF0220002);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (const core::MhrpHeader& h : mhrp_corpus()) {
    util::ByteWriter w;
    h.encode(w);
    const std::vector<std::uint8_t> frame = w.take();
    {
      util::ByteReader r(frame);
      EXPECT_EQ(core::MhrpHeader::decode(r), h);  // clean round trip
    }
    for (int i = 0; i < kMutationsPerFrame; ++i) {
      const std::vector<std::uint8_t> fuzzed = mutate(frame, rng);
      core::MhrpHeader out = sentinel_mhrp();
      util::ByteReader r(fuzzed);
      try {
        out = core::MhrpHeader::decode(r);
        ++accepted;
      } catch (const util::CodecError&) {
        ++rejected;
        EXPECT_EQ(out, sentinel_mhrp());
      }
    }
  }
  EXPECT_GT(accepted, 0u);  // e.g. garbage appended past the list
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzCodec, MhrpHeaderSingleBitFlipsAreAllRejected) {
  // The MHRP header checksum (Figure 3) covers every octet including the
  // previous-source list, so any single-bit flip must be rejected.
  for (const core::MhrpHeader& h : mhrp_corpus()) {
    util::ByteWriter w;
    h.encode(w);
    const std::vector<std::uint8_t> frame = w.take();
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> fuzzed = frame;
        fuzzed[byte] = static_cast<std::uint8_t>(fuzzed[byte] ^ (1u << bit));
        util::ByteReader r(fuzzed);
        EXPECT_THROW((void)core::MhrpHeader::decode(r), util::CodecError)
            << "bit " << bit << " of byte " << byte << " survived";
      }
    }
  }
}

TEST(FuzzCodec, IcmpDecodeNeverCrashes) {
  util::Rng rng(0xF0220003);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  const net::IcmpMessage sentinel =
      net::IcmpEcho{false, 0xDEAD, 0xBEEF, {9, 9, 9}};
  for (const net::IcmpMessage& msg : icmp_corpus()) {
    const std::vector<std::uint8_t> frame = net::encode_icmp(msg);
    EXPECT_EQ(net::decode_icmp(frame), msg);  // clean round trip
    for (int i = 0; i < kMutationsPerFrame; ++i) {
      const std::vector<std::uint8_t> fuzzed = mutate(frame, rng);
      net::IcmpMessage out = sentinel;
      try {
        out = net::decode_icmp(fuzzed);
        ++accepted;
      } catch (const util::CodecError&) {
        ++rejected;
        EXPECT_EQ(out, sentinel);
      }
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzCodec, LocationUpdateSingleBitFlipsNeverMisparse) {
  // A corrupted location update must never decode *as a location update
  // with different contents* — that would poison location caches. Either
  // the checksum rejects it, or (for flips in the type byte) it decodes
  // as some other, honestly-labeled message type.
  const net::IcmpMessage original = net::IcmpLocationUpdate{
      net::IpAddress::of(10, 1, 0, 100), net::IpAddress::of(10, 2, 0, 1),
      false};
  const std::vector<std::uint8_t> frame = net::encode_icmp(original);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> fuzzed = frame;
      fuzzed[byte] = static_cast<std::uint8_t>(fuzzed[byte] ^ (1u << bit));
      try {
        const net::IcmpMessage out = net::decode_icmp(fuzzed);
        EXPECT_FALSE(std::holds_alternative<net::IcmpLocationUpdate>(out))
            << "bit " << bit << " of byte " << byte
            << " produced a differing location update";
      } catch (const util::CodecError&) {
        // rejected: fine
      }
    }
  }
}

}  // namespace
}  // namespace mhrp
