// MobileHost state-machine tests: discovery policies, movement detection
// by advertisement loss, registration retransmission, homecoming
// recognition, re-registration on a rebooted agent's query, and the
// optional mobile-host-as-its-own-foreign-agent mode (§2).
#include <gtest/gtest.h>

#include "scenario/metrics.hpp"
#include "scenario/mhrp_world.hpp"

namespace mhrp {
namespace {

using core::MobileHost;
using scenario::MhrpWorld;
using scenario::MhrpWorldOptions;

TEST(MobileHost, StateWalk) {
  MhrpWorld w;
  MobileHost& m = *w.mobiles[0];
  EXPECT_EQ(m.state(), MobileHost::State::kDetached);
  ASSERT_TRUE(w.move_and_register(0, 0));
  EXPECT_EQ(m.state(), MobileHost::State::kForeign);
  EXPECT_EQ(m.current_agent(), w.fa_address(0));
  ASSERT_TRUE(w.move_and_register(0, -1));
  EXPECT_EQ(m.state(), MobileHost::State::kHome);
  m.detach();
  EXPECT_EQ(m.state(), MobileHost::State::kDetached);
}

TEST(MobileHost, WaitsForPeriodicAdvertisementWhenNotSoliciting) {
  MhrpWorldOptions options;
  options.solicit_on_attach = false;
  options.protocol.advertisement_period = sim::seconds(2);
  MhrpWorld w(options);
  MobileHost& m = *w.mobiles[0];

  const sim::Time before = w.topo.sim().now();
  ASSERT_TRUE(w.move_and_register(0, 0));
  const double took = sim::to_seconds(w.topo.sim().now() - before);
  // Must have waited for a periodic advertisement (ordering within the
  // 2 s period is deterministic but nonzero), and sent no solicitation.
  EXPECT_EQ(m.stats().solicitations_sent, 0u);
  EXPECT_GT(took, 0.01);
}

TEST(MobileHost, SolicitationMakesDiscoveryImmediate) {
  MhrpWorldOptions options;
  options.solicit_on_attach = true;
  options.protocol.advertisement_period = sim::seconds(30);  // way too slow to wait
  MhrpWorld w(options);
  const sim::Time before = w.topo.sim().now();
  ASSERT_TRUE(w.move_and_register(0, 0));
  EXPECT_LT(sim::to_seconds(w.topo.sim().now() - before), 1.0);
  EXPECT_GE(w.mobiles[0]->stats().solicitations_sent, 1u);
}

TEST(MobileHost, DetectsAgentLossWhenAdvertisementsStop) {
  MhrpWorldOptions options;
  options.protocol.advertisement_period = sim::millis(500);
  // Passive discovery, so the silent agent is not revived by a
  // solicitation answer.
  options.solicit_on_attach = false;
  MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));
  ASSERT_EQ(w.mobiles[0]->state(), MobileHost::State::kForeign);

  // The FA goes silent; the advertised lifetime (15 s) expires and the
  // host returns to discovery.
  w.fas[0]->stop_advertising();
  w.topo.sim().run_for(sim::seconds(20));
  EXPECT_EQ(w.mobiles[0]->state(), MobileHost::State::kDiscovering);
}

TEST(MobileHost, ReregistersOnRebootQuery) {
  MhrpWorldOptions options;
  MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));
  const auto regs = w.mobiles[0]->stats().registrations_completed;

  // Simulate the §5.2 broadcast from a rebooted FA.
  w.fas[0]->reboot();
  core::RegMessage query{core::RegKind::kReconnectQuery, net::kUnspecified,
                         net::kUnspecified, 0};
  auto bytes = query.encode();
  net::Interface& cell_iface = *w.fa_routers[0]->interfaces()[1];
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = cell_iface.ip();
  h.dst = net::kBroadcast;
  h.ttl = 1;
  w.fa_routers[0]->send_ip_on(
      cell_iface,
      net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                      core::kRegistrationPort},
                                     bytes)),
      net::kBroadcast);
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_GT(w.mobiles[0]->stats().registrations_completed, regs);
  EXPECT_TRUE(w.fas[0]->is_visiting(w.mobile_address(0)));
}

TEST(MobileHost, GracefulDisconnectOrdering) {
  // §3: planned disconnection notifies the home agent first (with the
  // detached marker), then the old foreign agent, then goes dark.
  MhrpWorld w;
  ASSERT_TRUE(w.move_and_register(0, 0));
  w.mobiles[0]->disconnect_gracefully();
  w.topo.sim().run_for(sim::seconds(10));
  auto binding = w.ha->home_binding(w.mobile_address(0));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(*binding, core::MhrpAgent::kDetachedSentinel);
  EXPECT_FALSE(w.fas[0]->is_visiting(w.mobile_address(0)));
  EXPECT_EQ(w.mobiles[0]->state(), MobileHost::State::kDetached);
}

TEST(MobileHost, RegistrationSurvivesLossyCell) {
  // The cell drops 30% of frames; retransmission still completes the
  // §3 exchange.
  MhrpWorldOptions options;
  options.protocol.seed = 99;
  MhrpWorld w(options);
  util::Rng loss_rng(1234);
  w.cells[0]->set_impairments(net::LinkImpairments{.loss = 0.3}, loss_rng);
  ASSERT_TRUE(w.move_and_register(0, 0, sim::seconds(60)));
  EXPECT_EQ(w.mobiles[0]->state(), MobileHost::State::kForeign);
  // Retransmissions happened (overwhelmingly likely at 30% loss across
  // the multi-message exchange; deterministic under this seed).
  EXPECT_GE(w.mobiles[0]->stats().registration_retransmits, 1u);
}

TEST(MobileHost, OwnCacheOptimizesItsSends) {
  // §2: a mobile host should also be a cache agent. M1 sends to mobile
  // M2; after the first exchange M1 tunnels directly to M2's FA.
  MhrpWorldOptions options;
  options.mobile_hosts = 2;
  options.foreign_sites = 2;
  MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));
  ASSERT_TRUE(w.move_and_register(1, 1));

  bool ok = false;
  w.mobiles[0]->ping(w.mobile_address(1),
                     [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(ok);
  auto cached = w.mobiles[0]->cache().peek(w.mobile_address(1));
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, w.fa_address(1));

  const auto interceptions = w.ha->stats().intercepted_home;
  ok = false;
  w.mobiles[0]->ping(w.mobile_address(1),
                     [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ha->stats().intercepted_home, interceptions);
}

TEST(MobileHost, SelfForeignAgentMode) {
  // §2: "a mobile host may also be able to serve as its own foreign
  // agent, if it is able to obtain a temporary IP address within that
  // foreign network." We give it one on a foreign LAN with no FA at all.
  MhrpWorldOptions options;
  options.foreign_sites = 1;
  MhrpWorld w(options);

  // A bare foreign site with a plain router and NO foreign agent.
  auto& bare_router = w.topo.add_router("BareRouter");
  // Backbone is the first link in the world.
  net::Link* backbone = w.topo.find_link("backbone");
  ASSERT_NE(backbone, nullptr);
  w.topo.connect(bare_router, *backbone,
                 net::IpAddress::parse("10.0.0.99"), 24);
  auto& bare_lan = w.topo.add_link("bareLan", sim::millis(1));
  w.topo.connect(bare_router, bare_lan,
                 net::IpAddress::parse("10.99.0.1"), 24);
  w.topo.install_static_routes();

  core::MobileHost& m = *w.mobiles[0];
  m.attach_to(bare_lan);
  w.topo.sim().run_for(sim::seconds(3));  // no agent will ever answer

  bool registered = false;
  m.on_registered = [&registered] { registered = true; };
  // The temporary address was "obtained" in the visited network (the
  // mechanism is outside MHRP's scope, per the paper).
  m.enable_self_agent(net::IpAddress::parse("10.99.0.200"),
                      net::IpAddress::parse("10.99.0.1"));
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(registered);
  auto binding = w.ha->home_binding(w.mobile_address(0));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(*binding, net::IpAddress::parse("10.99.0.200"));

  // Traffic reaches the host through a tunnel terminating at itself,
  // and the host keeps using only its home address above IP.
  scenario::FlowRecorder recorder(m);
  recorder.set_filter([&](const net::Packet& p) {
    return p.header().dst == w.mobile_address(0);
  });
  bool ok = false;
  w.correspondents[0]->ping(w.mobile_address(0),
                            [&](const node::Host::PingResult& r) {
                              ok = r.replied;
                            });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_GE(m.stats().tunneled_received, 1u);
}

}  // namespace
}  // namespace mhrp
