// §5 robustness machinery: foreign-agent state recovery after a crash,
// routing-loop detection and dissolution, loop contraction under a
// truncated previous-source list, list overflow handling, and ICMP error
// reverse-tunneling (§4.5).
#include <gtest/gtest.h>

#include <set>

#include "core/agent.hpp"
#include "core/encapsulation.hpp"
#include "net/udp.hpp"
#include "scenario/figure1.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using scenario::Figure1;
using scenario::Figure1Options;
using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

// Craft an MHRP tunnel packet as if `from` had built it for mobile host
// `mh` and tunneled it to `to` (empty previous-source list).
net::Packet make_mhrp_probe(net::IpAddress from, net::IpAddress to,
                            net::IpAddress mh, std::uint8_t ttl = 200) {
  core::MhrpHeader h;
  h.orig_protocol = net::to_u8(net::IpProto::kUdp);
  h.mobile_host = mh;
  util::ByteWriter w;
  h.encode(w);
  std::vector<std::uint8_t> transport(12, 0xEE);
  auto udp = net::encode_udp({1000, 2000}, transport);
  w.bytes(udp);

  net::IpHeader iph;
  iph.protocol = net::to_u8(net::IpProto::kMhrp);
  iph.src = from;
  iph.dst = to;
  iph.ttl = ttl;
  net::Packet p(iph, w.take());
  p.set_base_payload_size(udp.size());
  return p;
}

// ---- §5.2 foreign agent state recovery ----

TEST(Robustness, FaRebootRecoversThroughHomeAgentUpdate) {
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  bool warm = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { warm = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(warm);

  // R4 loses its visiting list.
  w.fa_r4->reboot();
  ASSERT_FALSE(w.fa_r4->is_visiting(w.m_address()));

  // S's next packet tunnels to R4, which has forgotten M: it re-tunnels
  // to M's home; the HA finds R4 among the handlers, discards the packet
  // (the first ping is lost) and restores R4 with a location update.
  bool first = true;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { first = r.replied; },
            32, sim::seconds(3));
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_FALSE(first);
  EXPECT_GE(w.ha->stats().discarded_for_recovery, 1u);
  EXPECT_GE(w.fa_r4->stats().recovery_readds, 1u);
  EXPECT_TRUE(w.fa_r4->is_visiting(w.m_address()));

  bool second = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { second = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(second);
}

TEST(Robustness, FaRebootWithArpVerification) {
  Figure1Options options;
  Figure1 w(options);
  // Rebuild R4's agent config with ARP verification on.
  core::AgentConfig config = w.fa_r4->config();
  (void)config;
  // (The option is exercised through a fresh world below.)
  ASSERT_TRUE(w.register_at_d());
  w.fa_r4->reboot();
  // Deliver the recovery update by hand (what the HA would send).
  w.fa_r4->node().send_ip([&] {
    net::IpHeader h;
    h.protocol = net::to_u8(net::IpProto::kIcmp);
    h.src = ip("10.2.0.1");
    h.dst = ip("10.4.0.1");
    return net::Packet(h, net::encode_icmp(net::IcmpLocationUpdate{
                              w.m_address(), ip("10.4.0.1"), false}));
  }());
  w.topo.sim().run_for(sim::seconds(5));
  EXPECT_TRUE(w.fa_r4->is_visiting(w.m_address()));
}

TEST(Robustness, FaRebootBroadcastSpeedsReregistration) {
  // §5.2 optional speedup: the rebooted FA broadcasts a re-register
  // query; M re-registers without waiting for data-path repair.
  Figure1Options options;
  Figure1 w(options);
  ASSERT_TRUE(w.register_at_d());

  // Enable broadcast-on-reboot by rebuilding R4's agent config: simplest
  // is to flip the flag through a const_cast-free path — rebuild world
  // config instead. Here we emulate by calling reboot() on an agent
  // constructed with the flag.
  core::AgentConfig fa_config;
  fa_config.foreign_agent = true;
  fa_config.cache_agent = true;
  fa_config.reregister_broadcast_on_reboot = true;
  // A second agent object on R4 would double-register hooks; instead
  // verify the protocol piece directly: broadcast the query and watch M
  // re-register.
  std::uint64_t regs_before = w.m->stats().registrations_completed;
  core::RegMessage query{core::RegKind::kReconnectQuery, net::kUnspecified,
                         net::kUnspecified, 0};
  auto bytes = query.encode();
  auto* cell_iface = w.r4->interface_named("eth1");
  ASSERT_NE(cell_iface, nullptr);
  // Limited broadcast, as the agent's reboot path sends it (a visiting
  // host would not recognize the foreign subnet's directed broadcast).
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = cell_iface->ip();
  h.dst = net::kBroadcast;
  h.ttl = 1;
  w.r4->send_ip_on(*cell_iface,
                   net::Packet(h, net::encode_udp({core::kRegistrationPort,
                                                   core::kRegistrationPort},
                                                  bytes)),
                   net::kBroadcast);
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_GT(w.m->stats().registrations_completed, regs_before);
}

// ---- §5.3 loop detection ----

// A LAN of cache-agent routers whose caches are poisoned into a cycle.
struct LoopWorld {
  Topology topo;
  std::vector<node::Router*> routers;
  std::vector<std::unique_ptr<core::MhrpAgent>> agents;
  node::Host* injector;
  net::IpAddress mh = net::IpAddress::parse("10.99.0.77");

  LoopWorld(int size, std::size_t max_list) {
    auto& lan = topo.add_link("lan", sim::millis(1));
    for (int i = 0; i < size; ++i) {
      auto& r = topo.add_router("C" + std::to_string(i));
      topo.connect(r, lan, net::IpAddress::of(10, 9, 0, std::uint8_t(i + 1)),
                   24);
      routers.push_back(&r);
      core::AgentConfig config;
      config.cache_agent = true;
      config.max_list_length = max_list;
      config.update_min_interval = sim::millis(10);
      agents.push_back(std::make_unique<core::MhrpAgent>(r, config));
    }
    injector = &topo.add_host("inj");
    topo.connect(*injector, lan, ip("10.9.0.100"), 24);
    topo.install_static_routes();
    // Poison: Ci points to C(i+1) mod size.
    for (int i = 0; i < size; ++i) {
      agents[std::size_t(i)]->cache().update(
          mh, routers[std::size_t((i + 1) % size)]->primary_address());
    }
  }

  void inject() {
    injector->send_ip(make_mhrp_probe(injector->primary_address(),
                                      routers[0]->primary_address(), mh));
  }

  [[nodiscard]] std::uint64_t total_loops_detected() const {
    std::uint64_t n = 0;
    for (const auto& a : agents) n += a->stats().loops_detected;
    return n;
  }
  [[nodiscard]] std::size_t agents_with_entry() const {
    std::size_t n = 0;
    for (const auto& a : agents) {
      if (a->cache().peek(mh).has_value()) ++n;
    }
    return n;
  }

  /// Does following cache entries from any agent revisit a node — i.e.
  /// does a forwarding cycle still exist? (§5.3 dissolution breaks the
  /// cycle; entries pointing into the now-acyclic remainder are repaired
  /// later by the normal home-agent path and are not part of the claim.)
  [[nodiscard]] bool has_cache_cycle() const {
    auto index_of = [&](net::IpAddress a) -> int {
      for (std::size_t i = 0; i < routers.size(); ++i) {
        if (routers[i]->primary_address() == a) return static_cast<int>(i);
      }
      return -1;
    };
    for (std::size_t start = 0; start < agents.size(); ++start) {
      std::set<std::size_t> path{start};
      std::size_t cursor = start;
      while (true) {
        auto next = agents[cursor]->cache().peek(mh);
        if (!next.has_value()) break;
        int idx = index_of(*next);
        if (idx < 0) break;
        if (!path.insert(static_cast<std::size_t>(idx)).second) return true;
        cursor = static_cast<std::size_t>(idx);
      }
    }
    return false;
  }
};

TEST(Robustness, LoopDetectedWithinOneCycleWhenListIsLargeEnough) {
  LoopWorld w(/*size=*/4, /*max_list=*/8);
  w.inject();
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_EQ(w.total_loops_detected(), 1u);
  // §5.3 dissolution: every member deleted its cache entry.
  EXPECT_EQ(w.agents_with_entry(), 0u);
}

TEST(Robustness, LoopContractsUnderTruncatedListAndEventuallyDissolves) {
  // Loop of 6, list capped at 2: one pass cannot record the loop; the
  // §4.4 overflow updates shortcut members until it fits.
  LoopWorld w(/*size=*/6, /*max_list=*/2);
  ASSERT_TRUE(w.has_cache_cycle());
  std::uint64_t overflows = 0;
  for (int attempt = 0; attempt < 10 && w.has_cache_cycle(); ++attempt) {
    w.inject();
    w.topo.sim().run_for(sim::seconds(5));
  }
  for (const auto& a : w.agents) overflows += a->stats().list_overflows;
  EXPECT_GE(w.total_loops_detected(), 1u);
  EXPECT_GE(overflows, 1u);  // the contraction mechanism actually ran
  EXPECT_FALSE(w.has_cache_cycle());
}

TEST(Robustness, TtlBoundsEachLoopPass) {
  // A packet injected with a tiny TTL dies in the loop without detection
  // (list too small), but is counted; the network does not melt.
  LoopWorld w(/*size=*/8, /*max_list=*/2);
  w.injector->send_ip(make_mhrp_probe(w.injector->primary_address(),
                                      w.routers[0]->primary_address(), w.mh,
                                      /*ttl=*/6));
  w.topo.sim().run_for(sim::seconds(10));
  std::uint64_t ttl_drops = 0;
  for (const auto& a : w.agents) ttl_drops += a->stats().retunnel_ttl_drops;
  EXPECT_EQ(ttl_drops, 1u);
}

// ---- §4.4 list overflow on a (non-loop) chain of stale agents ----

TEST(Robustness, ListOverflowFlushesUpdatesToEarlyHandlers) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  const net::IpAddress mh = ip("10.9.0.77");

  std::vector<node::Router*> chain;
  std::vector<std::unique_ptr<core::MhrpAgent>> agents;
  for (int i = 0; i < 4; ++i) {
    auto& r = topo.add_router("C" + std::to_string(i));
    topo.connect(r, lan, net::IpAddress::of(10, 9, 0, std::uint8_t(i + 1)),
                 24);
    chain.push_back(&r);
    core::AgentConfig config;
    config.cache_agent = true;
    config.foreign_agent = (i == 3);  // the last is the real FA
    config.max_list_length = 2;
    config.update_min_interval = sim::millis(10);
    agents.push_back(std::make_unique<core::MhrpAgent>(r, config));
  }
  agents[3]->serve_on(*chain[3]->interfaces().front());
  // The mobile host itself, attached to the same LAN, visiting agent 3.
  auto& m = topo.add_host("M0");
  topo.connect(m, lan, mh, 24);
  auto& injector = topo.add_host("inj");
  topo.connect(injector, lan, ip("10.9.0.100"), 24);
  topo.install_static_routes();

  // Stale chain C0→C1→C2→C3.
  for (int i = 0; i < 3; ++i) {
    agents[std::size_t(i)]->cache().update(
        mh, chain[std::size_t(i + 1)]->primary_address());
  }
  // C3 "recovers" M as a visitor via a §5.2-style update.
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kIcmp);
  h.dst = chain[3]->primary_address();
  injector.send_ip(net::Packet(
      h, net::encode_icmp(net::IcmpLocationUpdate{
             mh, chain[3]->primary_address(), false})));
  topo.sim().run_for(sim::seconds(2));
  ASSERT_TRUE(agents[3]->is_visiting(mh));

  bool delivered = false;
  m.bind_udp(2000, [&](const net::UdpDatagram&, const net::IpHeader&,
                       net::Interface&) { delivered = true; });
  injector.send_ip(make_mhrp_probe(injector.primary_address(),
                                   chain[0]->primary_address(), mh));
  topo.sim().run_for(sim::seconds(10));

  EXPECT_TRUE(delivered);
  // The injected list was empty; C0 appends injector, C1 appends C0, C2
  // hits the 2-entry cap: overflow at C2.
  EXPECT_EQ(agents[2]->stats().list_overflows, 1u);
  // The flushed member C0 was pointed at C2's tunnel target (C3).
  auto c0_entry = agents[0]->cache().peek(mh);
  ASSERT_TRUE(c0_entry.has_value());
  EXPECT_EQ(*c0_entry, chain[3]->primary_address());
}

// ---- §4.5 ICMP error reverse-tunneling ----

struct ErrorWorld {
  Figure1 w;
  explicit ErrorWorld(std::size_t quote_limit)
      : w([&] {
          Figure1Options options;
          options.icmp_quote_limit = quote_limit;
          return options;
        }()) {}
};

TEST(Robustness, FullQuoteErrorsReverseTheTunnelChain) {
  // Full quotes: S tunnels to R4 (forwarding pointer to R5), R5 is dead;
  // the unreachable error reverses R4's re-tunnel, reaches S as a plain
  // quote, and both R4's pointer and S's entry are invalidated.
  ErrorWorld ew(0);
  Figure1& w = ew.w;
  ASSERT_TRUE(w.register_at_d());
  bool warm = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { warm = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(warm);
  ASSERT_TRUE(w.register_at_e());
  ASSERT_TRUE(w.fa_r4->cache().peek(w.m_address()).has_value());

  // Kill R5: detach both its interfaces so nothing reaches it, and clear
  // R4's ARP cache toward network C so the next-hop resolution genuinely
  // fails (a stale ARP entry would drop the frame silently instead).
  for (const auto& iface : w.r5->interfaces()) {
    if (iface->attached()) iface->link()->detach(*iface);
  }
  w.r4->arp_table(*w.r4->interface_named("eth0")).clear();

  bool replied = true;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { replied = r.replied; },
            32, sim::seconds(8));
  w.topo.sim().run_for(sim::seconds(20));
  EXPECT_FALSE(replied);
  EXPECT_GE(w.fa_r4->stats().errors_reversed, 1u);
  EXPECT_FALSE(w.fa_r4->cache().peek(w.m_address()).has_value());
  EXPECT_FALSE(w.agent_s->cache().peek(w.m_address()).has_value());
}

TEST(Robustness, TruncatedQuoteOnlyInvalidatesCache) {
  // Default 28-byte quotes cannot be reversed (§4.5: "little can be done
  // by a cache agent beyond deleting its cache entry").
  ErrorWorld ew(28);
  Figure1& w = ew.w;
  ASSERT_TRUE(w.register_at_d());
  bool warm = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { warm = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(warm);
  ASSERT_TRUE(w.register_at_e());

  for (const auto& iface : w.r5->interfaces()) {
    if (iface->attached()) iface->link()->detach(*iface);
  }
  w.r4->arp_table(*w.r4->interface_named("eth0")).clear();

  bool replied = true;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { replied = r.replied; },
            32, sim::seconds(8));
  w.topo.sim().run_for(sim::seconds(20));
  EXPECT_FALSE(replied);
  EXPECT_EQ(w.fa_r4->stats().errors_reversed, 0u);
  EXPECT_GE(w.fa_r4->stats().cache_error_invalidations, 1u);
  EXPECT_FALSE(w.fa_r4->cache().peek(w.m_address()).has_value());
}

}  // namespace
}  // namespace mhrp
