// Unit tests: addresses, IP header (incl. options), packet round-trips,
// ICMP and UDP codecs.
#include <gtest/gtest.h>

#include "net/icmp.hpp"
#include "net/ip_address.hpp"
#include "net/ip_header.hpp"
#include "net/packet.hpp"
#include "net/udp.hpp"
#include "util/checksum.hpp"

namespace mhrp::net {
namespace {

TEST(IpAddress, ParseAndFormat) {
  auto a = IpAddress::parse("10.1.2.3");
  EXPECT_EQ(a.raw(), 0x0A010203u);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(IpAddress::of(255, 255, 255, 255), kBroadcast);
  EXPECT_THROW(IpAddress::parse("10.1.2"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("10.1.2.256"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("10.1.2.3.4"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("ten.one.two.three"), std::invalid_argument);
}

TEST(IpAddress, Classification) {
  EXPECT_TRUE(IpAddress().is_unspecified());
  EXPECT_TRUE(kBroadcast.is_broadcast());
  EXPECT_TRUE(IpAddress::parse("224.0.0.11").is_multicast());
  EXPECT_FALSE(IpAddress::parse("10.0.0.1").is_multicast());
}

TEST(Prefix, ContainsAndCanonicalizes) {
  Prefix p(IpAddress::parse("10.2.0.77"), 24);
  EXPECT_EQ(p.address(), IpAddress::parse("10.2.0.0"));
  EXPECT_TRUE(p.contains(IpAddress::parse("10.2.0.1")));
  EXPECT_FALSE(p.contains(IpAddress::parse("10.3.0.1")));
  EXPECT_EQ(p.broadcast(), IpAddress::parse("10.2.0.255"));
  EXPECT_EQ(Prefix::parse("10.2.0.0/24"), p);
  EXPECT_TRUE(Prefix::host(IpAddress::parse("1.2.3.4")).is_host_route());
  // /0 contains everything.
  EXPECT_TRUE(Prefix(kUnspecified, 0).contains(IpAddress::parse("9.9.9.9")));
}

TEST(IpHeader, EncodedSizeWithoutOptionsIs20) {
  IpHeader h;
  EXPECT_EQ(h.encoded_size(), 20u);
}

TEST(IpHeader, LsrrOptionPadsToEightBytes) {
  // One-address LSRR: type + len + pointer + 4 = 7, padded to 8 — the
  // per-packet overhead the paper quotes for the IBM proposal.
  IpHeader h;
  h.options.push_back(make_lsrr_option({IpAddress::parse("10.0.0.1")}, 0));
  EXPECT_EQ(h.encoded_size(), 28u);
}

TEST(IpHeader, LsrrRoundTrip) {
  std::vector<IpAddress> route{IpAddress::parse("10.0.0.1"),
                               IpAddress::parse("10.0.0.2")};
  IpOption opt = make_lsrr_option(route, 1);
  LsrrView view = parse_lsrr_option(opt);
  EXPECT_EQ(view.route, route);
  EXPECT_EQ(view.pointer_index, 1u);
}

TEST(Packet, SerializeDeserializeRoundTrip) {
  IpHeader h;
  h.tos = 7;
  h.identification = 0x9999;
  h.ttl = 33;
  h.protocol = to_u8(IpProto::kUdp);
  h.src = IpAddress::parse("10.1.0.10");
  h.dst = IpAddress::parse("10.2.0.77");
  h.dont_fragment = true;
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  Packet p(h, payload);

  auto wire = p.serialize();
  EXPECT_EQ(wire.size(), 25u);
  EXPECT_TRUE(util::checksum_ok(std::span(wire).subspan(0, 20)));

  Packet q = Packet::deserialize(wire);
  EXPECT_EQ(q.header(), h);
  EXPECT_EQ(q.payload(), payload);
}

TEST(Packet, RoundTripWithOptions) {
  IpHeader h;
  h.src = IpAddress::parse("10.1.0.10");
  h.dst = IpAddress::parse("10.2.0.77");
  h.options.push_back(make_lsrr_option({IpAddress::parse("10.3.0.1")}, 0));
  Packet p(h, {0xAA});
  Packet q = Packet::deserialize(p.serialize());
  ASSERT_EQ(q.header().options.size(), 1u);
  auto view = parse_lsrr_option(q.header().options[0]);
  EXPECT_EQ(view.route[0], IpAddress::parse("10.3.0.1"));
}

TEST(Packet, DeserializeRejectsCorruptChecksum) {
  IpHeader h;
  h.src = IpAddress::parse("1.1.1.1");
  h.dst = IpAddress::parse("2.2.2.2");
  auto wire = Packet(h, {1}).serialize();
  wire[8] ^= 0xFF;  // flip TTL
  EXPECT_THROW(Packet::deserialize(wire), util::CodecError);
}

TEST(Packet, DeserializeRejectsShortBuffers) {
  std::vector<std::uint8_t> tiny(8, 0);
  EXPECT_THROW(Packet::deserialize(tiny), util::CodecError);
}

TEST(Icmp, EchoRoundTrip) {
  IcmpEcho echo;
  echo.ident = 77;
  echo.sequence = 3;
  echo.data = {9, 8, 7};
  auto wire = encode_icmp(echo);
  EXPECT_TRUE(util::checksum_ok(wire));
  auto msg = decode_icmp(wire);
  ASSERT_TRUE(std::holds_alternative<IcmpEcho>(msg));
  EXPECT_EQ(std::get<IcmpEcho>(msg), echo);
}

TEST(Icmp, LocationUpdateRoundTrip) {
  IcmpLocationUpdate u;
  u.mobile_host = IpAddress::parse("10.2.0.77");
  u.foreign_agent = IpAddress::parse("10.4.0.1");
  auto msg = decode_icmp(encode_icmp(u));
  ASSERT_TRUE(std::holds_alternative<IcmpLocationUpdate>(msg));
  EXPECT_EQ(std::get<IcmpLocationUpdate>(msg), u);

  u.invalidate = true;
  u.foreign_agent = kUnspecified;
  msg = decode_icmp(encode_icmp(u));
  EXPECT_EQ(std::get<IcmpLocationUpdate>(msg), u);
}

TEST(Icmp, AgentAdvertisementRoundTrip) {
  IcmpAgentAdvertisement adv;
  adv.agent = IpAddress::parse("10.4.0.1");
  adv.offers_foreign_agent = true;
  adv.lifetime_s = 15;
  adv.sequence = 42;
  auto msg = decode_icmp(encode_icmp(adv));
  ASSERT_TRUE(std::holds_alternative<IcmpAgentAdvertisement>(msg));
  EXPECT_EQ(std::get<IcmpAgentAdvertisement>(msg), adv);
}

TEST(Icmp, UnreachableCarriesQuote) {
  IcmpUnreachable u;
  u.code = UnreachCode::kHostUnreachable;
  u.quoted = {1, 2, 3, 4, 5, 6, 7, 8};
  auto msg = decode_icmp(encode_icmp(u));
  ASSERT_TRUE(std::holds_alternative<IcmpUnreachable>(msg));
  EXPECT_EQ(std::get<IcmpUnreachable>(msg), u);
}

TEST(Icmp, UnknownTypesDecodeAsUnknownNotError) {
  // Paper §4.3: hosts that do not implement MHRP silently discard ICMP
  // of unknown type — so decoding must not fail on them.
  IcmpUnknown raw;
  raw.type = 200;
  raw.code = 3;
  raw.body = {1, 2, 3};
  auto msg = decode_icmp(encode_icmp(raw));
  ASSERT_TRUE(std::holds_alternative<IcmpUnknown>(msg));
  EXPECT_EQ(std::get<IcmpUnknown>(msg), raw);
}

TEST(Icmp, CorruptChecksumThrows) {
  auto wire = encode_icmp(IcmpEcho{});
  wire.back() ^= 0x1;
  EXPECT_THROW(decode_icmp(wire), util::CodecError);
}

TEST(Icmp, TypeOfMatchesWire) {
  IcmpEcho request;
  request.is_request = true;
  IcmpEcho reply;
  reply.is_request = false;
  EXPECT_EQ(icmp_type_of(request), IcmpType::kEchoRequest);
  EXPECT_EQ(icmp_type_of(reply), IcmpType::kEchoReply);
  EXPECT_EQ(icmp_type_of(IcmpLocationUpdate{}), IcmpType::kLocationUpdate);
}

TEST(Udp, RoundTrip) {
  std::vector<std::uint8_t> data{5, 4, 3};
  auto wire = encode_udp({1234, 80}, data);
  EXPECT_EQ(wire.size(), 11u);
  auto datagram = decode_udp(wire);
  EXPECT_EQ(datagram.header.src_port, 1234);
  EXPECT_EQ(datagram.header.dst_port, 80);
  EXPECT_EQ(datagram.data, data);
}

TEST(Udp, CorruptionDetected) {
  std::vector<std::uint8_t> data{5, 4, 3};
  auto wire = encode_udp({1, 2}, data);
  wire[9] ^= 0xFF;
  EXPECT_THROW(decode_udp(wire), util::CodecError);
}

TEST(PacketMetadata, WireCrossingsTrackMaxAndTotal) {
  Packet p;
  p.note_wire_crossing(48);
  p.note_wire_crossing(60);
  p.note_wire_crossing(48);
  EXPECT_EQ(p.max_wire_size(), 60u);
  EXPECT_EQ(p.total_wire_bytes(), 156u);
}

}  // namespace
}  // namespace mhrp::net
