// Substrate integration: the plain IP stack (no mobility) — ARP
// resolution, routed forwarding, TTL, ICMP errors, UDP demux, redirects.
#include <gtest/gtest.h>

#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

// Two LANs joined by one router.
struct TwoLans {
  Topology topo;
  node::Host* a;
  node::Host* b;
  node::Router* r;

  TwoLans() {
    auto& lan1 = topo.add_link("lan1", sim::millis(1));
    auto& lan2 = topo.add_link("lan2", sim::millis(1));
    r = &topo.add_router("R");
    a = &topo.add_host("A");
    b = &topo.add_host("B");
    topo.connect(*r, lan1, ip("10.1.0.1"), 24);
    topo.connect(*r, lan2, ip("10.2.0.1"), 24);
    topo.connect(*a, lan1, ip("10.1.0.10"), 24);
    topo.connect(*b, lan2, ip("10.2.0.10"), 24);
    topo.install_static_routes();
  }
};

TEST(NodeStack, PingAcrossRouter) {
  TwoLans w;
  bool replied = false;
  sim::Time rtt = 0;
  w.a->ping(ip("10.2.0.10"), [&](const node::Host::PingResult& r) {
    replied = r.replied;
    rtt = r.rtt;
  });
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(replied);
  // 2 links each way at 1ms, plus ARP resolution on the first exchange.
  EXPECT_GT(rtt, sim::millis(3));
  EXPECT_LT(rtt, sim::seconds(3));
}

TEST(NodeStack, SecondPingIsFasterThanFirst) {
  // ARP caches warm after the first exchange.
  TwoLans w;
  sim::Time first = 0;
  sim::Time second = 0;
  w.a->ping(ip("10.2.0.10"), [&](const node::Host::PingResult& r) {
    first = r.rtt;
    w.a->ping(ip("10.2.0.10"),
              [&](const node::Host::PingResult& r2) { second = r2.rtt; });
  });
  w.topo.sim().run_for(sim::seconds(20));
  ASSERT_GT(first, 0);
  ASSERT_GT(second, 0);
  EXPECT_LT(second, first);
  EXPECT_EQ(second, sim::millis(4));  // 2 hops × 1ms each way, warm caches
}

TEST(NodeStack, UdpEchoAcrossRouter) {
  TwoLans w;
  w.b->start_udp_echo(7);
  std::vector<std::uint8_t> got;
  w.a->bind_udp(40001, [&](const net::UdpDatagram& d, const net::IpHeader&,
                           net::Interface&) { got = d.data; });
  std::vector<std::uint8_t> payload{1, 2, 3, 4};
  w.a->send_udp(ip("10.2.0.10"), 40001, 7, payload);
  w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(got, payload);
}

TEST(NodeStack, UdpToClosedPortReturnsPortUnreachable) {
  TwoLans w;
  bool unreachable = false;
  w.a->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    const auto* u = std::get_if<net::IcmpUnreachable>(&m);
    if (u != nullptr && u->code == net::UnreachCode::kPortUnreachable) {
      unreachable = true;
    }
    return false;
  });
  std::vector<std::uint8_t> payload{9};
  w.a->send_udp(ip("10.2.0.10"), 40001, 9999, payload);
  w.topo.sim().run_for(sim::seconds(5));
  EXPECT_TRUE(unreachable);
}

TEST(NodeStack, TtlExpiryGeneratesTimeExceeded) {
  TwoLans w;
  bool exceeded = false;
  w.a->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    exceeded = exceeded || std::holds_alternative<net::IcmpTimeExceeded>(m);
    return false;
  });
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.dst = ip("10.2.0.10");
  h.ttl = 1;  // dies at the router
  std::vector<std::uint8_t> data{1};
  net::Packet p(h, net::encode_udp({1, 2}, data));
  w.a->send_ip(std::move(p));
  w.topo.sim().run_for(sim::seconds(5));
  EXPECT_TRUE(exceeded);
  EXPECT_EQ(w.r->counters().dropped_ttl, 1u);
}

TEST(NodeStack, NoRouteGeneratesNetUnreachable) {
  TwoLans w;
  bool unreachable = false;
  w.a->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    const auto* u = std::get_if<net::IcmpUnreachable>(&m);
    unreachable = unreachable || u != nullptr;
    return false;
  });
  std::vector<std::uint8_t> data{1};
  w.a->send_udp(ip("192.168.50.50"), 1, 2, data);  // no such network
  w.topo.sim().run_for(sim::seconds(5));
  EXPECT_TRUE(unreachable);
}

TEST(NodeStack, ArpFailureDropsAndReportsHostUnreachable) {
  TwoLans w;
  bool unreachable = false;
  w.a->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    const auto* u = std::get_if<net::IcmpUnreachable>(&m);
    if (u != nullptr && u->code == net::UnreachCode::kHostUnreachable) {
      unreachable = true;
    }
    return false;
  });
  std::vector<std::uint8_t> data{1};
  w.a->send_udp(ip("10.2.0.99"), 1, 2, data);  // on lan2, but nobody there
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(unreachable);
  EXPECT_GE(w.r->counters().dropped_arp_timeout, 1u);
}

TEST(NodeStack, ProxyArpInterceptsLanTraffic) {
  // A answers for a silent address; frames for it reach A's node.
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  net::Interface& ai = topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();

  a.add_proxy_arp(ai, ip("10.1.0.50"));
  int intercepted = 0;
  a.add_interceptor([&](net::Packet& p, net::Interface&) {
    if (p.header().dst == ip("10.1.0.50")) {
      ++intercepted;
      return node::Intercept::kConsumed;
    }
    return node::Intercept::kContinue;
  });
  std::vector<std::uint8_t> data{1};
  b.send_udp(ip("10.1.0.50"), 1, 2, data);
  topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(intercepted, 1);
}

TEST(NodeStack, GratuitousArpRewritesNeighborCaches) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  net::Interface& ai = topo.connect(a, lan, ip("10.1.0.10"), 24);
  net::Interface& bi = topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.install_static_routes();

  const net::MacAddress fake(0x020000aabbcc);
  a.send_gratuitous_arp(ai, ip("10.1.0.99"), fake);
  topo.sim().run_for(sim::seconds(2));
  auto learned = b.arp_table(bi).lookup(ip("10.1.0.99"));
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, fake);
}

TEST(NodeStack, BroadcastUdpReachesAllLanMembers) {
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& a = topo.add_host("A");
  auto& b = topo.add_host("B");
  auto& c = topo.add_host("C");
  net::Interface& ai = topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(b, lan, ip("10.1.0.11"), 24);
  topo.connect(c, lan, ip("10.1.0.12"), 24);
  int deliveries = 0;
  auto count = [&](const net::UdpDatagram&, const net::IpHeader&,
                   net::Interface&) { ++deliveries; };
  b.bind_udp(99, count);
  c.bind_udp(99, count);
  std::vector<std::uint8_t> data{7};
  a.send_udp_broadcast(ai, 99, 99, data);
  topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(deliveries, 2);
}

TEST(NodeStack, RedirectTeachesHostAHostRoute) {
  // Host A's default router R1 forwards back out the same LAN toward R2:
  // A should receive a redirect and install a host route via R2.
  Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  auto& far_lan = topo.add_link("far", sim::millis(1));
  auto& r1 = topo.add_router("R1");
  auto& r2 = topo.add_router("R2");
  auto& a = topo.add_host("A");
  auto& d = topo.add_host("D");
  topo.connect(r1, lan, ip("10.1.0.1"), 24);
  topo.connect(r2, lan, ip("10.1.0.2"), 24);
  topo.connect(a, lan, ip("10.1.0.10"), 24);
  topo.connect(r2, far_lan, ip("10.9.0.1"), 24);
  topo.connect(d, far_lan, ip("10.9.0.10"), 24);
  topo.install_static_routes();
  // Force A's default via R1 so the detour exists.
  a.routing_table().install({net::Prefix(net::kUnspecified, 0),
                             ip("10.1.0.1"), a.interfaces().front().get(), 1,
                             routing::RouteKind::kStatic});
  r1.set_send_redirects(true);

  net::IpAddress redirected_via;
  a.add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                         net::Interface& in) {
    if (const auto* r = std::get_if<net::IcmpRedirect>(&m)) {
      redirected_via = r->gateway;
      // Install the host route exactly as a host honoring redirects would.
      a.routing_table().install({net::Prefix::host(ip("10.9.0.10")),
                                 r->gateway, &in, 1,
                                 routing::RouteKind::kRedirect});
      return true;
    }
    return false;
  });
  bool replied = false;
  a.ping(ip("10.9.0.10"),
         [&](const node::Host::PingResult& r) { replied = r.replied; });
  topo.sim().run_for(sim::seconds(10));
  EXPECT_TRUE(replied);
  EXPECT_EQ(redirected_via, ip("10.1.0.2"));
  const auto* route = a.routing_table().find(net::Prefix::host(ip("10.9.0.10")));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->kind, routing::RouteKind::kRedirect);
}

}  // namespace
}  // namespace mhrp
