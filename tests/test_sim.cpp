// Unit tests: discrete-event queue ordering, cancellation, the simulator
// executive, and timers.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace mhrp::sim {

/// Test-only backdoor for forcing a slot's generation counter near its
/// wraparound point (2^32 schedule/cancel cycles through one slot would
/// otherwise take hours).
struct EventQueueTestPeer {
  static void set_free_slot_generation(EventQueue& q, std::uint32_t slot,
                                       std::uint32_t generation) {
    q.slots_[slot].generation = generation;
  }
};

namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.schedule(30, [&] { order.push_back(3); });
  (void)q.schedule(10, [&] { order.push_back(1); });
  (void)q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto fired = q.pop();
    fired.action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifoBySchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    (void)q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(q.cancel(handle));
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(handle));  // double cancel is a no-op
  EXPECT_FALSE(ran);
}

TEST(EventQueue, SizeTracksLiveEventsOnly) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  auto b = q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_EQ(q.size(), 0u);
  (void)b;
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  auto handle = q.schedule(10, [] {});
  q.pop().action();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(q.cancel(handle));
}

TEST(EventQueue, DefaultHandleIsInvalidAndNotPending) {
  EventQueue q;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, HandleStaysDistinctAcrossSlotReuse) {
  EventQueue q;
  // `a` occupies the first slab slot; cancelling frees it for reuse.
  auto a = q.schedule(10, [] {});
  ASSERT_TRUE(q.cancel(a));
  // `b` reuses the same slot with a bumped generation: the old handle
  // must not come back to life, and cancelling it must not kill `b`.
  auto b = q.schedule(20, [] {});
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(b));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingSurvivesHeapOfStaleEntries) {
  EventQueue q;
  // Pile several cancelled entries for the same slot into the heap; the
  // one live event must still pop, alone.
  for (int i = 0; i < 8; ++i) {
    auto h = q.schedule(5, [] {});
    q.cancel(h);
  }
  int fired = 0;
  auto live = q.schedule(7, [&] { ++fired; });
  EXPECT_TRUE(live.pending());
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(live.pending());
}

TEST(EventQueue, GenerationWraparound) {
  EventQueue q;
  auto scrap = q.schedule(1, [] {});
  q.cancel(scrap);  // slot 0 is now free (its heap orphan is harmless)
  EventQueueTestPeer::set_free_slot_generation(q, 0, 0xFFFFFFFFu);

  auto old_gen = q.schedule(10, [] {});  // generation 0xFFFFFFFF
  EXPECT_TRUE(old_gen.pending());
  q.pop().action();  // fires; generation wraps to 0
  EXPECT_FALSE(old_gen.pending());

  auto wrapped = q.schedule(20, [] {});  // same slot, generation 0
  EXPECT_TRUE(wrapped.pending());
  EXPECT_FALSE(old_gen.pending());  // 0xFFFFFFFF != 0: still dead
  EXPECT_FALSE(q.cancel(old_gen));
  EXPECT_TRUE(q.cancel(wrapped));
}

TEST(EventQueue, CancelSelfInsideFiringActionReturnsFalse) {
  EventQueue q;
  EventHandle self;
  bool cancel_result = true;
  self = q.schedule(10, [&] { cancel_result = q.cancel(self); });
  q.pop().action();
  EXPECT_FALSE(cancel_result);  // the firing event is no longer pending
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPeerInsideFiringActionPreventsIt) {
  EventQueue q;
  bool peer_ran = false;
  EventHandle peer;
  (void)q.schedule(10, [&] { EXPECT_TRUE(q.cancel(peer)); });
  peer = q.schedule(10, [&] { peer_ran = true; });
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(peer_ran);
}

TEST(EventQueue, FifoSurvivesInterleavedCancellation) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(q.schedule(5, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 12; i += 2) q.cancel(handles[std::size_t(i)]);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9, 11}));
}

TEST(Simulator, ClockFollowsEvents) {
  Simulator sim;
  Time seen = -1;
  (void)sim.after(millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, millis(5));
  EXPECT_EQ(sim.now(), millis(5));
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  (void)sim.after(millis(1), [&] { ++count; });
  (void)sim.after(millis(100), [&] { ++count; });
  sim.run_until(millis(10));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), millis(10));
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  std::vector<Time> times;
  std::function<void(int)> chain = [&](int depth) {
    times.push_back(sim.now());
    if (depth > 0) {
      (void)sim.after(millis(2), [&chain, depth] { chain(depth - 1); });
    }
  };
  (void)sim.after(0, [&] { chain(3); });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{0, millis(2), millis(4), millis(6)}));
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    (void)sim.after(millis(i), [&sim, &count] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  (void)sim.after(millis(10), [] {});
  sim.run();
  bool ran = false;
  (void)sim.at(millis(1), [&] { ran = true; });  // in the past now
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), millis(10));
}

TEST(PeriodicTimer, FiresRepeatedlyUntilStopped) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, millis(10), [&] { ++fires; });
  timer.start();
  sim.run_until(millis(55));
  EXPECT_EQ(fires, 5);
  timer.stop();
  sim.run_until(millis(200));
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, ActionMayStopItself) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, millis(10), [&] {
    if (++fires == 3) timer.stop();
  });
  timer.start();
  sim.run_until(seconds(1));
  EXPECT_EQ(fires, 3);
}

TEST(OneShotTimer, ArmRearmsAndCancels) {
  Simulator sim;
  int fires = 0;
  OneShotTimer timer(sim, [&] { ++fires; });
  timer.arm(millis(10));
  timer.arm(millis(20));  // replaces the first
  sim.run_until(millis(15));
  EXPECT_EQ(fires, 0);
  sim.run_until(millis(25));
  EXPECT_EQ(fires, 1);
  timer.arm(millis(10));
  timer.cancel();
  sim.run_until(millis(100));
  EXPECT_EQ(fires, 1);
}

TEST(TimerDestruction, CancelsPendingWork) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, millis(10), [&] { ++fires; });
    timer.start();
  }
  sim.run_until(seconds(1));
  EXPECT_EQ(fires, 0);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(millis(3), 3'000);
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
}

}  // namespace
}  // namespace mhrp::sim
