// The telemetry subsystem: strict JSON writing, log-scale histograms,
// the metric registry and its exporters, the trace collector's Chrome-
// tracing output, the event-loop profiler's per-category attribution,
// and — the property everything above hangs on — snapshot determinism
// across identically-seeded worlds.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scale_world.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/metric.hpp"
#include "telemetry/metric_registry.hpp"
#include "telemetry/trace.hpp"

namespace mhrp {
namespace {

using telemetry::Histogram;
using telemetry::JsonWriter;
using telemetry::MetricRegistry;
using telemetry::NonFiniteJsonError;
using telemetry::TraceCategory;
using telemetry::TraceCollector;

// ---- JsonWriter ----

TEST(JsonWriterTest, WritesNestedDocument) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("a");
  json.value(std::uint64_t{1});
  json.key("b");
  json.begin_array();
  json.value(2.5);
  json.value("x");
  json.value(true);
  json.null();
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(), R"({"a":1,"b":[2.5,"x",true,null]})");
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  std::ostringstream out;
  JsonWriter json(out);
  json.value(std::string_view("a\"b\\c\n\t\x01"));
  EXPECT_EQ(out.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriterTest, RejectsNonFiniteValues) {
  std::ostringstream out;
  JsonWriter json(out);
  EXPECT_THROW(json.value(std::numeric_limits<double>::infinity()),
               NonFiniteJsonError);
  EXPECT_THROW(json.value(-std::numeric_limits<double>::infinity()),
               NonFiniteJsonError);
  EXPECT_THROW(json.value(std::numeric_limits<double>::quiet_NaN()),
               NonFiniteJsonError);
  EXPECT_THROW(JsonWriter::format_number(
                   std::numeric_limits<double>::quiet_NaN()),
               NonFiniteJsonError);
}

TEST(JsonWriterTest, FormatsIntegralDoublesWithoutExponent) {
  EXPECT_EQ(JsonWriter::format_number(42.0), "42");
  EXPECT_EQ(JsonWriter::format_number(-3.0), "-3");
  EXPECT_EQ(JsonWriter::format_number(0.0), "0");
  EXPECT_EQ(JsonWriter::format_number(2.5), "2.5");
}

// ---- Histogram ----

TEST(HistogramTest, EmptyReportsZerosNotInfinities) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, TracksExactCountSumMinMax) {
  Histogram h;
  h.record(0.002);
  h.record(1.5);
  h.record(300.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 301.502);
  EXPECT_DOUBLE_EQ(h.min(), 0.002);
  EXPECT_DOUBLE_EQ(h.max(), 300.0);
}

TEST(HistogramTest, QuantilesApproximateWithinBucketResolution) {
  // 1000 samples spread over three decades: each quantile must land
  // within one sub-bucket (an eighth of an octave, ~9% relative error).
  Histogram h;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 0.001 * std::pow(1000.0, (i - 1) / 999.0);
    values.push_back(v);
    h.record(v);
  }
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.10)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(HistogramTest, QuantileClampedToObservedRange) {
  Histogram h;
  h.record(5.0);
  h.record(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(HistogramTest, BucketIndexIsMonotonic) {
  std::size_t prev = Histogram::bucket_index(1e-7);
  for (double v = 1e-7; v < 1e7; v *= 1.04) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = idx;
  }
}

// ---- MetricRegistry ----

TEST(MetricRegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricRegistry reg;
  telemetry::Counter& c1 = reg.counter("x");
  c1.increment(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, KindMismatchThrows) {
  MetricRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  EXPECT_THROW(reg.probe("x", [] { return 0.0; }), std::logic_error);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndEvaluatesProbes) {
  MetricRegistry reg;
  reg.probe("zeta", [] { return 7.0; });
  reg.counter("alpha").increment();
  reg.gauge("mid").set(1.5);
  const telemetry::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_EQ(snap.entries[1].name, "mid");
  EXPECT_EQ(snap.entries[2].name, "zeta");
  EXPECT_EQ(std::get<double>(snap.entries[2].value), 7.0);
}

TEST(MetricRegistryTest, ExportersAgreeOnValues) {
  MetricRegistry reg;
  reg.counter("hits").increment(12);
  reg.histogram("lat").record(0.5);
  const auto snap = reg.snapshot();

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("hits counter 12"), std::string::npos);
  EXPECT_NE(text.find("lat histogram count=1"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"schema\":\"mhrp.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\":{\"kind\":\"counter\",\"value\":12}"),
            std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("name,kind,field,value"), std::string::npos);
  EXPECT_NE(csv.find("hits,counter,value,12"), std::string::npos);
  EXPECT_NE(csv.find("lat,histogram,count,1"), std::string::npos);
}

TEST(MetricRegistryTest, JsonExportRejectsNonFiniteProbe) {
  MetricRegistry reg;
  reg.probe("bad", [] { return std::numeric_limits<double>::infinity(); });
  EXPECT_THROW(reg.snapshot().to_json(), NonFiniteJsonError);
}

// ---- TraceCollector ----

TEST(TraceCollectorTest, RecordsInstantsAndSpans) {
  TraceCollector trace;
  trace.instant(TraceCategory::kPacket, "tunnel.encap", 100, "mh", 1.0);
  trace.span(TraceCategory::kProtocol, "reg.connect", 200, 450, "attempts",
             1.0);
  EXPECT_EQ(trace.recorded(), 2u);
  const std::string json = trace.chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Complete span: ph X with ts/dur in simulated microseconds.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":200"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  // Instant event scoped to its thread.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"mh\":1}"), std::string::npos);
  // Category tracks are named via metadata events.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"packet\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\""), std::string::npos);
}

TEST(TraceCollectorTest, SamplesPacketEventsOnly) {
  TraceCollector::Options opts;
  opts.sample_every = 4;
  TraceCollector trace(opts);
  for (int i = 0; i < 16; ++i) {
    trace.instant(TraceCategory::kPacket, "pkt", i);
  }
  for (int i = 0; i < 5; ++i) {
    trace.span(TraceCategory::kProtocol, "reg", i, i + 1);
  }
  EXPECT_EQ(trace.recorded(), 4u + 5u);  // 16/4 packets, all 5 spans
  EXPECT_EQ(trace.sampled_out(), 12u);
}

TEST(TraceCollectorTest, CapsBufferedEventsAndCountsDrops) {
  TraceCollector::Options opts;
  opts.max_events = 8;
  TraceCollector trace(opts);
  for (int i = 0; i < 20; ++i) {
    trace.instant(TraceCategory::kProtocol, "e", i);
  }
  EXPECT_EQ(trace.recorded(), 8u);
  EXPECT_EQ(trace.dropped(), 12u);
}

TEST(TraceCollectorTest, DisabledRecordsNothing) {
  TraceCollector trace;
  trace.set_enabled(false);
  trace.instant(TraceCategory::kPacket, "pkt", 1);
  trace.span(TraceCategory::kStore, "wal", 0, 5);
  EXPECT_EQ(trace.recorded(), 0u);
}

// ---- EventLoopProfiler ----

TEST(EventLoopProfilerTest, AttributesEventsToCategories) {
  sim::Simulator simulator;
  sim::EventLoopProfiler profiler;
  simulator.set_profiler(&profiler);
  int ran = 0;
  for (int i = 0; i < 5; ++i) {
    (void)simulator.after(sim::millis(i), [&ran] { ++ran; },
                    sim::EventCategory::kRegistration);
  }
  (void)simulator.after(sim::millis(9), [&ran] { ++ran; },
                  sim::EventCategory::kMovement);
  (void)simulator.after(sim::millis(10), [&ran] { ++ran; });  // kGeneral
  simulator.run_until(sim::seconds(1));
  EXPECT_EQ(ran, 7);
  EXPECT_EQ(profiler.bucket(sim::EventCategory::kRegistration).events, 5u);
  EXPECT_EQ(profiler.bucket(sim::EventCategory::kMovement).events, 1u);
  EXPECT_EQ(profiler.bucket(sim::EventCategory::kGeneral).events, 1u);
  EXPECT_EQ(profiler.total_events(), 7u);
  EXPECT_GE(profiler.total_wall_seconds(), 0.0);
  EXPECT_NE(profiler.to_text().find("registration"), std::string::npos);
}

TEST(EventLoopProfilerTest, SimulatedBehaviorUnchangedByProfiler) {
  const auto run = [](bool with_profiler) {
    sim::Simulator simulator;
    sim::EventLoopProfiler profiler;
    if (with_profiler) simulator.set_profiler(&profiler);
    std::vector<int> order;
    (void)simulator.after(sim::millis(2), [&] { order.push_back(2); },
                    sim::EventCategory::kArp);
    (void)simulator.after(sim::millis(1), [&] { order.push_back(1); });
    (void)simulator.after(sim::millis(3), [&] { order.push_back(3); },
                    sim::EventCategory::kWorkload);
    simulator.run_until(sim::seconds(1));
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- World-level determinism and export ----

scenario::ScaleWorldOptions small_world(std::uint64_t seed) {
  scenario::ScaleWorldOptions opt;
  opt.routers = 9;
  opt.foreign_agents = 3;
  opt.mobile_hosts = 6;
  opt.correspondents = 2;
  opt.mean_dwell = sim::seconds(2);
  opt.protocol.seed = seed;
  return opt;
}

TEST(WorldTelemetryTest, SnapshotDeterministicAcrossSeededRuns) {
  // Two identically-seeded worlds, driven identically, must export
  // byte-identical JSON and CSV — probes, histograms, and all.
  const auto run = [] {
    scenario::ScaleWorld world(small_world(21));
    world.start();
    world.run_for(sim::seconds(8));
    return std::pair{world.metrics_json(), world.metrics_csv()};
  };
  const auto first = run();
  const auto second = run();
  ASSERT_FALSE(first.first.empty());
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(WorldTelemetryTest, ScaleWorldExportsAreStrictAndPopulated) {
  scenario::ScaleWorldOptions opt = small_world(5);
  opt.telemetry.trace = true;
  opt.telemetry.profiler = true;
  scenario::ScaleWorld world(opt);
  world.start();
  world.run_for(sim::seconds(8));

  // JSON export: schema header, populated metrics, no inf/nan tokens
  // (the writer would have thrown).
  const std::string json = world.metrics_json();
  EXPECT_NE(json.find("\"schema\":\"mhrp.scaleworld.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ha.registrations\""), std::string::npos);
  EXPECT_NE(json.find("\"mobiles.moves\""), std::string::npos);
  EXPECT_NE(json.find("\"handoff.latency_s\""), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);

  // The run moved and registered, so the handoff histogram is populated.
  const auto snap = world.instruments.registry.snapshot();
  bool found = false;
  for (const auto& e : snap.entries) {
    if (e.name != "handoff.latency_s") continue;
    found = true;
    const auto& h = std::get<telemetry::MetricsSnapshot::HistogramStats>(
        e.value);
    EXPECT_GT(h.count, 0u);
    EXPECT_GT(h.max, 0.0);
  }
  EXPECT_TRUE(found);

  // Trace collected protocol spans and packet instants; the export is a
  // loadable Chrome-tracing document.
  ASSERT_NE(world.instruments.trace(), nullptr);
  EXPECT_GT(world.instruments.trace()->recorded(), 0u);
  const std::string trace = world.instruments.trace()->chrome_json();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("handoff.rebind"), std::string::npos);

  // Profiler attributed every executed event to a category.
  ASSERT_NE(world.instruments.profiler(), nullptr);
  EXPECT_GT(world.instruments.profiler()->total_events(), 0u);
  EXPECT_GT(
      world.instruments.profiler()->bucket(sim::EventCategory::kLinkDelivery)
          .events,
      0u);
}

}  // namespace
}  // namespace mhrp
